"""Engine equivalence: cached, parallel and uncached sweeps agree.

The simulation engine's whole contract is that memoization and
parallelism are *invisible*: a sweep through a shared
:class:`~repro.sim.engine.RunContext` — warm or cold, serial or fanned
across a process pool — must produce the same results as running every
configuration fresh, the way a single ``config.run(app, trace)`` call
always has.
"""

import pytest

from repro.apps import HeadbuttApp, StepsApp
from repro.eval.experiments import paper_configurations, run_matrix
from repro.sim.engine import RunContext
from repro.traces.robot import RobotRunConfig, generate_robot_run


@pytest.fixture(scope="module")
def traces():
    return [
        generate_robot_run(
            RobotRunConfig(group=g, duration_s=120.0, seed=70 + g)
        )
        for g in (1, 2)
    ]


@pytest.fixture(scope="module")
def apps():
    return [StepsApp(), HeadbuttApp()]


@pytest.fixture(scope="module")
def configs():
    return paper_configurations()


@pytest.fixture(scope="module")
def engine_matrix(configs, apps, traces):
    """The sweep through one shared, heavily reused context."""
    context = RunContext()
    matrix = run_matrix(configs, apps, traces, context=context)
    return matrix, context


def _assert_results_match(cached, fresh):
    assert cached.config_name == fresh.config_name
    assert cached.app_name == fresh.app_name
    assert cached.trace_name == fresh.trace_name
    assert cached.recall == fresh.recall
    assert cached.precision == fresh.precision
    assert cached.hub_wake_count == fresh.hub_wake_count
    assert cached.detections == fresh.detections
    assert cached.timeline.intervals == fresh.timeline.intervals
    assert cached.average_power_mw == pytest.approx(
        fresh.average_power_mw, rel=1e-12
    )


def test_engine_matches_fresh_per_config_runs(
    engine_matrix, configs, apps, traces
):
    matrix, context = engine_matrix
    assert context.stats.total_hits > 0  # the cache actually worked
    for trace in traces:
        for app in apps:
            for config in configs:
                fresh = config.run(app, trace)
                cached = matrix.get(config.name, app.name, trace.name)
                _assert_results_match(cached, fresh)


def test_parallel_matches_serial(engine_matrix, configs, apps, traces):
    serial, _ = engine_matrix
    parallel = run_matrix(configs, apps, traces, jobs=2)
    assert len(parallel.results) == len(serial.results)
    for cached, fresh in zip(serial.results, parallel.results):
        _assert_results_match(cached, fresh)


def test_uncached_matches_cached(engine_matrix, apps, traces):
    cached_matrix, _ = engine_matrix
    subset = paper_configurations(sleep_intervals=(10.0,))
    uncached = run_matrix(subset, apps, traces, cache=False)
    for fresh in uncached.results:
        cached = cached_matrix.get(
            fresh.config_name, fresh.app_name, fresh.trace_name
        )
        _assert_results_match(cached, fresh)


def test_warm_context_reruns_identically(configs, apps, traces):
    context = RunContext()
    first = run_matrix(configs, apps, traces, context=context)
    hits_before = context.stats.total_hits
    second = run_matrix(configs, apps, traces, context=context)
    assert context.stats.total_hits > hits_before
    for a, b in zip(first.results, second.results):
        _assert_results_match(a, b)


def test_no_compile_matches_compiled(engine_matrix, configs, apps, traces):
    # The compiled whole-trace hub path must be bit-invisible: a sweep
    # with compilation disabled (falling back to the fused tier)
    # produces the exact same results, timelines included.
    compiled_matrix, _ = engine_matrix
    uncompiled = run_matrix(configs, apps, traces, compiled=False)
    assert len(uncompiled.results) == len(compiled_matrix.results)
    for compiled, plain in zip(compiled_matrix.results, uncompiled.results):
        _assert_results_match(compiled, plain)


def test_no_fuse_matches_fused(engine_matrix, configs, apps, traces):
    # Likewise the fused fast path: with both fast tiers disabled the
    # round-by-round interpreter produces the exact same results.
    fused_matrix, _ = engine_matrix
    unfused = run_matrix(configs, apps, traces, fuse=False, compiled=False)
    assert len(unfused.results) == len(fused_matrix.results)
    for fused, plain in zip(fused_matrix.results, unfused.results):
        _assert_results_match(fused, plain)
