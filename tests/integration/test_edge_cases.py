"""Adversarial edge cases across the simulation stack."""

import numpy as np
import pytest

from repro.apps import HeadbuttApp, StepsApp
from repro.sim import (
    AlwaysAwake,
    Batching,
    DutyCycling,
    Oracle,
    PredefinedActivity,
    Sidewinder,
)
from repro.traces.base import GroundTruthEvent, Trace


def _flat_trace(duration=90.0, events=()):
    """A perfectly still trace (gravity only)."""
    rate = 50.0
    n = int(duration * rate)
    rng = np.random.default_rng(0)
    return Trace(
        "edge/flat",
        {
            "ACC_X": rng.normal(0, 0.02, n),
            "ACC_Y": rng.normal(0, 0.02, n),
            "ACC_Z": 9.81 + rng.normal(0, 0.02, n),
        },
        {"ACC_X": rate, "ACC_Y": rate, "ACC_Z": rate},
        duration,
        list(events),
    )


ALL_CONFIGS = [
    AlwaysAwake(),
    DutyCycling(10.0),
    Batching(10.0),
    PredefinedActivity(),
    Sidewinder(),
    Oracle(),
]


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
def test_eventless_trace(config):
    """No events of interest: every config reports perfect recall, no
    detections, and the wake-up-driven ones stay asleep."""
    trace = _flat_trace()
    result = config.run(HeadbuttApp(), trace)
    assert result.recall == 1.0
    assert result.precision == 1.0
    assert result.detections == ()
    if config.name in ("sidewinder", "predefined_activity", "oracle"):
        assert result.power.awake_fraction == 0.0


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
def test_event_at_trace_end(config):
    """An event ending exactly at the trace boundary is still caught by
    the full-visibility configurations."""
    duration = 90.0
    rate = 50.0
    trace = _flat_trace(duration)
    y = trace.data["ACC_Y"].copy()
    i0 = int((duration - 0.7) * rate)
    y[i0:] += -5.2 * 0.5 * (1 - np.cos(2 * np.pi * np.linspace(0, 1, len(y) - i0)))
    trace = Trace(
        trace.name,
        {**trace.data, "ACC_Y": y},
        dict(trace.rate_hz),
        duration,
        [GroundTruthEvent.make("headbutt", duration - 0.7, duration - 0.1)],
    )
    result = config.run(HeadbuttApp(), trace)
    if config.name in ("always_awake", "batching_10s", "sidewinder", "oracle"):
        assert result.recall == 1.0, config.name


def test_event_at_trace_start_sidewinder():
    """An event in the first second: the wake transition has no lead
    time, but the hub buffer still lets the detector see the data."""
    duration = 90.0
    rate = 50.0
    trace = _flat_trace(duration)
    y = trace.data["ACC_Y"].copy()
    pulse = -5.2 * 0.5 * (1 - np.cos(2 * np.pi * np.linspace(0, 1, 30)))
    y[10:40] += pulse
    trace = Trace(
        trace.name,
        {**trace.data, "ACC_Y": y},
        dict(trace.rate_hz),
        duration,
        [GroundTruthEvent.make("headbutt", 0.2, 0.8)],
    )
    result = Sidewinder().run(HeadbuttApp(), trace)
    assert result.recall == 1.0


def test_minimum_duration_traces():
    """Every config survives the shortest legal traces."""
    trace = _flat_trace(duration=60.0)
    for config in ALL_CONFIGS:
        result = config.run(StepsApp(), trace)
        assert 0 <= result.average_power_mw <= 400


def test_sleep_interval_longer_than_trace():
    trace = _flat_trace(duration=60.0)
    result = DutyCycling(600.0).run(StepsApp(), trace)
    # One sensing window, then asleep for the rest.
    assert result.power.awake_fraction < 0.2


def test_batching_interval_longer_than_trace():
    trace = _flat_trace(duration=60.0)
    result = Batching(600.0).run(StepsApp(), trace)
    assert result.recall == 1.0  # the final batch still gets processed


def test_many_rapid_events_merge_windows():
    """Back-to-back events produce one long awake stretch, not a storm
    of transitions."""
    duration = 120.0
    rate = 50.0
    trace = _flat_trace(duration)
    y = trace.data["ACC_Y"].copy()
    events = []
    t = 30.0
    for _ in range(10):
        i0 = int(t * rate)
        pulse = -5.2 * 0.5 * (1 - np.cos(2 * np.pi * np.linspace(0, 1, 30)))
        y[i0 : i0 + 30] += pulse
        events.append(GroundTruthEvent.make("headbutt", t, t + 0.6))
        t += 1.2
    trace = Trace(
        trace.name,
        {**trace.data, "ACC_Y": y},
        dict(trace.rate_hz),
        duration,
        events,
    )
    result = Sidewinder().run(HeadbuttApp(), trace)
    assert result.recall == 1.0
    assert result.wakeup_count <= 3  # merged, not 10 separate wake-ups
