"""Integration: the full developer path of paper Figure 2.

Application code builds a pipeline through the public API, the sensor
manager compiles it to IL and pushes it to the hub, the hub places it on
an MCU and interprets sensor data, and the listener fires with a raw
buffer — the complete story of Sections 3.1-3.5.
"""

import numpy as np
import pytest

from repro.api import (
    MaxThreshold,
    MinThreshold,
    MovingAverage,
    ProcessingBranch,
    ProcessingPipeline,
    SidewinderSensorManager,
    VectorMagnitude,
)
from repro.api.listener import RecordingListener
from repro.il import parse_program, validate_program
from repro.sensors.samples import Chunk


@pytest.fixture()
def manager():
    return SidewinderSensorManager()


def significant_motion(manager):
    pipeline = ProcessingPipeline()
    for axis in (
        manager.ACCELEROMETER_X,
        manager.ACCELEROMETER_Y,
        manager.ACCELEROMETER_Z,
    ):
        pipeline.add(ProcessingBranch(axis).add(MovingAverage(10)))
    pipeline.add(VectorMagnitude())
    pipeline.add(MinThreshold(15))
    return pipeline


def _feed(manager, x, y, z, rate=50.0, t0=0.0):
    times = t0 + np.arange(len(x)) / rate
    manager.hub.feed(
        {
            "ACC_X": Chunk.scalars(times, x, rate),
            "ACC_Y": Chunk.scalars(times, y, rate),
            "ACC_Z": Chunk.scalars(times, z, rate),
        }
    )


def test_figure2_condition_end_to_end(manager):
    listener = RecordingListener()
    handle = manager.push(significant_motion(manager), listener)

    # The intermediate code matches Figure 2c's structure.
    text = handle.intermediate_code
    assert "1,2,3 -> vectorMagnitude(id=4);" in text
    assert text.rstrip().endswith("5 -> OUT;")
    assert handle.mcu_name == "TI MSP430"

    # Quiet data: no wake-ups.
    n = 200
    quiet = np.random.default_rng(0).normal(0, 0.05, n)
    _feed(manager, quiet, quiet, quiet + 9.81)
    assert listener.events == []

    # A vigorous shake: wake-up with raw data attached.
    shake = np.full(n, 25.0)
    _feed(manager, shake, shake, shake, t0=4.0)
    assert listener.events
    event = listener.events[0]
    assert event.value >= 15.0
    assert set(event.raw_data) == {"ACC_X", "ACC_Y", "ACC_Z"}


def test_pushed_il_reparses_to_same_graph(manager):
    handle = manager.push(significant_motion(manager))
    graph = validate_program(parse_program(handle.intermediate_code))
    assert [n.opcode for n in graph.nodes] == [
        n.opcode for n in handle.condition.graph.nodes
    ]


def test_cancel_removes_condition(manager):
    listener = RecordingListener()
    handle = manager.push(significant_motion(manager), listener)
    handle.cancel()
    _feed(manager, np.full(100, 25.0), np.full(100, 25.0), np.full(100, 25.0))
    assert listener.events == []


def test_push_il_matches_pipeline_push(manager):
    # The wire form round-trips through the same validation/placement
    # path as a pipeline push and fires identically.
    handle = manager.push(significant_motion(manager))
    il_listener = RecordingListener()
    il_handle = manager.push_il(handle.intermediate_code, il_listener)
    assert il_handle.mcu_name == handle.mcu_name
    assert il_handle.intermediate_code == handle.intermediate_code
    shake = np.full(200, 25.0)
    _feed(manager, shake, shake, shake)
    assert il_listener.events


def test_push_il_rejects_bad_text(manager):
    from repro.errors import ILSyntaxError, ILValidationError

    with pytest.raises(ILSyntaxError):
        manager.push_il("ACC_X -> movingAvg(id=1, params={8}")
    with pytest.raises(ILValidationError):
        manager.push_il("ACC_X -> movingAvg(id=1, params={8}); 7 -> OUT;")
    # A failed push leaves nothing resident.
    assert manager.handles == ()


def test_validate_condition_accepts_all_source_forms(manager):
    from repro.api.manager import validate_condition

    pipeline = significant_motion(manager)
    from_pipeline = validate_condition(pipeline)
    program, graph, processor = from_pipeline
    from_text = validate_condition(
        manager.push(pipeline).intermediate_code
    )
    from_program = validate_condition(program)
    assert processor.name == "TI MSP430"
    assert [n.opcode for n in graph.nodes] == [
        n.opcode for n in from_text[1].nodes
    ]
    assert from_program[0] is program


def test_manager_inventories(manager):
    sensors = manager.get_sensor_list()
    assert {s.name for s in sensors} >= {"ACC_X", "ACC_Y", "ACC_Z", "MIC"}
    algorithms = manager.get_algorithm_list()
    assert "movingAvg" in algorithms and "fft" in algorithms


def test_two_applications_one_hub(manager):
    motion_listener = RecordingListener()
    manager.push(significant_motion(manager), motion_listener)

    headbutt_listener = RecordingListener()
    headbutt = ProcessingPipeline()
    headbutt.add(
        ProcessingBranch(manager.ACCELEROMETER_Y)
        .add(MovingAverage(3))
        .add(MaxThreshold(-3.5))
    )
    manager.push(headbutt, headbutt_listener)

    n = 200
    y = np.zeros(n)
    y[100:115] = -5.0  # headbutt-like dip: fires headbutt but not motion
    _feed(manager, np.zeros(n), y, np.zeros(n))
    assert headbutt_listener.events
    assert not motion_listener.events
    assert len(manager.handles) == 2
