"""Crash-recovery equivalence: kill the shard anywhere, lose nothing.

The acceptance bar for the durability tier: for any planned kill point
— after an accept, at any pump phase, with or without a torn journal
tail — the union of pre-crash responses and post-recovery responses
must be bit-identical to the uninterrupted run's, quota rejections
included.  A damaged journal recovers its longest valid prefix; a
restart can never reset tenant budgets; a stalled or journal-broken
shard degrades deterministically and sheds bulk work.
"""

import pytest

from repro.apps import all_applications
from repro.errors import ServiceKilled
from repro.serve import (
    Completed,
    ConditionService,
    HealthPolicy,
    Lane,
    LoadSpec,
    Rejected,
    ServiceFaultPlan,
    Submission,
    TenantQuota,
    fleet_workload,
    read_journal,
    response_digest,
    run_fleet,
    run_fleet_with_recovery,
)

QUOTA = TenantQuota(max_pending=2)
PUMP_EVERY = 16


@pytest.fixture(scope="module")
def registry(robot_trace, quiet_robot_trace, audio_trace):
    traces = (robot_trace, quiet_robot_trace, audio_trace)
    return {trace.name: trace for trace in traces}


@pytest.fixture(scope="module")
def bundle(registry):
    """Per-seed (workload, uninterrupted reference run), computed once."""
    cache = {}

    def get(seed):
        if seed not in cache:
            spec = LoadSpec(
                fleet=24,
                seed=seed,
                min_submissions=1,
                max_submissions=3,
                il_fraction=0.15,
                invalid_fraction=0.1,
            )
            submissions = fleet_workload(
                spec, all_applications(), list(registry.values())
            )
            svc = ConditionService(registry, quota=QUOTA)
            try:
                report = run_fleet(svc, submissions, pump_every=PUMP_EVERY)
            finally:
                svc.shutdown()
            assert report.rejections, "workload must exercise rejections"
            cache[seed] = (submissions, report)
        return cache[seed]

    return get


@pytest.fixture(scope="module")
def workload(bundle):
    return bundle(5)[0]


@pytest.fixture(scope="module")
def reference(bundle):
    """The uninterrupted run every crashed run must reproduce."""
    return bundle(5)[1]


def _drive_with_kill(registry, workload, journal, plan):
    svc = ConditionService(registry, quota=QUOTA, journal=journal, faults=plan)
    report, stats, svc = run_fleet_with_recovery(
        svc, workload, registry, journal,
        pump_every=PUMP_EVERY,
        recover_kwargs=dict(quota=QUOTA),
    )
    svc.shutdown()
    return report, stats


def _plan_id(plan):
    return (
        f"accepts{plan.kill_after_accepts}" if plan.kill_after_accepts
        else f"pump{plan.kill_at_pump}-{plan.kill_pump_phase}"
    ) + (f"-torn{plan.torn_tail_bytes}" if plan.torn_tail_bytes else "")


KILL_PLANS = [
    ServiceFaultPlan(kill_after_accepts=8),
    ServiceFaultPlan(kill_after_accepts=20, torn_tail_bytes=33),
    ServiceFaultPlan(kill_at_pump=0, kill_pump_phase="begin"),
    ServiceFaultPlan(kill_at_pump=1, kill_pump_phase="store"),
    ServiceFaultPlan(kill_at_pump=1, kill_pump_phase="end", torn_tail_bytes=48),
    ServiceFaultPlan(kill_at_pump=2, kill_pump_phase="store"),
]

#: Seeds × kill points: the full plan battery on the main workload,
#: and a kill per category on a second seeded workload so the
#: equivalence is a property of the mechanism, not one stream.
SCENARIOS = [(5, plan) for plan in KILL_PLANS] + [
    (11, ServiceFaultPlan(kill_after_accepts=13)),
    (11, ServiceFaultPlan(kill_at_pump=1, kill_pump_phase="store",
                          torn_tail_bytes=21)),
    (11, ServiceFaultPlan(kill_at_pump=0, kill_pump_phase="end")),
]


@pytest.mark.parametrize(
    "seed, plan", SCENARIOS,
    ids=lambda value: (
        _plan_id(value) if isinstance(value, ServiceFaultPlan)
        else f"seed{value}"
    ),
)
def test_kill_anywhere_recovers_bit_identically(
    registry, bundle, tmp_path, seed, plan
):
    workload, reference = bundle(seed)
    report, stats = _drive_with_kill(
        registry, workload, tmp_path / "shard.wal", plan
    )
    assert stats is not None, "the kill must actually fire"
    # The union of pre-crash and post-recovery responses equals the
    # uninterrupted run's responses as a multiset of bytes...
    assert response_digest(report.responses) == response_digest(
        reference.responses
    )
    # ... and the interleaved admission decisions replayed identically,
    # quota rejections included.
    assert [(r.tenant, r.reason) for r in report.rejections] == [
        (r.tenant, r.reason) for r in reference.rejections
    ]
    assert report.tickets == reference.tickets
    if plan.torn_tail_bytes and stats.truncated_bytes:
        assert stats.truncation_reason == "torn_tail"


def test_restart_reanswers_everything_bit_identically(
    registry, workload, reference, tmp_path
):
    """A clean restart from the journal re-answers every completed
    submission without touching the engine."""
    journal = tmp_path / "shard.wal"
    svc = ConditionService(registry, quota=QUOTA, journal=journal)
    try:
        report = run_fleet(svc, workload, pump_every=PUMP_EVERY)
    finally:
        svc.shutdown()
    assert response_digest(report.responses) == response_digest(
        reference.responses
    )
    recovered, stats = ConditionService.recover(journal, registry, quota=QUOTA)
    try:
        assert stats.truncated_bytes == 0
        assert stats.reexecuted == ()
        assert stats.requeued == ()
        assert len(stats.replayed) == reference.tickets
        assert response_digest(stats.replayed) == response_digest(
            reference.responses
        )
        # Every result is fetchable under its original ticket id.
        for response in report.responses:
            sid = response.ticket.submission_id
            assert recovered.result(sid) == response
    finally:
        recovered.shutdown()


def _accepted(svc, registry, tenant="t1", lane=Lane.BULK):
    (trace_name, *_) = registry
    outcome = svc.submit(
        Submission(tenant=tenant, trace=trace_name, app="steps", lane=lane)
    )
    assert not isinstance(outcome, Rejected), outcome
    return outcome


class TestDamagedJournals:
    def test_bad_crc_record_truncates_to_valid_prefix(
        self, registry, tmp_path
    ):
        journal = tmp_path / "shard.wal"
        svc = ConditionService(registry, journal=journal)
        try:
            for tenant in ("a", "b", "c"):
                _accepted(svc, registry, tenant=tenant)
            svc.pump()
        finally:
            svc.shutdown()
        clean = read_journal(journal)
        data = bytearray(journal.read_bytes())
        data[-1] ^= 0xFF  # bit-rot inside the last record's payload
        journal.write_bytes(bytes(data))
        recovered, stats = ConditionService.recover(journal, registry)
        try:
            assert stats.truncation_reason == "corrupt_record"
            assert stats.truncated_bytes > 0
            assert stats.records == len(clean.records) - 1
            # The journal itself was truncated back to health.
            assert read_journal(journal).reason is None
            # The lost completion was re-executed, not forgotten.
            assert len(stats.replayed) + len(stats.reexecuted) == 3
        finally:
            recovered.shutdown()

    def test_torn_tail_is_truncated_and_reported(self, registry, tmp_path):
        journal = tmp_path / "shard.wal"
        plan = ServiceFaultPlan(kill_after_accepts=3, torn_tail_bytes=17)
        svc = ConditionService(registry, journal=journal, faults=plan)
        _accepted(svc, registry, tenant="a")
        svc.pump()  # flushes the first accept + round
        _accepted(svc, registry, tenant="b")
        with pytest.raises(ServiceKilled):
            _accepted(svc, registry, tenant="c")
        assert read_journal(journal).reason == "torn_tail"
        recovered, stats = ConditionService.recover(journal, registry)
        try:
            assert stats.truncation_reason == "torn_tail"
            assert stats.truncated_bytes == 17
        finally:
            recovered.shutdown()


class TestQuotaReconstruction:
    def test_restart_cannot_reset_tenant_budgets(self, registry, tmp_path):
        journal = tmp_path / "shard.wal"
        quota = TenantQuota(max_pending=4)
        svc = ConditionService(
            registry, quota=quota, batch_size=2, journal=journal
        )
        try:
            for _ in range(4):
                _accepted(svc, registry, tenant="t1")
            svc.pump()  # completes 2, leaves 2 pending (accepts durable)
        finally:
            svc.shutdown(drain=False)  # cancels the 2 queued, durably
        recovered, stats = ConditionService.recover(
            journal, registry, quota=quota, batch_size=2
        )
        try:
            assert stats.accepts == 4
            # Shutdown cancellation was journaled, so nothing requeues
            # and the tenant's pending count is back to zero...
            assert stats.requeued == ()
            for _ in range(4):
                _accepted(recovered, registry, tenant="t1")
            # ... and the reconstructed pending count still enforces the
            # quota exactly where the uninterrupted service would.
            (trace_name, *_) = registry
            outcome = recovered.submit(
                Submission(tenant="t1", trace=trace_name, app="steps")
            )
            assert isinstance(outcome, Rejected)
            assert outcome.reason == "tenant_quota"
        finally:
            recovered.shutdown()

    def test_requeued_accepts_keep_their_pending_slots(
        self, registry, tmp_path
    ):
        journal = tmp_path / "shard.wal"
        quota = TenantQuota(max_pending=4)
        plan = ServiceFaultPlan(kill_at_pump=1, kill_pump_phase="begin")
        svc = ConditionService(
            registry, quota=quota, batch_size=2, journal=journal, faults=plan
        )
        for _ in range(4):
            _accepted(svc, registry, tenant="t1")
        svc.pump()  # round 0: completes 2, flushes all 4 accepts
        with pytest.raises(ServiceKilled):
            svc.pump()  # round 1 dies at "begin"
        recovered, stats = ConditionService.recover(
            journal, registry, quota=quota, batch_size=2
        )
        try:
            # Round 1's membership was durable, so its two submissions
            # re-executed; nothing is left to requeue.
            assert len(stats.reexecuted) == 2
            assert recovered.queue_depth == 0
            # All four pending slots were released by completion, so the
            # tenant has full headroom again — no double-charging.
            for _ in range(4):
                _accepted(recovered, registry, tenant="t1")
        finally:
            recovered.shutdown()


class TestHealthSupervision:
    def test_stalled_shard_sheds_bulk_keeps_interactive(self, registry):
        policy = HealthPolicy(pump_period=1.0, tolerance=1, recovery_pumps=1)
        svc = ConditionService(registry, health=policy)
        try:
            _accepted(svc, registry, tenant="a")  # now=0, gap 0
            _accepted(svc, registry, tenant="b")  # now=1, gap 1 (deadline)
            (trace_name, *_) = registry
            outcome = svc.submit(
                Submission(tenant="c", trace=trace_name, app="steps")
            )
            assert isinstance(outcome, Rejected)  # now=2, gap 2 > deadline
            assert outcome.reason == "degraded"
            # Interactive work still lands on the degraded shard.
            _accepted(svc, registry, tenant="c", lane=Lane.INTERACTIVE)
            snapshot = svc.metrics()
            assert snapshot.health_state == "degraded"
            assert snapshot.health_transitions == (
                (2.0, "healthy", "degraded"),
            )
            # Draining pumps on schedule earns the shard its way back.
            svc.drain()
            svc.pump()  # empty, timely: recovery credit
            assert svc.metrics().health_state == "healthy"
            assert len(svc.metrics().health_transitions) == 2
        finally:
            svc.shutdown()

    def test_journal_error_rejects_and_degrades(self, registry, tmp_path):
        plan = ServiceFaultPlan(journal_error_appends=(2,))
        svc = ConditionService(
            registry, journal=tmp_path / "shard.wal", faults=plan
        )
        try:
            _accepted(svc, registry, tenant="a")
            _accepted(svc, registry, tenant="b")
            (trace_name, *_) = registry
            outcome = svc.submit(
                Submission(tenant="c", trace=trace_name, app="steps")
            )
            assert isinstance(outcome, Rejected)
            assert outcome.reason == "journal_unavailable"
            snapshot = svc.metrics()
            assert snapshot.journal_errors == 1
            assert snapshot.health_state == "degraded"
            # The failed acceptance was retracted: queue holds only the
            # two durable accepts, and the rejected tenant is uncharged.
            assert svc.queue_depth == 2
            responses = svc.drain()
            assert {r.ticket.tenant for r in responses} == {"a", "b"}
            assert all(isinstance(r, Completed) for r in responses)
        finally:
            svc.shutdown()
