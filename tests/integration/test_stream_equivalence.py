"""Streamed fleet drives vs whole-trace replay: digest identity.

The cluster-level form of the tentpole contract: a seeded fleet of
devices pushing chunks through intermittent connectivity — across any
shard count, and across a mid-stream shard kill/recover — produces
wake-event logs whose digest equals running the same conditions over
the assembled traces through the ordinary replay path.
"""

import pytest

from repro.serve import (
    ServiceFaultPlan,
    ShardCluster,
    StreamLoadSpec,
    completion_digest,
    run_cluster_fleet,
    run_stream_fleet,
    stream_fleet_plan,
    stream_replay_workload,
)

SPEC = StreamLoadSpec(
    fleet=8,
    seed=42,
    duration_s=16.0,
    disconnect_rate=0.25,
)


@pytest.fixture(scope="module")
def plans():
    return stream_fleet_plan(SPEC)


@pytest.fixture(scope="module")
def replay_digest(plans):
    """The reference: assembled traces through the replay path."""
    traces, submissions = stream_replay_workload(plans)
    cluster = ShardCluster(traces, shards=2)
    try:
        report = run_cluster_fleet(cluster, submissions)
    finally:
        cluster.shutdown()
    assert len(report.completed) == len(submissions)
    return completion_digest(report.pairs)


def _stream_digest(plans, shards, journal_dir=None, faults=None,
                   recover=False):
    cluster = ShardCluster(
        traces={}, shards=shards, journal_dir=journal_dir, faults=faults
    )
    try:
        report = run_stream_fleet(cluster, plans, SPEC, recover=recover)
    finally:
        cluster.shutdown()
    return report, report.digest()


@pytest.mark.parametrize("shards", [1, 4])
def test_streamed_digest_matches_replay(plans, replay_digest, shards):
    report, digest = _stream_digest(plans, shards)
    assert report.subscriptions == len(report.by_subscription)
    assert not report.rejections
    # Connectivity gaps buffered chunks on-device; they all arrived.
    assert report.chunks_pushed == sum(len(p.chunks) for p in plans)
    assert report.deferred_chunks > 0
    assert digest == replay_digest


def test_streamed_digest_survives_shard_kill(plans, replay_digest, tmp_path):
    """Kill one shard mid-stream; recovery + device resync re-derive
    bit-identical subscription logs from the journaled chunks/subs."""
    faults = {
        1: ServiceFaultPlan(kill_at_pump=3, kill_pump_phase="begin"),
    }
    report, digest = _stream_digest(
        plans, shards=4, journal_dir=tmp_path, faults=faults, recover=True
    )
    assert report.recoveries == {1: 1}
    assert digest == replay_digest


def test_stream_metrics_account_for_the_drive(plans):
    report, _ = _stream_digest(plans, shards=2)
    merged = report.metrics.merged
    assert merged.stream_chunks == report.chunks_pushed
    assert merged.stream_subscriptions == report.subscriptions
    assert merged.stream_backlog == 0  # every span was walked
    assert merged.stream_rounds > 0
    # Stacked same-template subscriptions keep occupancy above one
    # row per dispatch even in a small fleet.
    assert merged.stream_occupancy > 1.0
