"""Integration: full simulations across configurations and apps.

These pin the qualitative results the paper's evaluation rests on, at
reduced trace sizes so the suite stays fast; the benchmarks replay the
full corpora.
"""

import pytest

from repro.apps import (
    HeadbuttApp,
    MusicJournalApp,
    PhraseDetectionApp,
    SirenDetectorApp,
    StepsApp,
    TransitionsApp,
)
from repro.sim import (
    AlwaysAwake,
    Batching,
    DutyCycling,
    Oracle,
    PredefinedActivity,
    Sidewinder,
)


ACCEL_APPS = (StepsApp, TransitionsApp, HeadbuttApp)
AUDIO_APPS = (SirenDetectorApp, MusicJournalApp, PhraseDetectionApp)


@pytest.mark.parametrize("app_cls", ACCEL_APPS, ids=lambda c: c.name)
def test_power_ordering_accel(app_cls, robot_trace):
    """Oracle <= Sidewinder <= PA and AA is the ceiling."""
    app = app_cls()
    oracle = Oracle().run(app, robot_trace).average_power_mw
    sidewinder = Sidewinder().run(app, robot_trace).average_power_mw
    predefined = PredefinedActivity().run(app, robot_trace).average_power_mw
    always = AlwaysAwake().run(app, robot_trace).average_power_mw
    assert oracle <= sidewinder <= predefined * 1.05
    assert sidewinder < always
    assert predefined < always


@pytest.mark.parametrize("app_cls", AUDIO_APPS, ids=lambda c: c.name)
def test_recall_one_for_wakeup_configs_audio(app_cls, audio_trace):
    app = app_cls()
    for config in (AlwaysAwake(), Oracle(), PredefinedActivity(), Sidewinder()):
        result = config.run(app, audio_trace)
        assert result.recall == 1.0, (config.name, app.name)


def test_sidewinder_audio_mcu_split(audio_trace):
    assert Sidewinder().run(SirenDetectorApp(), audio_trace).mcu_names == (
        "TI LM4F120",
    )
    assert Sidewinder().run(MusicJournalApp(), audio_trace).mcu_names == (
        "TI MSP430",
    )


def test_sidewinder_closes_most_of_the_gap(robot_trace):
    """Section 5.2's core claim, on one small trace."""
    for app_cls in ACCEL_APPS:
        app = app_cls()
        aa = AlwaysAwake().run(app, robot_trace).average_power_mw
        oracle = Oracle().run(app, robot_trace).average_power_mw
        sw = Sidewinder().run(app, robot_trace).average_power_mw
        fraction = (aa - sw) / (aa - oracle)
        assert fraction > 0.85, app.name


def test_pa_penalty_grows_for_rare_events(robot_trace):
    """Section 5.3: PA ~ Sw for common events, multiples for rare ones."""
    pa = PredefinedActivity()
    sw = Sidewinder()
    ratio = {}
    for app_cls in (StepsApp, HeadbuttApp):
        app = app_cls()
        ratio[app.name] = (
            pa.run(app, robot_trace).average_power_mw
            / sw.run(app, robot_trace).average_power_mw
        )
    assert ratio["headbutts"] > 1.5 * ratio["steps"]


def test_duty_cycling_trades_recall_for_power(quiet_robot_trace):
    app = TransitionsApp()
    results = {
        interval: DutyCycling(interval).run(app, quiet_robot_trace)
        for interval in (2.0, 10.0, 30.0)
    }
    assert results[30.0].average_power_mw < results[2.0].average_power_mw
    assert results[30.0].recall <= results[2.0].recall
    assert results[2.0].average_power_mw > 323.0  # worse than Always Awake


def test_batching_keeps_recall_but_not_timely(quiet_robot_trace):
    app = HeadbuttApp()
    batching = Batching(10.0).run(app, quiet_robot_trace)
    duty = DutyCycling(10.0).run(app, quiet_robot_trace)
    assert batching.recall == 1.0
    assert batching.recall >= duty.recall


def test_precision_stays_high_everywhere(robot_trace):
    for app_cls in ACCEL_APPS:
        app = app_cls()
        for config in (AlwaysAwake(), Sidewinder(), PredefinedActivity()):
            result = config.run(app, robot_trace)
            assert result.precision >= 0.85, (app.name, config.name)


def test_wakeup_counts_sane(robot_trace):
    result = Sidewinder().run(HeadbuttApp(), robot_trace)
    headbutts = len(robot_trace.events_with_label("headbutt"))
    # One phone wake-up per headbutt (bursts merge), modulo merging.
    assert headbutts * 0.5 <= result.wakeup_count <= headbutts * 2 + 2


def test_human_trace_sidewinder_savings(human_trace):
    """Section 5.5: Sw achieves >= 91% of available savings on humans."""
    app = StepsApp()
    aa = AlwaysAwake().run(app, human_trace).average_power_mw
    oracle = Oracle().run(app, human_trace).average_power_mw
    sw = Sidewinder().run(app, human_trace).average_power_mw
    assert (aa - sw) / (aa - oracle) >= 0.85


def test_pa_wasteful_on_human_confounders(human_trace):
    """Section 5.5: generic wake-ups fire on non-event human motion."""
    app = StepsApp()
    pa = PredefinedActivity().run(app, human_trace)
    sw = Sidewinder().run(app, human_trace)
    assert pa.average_power_mw > sw.average_power_mw
    assert pa.recall == 1.0
