"""Integration: every example script runs to completion.

Examples are the user-facing face of the library; each must execute
cleanly from a fresh interpreter state and print its key takeaways.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _run(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


def test_example_inventory_complete():
    assert "quickstart.py" in ALL_EXAMPLES
    assert len(ALL_EXAMPLES) >= 6


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys)
    assert "OUT;" in out
    assert "after stillness:  0 wake-up events" in out
    assert "TI MSP430" in out


def test_step_counter(capsys):
    out = _run("step_counter.py", capsys)
    assert "sidewinder" in out
    assert "of the possible savings" in out


def test_siren_detection(capsys):
    out = _run("siren_detection.py", capsys)
    assert "NOT feasible" in out  # MSP430 rejection
    assert "detected sirens:" in out


def test_music_journal(capsys):
    out = _run("music_journal.py", capsys)
    assert "song-" in out
    assert "Echoprint queried" in out


def test_custom_wakeup(capsys):
    out = _run("custom_wakeup.py", capsys)
    assert "wake-up events; first at" in out
    assert "slide-without-tilt wake-ups: 0" in out


def test_concurrent_apps(capsys):
    out = _run("concurrent_apps.py", capsys)
    assert "one shared device" in out
    assert out.count("recall 100%") >= 6


def test_adaptive_tuning(capsys):
    out = _run("adaptive_tuning.py", capsys)
    assert "adaptation trajectory" in out
    assert "recall 100%" in out


def test_full_day(capsys):
    out = _run("full_day.py", capsys)
    assert "battery life" in out or "days" in out
    assert "multiplies battery life" in out
