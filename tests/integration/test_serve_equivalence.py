"""Service results are bit-identical to direct engine runs.

The acceptance bar for the serving layer: everything a
:class:`~repro.serve.service.ConditionService` completes — through the
bounded queue, admission control, fingerprint dedup, cross-round memo
and batched engine execution — must equal a fresh direct
``Sidewinder``/engine run of the same condition, bit for bit, including
when quota rejections interleave with accepted work and invalid IL
rides in the same batches.
"""

import pytest

from repro.serve import (
    Completed,
    ConditionService,
    Failed,
    LoadSpec,
    Rejected,
    Submission,
    TenantQuota,
    Ticket,
    fleet_workload,
    reference_result,
    run_fleet,
)
from repro.serve.loadgen import VALID_ACCEL_IL
from repro.apps import all_applications
from repro.sim.configs.sidewinder import Sidewinder


@pytest.fixture(scope="module")
def registry(robot_trace, quiet_robot_trace, audio_trace):
    traces = (robot_trace, quiet_robot_trace, audio_trace)
    return {trace.name: trace for trace in traces}


def test_app_results_bit_identical_to_direct_runs(registry, robot_trace):
    svc = ConditionService(registry)
    try:
        for tenant in ("a", "b"):
            svc.submit(
                Submission(tenant=tenant, trace=robot_trace.name, app="steps")
            )
        payer, coalesced = svc.pump()
    finally:
        svc.shutdown()
    direct = Sidewinder().run(
        {app.name: app for app in all_applications()}["steps"], robot_trace
    )
    # Full structural equality: timeline, power breakdown, detections.
    assert payer.result == direct
    assert coalesced.result == direct
    assert coalesced.dedup and not payer.dedup


def test_il_results_bit_identical_to_direct_runs(registry, robot_trace):
    svc = ConditionService(registry)
    try:
        submission = Submission(
            tenant="dev", trace=robot_trace.name, il=VALID_ACCEL_IL[0],
            chunk_seconds=2.0,
        )
        svc.submit(submission)
        (response,) = svc.pump()
    finally:
        svc.shutdown()
    assert isinstance(response, Completed)
    assert response.result == reference_result(submission, registry)
    assert len(response.result) > 0


def test_fleet_with_rejections_stays_bit_identical(registry):
    """A tight quota forces rejections interleaved with accepted work;
    every completion must still match its direct run."""
    spec = LoadSpec(
        fleet=40,
        seed=3,
        min_submissions=2,
        max_submissions=4,
        il_fraction=0.15,
        invalid_fraction=0.1,
    )
    submissions = fleet_workload(
        spec, all_applications(), list(registry.values())
    )
    svc = ConditionService(
        registry, quota=TenantQuota(max_pending=2, max_submissions=3)
    )
    try:
        # A large pump interval lets per-tenant pending counts build up,
        # so the quota actually bites mid-stream.
        report = run_fleet(svc, submissions, pump_every=64)
    finally:
        svc.shutdown()

    assert report.submitted == len(submissions)
    # The interesting regime really occurred: rejections (quota and/or
    # budget) interleaved with accepted-and-completed work, plus some
    # structured per-request failures from invalid IL.
    reasons = {r.reason for r in report.rejections}
    assert reasons & {"tenant_quota", "tenant_budget"}
    assert report.completed
    assert report.failed
    assert report.tickets == len(report.responses)

    dedup = 0
    for response in report.completed:
        submission = report.by_ticket[response.ticket.submission_id]
        assert response.result == reference_result(submission, registry), (
            submission,
        )
        dedup += response.dedup
    # Coalescing happened and never changed an answer.
    assert dedup > 0
    # Failures are structured library errors, not crashes.
    for response in report.failed:
        assert response.error_type.endswith("Error")


def test_batching_on_and_off_bit_identical(registry):
    """Tensor-major batching is invisible in every response: the same
    workload served with and without it yields identical outcomes,
    while the batched shard actually ran batch rounds."""
    from repro.serve import response_digest
    from repro.sim.engine import RunContext
    from repro.traces.robot import RobotRunConfig, generate_robot_run

    # Batching needs the same condition over *different* traces in one
    # pump round, so widen the registry beyond the shared fixtures (the
    # first row of a fresh fingerprint runs alone as the probe).
    fleet_registry = dict(registry)
    for seed in range(4):
        trace = generate_robot_run(
            RobotRunConfig(group=1 + seed % 2, duration_s=60.0, seed=100 + seed)
        )
        fleet_registry[trace.name] = trace

    def drive(batch):
        spec = LoadSpec(fleet=24, seed=5, il_fraction=0.9)
        submissions = fleet_workload(
            spec, all_applications(), list(fleet_registry.values())
        )
        svc = ConditionService(
            fleet_registry, context=RunContext(batch=batch)
        )
        try:
            report = run_fleet(svc, submissions, pump_every=16)
            metrics = svc.metrics()
        finally:
            svc.shutdown()
        return report, metrics

    batched, batched_metrics = drive(batch=True)
    plain, plain_metrics = drive(batch=False)
    assert response_digest(batched.responses) == response_digest(
        plain.responses
    )
    assert [r.ticket for r in batched.responses] == [
        r.ticket for r in plain.responses
    ]
    # Batching genuinely engaged on the batched shard only.
    assert batched_metrics.batch_rounds > 0
    assert (
        batched_metrics.batched_cells >= 2 * batched_metrics.batch_rounds
    )
    assert plain_metrics.batch_rounds == 0
    assert plain_metrics.batched_cells == 0


def test_shape_batching_on_and_off_bit_identical(registry):
    """Shape-keyed batching is invisible too: one detector shape with
    per-tenant thresholds (distinct fingerprints, one shape) served
    with and without it yields identical responses, while the enabled
    shard actually ran shape rounds."""
    from repro.hub.compile import shape_signature
    from repro.hub.costmodel import CostModel
    from repro.il.parser import parse_program
    from repro.il.validate import validate_program
    from repro.serve import response_digest
    from repro.sim.engine import RunContext

    # Raw-IL fleet: every tenant runs the same detector shape with its
    # own threshold — as many fingerprints as tenants, one shape.
    trace_names = [
        name for name in sorted(registry) if name.startswith("robot")
    ]

    def tenant_il(k):
        return (
            "ACC_X -> movingAvg(id=1, params={8});"
            f"1 -> maxThreshold(id=2, params={{{0.05 + 0.03 * k:.2f}}});"
            "2 -> OUT;"
        )

    submissions = [
        Submission(
            tenant=f"tenant-{k}",
            trace=trace_names[k % len(trace_names)],
            il=tenant_il(k),
            chunk_seconds=2.0,
        )
        for k in range(12)
    ]
    # Pin the shared shape to the compiled tier: the cost model's probe
    # threshold is wall-clock based, so an unpinned run may settle on a
    # different tier under load (still bit-identical, but then the
    # shape-round counters this test asserts on would be zero).
    shape = shape_signature(validate_program(parse_program(tenant_il(0))))

    def drive(shape_batch):
        context = RunContext(shape_batch=shape_batch)
        context.cost_model = CostModel(table={shape: "compiled"})
        svc = ConditionService(registry, context=context)
        try:
            report = run_fleet(svc, list(submissions), pump_every=len(submissions))
            metrics = svc.metrics()
        finally:
            svc.shutdown()
        return report, metrics

    shaped, shaped_metrics = drive(shape_batch=True)
    plain, plain_metrics = drive(shape_batch=False)
    assert response_digest(shaped.responses) == response_digest(
        plain.responses
    )
    assert [r.ticket for r in shaped.responses] == [
        r.ticket for r in plain.responses
    ]
    # Shape batching genuinely engaged on the enabled shard only.
    assert shaped_metrics.shape_rounds > 0
    assert (
        shaped_metrics.shape_cells >= 2 * shaped_metrics.shape_rounds
    )
    assert plain_metrics.shape_rounds == 0
    assert plain_metrics.shape_cells == 0


def test_same_seed_same_outcome(registry):
    """The whole serve path is deterministic: same seed, same workload,
    same tickets, same rejections, same results."""
    def drive():
        spec = LoadSpec(fleet=12, seed=9, il_fraction=0.2)
        submissions = fleet_workload(
            spec, all_applications(), list(registry.values())
        )
        svc = ConditionService(registry, quota=TenantQuota(max_pending=2))
        try:
            report = run_fleet(svc, submissions, pump_every=16)
        finally:
            svc.shutdown()
        outcomes = []
        for response in report.responses:
            if isinstance(response, Completed):
                outcomes.append(
                    ("ok", response.ticket.submission_id, response.dedup,
                     response.latency)
                )
            else:
                outcomes.append(
                    ("fail", response.ticket.submission_id,
                     response.error_type)
                )
        rejections = [(r.tenant, r.reason) for r in report.rejections]
        results = [
            r.result for r in report.responses if isinstance(r, Completed)
        ]
        return outcomes, rejections, results

    first = drive()
    second = drive()
    assert first[0] == second[0]
    assert first[1] == second[1]
    assert first[2] == second[2]
