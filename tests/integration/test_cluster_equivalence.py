"""Sharding never changes an answer: cluster topology equivalence.

The acceptance bar for the sharded tier (ISSUE 8): the
topology-independent :func:`~repro.serve.loadgen.completion_digest`
must be identical between a 1-shard and an N-shard cluster over the
same workload, must survive killing and recovering a shard mid-drive,
and must be indifferent to whether the shards are pumped serially,
concurrently, or through the asyncio front end.
"""

import asyncio

import pytest

from repro.apps import all_applications
from repro.serve import (
    AsyncCluster,
    Completed,
    LoadSpec,
    ServiceFaultPlan,
    ShardCluster,
    TenantQuota,
    completion_digest,
    fleet_workload,
    run_cluster_fleet,
    run_cluster_fleet_with_recovery,
    run_fleet,
    submission_content_key,
)
from repro.serve.service import ConditionService


@pytest.fixture(scope="module")
def registry(robot_trace, quiet_robot_trace, audio_trace, human_trace):
    traces = (robot_trace, quiet_robot_trace, audio_trace, human_trace)
    return {trace.name: trace for trace in traces}


@pytest.fixture(scope="module")
def workload(registry):
    spec = LoadSpec(fleet=24, seed=0, min_submissions=1, max_submissions=2)
    return fleet_workload(spec, all_applications(), list(registry.values()))


def _drive(registry, workload, shards, **kwargs):
    cluster = ShardCluster(
        registry, shards=shards, quota=TenantQuota(max_pending=8), **kwargs
    )
    try:
        return run_cluster_fleet(cluster, workload, pump_every=16)
    finally:
        cluster.shutdown()


@pytest.fixture(scope="module")
def reference_digest(registry, workload):
    """The 1-shard completion digest every topology must reproduce."""
    return completion_digest(_drive(registry, workload, shards=1).pairs)


class TestTopologyEquivalence:
    def test_four_shards_match_one_shard(
        self, registry, workload, reference_digest
    ):
        report = _drive(registry, workload, shards=4)
        assert report.tickets == len(report.responses)
        assert completion_digest(report.pairs) == reference_digest

    def test_serial_pumps_match_parallel(
        self, registry, workload, reference_digest
    ):
        report = _drive(
            registry, workload, shards=4, parallel_pumps=False
        )
        assert completion_digest(report.pairs) == reference_digest

    def test_cluster_matches_plain_service(
        self, registry, workload, reference_digest
    ):
        # The single-service path (no router, no cluster) grounds the
        # chain: cluster(1) == cluster(4) == ConditionService.
        service = ConditionService(
            registry, quota=TenantQuota(max_pending=8)
        )
        try:
            report = run_fleet(service, workload, pump_every=16)
        finally:
            service.shutdown()
        pairs = [
            (report.by_ticket[response.ticket.submission_id], response)
            for response in report.responses
        ]
        assert completion_digest(pairs) == reference_digest

    def test_digest_sees_result_content(self, registry, workload):
        # Guard the digest itself: swapping one completion's result
        # must change it (the digest is not vacuously stable).
        report = _drive(registry, workload, shards=2)
        honest = completion_digest(report.pairs)
        pairs = list(report.pairs)
        for index, (submission, response) in enumerate(pairs):
            if isinstance(response, Completed):
                other = next(
                    r for _, r in pairs
                    if isinstance(r, Completed) and r.result != response.result
                )
                pairs[index] = (
                    submission,
                    Completed(
                        ticket=response.ticket,
                        result=other.result,
                        dedup=response.dedup,
                        latency=response.latency,
                    ),
                )
                break
        assert completion_digest(pairs) != honest


class TestKillRecoverEquivalence:
    @pytest.mark.parametrize("kill_at_pump", [0, 1])
    def test_kill_and_recover_one_shard_of_four(
        self, registry, workload, reference_digest, tmp_path, kill_at_pump
    ):
        cluster = ShardCluster(
            registry,
            shards=4,
            quota=TenantQuota(max_pending=8),
            journal_dir=tmp_path / f"kill-{kill_at_pump}",
            faults={
                1: ServiceFaultPlan(
                    kill_at_pump=kill_at_pump, kill_pump_phase="store"
                )
            },
        )
        try:
            report, stats = run_cluster_fleet_with_recovery(
                cluster, workload, pump_every=16
            )
        finally:
            cluster.shutdown()
        # The shard really died and really recovered ...
        assert set(stats) == {1}
        assert cluster.dead_shards == ()
        # ... and recovery changed nothing the fleet can observe.
        assert completion_digest(report.pairs) == reference_digest

    def test_recovered_responses_reuse_journaled_results(
        self, registry, workload, tmp_path
    ):
        # Kill after a pump has stored results: recovery must replay
        # those from the journal, not recompute everything.
        cluster = ShardCluster(
            registry,
            shards=4,
            quota=TenantQuota(max_pending=8),
            journal_dir=tmp_path,
            faults={1: ServiceFaultPlan(kill_at_pump=1)},
        )
        try:
            _, stats = run_cluster_fleet_with_recovery(
                cluster, workload, pump_every=16
            )
        finally:
            cluster.shutdown()
        assert len(stats[1].replayed) > 0


class TestAsyncEquivalence:
    def test_async_front_end_matches_reference(
        self, registry, workload, reference_digest
    ):
        async def drive():
            cluster = ShardCluster(
                registry, shards=4, quota=TenantQuota(max_pending=8)
            )
            front = AsyncCluster(cluster)
            pairs = []
            try:
                for index, submission in enumerate(workload):
                    future = front.submit(submission)
                    future.submission = submission  # tag for collection
                    pairs.append(future)
                    if (index + 1) % 16 == 0:
                        await front.pump()
                await front.drain()
                out = []
                for future in pairs:
                    if not future.done():
                        continue  # rejected futures resolved immediately
                    response = future.result()
                    if hasattr(response, "ticket"):
                        out.append((future.submission, response))
                return out
            finally:
                await front.shutdown()

        pairs = asyncio.run(drive())
        assert completion_digest(pairs) == reference_digest

    def test_submission_content_key_ignores_identity(self, registry):
        from repro.serve import Submission

        (trace_name, *_) = registry
        a = submission_content_key(
            Submission(tenant="t", trace=trace_name, app="steps")
        )
        b = submission_content_key(
            Submission(
                tenant="".join("t"), trace=str(trace_name),
                app="".join(["st", "eps"]),
            )
        )
        assert a == b
