"""Integration: CLI report commands on miniature corpora."""

import pytest

from repro.cli import main


def test_cli_table2_small(capsys):
    assert main(["table2", "--duration", "60"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "sidewinder" in out and "paper" in out


def test_cli_figure6_small(capsys):
    assert main(["figure6", "--duration", "120"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "headbutts" in out


def test_cli_figure7_small(capsys):
    assert main(["figure7", "--duration", "240"]) == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "commute" in out


def test_cli_figure5_small(capsys):
    assert main(["figure5", "--duration", "120"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "Group 1" in out and "Sw=" in out


def test_cli_execution_tiers_render_identically(capsys):
    # The compiled and fused hub paths are escape-hatched by
    # --no-compile and --no-fuse; all three tiers must render the exact
    # same report.
    assert main(["figure6", "--duration", "120"]) == 0
    compiled = capsys.readouterr().out
    assert main(["figure6", "--duration", "120", "--no-compile"]) == 0
    fused = capsys.readouterr().out
    assert main([
        "figure6", "--duration", "120", "--no-compile", "--no-fuse",
    ]) == 0
    interpreted = capsys.readouterr().out
    assert compiled == fused == interpreted
