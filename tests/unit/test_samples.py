"""Unit tests for sample containers (chunks, buffers)."""

import numpy as np
import pytest

from repro.sensors.samples import Chunk, ChunkBuffer, StreamKind
from tests.conftest import scalar_chunk


class TestChunk:
    def test_scalar_chunk_basic(self):
        chunk = scalar_chunk([1.0, 2.0, 3.0])
        assert len(chunk) == 3
        assert not chunk.is_empty
        assert chunk.kind is StreamKind.SCALAR

    def test_scalar_values_must_be_1d(self):
        with pytest.raises(ValueError, match="1-D"):
            Chunk(StreamKind.SCALAR, np.zeros(2), np.zeros((2, 2)), 50.0)

    def test_frame_values_must_be_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            Chunk(StreamKind.FRAME, np.zeros(2), np.zeros(2), 50.0)

    def test_times_values_length_mismatch(self):
        with pytest.raises(ValueError, match="differ"):
            Chunk(StreamKind.SCALAR, np.zeros(3), np.zeros(2), 50.0)

    def test_empty_scalar(self):
        chunk = Chunk.empty(StreamKind.SCALAR, 50.0)
        assert chunk.is_empty
        assert len(chunk) == 0

    def test_empty_frame_has_width(self):
        chunk = Chunk.empty(StreamKind.FRAME, 50.0, width=16)
        assert chunk.values.shape == (0, 16)

    def test_empty_spectrum_is_complex(self):
        chunk = Chunk.empty(StreamKind.SPECTRUM, 50.0, width=9)
        assert np.iscomplexobj(chunk.values)

    def test_take_filters_items(self):
        chunk = scalar_chunk([1.0, 5.0, 2.0, 7.0])
        taken = chunk.take(chunk.values > 3.0)
        assert list(taken.values) == [5.0, 7.0]
        assert len(taken.times) == 2

    def test_take_preserves_rate(self):
        chunk = scalar_chunk([1.0, 2.0], rate_hz=123.0)
        assert chunk.take(chunk.values > 0).rate_hz == 123.0


class TestChunkBuffer:
    def test_extend_and_len(self):
        buffer = ChunkBuffer()
        buffer.extend(scalar_chunk([1.0, 2.0]))
        buffer.extend(scalar_chunk([3.0], t0=1.0))
        assert len(buffer) == 3
        assert list(buffer.values) == [1.0, 2.0, 3.0]

    def test_consume(self):
        buffer = ChunkBuffer()
        buffer.extend(scalar_chunk([1.0, 2.0, 3.0]))
        buffer.consume(2)
        assert list(buffer.values) == [3.0]

    def test_rejects_frame_chunks(self):
        buffer = ChunkBuffer()
        frame = Chunk(StreamKind.FRAME, np.zeros(1), np.zeros((1, 4)), 50.0)
        with pytest.raises(ValueError, match="SCALAR"):
            buffer.extend(frame)

    def test_clear(self):
        buffer = ChunkBuffer()
        buffer.extend(scalar_chunk([1.0]))
        buffer.clear()
        assert len(buffer) == 0
