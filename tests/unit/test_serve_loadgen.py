"""Unit tests for the deterministic fleet load generator."""

import pytest

from repro.apps import all_applications
from repro.errors import ServiceError
from repro.serve import LoadSpec, fleet_workload
from repro.serve.loadgen import INVALID_IL, VALID_ACCEL_IL, zipf_weights


class TestLoadSpec:
    def test_rejects_non_positive_fleet(self):
        with pytest.raises(ServiceError, match="fleet"):
            LoadSpec(fleet=0)

    def test_rejects_inverted_submission_range(self):
        with pytest.raises(ServiceError, match="min <= max"):
            LoadSpec(min_submissions=3, max_submissions=2)


class TestZipfWeights:
    def test_monotone_decreasing(self):
        weights = zipf_weights(10, 1.1)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0

    def test_higher_skew_is_more_head_heavy(self):
        flat = zipf_weights(10, 0.5)
        steep = zipf_weights(10, 2.0)
        assert steep[9] / steep[0] < flat[9] / flat[0]


class TestFleetWorkload:
    @pytest.fixture(scope="class")
    def traces(self, robot_trace, audio_trace):
        return [robot_trace, audio_trace]

    def test_deterministic_per_seed(self, traces):
        spec = LoadSpec(fleet=20, seed=5)
        apps = all_applications()
        assert fleet_workload(spec, apps, traces) == fleet_workload(
            spec, apps, traces
        )

    def test_different_seed_different_stream(self, traces):
        apps = all_applications()
        a = fleet_workload(LoadSpec(fleet=20, seed=1), apps, traces)
        b = fleet_workload(LoadSpec(fleet=20, seed=2), apps, traces)
        assert a != b

    def test_submission_counts_respect_range(self, traces):
        spec = LoadSpec(fleet=15, min_submissions=2, max_submissions=3)
        submissions = fleet_workload(spec, all_applications(), traces)
        per_tenant = {}
        for s in submissions:
            per_tenant[s.tenant] = per_tenant.get(s.tenant, 0) + 1
        assert len(per_tenant) == 15
        assert all(2 <= n <= 3 for n in per_tenant.values())

    def test_app_submissions_are_channel_compatible(self, traces):
        by_name = {trace.name: trace for trace in traces}
        apps = {app.name: app for app in all_applications()}
        spec = LoadSpec(fleet=60, seed=0)
        for s in fleet_workload(spec, all_applications(), traces):
            if s.kind != "app":
                continue
            app = apps[s.app]
            trace = by_name[s.trace]
            assert all(c in trace.data for c in app.channels), (s.app, s.trace)

    def test_il_mix_appears_at_requested_fractions(self, traces):
        spec = LoadSpec(
            fleet=300, seed=0, il_fraction=0.2, invalid_fraction=0.1
        )
        submissions = fleet_workload(spec, all_applications(), traces)
        invalid = [s for s in submissions if s.il in INVALID_IL]
        valid_il = [s for s in submissions if s.il in VALID_ACCEL_IL]
        n = len(submissions)
        assert 0.05 < len(invalid) / n < 0.15
        assert 0.15 < len(valid_il) / n < 0.25
        # Raw IL is only ever aimed at accelerometer traces.
        for s in valid_il:
            assert "ACC_X" in {trace.name: trace for trace in traces}[
                s.trace
            ].data
