"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


def test_inventory(capsys):
    assert main(["inventory"]) == 0
    out = capsys.readouterr().out
    assert "ACC_X" in out and "MIC" in out
    assert "movingAvg" in out and "fft" in out
    assert "steps" in out and "sirens" in out


def test_compile_known_app(capsys):
    assert main(["compile", "--app", "headbutts"]) == 0
    out = capsys.readouterr().out
    assert "maxThreshold" in out
    assert "OUT;" in out
    assert "TI MSP430" in out


def test_compile_siren_places_on_lm4f120(capsys):
    assert main(["compile", "--app", "sirens"]) == 0
    assert "TI LM4F120" in capsys.readouterr().out


def test_compile_unknown_app(capsys):
    assert main(["compile", "--app", "nonexistent"]) == 2
    assert "unknown application" in capsys.readouterr().err


def test_simulate(capsys):
    code = main([
        "simulate", "--app", "headbutts", "--config", "sidewinder",
        "--trace", "robot:1", "--duration", "120", "--seed", "3",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "sidewinder" in out and "recall" in out and "mW" in out


def test_simulate_duty_cycling_interval(capsys):
    code = main([
        "simulate", "--app", "steps", "--config", "duty_cycling",
        "--sleep-interval", "5", "--trace", "robot:2",
        "--duration", "120", "--seed", "1",
    ])
    assert code == 0
    assert "duty_cycling_5s" in capsys.readouterr().out


def test_simulate_bad_config(capsys):
    code = main([
        "simulate", "--app", "steps", "--config", "wishful",
        "--trace", "robot:1", "--duration", "120",
    ])
    assert code == 1
    assert "unknown configuration" in capsys.readouterr().err


def test_simulate_bad_trace_kind(capsys):
    code = main([
        "simulate", "--app", "steps", "--trace", "satellite",
        "--duration", "120",
    ])
    assert code == 1
    assert "unknown trace kind" in capsys.readouterr().err


def test_trace_roundtrip(tmp_path, capsys):
    out_path = tmp_path / "run"
    code = main([
        "trace", "--kind", "robot:3", "--duration", "90",
        "--seed", "2", "--out", str(out_path),
    ])
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    from repro.traces.io import load_trace
    trace = load_trace(out_path)
    assert trace.metadata["group"] == 3


def test_trace_audio_variant(tmp_path, capsys):
    code = main([
        "trace", "--kind", "audio:outdoors", "--duration", "60",
        "--out", str(tmp_path / "snd"),
    ])
    assert code == 0


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "323" in out and "9.7" in out


def test_merge(capsys):
    code = main(["merge", "--apps", "music_journal,phrase_detection"])
    assert code == 0
    out = capsys.readouterr().out
    assert "taps" in out and "shared 6" in out


def test_merge_unknown_app(capsys):
    assert main(["merge", "--apps", "music_journal,nope"]) == 2


def test_serve_bench_quick(capsys):
    code = main(["serve-bench", "--fleet", "8", "--quick"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fleet 8 devices" in out
    assert "dedup hit-rate" in out
    assert "submissions/s" in out


def test_figure6_verbose_prints_cache_counters(capsys):
    code = main(["figure6", "--duration", "120", "--verbose"])
    assert code == 0
    captured = capsys.readouterr()
    assert "# engine:" in captured.err
    assert "# engine cache hits/misses:" in captured.err
    assert "detect" in captured.err


def test_figure6_quiet_without_verbose(capsys):
    code = main(["figure6", "--duration", "120"])
    assert code == 0
    assert "# engine" not in capsys.readouterr().err


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
