"""Unit tests for the rendezvous-hash shard router."""

import pytest

from repro.errors import SidewinderError
from repro.serve import ShardRouter, Submission, route_key


def _keys(n):
    """A fleet-scale key population: n tenants over a few traces."""
    traces = [
        "robot/group1/seed1000",
        "audio/office/seed3000",
        "human/commute/seed2000",
    ]
    return [
        (f"device-{i:04d}", traces[i % len(traces)]) for i in range(n)
    ]


class TestRouteKey:
    def test_separator_prevents_collisions(self):
        # ("ab", "c") and ("a", "bc") must not share a routing key.
        assert route_key("ab", "c") != route_key("a", "bc")

    def test_submission_routing_uses_tenant_and_trace(self):
        router = ShardRouter(8)
        submission = Submission(
            tenant="device-0001", trace="robot/group1/seed1000", app="steps"
        )
        assert router.route_submission(submission) == router.route(
            "device-0001", "robot/group1/seed1000"
        )


class TestShardRouter:
    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(SidewinderError, match="shard"):
            ShardRouter(0)

    def test_deterministic_across_instances(self):
        # No PYTHONHASHSEED dependence: two routers built separately
        # (as two processes would) agree on every key.
        a, b = ShardRouter(5), ShardRouter(5)
        for tenant, trace in _keys(200):
            assert a.route(tenant, trace) == b.route(tenant, trace)

    def test_salt_changes_the_mapping(self):
        plain, salted = ShardRouter(8), ShardRouter(8, salt="blue")
        moved = sum(
            plain.route(tenant, trace) != salted.route(tenant, trace)
            for tenant, trace in _keys(500)
        )
        assert moved > 0

    def test_single_shard_takes_everything(self):
        router = ShardRouter(1)
        assert all(
            router.route(tenant, trace) == 0 for tenant, trace in _keys(50)
        )

    def test_balanced_within_20pct_at_fleet_1000(self):
        # ISSUE acceptance: at fleet 1000 no shard deviates from the
        # even share by more than 20%.
        keys = _keys(1000)
        for shards in (2, 4, 8):
            counts = {
                shard: len(assigned)
                for shard, assigned in ShardRouter(shards)
                .assignment(keys)
                .items()
            }
            even = len(keys) / shards
            assert set(counts) == set(range(shards))
            for shard, count in counts.items():
                assert abs(count - even) <= 0.20 * even, (
                    shards, shard, counts,
                )

    def test_adding_a_shard_remaps_about_one_over_n_plus_1(self):
        # Rendezvous hashing's whole point: growing N -> N+1 moves only
        # the keys the new shard wins, an expected 1/(N+1) fraction --
        # not the (N-1)/N a mod-N router would reshuffle.
        keys = _keys(1000)
        for shards in (2, 4, 8):
            before = ShardRouter(shards)
            after = ShardRouter(shards + 1)
            moved = [
                (tenant, trace)
                for tenant, trace in keys
                if before.route(tenant, trace) != after.route(tenant, trace)
            ]
            expected = len(keys) / (shards + 1)
            assert 0.5 * expected <= len(moved) <= 1.5 * expected, (
                shards, len(moved), expected,
            )
            # Every moved key lands on the new shard, nowhere else.
            assert all(
                after.route(tenant, trace) == shards
                for tenant, trace in moved
            )

    def test_assignment_covers_every_key_once(self):
        keys = _keys(100)
        assignment = ShardRouter(4).assignment(keys)
        flat = [key for assigned in assignment.values() for key in assigned]
        assert sorted(flat) == sorted(keys)
