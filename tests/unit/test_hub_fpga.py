"""Unit tests for the FPGA hub model."""

import pytest

from repro.api.compile import compile_pipeline
from repro.apps import SirenDetectorApp, StepsApp
from repro.errors import FeasibilityError
from repro.hub.fpga import (
    ARTIX_CLASS,
    ICE40_CLASS,
    FPGAModel,
    node_cells,
    placement_table,
    processor_supports,
    select_processor,
)
from repro.hub.mcu import LM4F120, MSP430
from repro.il.parser import parse_program
from repro.il.validate import validate_program


def _graph(app_cls):
    return validate_program(compile_pipeline(app_cls().build_wakeup_pipeline()))


def test_node_cells_ranked():
    assert node_cells("fft", 512) > node_cells("stat", 512)
    assert node_cells("stat", 512) > node_cells("minThreshold", 1)


def test_cells_grow_with_buffering():
    assert node_cells("window", 2048) > node_cells("window", 64)


def test_siren_fits_ice40():
    # The point of the future-work prototype: the FFT pipeline that
    # sinks the MSP430 synthesizes onto a few-mW fabric.
    graph = _graph(SirenDetectorApp)
    assert ICE40_CLASS.supports(graph)
    assert ARTIX_CLASS.supports(graph)


def test_tiny_fabric_rejects_siren():
    small = FPGAModel("tiny", 1.0, logic_cells=500, bram_bytes=1024,
                      reconfiguration_s=0.01)
    assert not small.supports(_graph(SirenDetectorApp))


def test_bram_constraint_binds():
    graph = validate_program(parse_program(
        "MIC -> window(id=1, params={16384});"
        "1 -> stat(id=2, params={rms});"
        "2 -> minThreshold(id=3, params={0.5});"
        "3 -> OUT;"
    ))
    assert ICE40_CLASS.bram_for(graph) > ICE40_CLASS.bram_bytes
    assert not ICE40_CLASS.supports(graph)


def test_processor_supports_covers_both_kinds():
    graph = _graph(SirenDetectorApp)
    assert not processor_supports(MSP430, graph)
    assert processor_supports(LM4F120, graph)
    assert processor_supports(ICE40_CLASS, graph)


def test_mixed_catalog_prefers_cheapest():
    siren = _graph(SirenDetectorApp)
    steps = _graph(StepsApp)
    catalog = (MSP430, LM4F120, ICE40_CLASS)
    # Sirens: iCE40 (7.5 mW) beats LM4F120 (49.4); MSP430 infeasible.
    assert select_processor(siren, catalog) is ICE40_CLASS
    # Steps: the MSP430 (3.6 mW) remains the cheapest feasible.
    assert select_processor(steps, catalog) is MSP430


def test_empty_feasible_set_raises():
    small = FPGAModel("tiny", 1.0, logic_cells=10, bram_bytes=8,
                      reconfiguration_s=0.01)
    with pytest.raises(FeasibilityError):
        select_processor(_graph(SirenDetectorApp), (small,))


def test_placement_table():
    graphs = {"sirens": _graph(SirenDetectorApp), "steps": _graph(StepsApp)}
    table = placement_table(graphs, (MSP430, ICE40_CLASS, LM4F120))
    assert table["sirens"] == ("iCE40-class FPGA", 7.5)
    assert table["steps"] == ("TI MSP430", 3.6)


def test_sidewinder_with_fpga_catalog(audio_trace):
    from repro.sim import Sidewinder
    app = SirenDetectorApp()
    with_fpga = Sidewinder(catalog=(MSP430, ICE40_CLASS, LM4F120)).run(
        app, audio_trace
    )
    stock = Sidewinder().run(app, audio_trace)
    assert with_fpga.mcu_names == ("iCE40-class FPGA",)
    # The FPGA shaves the LM4F120 tax off the total.
    expected_saving = LM4F120.awake_power_mw - ICE40_CLASS.awake_power_mw
    assert with_fpga.average_power_mw == pytest.approx(
        stock.average_power_mw - expected_saving, abs=0.5
    )
    assert with_fpga.recall == 1.0
