"""Unit tests for the logical clock, percentiles, metrics and store."""

import pytest

from repro.errors import ServiceError
from repro.serve import LogicalClock, ResultStore, percentile
from repro.serve.metrics import MetricsRecorder
from repro.serve.submission import Completed, Ticket


class TestLogicalClock:
    def test_starts_at_start_and_ticks_by_step(self):
        clock = LogicalClock(start=5.0, step=2.0)
        assert clock() == 5.0
        assert clock.now() == 5.0
        assert clock.tick() == 7.0
        assert clock() == 7.0

    def test_reading_does_not_advance(self):
        clock = LogicalClock()
        for _ in range(3):
            assert clock() == 0.0


class TestPercentile:
    def test_empty_sample_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_nearest_rank_values(self):
        values = [4.0, 1.0, 3.0, 2.0, 5.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 50) == 3.0
        assert percentile(values, 90) == 5.0
        assert percentile(values, 100) == 5.0

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0


class TestMetricsRecorder:
    def test_snapshot_rates_and_percentiles(self):
        recorder = MetricsRecorder()
        recorder.submitted = 5
        recorder.accepted = 4
        recorder.on_rejected("queue_full")
        recorder.on_completed(1.0, dedup=False)
        recorder.on_completed(2.0, dedup=True)
        recorder.on_completed(3.0, dedup=True)
        recorder.engine_runs = 1
        snap = recorder.snapshot(queue_depth=1, store_size=3)
        assert snap.rejected == {"queue_full": 1}
        assert snap.rejected_total == 1
        assert snap.dedup_hits == 2
        assert snap.dedup_hit_rate == pytest.approx(2 / 3)
        assert snap.latency_p50 == 2.0
        assert snap.latency_p99 == 3.0
        assert snap.as_dict()["queue_depth"] == 1
        assert "dedup hit-rate" in snap.describe()

    def test_empty_snapshot_is_all_zero(self):
        snap = MetricsRecorder().snapshot(queue_depth=0, store_size=0)
        assert snap.dedup_hit_rate == 0.0
        assert snap.latency_p50 == 0.0
        assert snap.rejected_total == 0


class TestResultStore:
    def _response(self, submission_id):
        return Completed(Ticket(submission_id, "t", 0.0), result=None)

    def test_rejects_non_positive_ttl(self):
        with pytest.raises(ServiceError, match="TTL"):
            ResultStore(0.0)

    def test_get_before_expiry(self):
        store = ResultStore(10.0)
        response = self._response(1)
        store.put(1, response, now=0.0)
        assert store.get(1, now=9.9) is response

    def test_get_evicts_at_expiry(self):
        store = ResultStore(10.0)
        store.put(1, self._response(1), now=0.0)
        assert store.get(1, now=10.0) is None
        assert len(store) == 0

    def test_unknown_id_is_none(self):
        assert ResultStore(5.0).get(42, now=0.0) is None

    def test_evict_expired_scans_in_insertion_order(self):
        store = ResultStore(10.0)
        store.put(1, self._response(1), now=0.0)
        store.put(2, self._response(2), now=5.0)
        store.put(3, self._response(3), now=8.0)
        assert store.evict_expired(now=12.0) == 1
        assert len(store) == 2
        assert store.get(2, now=12.0) is not None
        assert store.evict_expired(now=100.0) == 2
        assert len(store) == 0
