"""Unit tests for shard health supervision and the service fault plan."""

import pytest

from repro.errors import FaultInjectionError, ServiceError
from repro.serve import (
    HealthMonitor,
    HealthPolicy,
    HealthState,
    ServiceFaultInjector,
    ServiceFaultPlan,
)

POLICY = HealthPolicy(pump_period=10.0, tolerance=2, recovery_pumps=2)


class TestHealthPolicy:
    def test_deadline_is_period_times_tolerance(self):
        assert POLICY.deadline == 20.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pump_period": 0.0},
            {"pump_period": -1.0},
            {"tolerance": 0},
            {"recovery_pumps": 0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ServiceError):
            HealthPolicy(**kwargs)


class TestHealthMonitor:
    def test_starts_healthy(self):
        monitor = HealthMonitor(POLICY)
        assert monitor.state is HealthState.HEALTHY
        assert not monitor.degraded
        assert monitor.transitions == ()

    def test_timely_pumps_stay_healthy(self):
        monitor = HealthMonitor(POLICY)
        for now in (10.0, 20.0, 40.0):
            monitor.on_pump(now)
        assert monitor.state is HealthState.HEALTHY
        assert monitor.transitions == ()

    def test_late_pump_degrades(self):
        monitor = HealthMonitor(POLICY)
        monitor.on_pump(25.0)
        assert monitor.degraded
        assert monitor.transitions == ((25.0, "healthy", "degraded"),)

    def test_submit_exposes_a_stall(self):
        monitor = HealthMonitor(POLICY)
        monitor.on_submit(15.0)
        assert not monitor.degraded
        monitor.on_submit(21.0)
        assert monitor.degraded

    def test_recovers_after_consecutive_timely_pumps(self):
        monitor = HealthMonitor(POLICY)
        monitor.on_pump(25.0)  # degrade
        monitor.on_pump(30.0)  # timely, 1 credit
        assert monitor.degraded
        monitor.on_pump(35.0)  # timely, 2 credits -> healthy
        assert monitor.state is HealthState.HEALTHY
        assert monitor.transitions == (
            (25.0, "healthy", "degraded"),
            (35.0, "degraded", "healthy"),
        )

    def test_untimely_pump_resets_recovery_credit(self):
        monitor = HealthMonitor(POLICY)
        monitor.on_pump(25.0)   # degrade
        monitor.on_pump(30.0)   # 1 credit
        monitor.on_pump(60.0)   # late again: credit resets
        monitor.on_pump(65.0)   # 1 credit
        assert monitor.degraded
        monitor.on_pump(70.0)   # 2 credits -> healthy
        assert not monitor.degraded

    def test_journal_error_degrades_immediately(self):
        monitor = HealthMonitor(POLICY)
        monitor.on_journal_error(3.0)
        assert monitor.degraded
        assert monitor.journal_errors == 1
        assert monitor.transitions == ((3.0, "healthy", "degraded"),)

    def test_transitions_are_deterministic(self):
        def drive():
            monitor = HealthMonitor(POLICY)
            for now in (5.0, 30.0, 33.0, 36.0, 80.0):
                monitor.on_pump(now)
            return monitor.transitions

        assert drive() == drive()


class TestServiceFaultPlan:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kill_pump_phase": "middle"},
            {"kill_after_accepts": 0},
            {"kill_at_pump": -1},
            {"torn_tail_bytes": -4},
            {"journal_error_probability": 1.0},
            {"journal_error_appends": (-1,)},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(FaultInjectionError):
            ServiceFaultPlan(**kwargs)

    def test_kill_on_accept_fires_exactly_once(self):
        injector = ServiceFaultInjector(
            ServiceFaultPlan(kill_after_accepts=3)
        )
        assert [injector.kill_on_accept() for _ in range(5)] == [
            False, False, True, False, False,
        ]

    def test_kill_on_pump_matches_round_and_phase(self):
        injector = ServiceFaultInjector(
            ServiceFaultPlan(kill_at_pump=2, kill_pump_phase="store")
        )
        assert not injector.kill_on_pump(2, "begin")
        assert not injector.kill_on_pump(1, "store")
        assert injector.kill_on_pump(2, "store")

    def test_probabilistic_append_errors_are_seed_deterministic(self):
        def draws(seed):
            injector = ServiceFaultInjector(
                ServiceFaultPlan(seed=seed, journal_error_probability=0.3)
            )
            return [injector.journal_append_fails() for _ in range(50)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)
        assert any(draws(7))
