"""Measured tier selection: probe order, gating, and settlement.

The cost model replaces the hardwired ``compiled > fused > rounds``
preference with per-fingerprint measurements fed by the engine's real
runs.  These tests pin its decision procedure:

* the static preference runs unchallenged while unprobed or while its
  runs stay under the probe threshold (accelerometer-class plans never
  pay exploration);
* an expensive fingerprint probes each remaining tier exactly once,
  then the cheapest observed seconds-per-item wins — fixing the case
  the hardwired ranking got wrong (fused audio at 0.27x rounds);
* ``selection`` stays ``None`` mid-probe (batches only assemble once
  the choice is settled);
* a calibrated table entry short-circuits everything.
"""

import pytest

from repro.hub.costmodel import (
    PROBE_THRESHOLD_S,
    TIER_PREFERENCE,
    CostModel,
)

ALL = list(TIER_PREFERENCE)
FP = "fp:test"


class TestChoose:
    def test_preferred_tier_while_unprobed(self):
        assert CostModel().choose(FP, ALL) == "compiled"

    def test_respects_allowed_subset(self):
        assert CostModel().choose(FP, ["fused", "rounds"]) == "fused"
        assert CostModel().choose(FP, ["rounds"]) == "rounds"

    def test_no_allowed_tiers_raises(self):
        with pytest.raises(ValueError):
            CostModel().choose(FP, [])

    def test_cheap_runs_never_trigger_probing(self):
        model = CostModel()
        for _ in range(50):
            model.observe(FP, "compiled", PROBE_THRESHOLD_S / 10, 1000)
            assert model.choose(FP, ALL) == "compiled"
        # No alternative tier ever collected a sample.
        assert model.seconds_per_item(FP, "fused") is None
        assert model.seconds_per_item(FP, "rounds") is None

    def test_expensive_fingerprint_probes_each_tier_once(self):
        model = CostModel()
        model.observe(FP, "compiled", 0.5, 1000)  # slow: worth probing
        assert model.choose(FP, ALL) == "fused"
        model.observe(FP, "fused", 0.2, 1000)
        assert model.choose(FP, ALL) == "rounds"
        model.observe(FP, "rounds", 0.1, 1000)
        # All probed: cheapest observed seconds-per-item wins.
        assert model.choose(FP, ALL) == "rounds"

    def test_winner_is_per_item_not_per_run(self):
        model = CostModel()
        model.observe(FP, "compiled", 0.5, 100)    # 5 ms/item
        model.observe(FP, "fused", 0.4, 1000)      # 0.4 ms/item
        model.observe(FP, "rounds", 0.3, 200)      # 1.5 ms/item
        assert model.choose(FP, ALL) == "fused"

    def test_fingerprints_are_independent(self):
        model = CostModel()
        model.observe("fp:a", "compiled", 0.5, 100)
        assert model.choose("fp:a", ALL) == "fused"   # probing fp:a
        assert model.choose("fp:b", ALL) == "compiled"  # fp:b untouched


class TestSelection:
    def test_none_while_unprobed(self):
        assert CostModel().selection(FP, ALL) is None

    def test_settles_immediately_on_cheap_runs(self):
        model = CostModel()
        model.observe(FP, "compiled", PROBE_THRESHOLD_S / 10, 1000)
        assert model.selection(FP, ALL) == "compiled"

    def test_none_mid_probe_then_settles_on_winner(self):
        model = CostModel()
        model.observe(FP, "compiled", 0.5, 1000)
        assert model.selection(FP, ALL) is None   # fused/rounds unprobed
        model.observe(FP, "fused", 0.1, 1000)
        assert model.selection(FP, ALL) is None   # rounds unprobed
        model.observe(FP, "rounds", 0.3, 1000)
        assert model.selection(FP, ALL) == "fused"

    def test_no_allowed_tiers_is_none(self):
        assert CostModel().selection(FP, []) is None


class TestTable:
    def test_override_wins_and_is_never_probed(self):
        model = CostModel(table={FP: "rounds"})
        assert model.choose(FP, ALL) == "rounds"
        assert model.selection(FP, ALL) == "rounds"
        # Even heavy observed runs do not trigger probing.
        model.observe(FP, "rounds", 10.0, 10)
        assert model.choose(FP, ALL) == "rounds"

    def test_override_outside_allowed_is_ignored(self):
        model = CostModel(table={FP: "compiled"})
        assert model.choose(FP, ["fused", "rounds"]) == "fused"
        assert model.selection(FP, ["fused", "rounds"]) is None


class TestDiagnostics:
    def test_as_dict_accumulates_runs(self):
        model = CostModel()
        model.observe(FP, "compiled", 0.25, 500)
        model.observe(FP, "compiled", 0.25, 500)
        dump = model.as_dict()
        assert dump[FP]["compiled"]["runs"] == 2
        assert dump[FP]["compiled"]["seconds"] == pytest.approx(0.5)
        assert model.seconds_per_item(FP, "compiled") == pytest.approx(5e-4)


class TestBatchProfile:
    """Per-batch-size throughput: interpolation and extrapolation."""

    def _model(self):
        model = CostModel()
        model.observe(FP, "compiled", 1.0, 100, batch_size=1)
        model.observe(FP, "compiled", 4.0, 1000, batch_size=10)
        return model

    def test_unseen_pair_predicts_none(self):
        assert CostModel().predict_batch_seconds(FP, "compiled", 4) is None
        assert self._model().predict_batch_seconds(FP, "fused", 4) is None

    def test_interpolates_between_observed_sizes(self):
        # Linear between (1, 1.0s) and (10, 4.0s): size 5.5 is midway.
        predicted = self._model().predict_batch_seconds(FP, "compiled", 5)
        assert predicted == pytest.approx(1.0 + 4.0 / 9.0 * 3.0)

    def test_extends_last_segment_above_the_profile(self):
        # Slope between the top two points is (4-1)/(10-1) s per row.
        predicted = self._model().predict_batch_seconds(FP, "compiled", 19)
        assert predicted == pytest.approx(4.0 + 3.0)

    def test_single_point_scales_proportionally(self):
        model = CostModel()
        model.observe(FP, "compiled", 2.0, 100, batch_size=4)
        assert model.predict_batch_seconds(FP, "compiled", 2) == pytest.approx(1.0)
        assert model.predict_batch_seconds(FP, "compiled", 8) == pytest.approx(4.0)

    def test_repeat_observations_average_within_a_size(self):
        model = CostModel()
        model.observe(FP, "compiled", 1.0, 100, batch_size=4)
        model.observe(FP, "compiled", 3.0, 100, batch_size=4)
        assert model.predict_batch_seconds(FP, "compiled", 4) == pytest.approx(2.0)


class TestChooseShapeBatching:
    SHAPE = "shape:test"
    PARTS = [("fp:a", 4), ("fp:b", 4)]

    def test_missing_data_defaults_to_batching(self):
        assert CostModel().choose_shape_batching(self.SHAPE, self.PARTS)

    def test_cheaper_shape_batch_wins(self):
        model = CostModel()
        model.observe(self.SHAPE, "compiled", 0.5, 800, batch_size=8)
        model.observe("fp:a", "compiled", 0.4, 400, batch_size=4)
        model.observe("fp:b", "compiled", 0.4, 400, batch_size=4)
        assert model.choose_shape_batching(self.SHAPE, self.PARTS)

    def test_costlier_shape_batch_splits(self):
        model = CostModel()
        model.observe(self.SHAPE, "compiled", 2.0, 800, batch_size=8)
        model.observe("fp:a", "compiled", 0.4, 400, batch_size=4)
        model.observe("fp:b", "compiled", 0.4, 400, batch_size=4)
        assert not model.choose_shape_batching(self.SHAPE, self.PARTS)

    def test_unseen_fingerprint_defaults_to_batching(self):
        model = CostModel()
        model.observe(self.SHAPE, "compiled", 2.0, 800, batch_size=8)
        model.observe("fp:a", "compiled", 0.4, 400, batch_size=4)
        assert model.choose_shape_batching(self.SHAPE, self.PARTS)


class TestPersistence:
    def test_dict_round_trip_preserves_profile_and_choice(self):
        model = CostModel(table={"fp:pinned": "rounds"})
        model.observe(FP, "compiled", 0.5, 1000, batch_size=1)
        model.observe(FP, "compiled", 2.0, 4000, batch_size=8)
        model.observe(FP, "fused", 0.2, 1000)
        model.observe(FP, "rounds", 0.3, 1000)
        copy = CostModel.from_dict(model.as_dict(), table=dict(model.table))
        assert copy.as_dict() == model.as_dict()
        assert copy.choose(FP, ALL) == model.choose(FP, ALL)
        assert copy.choose("fp:pinned", ALL) == "rounds"
        assert copy.predict_batch_seconds(
            FP, "compiled", 4
        ) == model.predict_batch_seconds(FP, "compiled", 4)

    def test_legacy_dump_without_profile_still_predicts(self):
        legacy = {FP: {"compiled": {"seconds": 0.5, "items": 1000, "runs": 5}}}
        model = CostModel.from_dict(legacy)
        # Aggregate loads as one point at batch size 1.
        assert model.predict_batch_seconds(FP, "compiled", 1) == pytest.approx(0.1)
        assert model.seconds_per_item(FP, "compiled") == pytest.approx(5e-4)

    def test_save_load_round_trip(self, tmp_path):
        model = CostModel(
            table={"fp:pinned": "fused"}, probe_threshold_s=0.02
        )
        model.observe(FP, "compiled", 0.5, 1000, batch_size=4)
        path = tmp_path / "cost_table.json"
        model.save(path)
        loaded = CostModel.load(path)
        assert loaded.as_dict() == model.as_dict()
        assert dict(loaded.table) == {"fp:pinned": "fused"}
        assert loaded.probe_threshold_s == pytest.approx(0.02)
