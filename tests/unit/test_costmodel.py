"""Measured tier selection: probe order, gating, and settlement.

The cost model replaces the hardwired ``compiled > fused > rounds``
preference with per-fingerprint measurements fed by the engine's real
runs.  These tests pin its decision procedure:

* the static preference runs unchallenged while unprobed or while its
  runs stay under the probe threshold (accelerometer-class plans never
  pay exploration);
* an expensive fingerprint probes each remaining tier exactly once,
  then the cheapest observed seconds-per-item wins — fixing the case
  the hardwired ranking got wrong (fused audio at 0.27x rounds);
* ``selection`` stays ``None`` mid-probe (batches only assemble once
  the choice is settled);
* a calibrated table entry short-circuits everything.
"""

import pytest

from repro.hub.costmodel import (
    PROBE_THRESHOLD_S,
    TIER_PREFERENCE,
    CostModel,
)

ALL = list(TIER_PREFERENCE)
FP = "fp:test"


class TestChoose:
    def test_preferred_tier_while_unprobed(self):
        assert CostModel().choose(FP, ALL) == "compiled"

    def test_respects_allowed_subset(self):
        assert CostModel().choose(FP, ["fused", "rounds"]) == "fused"
        assert CostModel().choose(FP, ["rounds"]) == "rounds"

    def test_no_allowed_tiers_raises(self):
        with pytest.raises(ValueError):
            CostModel().choose(FP, [])

    def test_cheap_runs_never_trigger_probing(self):
        model = CostModel()
        for _ in range(50):
            model.observe(FP, "compiled", PROBE_THRESHOLD_S / 10, 1000)
            assert model.choose(FP, ALL) == "compiled"
        # No alternative tier ever collected a sample.
        assert model.seconds_per_item(FP, "fused") is None
        assert model.seconds_per_item(FP, "rounds") is None

    def test_expensive_fingerprint_probes_each_tier_once(self):
        model = CostModel()
        model.observe(FP, "compiled", 0.5, 1000)  # slow: worth probing
        assert model.choose(FP, ALL) == "fused"
        model.observe(FP, "fused", 0.2, 1000)
        assert model.choose(FP, ALL) == "rounds"
        model.observe(FP, "rounds", 0.1, 1000)
        # All probed: cheapest observed seconds-per-item wins.
        assert model.choose(FP, ALL) == "rounds"

    def test_winner_is_per_item_not_per_run(self):
        model = CostModel()
        model.observe(FP, "compiled", 0.5, 100)    # 5 ms/item
        model.observe(FP, "fused", 0.4, 1000)      # 0.4 ms/item
        model.observe(FP, "rounds", 0.3, 200)      # 1.5 ms/item
        assert model.choose(FP, ALL) == "fused"

    def test_fingerprints_are_independent(self):
        model = CostModel()
        model.observe("fp:a", "compiled", 0.5, 100)
        assert model.choose("fp:a", ALL) == "fused"   # probing fp:a
        assert model.choose("fp:b", ALL) == "compiled"  # fp:b untouched


class TestSelection:
    def test_none_while_unprobed(self):
        assert CostModel().selection(FP, ALL) is None

    def test_settles_immediately_on_cheap_runs(self):
        model = CostModel()
        model.observe(FP, "compiled", PROBE_THRESHOLD_S / 10, 1000)
        assert model.selection(FP, ALL) == "compiled"

    def test_none_mid_probe_then_settles_on_winner(self):
        model = CostModel()
        model.observe(FP, "compiled", 0.5, 1000)
        assert model.selection(FP, ALL) is None   # fused/rounds unprobed
        model.observe(FP, "fused", 0.1, 1000)
        assert model.selection(FP, ALL) is None   # rounds unprobed
        model.observe(FP, "rounds", 0.3, 1000)
        assert model.selection(FP, ALL) == "fused"

    def test_no_allowed_tiers_is_none(self):
        assert CostModel().selection(FP, []) is None


class TestTable:
    def test_override_wins_and_is_never_probed(self):
        model = CostModel(table={FP: "rounds"})
        assert model.choose(FP, ALL) == "rounds"
        assert model.selection(FP, ALL) == "rounds"
        # Even heavy observed runs do not trigger probing.
        model.observe(FP, "rounds", 10.0, 10)
        assert model.choose(FP, ALL) == "rounds"

    def test_override_outside_allowed_is_ignored(self):
        model = CostModel(table={FP: "compiled"})
        assert model.choose(FP, ["fused", "rounds"]) == "fused"
        assert model.selection(FP, ["fused", "rounds"]) is None


class TestDiagnostics:
    def test_as_dict_accumulates_runs(self):
        model = CostModel()
        model.observe(FP, "compiled", 0.25, 500)
        model.observe(FP, "compiled", 0.25, 500)
        dump = model.as_dict()
        assert dump[FP]["compiled"]["runs"] == 2
        assert dump[FP]["compiled"]["seconds"] == pytest.approx(0.5)
        assert model.seconds_per_item(FP, "compiled") == pytest.approx(5e-4)
