"""Unit tests for data-filtering algorithms."""

import numpy as np
import pytest

from repro.algorithms.filters import (
    ExponentialMovingAverage,
    HighPassFilter,
    LowPassFilter,
    MovingAverage,
)
from repro.algorithms.windowing import Window
from repro.errors import ParameterError
from tests.conftest import scalar_chunk


class TestMovingAverage:
    def test_no_result_until_n_points(self):
        # Paper Section 3.5: "a moving average with a window size of N
        # will not produce a result until it has received N data points".
        ma = MovingAverage(size=5)
        assert ma.process([scalar_chunk([1, 2, 3, 4])]).is_empty

    def test_first_output_is_mean_of_first_n(self):
        ma = MovingAverage(size=5)
        out = ma.process([scalar_chunk([1, 2, 3, 4, 5])])
        assert len(out) == 1
        assert out.values[0] == pytest.approx(3.0)

    def test_matches_numpy_convolution(self):
        rng = np.random.default_rng(7)
        data = rng.normal(size=200)
        ma = MovingAverage(size=8)
        out = ma.process([scalar_chunk(data)])
        expected = np.convolve(data, np.ones(8) / 8, mode="valid")
        assert np.allclose(out.values, expected)

    def test_chunked_equals_whole(self):
        rng = np.random.default_rng(8)
        data = rng.normal(size=100)
        whole = MovingAverage(size=7).process([scalar_chunk(data)]).values
        ma = MovingAverage(size=7)
        parts = []
        for i in range(0, 100, 13):
            out = ma.process([scalar_chunk(data[i : i + 13], t0=i / 50.0)])
            parts.append(out.values)
        assert np.allclose(np.concatenate(parts), whole)

    def test_output_timestamp_alignment(self):
        ma = MovingAverage(size=3)
        chunk = scalar_chunk([1, 2, 3, 4], rate_hz=50.0)
        out = ma.process([chunk])
        # Output i corresponds to input sample i + size - 1.
        assert np.allclose(out.times, chunk.times[2:])

    def test_reset(self):
        ma = MovingAverage(size=3)
        ma.process([scalar_chunk([1, 2])])
        ma.reset()
        assert ma.process([scalar_chunk([5, 6])]).is_empty


class TestExponentialMovingAverage:
    def test_alpha_validation(self):
        with pytest.raises(ParameterError):
            ExponentialMovingAverage(alpha=0.0)
        with pytest.raises(ParameterError):
            ExponentialMovingAverage(alpha=1.5)

    def test_alpha_one_is_identity(self):
        ema = ExponentialMovingAverage(alpha=1.0)
        data = [3.0, -1.0, 4.0]
        out = ema.process([scalar_chunk(data)])
        assert np.allclose(out.values, data)

    def test_matches_reference_scan(self):
        rng = np.random.default_rng(9)
        data = rng.normal(size=300)  # large: exercises vectorized path
        ema = ExponentialMovingAverage(alpha=0.3)
        out = ema.process([scalar_chunk(data)])
        y = data[0]
        expected = []
        for x in data:
            y = 0.3 * x + 0.7 * y
            expected.append(y)
        assert np.allclose(out.values, expected)

    def test_chunked_equals_whole(self):
        rng = np.random.default_rng(10)
        data = rng.normal(size=150)
        whole = ExponentialMovingAverage(0.2).process([scalar_chunk(data)]).values
        ema = ExponentialMovingAverage(0.2)
        parts = [
            ema.process([scalar_chunk(data[i : i + 31], t0=i / 50.0)]).values
            for i in range(0, 150, 31)
        ]
        assert np.allclose(np.concatenate(parts), whole, atol=1e-9)

    def test_smooths_towards_mean(self):
        ema = ExponentialMovingAverage(alpha=0.1)
        data = np.concatenate([np.zeros(50), np.ones(50)])
        out = ema.process([scalar_chunk(data)])
        assert 0 < out.values[55] < 1.0  # lags the step
        assert out.values[-1] > out.values[55]  # keeps converging

    @pytest.mark.parametrize("alpha", [0.05, 0.3, 0.8, 0.97])
    def test_long_chunk_matches_sequential_reference(self, alpha):
        # Regression for the old "vectorized" branch: a full-length
        # convolution against decay ** arange(n+1) was O(n^2) and, for
        # large alpha, the decay powers underflowed to zero partway
        # through an audio-sized chunk, silently corrupting the tail.
        # The blockwise recurrence must track the exact sequential scan
        # over the whole chunk.
        rng = np.random.default_rng(11)
        data = rng.normal(size=40_000)
        ema = ExponentialMovingAverage(alpha=alpha)
        out = ema.process([scalar_chunk(data)]).values
        y = data[0]
        expected = np.empty_like(data)
        for i, x in enumerate(data):
            y = alpha * x + (1.0 - alpha) * y
            expected[i] = y
        assert np.allclose(out, expected, rtol=1e-9, atol=1e-12)
        assert np.all(np.isfinite(out))

    def test_long_chunk_state_carries_into_next_chunk(self):
        rng = np.random.default_rng(12)
        data = rng.normal(size=5_000)
        whole = ExponentialMovingAverage(0.4).process([scalar_chunk(data)]).values
        ema = ExponentialMovingAverage(0.4)
        first = ema.process([scalar_chunk(data[:4_000])]).values
        second = ema.process([scalar_chunk(data[4_000:], t0=80.0)]).values
        assert np.allclose(
            np.concatenate([first, second]), whole, rtol=1e-9, atol=1e-12
        )


class TestBandFilters:
    def _frame(self, signal, rate=8000.0):
        return Window(size=len(signal)).process(
            [scalar_chunk(signal, rate_hz=rate)]
        )

    def test_lowpass_removes_high_tone(self):
        rate = 8000.0
        t = np.arange(512) / rate
        low = np.sin(2 * np.pi * 100 * t)
        high = np.sin(2 * np.pi * 2000 * t)
        frames = self._frame(low + high, rate)
        out = LowPassFilter(cutoff_hz=500.0).process([frames])
        assert np.sqrt(np.mean((out.values[0] - low) ** 2)) < 0.05

    def test_highpass_removes_low_tone(self):
        rate = 8000.0
        t = np.arange(512) / rate
        low = np.sin(2 * np.pi * 100 * t)
        high = np.sin(2 * np.pi * 2000 * t)
        frames = self._frame(low + high, rate)
        out = HighPassFilter(cutoff_hz=750.0).process([frames])
        assert np.sqrt(np.mean((out.values[0] - high) ** 2)) < 0.05

    def test_cutoff_must_be_positive(self):
        with pytest.raises(ParameterError):
            LowPassFilter(cutoff_hz=-10.0)

    def test_filter_cost_reflects_two_ffts(self):
        from repro.algorithms.base import StreamShape
        from repro.algorithms.transforms import FFT
        from repro.sensors.samples import StreamKind
        shape = StreamShape(StreamKind.FRAME, 10.0, 512, 8000.0)
        assert (
            LowPassFilter(100.0).cycles_per_item([shape])
            > 2 * FFT().cycles_per_item([shape])
        )
