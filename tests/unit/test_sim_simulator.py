"""Unit tests for the shared simulation machinery."""

import pytest

from repro.apps.base import Detection, SensingApplication
from repro.power.phone import NEXUS4
from repro.sim.simulator import (
    evaluate,
    extend_for_buffer,
    windows_from_wake_times,
)
from repro.traces.base import GroundTruthEvent, Trace

import numpy as np


class _StubApp(SensingApplication):
    """Minimal application reporting a detection per 'walking' event it
    can see within its windows."""

    name = "stub"
    event_label = "walking"
    channels = ("ACC_X",)
    match_tolerance_s = 0.5

    def detect(self, trace, windows):
        detections = []
        for event in trace.events_with_label("walking"):
            for start, end in windows:
                if start <= event.midpoint <= end:
                    detections.append(Detection(event.midpoint))
                    break
        return detections


def _trace(duration=100.0, events=()):
    n = int(duration * 50)
    return Trace(
        "t", {"ACC_X": np.zeros(n)}, {"ACC_X": 50.0}, duration, list(events)
    )


class TestWindowsFromWakeTimes:
    def test_hold_applied(self):
        windows = windows_from_wake_times([10.0], 100.0, hold_s=3.0)
        assert windows == [(10.0, 13.0)]

    def test_burst_merges(self):
        windows = windows_from_wake_times([10.0, 10.5, 11.0], 100.0, hold_s=2.0)
        assert windows == [(10.0, 13.0)]

    def test_wake_past_duration_dropped(self):
        assert windows_from_wake_times([150.0], 100.0) == []

    def test_window_clipped_to_duration(self):
        windows = windows_from_wake_times([99.0], 100.0, hold_s=4.0)
        assert windows == [(99.0, 100.0)]

    def test_gap_below_round_trip_merges(self):
        windows = windows_from_wake_times([10.0, 13.5], 100.0, hold_s=2.0)
        assert len(windows) == 1  # 1.5 s gap < 2 s round trip


class TestExtendForBuffer:
    def test_backfill(self):
        assert extend_for_buffer([(10.0, 12.0)], 4.0) == [(6.0, 12.0)]

    def test_clipped_at_zero(self):
        assert extend_for_buffer([(2.0, 5.0)], 4.0) == [(0.0, 5.0)]

    def test_backfill_merges_adjacent(self):
        extended = extend_for_buffer([(10.0, 12.0), (14.0, 16.0)], 4.0)
        assert extended == [(6.0, 16.0)]


class TestEvaluate:
    def test_detector_limited_to_windows(self):
        trace = _trace(events=[GroundTruthEvent.make("walking", 50.0, 60.0)])
        result = evaluate("test", _StubApp(), trace, awake_windows=[(0.0, 10.0)])
        assert result.recall == 0.0
        result = evaluate("test", _StubApp(), trace, awake_windows=[(50.0, 60.0)])
        assert result.recall == 1.0

    def test_detect_windows_override(self):
        trace = _trace(events=[GroundTruthEvent.make("walking", 50.0, 60.0)])
        result = evaluate(
            "test", _StubApp(), trace,
            awake_windows=[(70.0, 72.0)],
            detect_windows=[(50.0, 60.0)],
        )
        assert result.recall == 1.0
        assert result.power.awake_fraction == pytest.approx(0.02)

    def test_explicit_detections_skip_detector(self):
        trace = _trace(events=[GroundTruthEvent.make("walking", 50.0, 60.0)])
        result = evaluate(
            "test", _StubApp(), trace,
            awake_windows=[],
            detections=[Detection(55.0)],
        )
        assert result.recall == 1.0

    def test_power_includes_mcu(self):
        from repro.hub.mcu import MSP430
        trace = _trace()
        with_hub = evaluate("a", _StubApp(), trace, [], mcus=(MSP430,))
        without = evaluate("b", _StubApp(), trace, [])
        assert with_hub.average_power_mw == pytest.approx(
            without.average_power_mw + 3.6
        )

    def test_summary_contains_key_fields(self):
        trace = _trace()
        result = evaluate("cfg", _StubApp(), trace, [])
        text = result.summary()
        assert "cfg" in text and "stub" in text and "mW" in text


class TestSavingsFraction:
    def test_formula(self):
        from repro.sim.results import savings_fraction
        trace = _trace()
        result = evaluate("x", _StubApp(), trace, [])
        # result power = 9.7 (asleep); AA=323, Oracle=10
        fraction = savings_fraction(result, 323.0, 10.0)
        assert fraction == pytest.approx((323.0 - 9.7) / 313.0)
