"""Hub compiler: lowering coverage, eligibility reasons, bit-exact equivalence.

The compiled path (`repro.hub.compile`) lowers a fusion-eligible graph
to a whole-trace array program.  Its correctness contract is the same
as the fused path's, one level stronger: every `lower` rule must be
*pure* and bit-identical to a cold-start `process` over the whole
trace.  This module checks:

* every registered chunk-invariant opcode overrides
  `StreamAlgorithm.lower` (registry-driven completeness — a new
  invariant opcode without a lowering rule fails here first);
* for each equivalence program (shared with the fused suite), the
  compiled plan produces *identical* `WakeEvent` lists (exact float
  equality) to round-by-round runs at several chunk sizes, randomized
  irregular chunking, and the fused path;
* equivalence also holds under randomized algorithm parameters, not
  just the shipped programs' constants;
* ineligible graphs are reported with a human-readable reason
  (non-invariant node; node without a lowering rule) and
  `compile_graph` refuses them;
* a `CompiledPlan` is stateless: one plan re-executes over different
  traces without leakage, and missing channels raise.
"""

import numpy as np
import pytest

from repro.algorithms.base import (
    StreamAlgorithm,
    available_opcodes,
    get_algorithm_class,
    has_lowering,
)
from repro.errors import HubExecutionError
from repro.hub.compile import compile_eligibility, compile_graph
from repro.hub.runtime import HubRuntime, split_into_rounds
from tests.unit.test_fused_runtime import (
    EMA_PROGRAM,
    PROGRAMS,
    _events,
    _graph,
    _random_rounds,
    _signal,
)


class _NoLoweringRule(StreamAlgorithm):
    """Chunk-invariant but deliberately lacks a ``lower`` override."""

    chunk_invariant = True

    def process(self, chunks):
        return chunks[0]


class TestLoweringCompleteness:
    def test_every_chunk_invariant_opcode_has_a_lowering_rule(self):
        missing = [
            op
            for op in available_opcodes()
            if get_algorithm_class(op).chunk_invariant
            and get_algorithm_class(op).lower is StreamAlgorithm.lower
        ]
        assert missing == []

    def test_has_lowering_detects_the_base_default(self):
        assert not has_lowering(_NoLoweringRule())
        assert has_lowering(get_algorithm_class("movingAvg")(size=4))

    def test_base_lower_raises_with_opcode_name(self):
        with pytest.raises(NotImplementedError, match="_NoLoweringRule"):
            _NoLoweringRule().lower([])


class TestEligibility:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_shipped_programs_are_eligible(self, name):
        assert compile_eligibility(_graph(PROGRAMS[name])) is None

    def test_variant_node_blocks_compilation_with_reason(self):
        reason = compile_eligibility(_graph(EMA_PROGRAM))
        assert reason is not None
        assert "expMovingAvg" in reason
        assert "not chunk-invariant" in reason

    def test_missing_lowering_rule_blocks_compilation_with_reason(self):
        graph = _graph(PROGRAMS["sustained"])
        # GraphNode is a plain dataclass: swap in an algorithm that is
        # chunk-invariant (so fusion eligibility passes) but has no
        # lowering rule, leaving the has-lowering check as the blocker.
        graph.nodes[0].algorithm = _NoLoweringRule()
        reason = compile_eligibility(graph)
        assert reason is not None
        assert "has no lowering rule" in reason
        assert "sustainedThreshold" in reason

    def test_compile_graph_refuses_ineligible_graph(self):
        with pytest.raises(HubExecutionError, match="not compile-eligible"):
            compile_graph(_graph(EMA_PROGRAM))

    def test_execute_requires_every_channel(self):
        plan = compile_graph(_graph(PROGRAMS["significant_motion"]))
        data = _signal(duration_s=2.0)
        del data["ACC_Y"]
        with pytest.raises(HubExecutionError, match="ACC_Y"):
            plan.execute(data)


class TestCompiledEquivalence:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    @pytest.mark.parametrize("chunk_seconds", [0.37, 1.0, 2.3, 4.0])
    def test_compiled_equals_rounds(self, name, chunk_seconds):
        graph = _graph(PROGRAMS[name])
        data = _signal()
        by_rounds = _events(graph, split_into_rounds(data, chunk_seconds))
        compiled = compile_graph(graph).execute(data)
        assert compiled == by_rounds  # exact times AND values
        assert compiled, f"{name}: test signal produced no wake events"

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_compiled_equals_fused(self, name):
        graph = _graph(PROGRAMS[name])
        data = _signal()
        compiled = compile_graph(graph).execute(data)
        graph.reset()
        fused = HubRuntime(graph).run_fused(data)
        assert compiled == fused

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_compiled_equals_randomized_chunking(self, name, seed):
        graph = _graph(PROGRAMS[name])
        data = _signal()
        rng = np.random.default_rng(seed)
        irregular = _events(graph, _random_rounds(data, rng))
        compiled = compile_graph(graph).execute(data)
        assert compiled == irregular

    def test_plan_is_reusable_across_traces(self):
        # Lowering rules are pure, so one cached plan must serve many
        # traces with no state bleeding between executions.
        graph = _graph(PROGRAMS["window_stat"])
        plan = compile_graph(graph)
        for seed in (0, 5, 6):
            data = _signal(duration_s=12.0, seed=seed)
            by_rounds = _events(graph, split_into_rounds(data, 1.0))
            assert plan.execute(data) == by_rounds
            assert plan.execute(data) == by_rounds  # and is deterministic


#: Program templates with randomized parameters.  Each draws its
#: parameters from the rng, returning valid IL text; the draw ranges
#: keep every stage productive on the 30 s test signal.
def _template_moving_avg(rng):
    size = int(rng.integers(2, 24))
    threshold = float(rng.uniform(0.1, 0.6))
    return (
        f"ACC_X -> movingAvg(id=1, params={{{size}}});"
        f"1 -> minThreshold(id=2, params={{{threshold:.3f}}});"
        "2 -> OUT;"
    )


def _template_window_stat(rng):
    size = int(rng.integers(8, 48))
    hop = int(rng.integers(1, size + 1))
    shape = rng.choice(["rectangular", "hamming"])
    stat = rng.choice(["mean", "std", "rms", "max", "min"])
    threshold = float(rng.uniform(-0.2, 0.5))
    return (
        f"ACC_X -> window(id=1, params={{{size}, {hop}, {shape}}});"
        f"1 -> stat(id=2, params={{{stat}}});"
        f"2 -> maxThreshold(id=3, params={{{threshold:.3f}}});"
        "3 -> OUT;"
    )


def _template_sustained(rng):
    level = float(rng.uniform(0.0, 0.4))
    count = int(rng.integers(2, 12))
    return (
        f"ACC_X -> sustainedThreshold(id=1, params={{{level:.3f}, {count}}});"
        "1 -> OUT;"
    )


def _template_extrema(rng):
    mode = rng.choice(["max", "min"])
    low = float(rng.uniform(0.1, 0.5))
    separation = int(rng.integers(1, 20))
    return (
        f"ACC_X -> localExtrema(id=1, params={{{mode}, {low:.3f}, 10, {separation}}});"
        "1 -> OUT;"
    )


def _template_aggregate(rng):
    low = float(rng.uniform(-0.6, 0.0))
    high = float(rng.uniform(0.1, 0.7))
    return (
        "ACC_X,ACC_Y,ACC_Z -> meanOf(id=1);"
        f"1 -> bandIndicator(id=2, params={{{low:.3f}, {high:.3f}}});"
        "2 -> OUT;"
    )


TEMPLATES = {
    "moving_avg": _template_moving_avg,
    "window_stat": _template_window_stat,
    "sustained": _template_sustained,
    "extrema": _template_extrema,
    "aggregate": _template_aggregate,
}


class TestRandomizedParameters:
    @pytest.mark.parametrize("template", sorted(TEMPLATES))
    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_compiled_equals_rounds_for_random_parameters(self, template, seed):
        rng = np.random.default_rng(seed)
        graph = _graph(TEMPLATES[template](rng))
        data = _signal(seed=seed)
        chunk_seconds = float(rng.uniform(0.2, 5.0))
        by_rounds = _events(graph, split_into_rounds(data, chunk_seconds))
        compiled = compile_graph(graph).execute(data)
        assert compiled == by_rounds
        graph.reset()
        assert HubRuntime(graph).run_fused(data) == by_rounds
