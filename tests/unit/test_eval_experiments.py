"""Unit tests for the experiment matrix and report rendering."""

import pytest

from repro.apps import HeadbuttApp, StepsApp
from repro.eval.experiments import (
    CONFIG_LABELS,
    Matrix,
    group_trace_names,
    paper_configurations,
    run_matrix,
)
from repro.eval.report import (
    render_figure5,
    render_figure6,
    render_figure7,
    render_table,
    render_table1,
    render_table2,
)
from repro.power.phone import NEXUS4
from repro.sim import AlwaysAwake, Oracle, Sidewinder


@pytest.fixture(scope="module")
def matrix():
    from repro.traces.robot import RobotRunConfig, generate_robot_run
    traces = [
        generate_robot_run(RobotRunConfig(group=g, duration_s=180.0, seed=50 + g))
        for g in (1, 2)
    ]
    return run_matrix(
        [AlwaysAwake(), Oracle(), Sidewinder()],
        [StepsApp(), HeadbuttApp()],
        traces,
    ), traces


def test_matrix_complete(matrix):
    m, traces = matrix
    assert len(m.results) == 3 * 2 * 2


def test_get_and_select(matrix):
    m, traces = matrix
    result = m.get("oracle", "steps", traces[0].name)
    assert result.config_name == "oracle"
    assert len(m.select(config_name="sidewinder")) == 4
    assert len(m.select(app_name="steps")) == 6


def test_get_missing_raises(matrix):
    m, _ = matrix
    with pytest.raises(KeyError):
        m.get("oracle", "steps", "no/such/trace")


def test_mean_power_and_ratios(matrix):
    m, traces = matrix
    aa = m.mean_power("always_awake", "steps")
    assert aa == pytest.approx(323.0)
    ratio = m.relative_to_oracle("always_awake", "steps")
    assert ratio > 1.0
    fraction = m.savings_fraction("sidewinder", "steps")
    assert 0.0 < fraction <= 1.0


def test_group_trace_names(matrix):
    _, traces = matrix
    groups = group_trace_names(traces)
    assert set(groups) == {1, 2}


def test_paper_configurations_composition():
    configs = paper_configurations()
    names = [c.name for c in configs]
    assert names[0] == "always_awake"
    assert "duty_cycling_2s" in names and "duty_cycling_30s" in names
    assert "batching_10s" in names
    assert names[-1] == "oracle"
    assert set(CONFIG_LABELS) == set(names)


def test_apps_skipped_on_wrong_sensor(matrix):
    from repro.apps import SirenDetectorApp
    from repro.traces.robot import RobotRunConfig, generate_robot_run
    trace = generate_robot_run(RobotRunConfig(group=1, duration_s=120.0, seed=3))
    m = run_matrix([AlwaysAwake()], [SirenDetectorApp()], [trace])
    assert m.results == []  # robot trace has no MIC channel
    # ...but the skip is recorded, not silently dropped.
    assert [(s.app_name, s.trace_name) for s in m.skipped] == [
        ("sirens", trace.name)
    ]
    assert m.skipped[0].missing_channels == ("MIC",)


def test_clean_sweep_records_no_skips(matrix):
    m, _ = matrix
    assert m.skipped == []


def test_index_survives_add(matrix):
    from dataclasses import replace
    m, traces = matrix
    original = m.get("oracle", "steps", traces[0].name)
    extra = replace(original, trace_name="synthetic/extra")
    copy = Matrix(results=list(m.results))
    copy.add(extra)
    assert copy.get("oracle", "steps", "synthetic/extra") is extra
    assert len(copy.select("oracle", "steps")) == len(
        m.select("oracle", "steps")
    ) + 1


def test_index_matches_linear_scan(matrix):
    m, _ = matrix
    for r in m.results:
        assert m.get(r.config_name, r.app_name, r.trace_name) is r
    # select with a predicate still works through the indexed path.
    high = m.select(
        "always_awake", "steps", predicate=lambda r: r.average_power_mw > 0
    )
    assert len(high) == len(m.select("always_awake", "steps"))


def test_render_skipped_lists_pairs():
    from repro.eval.report import render_skipped
    from repro.sim.engine import SkippedCell
    assert render_skipped([]) == ""
    text = render_skipped([SkippedCell("sirens", "robot/run-1", ("MIC",))])
    assert "sirens" in text and "robot/run-1" in text and "MIC" in text


class TestReportRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_render_table1(self):
        text = render_table1(NEXUS4.table1_rows())
        assert "323" in text and "9.7" in text and "1 second" in text

    def test_render_table2(self):
        table = {
            "oracle": {"sirens": 1.0, "music_journal": 2.0, "phrase_detection": 3.0},
            "predefined_activity": {"sirens": 4.0, "music_journal": 5.0, "phrase_detection": 6.0},
            "sidewinder": {"sirens": 7.0, "music_journal": 8.0, "phrase_detection": 9.0},
        }
        text = render_table2(table)
        assert "sidewinder" in text and "7.0" in text

    def test_render_figures(self):
        fig5 = {1: {"steps": {"AA": 2.0, "Sw": 1.1}}}
        assert "Group 1" in render_figure5(fig5)
        fig6 = {"steps": {2.0: 1.0, 10.0: 0.5}}
        assert "steps" in render_figure6(fig6)
        fig7 = {"commute": {"AA": 3.0}}
        assert "commute" in render_figure7(fig7)
