"""Unit tests for the bounded two-lane submission queue."""

import pytest

from repro.errors import ServiceError
from repro.serve import Lane, LaneQueue


class TestConstruction:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ServiceError, match="capacity"):
            LaneQueue(0)
        with pytest.raises(ServiceError, match="capacity"):
            LaneQueue(-3)

    def test_rejects_reserve_leaving_bulk_nothing(self):
        with pytest.raises(ServiceError, match="reserve"):
            LaneQueue(4, interactive_reserve=4)
        with pytest.raises(ServiceError, match="reserve"):
            LaneQueue(4, interactive_reserve=-1)

    def test_zero_reserve_is_allowed(self):
        queue = LaneQueue(2, interactive_reserve=0)
        assert queue.offer("a", Lane.BULK)
        assert queue.offer("b", Lane.BULK)
        assert not queue.offer("c", Lane.BULK)


class TestBackpressure:
    def test_bulk_respects_interactive_reserve(self):
        queue = LaneQueue(3, interactive_reserve=1)
        assert queue.offer("b1", Lane.BULK)
        assert queue.offer("b2", Lane.BULK)
        # Bulk limit is capacity - reserve = 2.
        assert not queue.offer("b3", Lane.BULK)
        # The reserved slot is still there for interactive work.
        assert queue.offer("i1", Lane.INTERACTIVE)
        assert len(queue) == 3

    def test_interactive_may_use_every_slot(self):
        queue = LaneQueue(2, interactive_reserve=1)
        assert queue.offer("i1", Lane.INTERACTIVE)
        assert queue.offer("i2", Lane.INTERACTIVE)
        assert not queue.offer("i3", Lane.INTERACTIVE)

    def test_full_queue_refuses_both_lanes(self):
        queue = LaneQueue(2, interactive_reserve=1)
        queue.offer("b1", Lane.BULK)
        queue.offer("i1", Lane.INTERACTIVE)
        assert not queue.offer("b2", Lane.BULK)
        assert not queue.offer("i2", Lane.INTERACTIVE)


class TestOrdering:
    def test_interactive_lane_drains_first(self):
        queue = LaneQueue(8, interactive_reserve=2)
        queue.offer("b1", Lane.BULK)
        queue.offer("b2", Lane.BULK)
        queue.offer("i1", Lane.INTERACTIVE)
        queue.offer("b3", Lane.BULK)
        queue.offer("i2", Lane.INTERACTIVE)
        assert queue.take(3) == ["i1", "i2", "b1"]
        assert queue.take(10) == ["b2", "b3"]
        assert queue.take(1) == []

    def test_fifo_within_each_lane(self):
        queue = LaneQueue(8)
        for name in ("b1", "b2", "b3"):
            queue.offer(name, Lane.BULK)
        assert queue.take(2) == ["b1", "b2"]
        queue.offer("b4", Lane.BULK)
        assert queue.take(10) == ["b3", "b4"]

    def test_depth_and_drain(self):
        queue = LaneQueue(8, interactive_reserve=2)
        queue.offer("b1", Lane.BULK)
        queue.offer("i1", Lane.INTERACTIVE)
        assert queue.depth(Lane.BULK) == 1
        assert queue.depth(Lane.INTERACTIVE) == 1
        assert len(queue) == 2
        assert queue.drain() == ["i1", "b1"]
        assert len(queue) == 0
