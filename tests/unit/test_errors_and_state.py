"""Unit tests for the error hierarchy and hub state records."""

import numpy as np
import pytest

from repro import errors
from repro.hub.state import AlgorithmState, allocate_states
from repro.il.parser import parse_program
from repro.il.validate import validate_program
from tests.conftest import scalar_chunk


class TestErrorHierarchy:
    def test_all_derive_from_base(self):
        for name in (
            "PipelineError", "CompileError", "ILSyntaxError",
            "ILValidationError", "UnknownAlgorithmError",
            "UnknownChannelError", "ParameterError", "FeasibilityError",
            "SimulationError", "TraceError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.SidewinderError), name

    def test_compile_error_is_pipeline_error(self):
        assert issubclass(errors.CompileError, errors.PipelineError)

    def test_syntax_error_carries_line(self):
        error = errors.ILSyntaxError("bad token", line=3)
        assert error.line == 3
        assert "line 3" in str(error)

    def test_syntax_error_without_line(self):
        error = errors.ILSyntaxError("no OUT")
        assert error.line is None

    def test_unknown_algorithm_names_opcode(self):
        error = errors.UnknownAlgorithmError("convolve")
        assert error.opcode == "convolve"
        assert "convolve" in str(error)

    def test_unknown_channel_names_channel(self):
        error = errors.UnknownChannelError("GYRO")
        assert error.channel == "GYRO"

    def test_single_catch_all(self):
        with pytest.raises(errors.SidewinderError):
            raise errors.FeasibilityError("nope")


class TestAlgorithmState:
    def _graph(self):
        return validate_program(parse_program(
            "ACC_X -> movingAvg(id=1, params={5});"
            "ACC_Y -> movingAvg(id=2, params={5});"
            "1,2 -> vectorMagnitude(id=3);"
            "3 -> OUT;"
        ))

    def test_allocate_one_per_node(self):
        states = allocate_states(self._graph().nodes)
        assert set(states) == {1, 2, 3}
        assert states[1].opcode == "movingAvg"

    def test_multi_input_nodes_get_port_buffers(self):
        states = allocate_states(self._graph().nodes)
        assert states[3].pending.keys() == {0, 1}
        assert states[1].pending == {}

    def test_record_result_sets_flag(self):
        states = allocate_states(self._graph().nodes)
        state = states[1]
        empty = scalar_chunk([])
        state.record_result(empty)
        assert not state.has_result
        state.record_result(scalar_chunk([1.0]))
        assert state.has_result
        assert state.result.values[0] == 1.0

    def test_reset_clears_everything(self):
        states = allocate_states(self._graph().nodes)
        state = states[3]
        state.pending[0].extend(scalar_chunk([1.0, 2.0]))
        state.record_result(scalar_chunk([3.0]))
        state.reset()
        assert len(state.pending[0]) == 0
        assert not state.has_result
        assert state.result is None
