"""Unit tests for pipeline -> IL compilation."""

import pytest

from repro.api.branch import ProcessingBranch
from repro.api.compile import compile_pipeline
from repro.api.pipeline import ProcessingPipeline
from repro.api.stubs import (
    MinThreshold,
    MovingAverage,
    Statistic,
    VectorMagnitude,
    Window,
)
from repro.errors import CompileError
from repro.il.text import format_program
from repro.sensors.channels import ACC_X, ACC_Y, ACC_Z


def significant_motion():
    """The paper's Figure 2a pipeline."""
    pipeline = ProcessingPipeline()
    for axis in (ACC_X, ACC_Y, ACC_Z):
        pipeline.add(ProcessingBranch(axis).add(MovingAverage(10)))
    pipeline.add(VectorMagnitude())
    pipeline.add(MinThreshold(15))
    return pipeline


def test_figure2_ids_in_dataflow_order():
    program = compile_pipeline(significant_motion())
    assert [s.node_id for s in program.statements] == [1, 2, 3, 4, 5]
    assert [s.opcode for s in program.statements] == [
        "movingAvg", "movingAvg", "movingAvg", "vectorMagnitude", "minThreshold",
    ]
    assert program.output.node_id == 5


def test_figure2_intermediate_text():
    text = format_program(compile_pipeline(significant_motion()))
    assert "ACC_X -> movingAvg(id=1, params={size=10});" in text
    assert "1,2,3 -> vectorMagnitude(id=4);" in text
    assert "4 -> minThreshold(id=5, params={threshold=15});" in text
    assert text.rstrip().endswith("5 -> OUT;")


def test_empty_pipeline_rejected():
    with pytest.raises(CompileError, match="no branches"):
        compile_pipeline(ProcessingPipeline())


def test_single_input_stage_with_multiple_branches_rejected():
    pipeline = ProcessingPipeline()
    pipeline.add(ProcessingBranch(ACC_X))
    pipeline.add(ProcessingBranch(ACC_Y))
    pipeline.add(MinThreshold(5))
    with pytest.raises(CompileError, match="aggregation"):
        compile_pipeline(pipeline)


def test_unconverged_pipeline_rejected():
    pipeline = ProcessingPipeline()
    pipeline.add(ProcessingBranch(ACC_X).add(MovingAverage(5)))
    pipeline.add(ProcessingBranch(ACC_Y).add(MovingAverage(5)))
    with pytest.raises(CompileError, match="converge"):
        compile_pipeline(pipeline)


def test_raw_channel_to_out_rejected():
    pipeline = ProcessingPipeline()
    pipeline.add(ProcessingBranch(ACC_X))
    with pytest.raises(CompileError, match="raw sensor channel"):
        compile_pipeline(pipeline)


def test_variadic_stage_inside_branch_allowed():
    # A single-branch use of a variadic aggregator is legal (arity 1).
    pipeline = ProcessingPipeline()
    pipeline.add(
        ProcessingBranch(ACC_X)
        .add(Window(10))
        .add(Statistic("std"))
    )
    pipeline.add(MinThreshold(0.5))
    program = compile_pipeline(pipeline)
    assert program.output.node_id == 3


def test_branch_algorithms_precede_stage_algorithms():
    program = compile_pipeline(significant_motion())
    # Branch chains get ids 1..3, stages 4..5 — matching Figure 2c.
    stage_ids = [s.node_id for s in program.statements if s.opcode != "movingAvg"]
    branch_ids = [s.node_id for s in program.statements if s.opcode == "movingAvg"]
    assert max(branch_ids) < min(stage_ids)
