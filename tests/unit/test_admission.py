"""Unit tests for admission-control algorithms."""

import numpy as np
import pytest

from repro.algorithms.admission import (
    BandIndicator,
    MaxThreshold,
    MinThreshold,
    RangeThreshold,
    SustainedThreshold,
)
from repro.errors import ParameterError
from tests.conftest import scalar_chunk


class TestMinThreshold:
    def test_passes_at_or_above(self):
        out = MinThreshold(5.0).process([scalar_chunk([4.9, 5.0, 5.1])])
        assert list(out.values) == [5.0, 5.1]

    def test_silent_below(self):
        assert MinThreshold(10.0).process([scalar_chunk([1, 2, 3])]).is_empty

    def test_timestamps_follow_values(self):
        chunk = scalar_chunk([1.0, 9.0, 1.0], rate_hz=50.0)
        out = MinThreshold(5.0).process([chunk])
        assert out.times[0] == pytest.approx(chunk.times[1])


class TestMaxThreshold:
    def test_passes_at_or_below(self):
        out = MaxThreshold(-3.5).process([scalar_chunk([-3.4, -3.5, -5.0])])
        assert list(out.values) == [-3.5, -5.0]


class TestRangeThreshold:
    def test_inclusive_band(self):
        out = RangeThreshold(1.0, 2.0).process(
            [scalar_chunk([0.9, 1.0, 1.5, 2.0, 2.1])]
        )
        assert list(out.values) == [1.0, 1.5, 2.0]

    def test_low_above_high_rejected(self):
        with pytest.raises(ParameterError):
            RangeThreshold(3.0, 1.0)


class TestBandIndicator:
    def test_emits_for_every_item(self):
        out = BandIndicator(0.0, 1.0).process([scalar_chunk([-1.0, 0.5, 2.0])])
        assert list(out.values) == [0.0, 1.0, 0.0]
        assert len(out) == 3  # alignment preserved

    def test_conjunction_via_min(self):
        from repro.algorithms.aggregate import MinOf
        a = BandIndicator(0.0, 1.0).process([scalar_chunk([0.5, 0.5, 5.0])])
        b = BandIndicator(0.0, 1.0).process([scalar_chunk([0.5, 5.0, 0.5])])
        both = MinOf().process([a, b])
        assert list(both.values) == [1.0, 0.0, 0.0]


class TestSustainedThreshold:
    def test_requires_consecutive_run(self):
        st = SustainedThreshold(threshold=1.0, count=3)
        out = st.process([scalar_chunk([2, 2, 0, 2, 2, 2, 2])])
        # run restarts after the 0; emits on 3rd and 4th of the new run
        assert len(out) == 2

    def test_run_survives_chunk_boundary(self):
        st = SustainedThreshold(threshold=1.0, count=4)
        assert st.process([scalar_chunk([2, 2])]).is_empty
        out = st.process([scalar_chunk([2, 2], t0=0.04)])
        assert len(out) == 1

    def test_reset_clears_run(self):
        st = SustainedThreshold(threshold=1.0, count=2)
        st.process([scalar_chunk([2])])
        st.reset()
        assert st.process([scalar_chunk([2])]).is_empty

    def test_below_threshold_never_emits(self):
        st = SustainedThreshold(threshold=5.0, count=1)
        assert st.process([scalar_chunk([4, 4, 4])]).is_empty

    def test_count_validation(self):
        with pytest.raises(ParameterError):
            SustainedThreshold(threshold=1.0, count=0)
