"""Unit tests for the write-ahead journal framing and writer."""

import pytest

from repro.errors import JournalError
from repro.serve import (
    JournalWriter,
    RecoveryStats,
    ServiceFaultInjector,
    ServiceFaultPlan,
    read_journal,
    truncate_journal,
)
from repro.serve.journal import HEADER, encode_record
from repro.serve.submission import Completed, Ticket

RECORDS = (
    ("accept", 1, 1.0, "payload-a"),
    ("round", 2.0, (1,)),
    ("complete", 1, 2.0, Completed(Ticket(1, "t1", 1.0), result=())),
    ("cref", 2, 2.0, 1, True, 1.0),
)


def _write(path, records):
    with open(path, "wb") as handle:
        for record in records:
            handle.write(encode_record(record))


class TestReadJournal:
    def test_round_trips_every_record_kind(self, tmp_path):
        path = tmp_path / "j.wal"
        _write(path, RECORDS)
        scan = read_journal(path)
        assert scan.records == RECORDS
        assert scan.reason is None
        assert scan.truncated_bytes == 0
        assert scan.valid_bytes == scan.total_bytes == path.stat().st_size

    def test_empty_journal_is_clean(self, tmp_path):
        path = tmp_path / "j.wal"
        path.write_bytes(b"")
        scan = read_journal(path)
        assert scan.records == ()
        assert scan.reason is None

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError):
            read_journal(tmp_path / "nope.wal")

    @pytest.mark.parametrize("torn", [1, HEADER.size, HEADER.size + 3])
    def test_torn_tail_recovers_valid_prefix(self, tmp_path, torn):
        path = tmp_path / "j.wal"
        _write(path, RECORDS)
        clean = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(encode_record(("accept", 9, 9.0, "torn"))[:torn])
        scan = read_journal(path)
        assert scan.records == RECORDS
        assert scan.reason == "torn_tail"
        assert scan.valid_bytes == clean
        assert scan.truncated_bytes == torn

    def test_bad_crc_stops_the_prefix(self, tmp_path):
        path = tmp_path / "j.wal"
        _write(path, RECORDS)
        data = bytearray(path.read_bytes())
        # Flip one payload byte of the second record.
        first = HEADER.size + HEADER.unpack_from(data, 0)[0]
        data[first + HEADER.size] ^= 0xFF
        path.write_bytes(bytes(data))
        scan = read_journal(path)
        assert scan.records == RECORDS[:1]
        assert scan.reason == "corrupt_record"
        assert scan.truncated_bytes == len(data) - scan.valid_bytes

    def test_unknown_kind_is_skipped_not_damage(self, tmp_path):
        # Forward compatibility: a validly framed record of a future
        # kind does not end the prefix — it is counted and skipped.
        path = tmp_path / "j.wal"
        _write(path, (RECORDS[0], ("frobnicate", 1), RECORDS[1]))
        scan = read_journal(path)
        assert scan.records == (RECORDS[0], RECORDS[1])
        assert scan.reason is None
        assert scan.skipped_records == 1
        assert scan.valid_bytes == scan.total_bytes

    def test_skipped_records_count_each_unknown_kind(self, tmp_path):
        path = tmp_path / "j.wal"
        _write(
            path,
            (
                ("v99-header", "future"),
                RECORDS[0],
                ("frobnicate", 1),
                RECORDS[1],
                ("frobnicate", 2),
            ),
        )
        scan = read_journal(path)
        assert scan.records == RECORDS[:2]
        assert scan.skipped_records == 3
        assert scan.reason is None

    def test_malformed_payload_is_still_corrupt(self, tmp_path):
        # The skip contract only covers *tuples headed by a string*;
        # anything else remains damage and ends the prefix.
        for bad in (["accept", 1], (), (42, "x"), "accept"):
            path = tmp_path / "j.wal"
            _write(path, (RECORDS[0], bad, RECORDS[1]))
            scan = read_journal(path)
            assert scan.records == RECORDS[:1]
            assert scan.reason == "corrupt_record"
            assert scan.skipped_records == 0

    def test_stream_record_kinds_round_trip(self, tmp_path):
        path = tmp_path / "j.wal"
        stream_records = (
            ("chunk", "t1", "dev-0", 0, 1.0, {"ACC_X": 50.0}, {"ACC_X": (0.1, 0.2)}),
            ("sub", 3, 1.0, "subscription-payload"),
        )
        _write(path, RECORDS + stream_records)
        scan = read_journal(path)
        assert scan.records == RECORDS + stream_records
        assert scan.reason is None
        assert scan.skipped_records == 0

    def test_truncate_then_reread_is_clean(self, tmp_path):
        path = tmp_path / "j.wal"
        _write(path, RECORDS)
        with open(path, "ab") as handle:
            handle.write(b"\x07garbage")
        scan = read_journal(path)
        truncate_journal(path, scan.valid_bytes)
        again = read_journal(path)
        assert again.records == RECORDS
        assert again.reason is None


class TestJournalWriter:
    def test_appends_buffer_until_flush(self, tmp_path):
        path = tmp_path / "j.wal"
        writer = JournalWriter(path)
        writer.append(RECORDS[0])
        assert writer.pending_bytes > 0
        assert read_journal(path).records == ()
        writer.flush()
        assert writer.pending_bytes == 0
        assert read_journal(path).records == RECORDS[:1]
        writer.close()

    def test_close_flushes_outstanding_records(self, tmp_path):
        path = tmp_path / "j.wal"
        writer = JournalWriter(path)
        writer.append(RECORDS[0])
        writer.close()
        assert read_journal(path).records == RECORDS[:1]

    def test_crash_loses_the_unflushed_buffer(self, tmp_path):
        path = tmp_path / "j.wal"
        writer = JournalWriter(path)
        writer.append(RECORDS[0])
        writer.flush()
        writer.append(RECORDS[1])
        writer.crash()
        assert read_journal(path).records == RECORDS[:1]

    def test_crash_with_torn_bytes_tears_the_tail(self, tmp_path):
        path = tmp_path / "j.wal"
        writer = JournalWriter(path)
        writer.append(RECORDS[0])
        writer.flush()
        clean = path.stat().st_size
        writer.append(RECORDS[1])
        writer.crash(torn_bytes=5)
        assert path.stat().st_size == clean + 5
        scan = read_journal(path)
        assert scan.records == RECORDS[:1]
        assert scan.reason == "torn_tail"

    def test_closed_writer_refuses_appends(self, tmp_path):
        writer = JournalWriter(tmp_path / "j.wal")
        writer.close()
        with pytest.raises(JournalError):
            writer.append(RECORDS[0])
        with pytest.raises(JournalError):
            writer.flush()
        writer.close()  # idempotent

    def test_counters(self, tmp_path):
        writer = JournalWriter(tmp_path / "j.wal")
        writer.append(RECORDS[0])
        writer.append(RECORDS[1])
        writer.flush()
        assert writer.appended_records == 2
        assert writer.flushes == 1
        writer.close()

    def test_injected_append_errors(self, tmp_path):
        plan = ServiceFaultPlan(journal_error_appends=(1,))
        writer = JournalWriter(
            tmp_path / "j.wal", faults=ServiceFaultInjector(plan)
        )
        writer.append(RECORDS[0])
        with pytest.raises(JournalError):
            writer.append(RECORDS[1])
        writer.append(RECORDS[2])
        writer.close()
        assert read_journal(tmp_path / "j.wal").records == (
            RECORDS[0], RECORDS[2],
        )


class TestRecoveryStats:
    def test_describe_mentions_damage_only_when_present(self):
        clean = RecoveryStats(
            journal_bytes=10, valid_bytes=10, truncated_bytes=0,
            truncation_reason=None, records=2, accepts=1, rounds=1,
            completions=1,
        )
        assert "truncated" not in clean.describe()
        torn = RecoveryStats(
            journal_bytes=12, valid_bytes=10, truncated_bytes=2,
            truncation_reason="torn_tail", records=2, accepts=1, rounds=1,
            completions=1,
        )
        assert "truncated 2 bytes (torn_tail)" in torn.describe()
