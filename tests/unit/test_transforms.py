"""Unit tests for FFT / IFFT."""

import numpy as np
import pytest

from repro.algorithms.base import StreamShape
from repro.algorithms.transforms import FFT, IFFT, fft_cycles
from repro.algorithms.windowing import Window
from repro.sensors.samples import Chunk, StreamKind
from tests.conftest import scalar_chunk


def _frames(values, rate=8000.0):
    window = Window(size=len(values))
    return window.process([scalar_chunk(values, rate_hz=rate)])


def test_fft_produces_one_sided_spectrum():
    frames = _frames(np.sin(2 * np.pi * 1000 * np.arange(64) / 8000.0))
    spectrum = FFT().process([frames])
    assert spectrum.kind is StreamKind.SPECTRUM
    assert spectrum.values.shape == (1, 33)
    assert np.iscomplexobj(spectrum.values)


def test_fft_peak_at_signal_frequency():
    rate = 8000.0
    n = 512
    freq = 1000.0
    frames = _frames(np.sin(2 * np.pi * freq * np.arange(n) / rate), rate)
    spectrum = FFT().process([frames])
    bins = np.fft.rfftfreq(n, d=1 / rate)
    peak_bin = int(np.argmax(np.abs(spectrum.values[0])))
    assert bins[peak_bin] == pytest.approx(freq, abs=bins[1])


def test_ifft_roundtrip():
    signal = np.random.default_rng(1).normal(size=128)
    frames = _frames(signal)
    back = IFFT().process([FFT().process([frames])])
    assert back.kind is StreamKind.FRAME
    assert np.allclose(back.values[0], signal, atol=1e-10)


def test_empty_input_passthrough():
    empty = Chunk.empty(StreamKind.FRAME, 8000.0, width=64)
    assert FFT().process([empty]).is_empty
    empty_spec = Chunk.empty(StreamKind.SPECTRUM, 8000.0, width=33)
    assert IFFT().process([empty_spec]).is_empty


def test_fft_cycles_superlinear():
    assert fft_cycles(1024) > 2 * fft_cycles(512)
    assert fft_cycles(1) > 0


def test_shape_propagation():
    in_shape = StreamShape(StreamKind.FRAME, 10.0, 512, 8000.0)
    out = FFT().propagate_shape([in_shape])
    assert out.width == 257
    back = IFFT().propagate_shape([out])
    assert back.width == 512


def test_fft_cost_dominates_scalar_ops():
    frame_shape = StreamShape(StreamKind.FRAME, 10.0, 512, 8000.0)
    assert FFT().cycles_per_item([frame_shape]) > 10_000
