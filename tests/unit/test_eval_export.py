"""Unit tests for results export."""

import json

import pytest

from repro.apps import HeadbuttApp, StepsApp
from repro.eval.export import (
    RESULT_FIELDS,
    read_results_csv,
    result_row,
    write_results_csv,
    write_results_json,
    write_series_json,
)
from repro.sim import Oracle, Sidewinder


@pytest.fixture(scope="module")
def results(robot_trace):
    return [
        config.run(app, robot_trace)
        for config in (Oracle(), Sidewinder())
        for app in (StepsApp(), HeadbuttApp())
    ]


def test_row_fields_complete(results):
    row = result_row(results[0])
    assert set(row) == set(RESULT_FIELDS)


def test_csv_round_trip(tmp_path, results):
    path = write_results_csv(results, tmp_path / "out.csv")
    rows = read_results_csv(path)
    assert len(rows) == len(results)
    assert rows[0]["config"] == results[0].config_name
    assert float(rows[1]["power_mw"]) == pytest.approx(
        results[1].average_power_mw, abs=1e-3
    )


def test_json_export(tmp_path, results):
    path = write_results_json(results, tmp_path / "out.json")
    payload = json.loads(path.read_text())
    assert len(payload) == len(results)
    assert {entry["app"] for entry in payload} == {"steps", "headbutts"}


def test_series_json_stringifies_keys(tmp_path):
    series = {1: {"steps": {2.0: 0.9}}}
    path = write_series_json(series, tmp_path / "fig.json", meta={"source": "test"})
    payload = json.loads(path.read_text())
    assert payload["series"]["1"]["steps"]["2.0"] == 0.9
    assert payload["meta"]["source"] == "test"


def test_parent_directories_created(tmp_path, results):
    path = write_results_csv(results, tmp_path / "deep" / "nested" / "out.csv")
    assert path.exists()
