"""Unit tests for the ASCII condition renderer."""

from repro.api.compile import compile_pipeline
from repro.apps import MusicJournalApp, PhraseDetectionApp
from repro.hub.merge import merge_programs
from repro.il.draw import render_condition_tree, render_merged_trees
from repro.il.parser import parse_program

SIGNIFICANT_MOTION = (
    "ACC_X -> movingAvg(id=1, params={10});"
    "ACC_Y -> movingAvg(id=2, params={10});"
    "ACC_Z -> movingAvg(id=3, params={10});"
    "1,2,3 -> vectorMagnitude(id=4);"
    "4 -> minThreshold(id=5, params={15});"
    "5 -> OUT;"
)


def test_figure2b_structure():
    text = render_condition_tree(parse_program(SIGNIFICANT_MOTION))
    lines = text.splitlines()
    assert lines[0] == "OUT"
    assert "minThreshold(id=5, threshold=15)" in lines[1]
    assert "vectorMagnitude(id=4)" in text
    # Three channel leaves, each annotated with its source.
    for channel in ("ACC_X", "ACC_Y", "ACC_Z"):
        assert f"◀ {channel}" in text
    # Tree characters present and the threshold is the sole top child.
    assert lines[1].startswith("└─ ")


def test_parameters_inline():
    text = render_condition_tree(parse_program(
        "ACC_Y -> localExtrema(id=1, params={mode=min, low=-6.75, high=-3.75});"
        "1 -> OUT;"
    ))
    assert "mode=min" in text and "low=-6.75" in text


def test_diamond_referenced_once():
    program = parse_program(
        "ACC_X -> movingAvg(id=1, params={5});"
        "1 -> minThreshold(id=2, params={1});"
        "1 -> maxThreshold(id=3, params={9});"
        "2,3 -> minOf(id=4);"
        "4 -> OUT;"
    )
    text = render_condition_tree(program)
    assert text.count("movingAvg(id=1, size=5)") == 1
    assert "… see id=1" in text


def test_merged_trees_show_sharing():
    programs = [
        compile_pipeline(MusicJournalApp().build_wakeup_pipeline()),
        compile_pipeline(PhraseDetectionApp().build_wakeup_pipeline()),
    ]
    merged = merge_programs(programs)
    text = render_merged_trees(merged.program, list(merged.taps))
    assert "OUT[0]" in text and "OUT[1]" in text
    assert "… see id=" in text  # the shared feature front end


def test_custom_root():
    program = parse_program(SIGNIFICANT_MOTION)
    text = render_condition_tree(program, root=4)
    assert "minThreshold" not in text
    assert "vectorMagnitude(id=4)" in text
