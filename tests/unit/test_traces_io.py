"""Unit tests for trace persistence."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.io import atomic_write, load_trace, save_trace
from repro.traces.robot import RobotRunConfig, generate_robot_run


@pytest.fixture()
def small_trace():
    return generate_robot_run(RobotRunConfig(group=3, duration_s=90.0, seed=11))


def test_round_trip_preserves_everything(tmp_path, small_trace):
    path = save_trace(small_trace, tmp_path / "run")
    loaded = load_trace(path)
    assert loaded.name == small_trace.name
    assert loaded.duration == small_trace.duration
    assert loaded.rate_hz == small_trace.rate_hz
    for channel in small_trace.data:
        assert np.array_equal(loaded.data[channel], small_trace.data[channel])
    assert loaded.events == small_trace.events
    assert loaded.metadata["group"] == 3


def test_save_appends_npz_suffix(tmp_path, small_trace):
    path = save_trace(small_trace, tmp_path / "run.dat")
    assert path.suffix == ".npz"
    assert path.exists()
    assert path.with_suffix(".json").exists()


def test_load_missing_raises(tmp_path):
    with pytest.raises(TraceError, match="missing"):
        load_trace(tmp_path / "nope.npz")


def test_load_by_bare_path(tmp_path, small_trace):
    save_trace(small_trace, tmp_path / "run")
    loaded = load_trace(tmp_path / "run")
    assert loaded.name == small_trace.name


def test_atomic_write_replaces_on_success(tmp_path):
    target = tmp_path / "file.txt"
    target.write_text("old")
    with atomic_write(target) as tmp:
        tmp.write_text("new")
    assert target.read_text() == "new"
    assert list(tmp_path.iterdir()) == [target]


def test_atomic_write_leaves_target_untouched_on_failure(tmp_path):
    target = tmp_path / "file.txt"
    target.write_text("old")
    with pytest.raises(RuntimeError):
        with atomic_write(target) as tmp:
            tmp.write_text("half-writ")
            raise RuntimeError("crash mid-save")
    assert target.read_text() == "old"
    assert list(tmp_path.iterdir()) == [target]


def test_interrupted_save_preserves_previous_trace(tmp_path, small_trace, monkeypatch):
    path = save_trace(small_trace, tmp_path / "run")
    import repro.traces.io as traces_io

    def boom(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr(traces_io.np, "savez_compressed", boom)
    with pytest.raises(OSError):
        save_trace(small_trace, tmp_path / "run")
    monkeypatch.undo()
    loaded = load_trace(path)  # the old files survived, untorn
    assert loaded.name == small_trace.name


def test_step_times_tuples_survive(tmp_path, small_trace):
    path = save_trace(small_trace, tmp_path / "run")
    loaded = load_trace(path)
    original = small_trace.events_with_label("walking")[0].meta("step_times")
    restored = loaded.events_with_label("walking")[0].meta("step_times")
    assert restored == original
    assert isinstance(restored, tuple)
