"""Unit tests for the Predefined Activity calibration sweep."""

import pytest

from repro.apps import HeadbuttApp, StepsApp
from repro.errors import SimulationError
from repro.sim.calibrate import calibrate_predefined_activity, sweep_recall_power


@pytest.fixture(scope="module")
def pairs():
    from repro.traces.robot import RobotRunConfig, generate_robot_run
    trace = generate_robot_run(RobotRunConfig(group=2, duration_s=240.0, seed=42))
    return [(StepsApp(), trace), (HeadbuttApp(), trace)]


def test_best_threshold_keeps_perfect_recall(pairs):
    result = calibrate_predefined_activity("motion", [0.3, 0.6, 0.9], pairs)
    assert result.best_threshold in (0.3, 0.6, 0.9)
    best_point = next(
        p for p in result.points if p.threshold == result.best_threshold
    )
    assert best_point.min_recall == 1.0


def test_picks_least_sensitive_perfect_threshold(pairs):
    result = calibrate_predefined_activity("motion", [0.3, 0.6], pairs)
    perfect = [p.threshold for p in result.points if p.min_recall >= 1.0]
    assert result.best_threshold == max(perfect)


def test_power_decreases_with_threshold(pairs):
    curve = sweep_recall_power("motion", [0.3, 0.9], pairs)
    assert curve[0.9].mean_power_mw <= curve[0.3].mean_power_mw


def test_impossible_grid_raises(pairs):
    with pytest.raises(SimulationError, match="100% recall"):
        calibrate_predefined_activity("motion", [50.0, 100.0], pairs)


def test_bad_sensor_rejected(pairs):
    with pytest.raises(SimulationError):
        calibrate_predefined_activity("pressure", [1.0], pairs)


def test_empty_pairs_rejected():
    with pytest.raises(SimulationError):
        calibrate_predefined_activity("motion", [1.0], [])
