"""Unit tests for IL semantic validation."""

import pytest

from repro.errors import (
    ILValidationError,
    ParameterError,
    UnknownAlgorithmError,
    UnknownChannelError,
)
from repro.il.ast import ChannelRef, ILProgram, ILStatement, NodeRef
from repro.il.parser import parse_program
from repro.il.validate import validate_program


def _valid_text():
    return (
        "ACC_X -> movingAvg(id=1, params={10});"
        "1 -> minThreshold(id=2, params={15});"
        "2 -> OUT;"
    )


def test_valid_program_builds_graph():
    graph = validate_program(parse_program(_valid_text()))
    assert [n.opcode for n in graph.nodes] == ["movingAvg", "minThreshold"]
    assert graph.output_id == 2
    assert graph.channels == ("ACC_X",)


def test_empty_program_rejected():
    with pytest.raises(ILValidationError, match="no algorithms"):
        validate_program(ILProgram((), NodeRef(1)))


def test_duplicate_ids_rejected():
    statements = (
        ILStatement.make((ChannelRef("ACC_X"),), "movingAvg", 1, {"size": 2}),
        ILStatement.make((ChannelRef("ACC_Y"),), "movingAvg", 1, {"size": 2}),
    )
    with pytest.raises(ILValidationError, match="duplicate node id"):
        validate_program(ILProgram(statements, NodeRef(1)))


def test_nonpositive_id_rejected():
    statements = (
        ILStatement.make((ChannelRef("ACC_X"),), "movingAvg", 0, {"size": 2}),
    )
    with pytest.raises(ILValidationError, match="positive"):
        validate_program(ILProgram(statements, NodeRef(0)))


def test_undefined_node_reference_rejected():
    text = "99 -> minThreshold(id=1, params={5}); 1 -> OUT;"
    with pytest.raises(ILValidationError, match="undefined node 99"):
        validate_program(parse_program(text))


def test_unknown_channel_rejected():
    text = "GYRO_X -> movingAvg(id=1, params={5}); 1 -> OUT;"
    with pytest.raises(UnknownChannelError):
        validate_program(parse_program(text))


def test_unknown_opcode_rejected():
    # Named parameters parse fine for any opcode; the unknown algorithm
    # surfaces at validation.  (With positional parameters the parser
    # itself rejects the opcode — see the parser tests.)
    text = "ACC_X -> convolve(id=1, params={size=5}); 1 -> OUT;"
    with pytest.raises(UnknownAlgorithmError):
        validate_program(parse_program(text))


def test_self_loop_rejected():
    statements = (
        ILStatement.make((NodeRef(1),), "minThreshold", 1, {"threshold": 5}),
    )
    with pytest.raises(ILValidationError, match="reads itself"):
        validate_program(ILProgram(statements, NodeRef(1)))


def test_cycle_rejected():
    statements = (
        ILStatement.make((NodeRef(2),), "minThreshold", 1, {"threshold": 5}),
        ILStatement.make((NodeRef(1),), "maxThreshold", 2, {"threshold": 9}),
    )
    with pytest.raises(ILValidationError, match="cycle"):
        validate_program(ILProgram(statements, NodeRef(2)))


def test_wrong_arity_rejected():
    text = (
        "ACC_X -> movingAvg(id=1, params={2});"
        "ACC_Y -> movingAvg(id=2, params={2});"
        "1,2 -> minThreshold(id=3, params={5});"
        "3 -> OUT;"
    )
    with pytest.raises(ILValidationError, match="expects 1 input"):
        validate_program(parse_program(text))


def test_out_referencing_missing_node():
    statements = (
        ILStatement.make((ChannelRef("ACC_X"),), "movingAvg", 1, {"size": 2}),
    )
    with pytest.raises(ILValidationError, match="OUT references undefined"):
        validate_program(ILProgram(statements, NodeRef(7)))


def test_kind_mismatch_rejected():
    # zeroCrossingRate wants FRAME items, movingAvg emits SCALAR.
    text = (
        "ACC_X -> movingAvg(id=1, params={2});"
        "1 -> zeroCrossingRate(id=2);"
        "2 -> OUT;"
    )
    with pytest.raises(ILValidationError, match="expects frame"):
        validate_program(parse_program(text))


def test_raw_channel_into_frame_algorithm_rejected():
    text = "MIC -> fft(id=1); 1 -> OUT;"
    with pytest.raises(ILValidationError, match="expects frame"):
        validate_program(parse_program(text))


def test_rate_mismatch_on_multi_input_rejected():
    # ACC at 50 Hz, windowed MIC ZCR at a different item rate.
    text = (
        "ACC_X -> movingAvg(id=1, params={2});"
        "MIC -> window(id=2, params={256});"
        "2 -> stat(id=3, params={rms});"
        "1,3 -> vectorMagnitude(id=4);"
        "4 -> OUT;"
    )
    with pytest.raises(ILValidationError, match="rates differ"):
        validate_program(parse_program(text))


def test_dangling_node_rejected():
    text = (
        "ACC_X -> movingAvg(id=1, params={2});"
        "ACC_Y -> movingAvg(id=2, params={2});"  # dangling
        "1 -> minThreshold(id=3, params={5});"
        "3 -> OUT;"
    )
    with pytest.raises(ILValidationError, match="do not feed OUT"):
        validate_program(parse_program(text))


def test_bad_parameters_surface_as_parameter_error():
    text = "ACC_X -> movingAvg(id=1, params={-5}); 1 -> OUT;"
    with pytest.raises(ParameterError):
        validate_program(parse_program(text))


def test_graph_reset_resets_algorithms():
    graph = validate_program(parse_program(_valid_text()))
    from tests.conftest import scalar_chunk
    node = graph.nodes[0]
    node.algorithm.process([scalar_chunk([1.0] * 9)])
    graph.reset()
    out = node.algorithm.process([scalar_chunk([1.0] * 9)])
    assert out.is_empty  # buffer was cleared: 9 < 10 again


def test_total_cycles_positive():
    graph = validate_program(parse_program(_valid_text()))
    assert graph.total_cycles_per_second > 0
