"""Calibration guards for the audio feature thresholds.

The constants in :mod:`repro.apps.music`, :mod:`repro.apps.phrase` and
:mod:`repro.apps.siren` were calibrated against the synthetic corpora;
these tests pin the separation those constants rely on, so a change to
the trace generators that silently breaks the feature margins fails
loudly here rather than as a mysterious recall regression.
"""

import numpy as np
import pytest

from repro.apps.audio_features import siren_frame_features, window_features
from repro.apps.music import MUSIC_AMP_VAR_MAX, MUSIC_AMP_VAR_MIN, MUSIC_ZCR_VAR_MAX
from repro.apps.phrase import SPEECH_AMP_VAR_MIN, SPEECH_ZCR_VAR_MIN
from repro.apps.siren import PITCH_RATIO_DETECT, PITCH_RATIO_WAKEUP
from repro.traces.audio import AudioEnvironment, AudioTraceConfig, generate_audio_trace


@pytest.fixture(scope="module", params=list(AudioEnvironment))
def trace(request):
    return generate_audio_trace(
        AudioTraceConfig(request.param, duration_s=180.0, seed=77)
    )


def _features(trace):
    return window_features(trace.data["MIC"], 0.0, trace.rate_hz["MIC"])


def _mask(feats_times, trace, label, pad=0.0):
    mask = np.zeros(len(feats_times), dtype=bool)
    for event in trace.events_with_label(label):
        mask |= (feats_times >= event.start + pad) & (feats_times <= event.end)
    return mask


def test_background_below_music_amplitude_floor(trace):
    feats = _features(trace)
    background = np.ones(len(feats), dtype=bool)
    for event in trace.events:
        background &= ~(
            (feats.times >= event.start) & (feats.times <= event.end + 0.3)
        )
    if background.any():
        assert feats.amplitude_variance[background].max() < MUSIC_AMP_VAR_MIN
        assert feats.amplitude_variance[background].max() < SPEECH_AMP_VAR_MIN


def test_every_music_event_has_qualifying_windows(trace):
    feats = _features(trace)
    for event in trace.events_with_label("music"):
        mask = (feats.times >= event.start) & (feats.times <= event.end)
        qualifying = (
            (feats.amplitude_variance[mask] >= MUSIC_AMP_VAR_MIN)
            & (feats.amplitude_variance[mask] <= MUSIC_AMP_VAR_MAX)
            & (feats.zcr_variance[mask] <= MUSIC_ZCR_VAR_MAX)
        )
        assert qualifying.sum() >= 4, event


def test_every_speech_event_has_qualifying_windows(trace):
    feats = _features(trace)
    for event in trace.events_with_label("speech"):
        mask = (feats.times >= event.start) & (feats.times <= event.end)
        qualifying = (
            (feats.amplitude_variance[mask] >= SPEECH_AMP_VAR_MIN)
            & (feats.zcr_variance[mask] >= SPEECH_ZCR_VAR_MIN)
        )
        assert qualifying.sum() >= 3, event


def test_sirens_do_not_pass_music_band(trace):
    feats = _features(trace)
    mask = _mask(feats.times, trace, "siren", pad=0.3)
    if mask.any():
        as_music = (
            (feats.amplitude_variance[mask] >= MUSIC_AMP_VAR_MIN)
            & (feats.amplitude_variance[mask] <= MUSIC_AMP_VAR_MAX)
        )
        assert as_music.mean() < 0.2  # siren tones are far louder


def test_siren_ratio_separation(trace):
    times, ratio, _ = siren_frame_features(
        trace.data["MIC"], 0.0, trace.rate_hz["MIC"]
    )
    siren_mask = _mask(times, trace, "siren", pad=0.3)
    if siren_mask.any():
        # Nearly all siren frames exceed the detect ratio.
        assert np.percentile(ratio[siren_mask], 20) > PITCH_RATIO_DETECT
    music_mask = _mask(times, trace, "music", pad=0.3)
    if music_mask.any():
        # Music never looks pitched enough to wake the siren condition.
        assert np.percentile(ratio[music_mask], 95) < PITCH_RATIO_WAKEUP


def test_wakeup_thresholds_looser_than_detect():
    assert PITCH_RATIO_WAKEUP < PITCH_RATIO_DETECT
