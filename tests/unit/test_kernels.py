"""Unit tests for the shared vectorized stream kernels.

Each kernel is pinned against the obvious sequential reference loop —
the semantics the hand-rolled per-algorithm implementations used to
have — including the explicit carried-state arguments that make the
kernels pure (and therefore usable from both the interpreter and the
hub compiler's whole-trace lowering rules).
"""

import numpy as np
import pytest

from repro.algorithms.kernels import (
    consecutive_run_lengths,
    debounce_indices,
    window_means,
)


def _debounce_reference(indices, min_separation, last_kept=None):
    kept = []
    last = None if last_kept is None else int(last_kept)
    for idx in indices:
        if last is None or idx - last >= min_separation:
            kept.append(int(idx))
            last = int(idx)
    return kept


def _run_lengths_reference(qualifying, initial=0):
    out = []
    run = int(initial)
    for q in qualifying:
        run = run + 1 if q else 0
        out.append(run)
    return out


class TestDebounceIndices:
    def test_empty_input(self):
        out = debounce_indices(np.array([], dtype=np.int64), 5)
        assert out.dtype == np.int64
        assert len(out) == 0

    def test_first_candidate_always_kept_without_history(self):
        assert debounce_indices(np.array([0]), 100).tolist() == [0]

    def test_greedy_not_optimal(self):
        # Greedy keeps 0 then must skip 4 and 7 (separation 8): the
        # greedy answer, even though {0, 8} and {4, 12} tie in size.
        out = debounce_indices(np.array([0, 4, 7, 8, 12]), 8)
        assert out.tolist() == [0, 8]

    def test_last_kept_carry_suppresses_early_candidates(self):
        # With history at index 95, candidates before 105 are too close.
        out = debounce_indices(np.array([100, 104, 106]), 10, last_kept=95)
        assert out.tolist() == [106]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("min_separation", [1, 3, 17])
    def test_matches_sequential_reference(self, seed, min_separation):
        rng = np.random.default_rng(seed)
        indices = np.unique(rng.integers(0, 500, size=120))
        last = None if seed % 2 else int(rng.integers(-20, 20))
        out = debounce_indices(indices, min_separation, last_kept=last)
        assert out.tolist() == _debounce_reference(indices, min_separation, last)


class TestConsecutiveRunLengths:
    def test_empty_input(self):
        out = consecutive_run_lengths(np.array([], dtype=bool))
        assert out.dtype == np.int64
        assert len(out) == 0

    def test_simple_runs(self):
        mask = np.array([True, True, False, True, True, True, False])
        assert consecutive_run_lengths(mask).tolist() == [1, 2, 0, 1, 2, 3, 0]

    def test_initial_carry_extends_only_the_leading_run(self):
        mask = np.array([True, True, False, True])
        assert consecutive_run_lengths(mask, initial=5).tolist() == [6, 7, 0, 1]

    def test_initial_carry_ignored_when_array_starts_false(self):
        mask = np.array([False, True, True])
        assert consecutive_run_lengths(mask, initial=9).tolist() == [0, 1, 2]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_sequential_reference(self, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random(size=400) < rng.uniform(0.2, 0.9)
        initial = int(rng.integers(0, 10))
        out = consecutive_run_lengths(mask, initial=initial)
        assert out.tolist() == _run_lengths_reference(mask, initial)

    def test_chunked_equals_whole_via_carry(self):
        # The streaming contract: carrying the last run length into the
        # next call reproduces the whole-array result exactly.
        rng = np.random.default_rng(7)
        mask = rng.random(size=200) < 0.7
        whole = consecutive_run_lengths(mask)
        first = consecutive_run_lengths(mask[:83])
        second = consecutive_run_lengths(mask[83:], initial=int(first[-1]))
        assert np.concatenate([first, second]).tolist() == whole.tolist()


class TestWindowMeans:
    def test_too_short_input_is_empty(self):
        assert len(window_means(np.array([1.0, 2.0]), 3)) == 0

    def test_size_one_is_identity(self):
        data = np.array([3.0, -1.0, 4.0])
        assert window_means(data, 1).tolist() == data.tolist()

    def test_matches_left_to_right_reference_bitwise(self):
        # Exact equality, not allclose: chunk-invariance of movingAvg
        # rests on every window summing the same floats in the same
        # (left-to-right) order regardless of chunking.
        rng = np.random.default_rng(3)
        data = rng.normal(size=300)
        size = 8
        out = window_means(data, size)
        for i in range(len(out)):
            acc = 0.0
            for j in range(size):
                acc += data[i + j]
            assert out[i] == acc / size

    @pytest.mark.parametrize("size", [1, 2, 7, 25])
    def test_close_to_convolution(self, size):
        rng = np.random.default_rng(4)
        data = rng.normal(size=200)
        expected = np.convolve(data, np.ones(size) / size, mode="valid")
        assert np.allclose(window_means(data, size), expected)
