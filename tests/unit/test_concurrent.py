"""Unit tests for concurrent multi-application simulation."""

import pytest

from repro.apps import (
    HeadbuttApp,
    MusicJournalApp,
    PhraseDetectionApp,
    SirenDetectorApp,
    StepsApp,
    TransitionsApp,
)
from repro.errors import SimulationError
from repro.sim.concurrent import ConcurrentSidewinder
from repro.sim.configs.sidewinder import Sidewinder


class TestConcurrentAccel:
    @pytest.fixture(scope="class")
    def outcome(self, robot_trace):
        apps = [StepsApp(), TransitionsApp(), HeadbuttApp()]
        return ConcurrentSidewinder().run(apps, robot_trace)

    def test_per_app_recall_preserved(self, outcome):
        for result in outcome.per_app:
            assert result.recall == 1.0, result.app_name

    def test_single_hub_charge(self, outcome):
        # Three MSP430 conditions: the hub is charged once.
        assert outcome.hub_processors == ("TI MSP430",)
        assert outcome.per_app[0].power.hub_mw == pytest.approx(3.6)

    def test_device_power_shared(self, outcome):
        powers = {r.average_power_mw for r in outcome.per_app}
        assert len(powers) == 1  # one device, one power figure

    def test_cheaper_than_three_devices(self, outcome, robot_trace):
        # Sharing one device saves at least the duplicated sleep
        # baselines and hub charges of three separate deployments.
        separate = sum(
            Sidewinder().run(app, robot_trace).average_power_mw
            for app in (StepsApp(), TransitionsApp(), HeadbuttApp())
        )
        assert outcome.device_power_mw < separate - 15.0

    def test_sharing_fraction_on_quiet_trace(self, quiet_robot_trace):
        # On a mostly-idle trace the three apps' wake windows overlap
        # little with the baseline, so sharing saves a large fraction.
        apps = [StepsApp(), TransitionsApp(), HeadbuttApp()]
        outcome = ConcurrentSidewinder().run(apps, quiet_robot_trace)
        separate = sum(
            Sidewinder().run(app, quiet_robot_trace).average_power_mw
            for app in (StepsApp(), TransitionsApp(), HeadbuttApp())
        )
        assert outcome.device_power_mw < 0.8 * separate

    def test_device_power_at_least_worst_single(self, outcome, robot_trace):
        # The union of wake-ups costs at least as much as the most
        # wake-hungry app alone (minus merge-window effects).
        steps_alone = Sidewinder().run(StepsApp(), robot_trace)
        assert outcome.device_power_mw >= steps_alone.average_power_mw - 1.0

    def test_result_lookup(self, outcome):
        assert outcome.result_for("steps").app_name == "steps"
        with pytest.raises(KeyError):
            outcome.result_for("nope")


class TestConcurrentAudio:
    def test_merging_shares_audio_front_end(self, audio_trace):
        apps = [MusicJournalApp(), PhraseDetectionApp()]
        merged = ConcurrentSidewinder(merge=True).run(apps, audio_trace)
        unmerged = ConcurrentSidewinder(merge=False).run(apps, audio_trace)
        assert merged.shared_nodes >= 4
        assert unmerged.shared_nodes == 0
        # Identical wake behaviour either way.
        for a, b in zip(merged.per_app, unmerged.per_app):
            assert a.recall == b.recall == 1.0
            assert a.hub_wake_count == b.hub_wake_count

    def test_mixed_mcu_conditions_charge_both(self, audio_trace):
        apps = [SirenDetectorApp(), MusicJournalApp()]
        outcome = ConcurrentSidewinder().run(apps, audio_trace)
        assert set(outcome.hub_processors) == {"TI MSP430", "TI LM4F120"}
        assert outcome.per_app[0].power.hub_mw == pytest.approx(3.6 + 49.4)


class TestValidation:
    def test_no_apps_rejected(self, robot_trace):
        with pytest.raises(SimulationError):
            ConcurrentSidewinder().run([], robot_trace)

    def test_wrong_sensor_apps_rejected(self, robot_trace):
        with pytest.raises(SimulationError, match="lacks the sensors"):
            ConcurrentSidewinder().run([SirenDetectorApp()], robot_trace)

    def test_partial_sensor_coverage_filters(self, audio_trace):
        # Accel apps are silently skipped on an audio-only trace as long
        # as one usable app remains.
        outcome = ConcurrentSidewinder().run(
            [StepsApp(), MusicJournalApp()], audio_trace
        )
        assert [r.app_name for r in outcome.per_app] == ["music_journal"]
