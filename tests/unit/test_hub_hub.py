"""Unit tests for the SensorHub facade."""

import numpy as np
import pytest

from repro.api.listener import RecordingListener
from repro.hub.hub import SensorHub
from repro.hub.mcu import LM4F120, MSP430
from repro.il.parser import parse_program
from tests.conftest import scalar_chunk

MOTION = (
    "ACC_X -> movingAvg(id=1, params={5});"
    "1 -> minThreshold(id=2, params={10});"
    "2 -> OUT;"
)

SOUND = (
    "MIC -> window(id=1, params={256});"
    "1 -> stat(id=2, params={rms});"
    "2 -> minThreshold(id=3, params={0.5});"
    "3 -> OUT;"
)


def _spiky_x(n=100):
    x = np.zeros(n)
    x[40:70] = 20.0
    return x


def test_push_validates_and_places():
    hub = SensorHub()
    condition = hub.push(parse_program(MOTION))
    assert condition.mcu is MSP430
    assert condition.condition_id == 1


def test_listener_invoked_with_raw_buffer():
    hub = SensorHub()
    listener = RecordingListener()
    hub.push(parse_program(MOTION), listener)
    hub.feed({"ACC_X": scalar_chunk(_spiky_x())})
    assert listener.events
    event = listener.events[0]
    assert "ACC_X" in event.raw_data
    assert len(event.raw_data["ACC_X"]) > 0


def test_multiple_concurrent_conditions():
    hub = SensorHub()
    motion_listener = RecordingListener()
    sound_listener = RecordingListener()
    hub.push(parse_program(MOTION), motion_listener)
    hub.push(parse_program(SOUND), sound_listener)
    n = 2048
    loud = np.sin(2 * np.pi * 440 * np.arange(n) / 8000.0)
    hub.feed(
        {
            "ACC_X": scalar_chunk(_spiky_x()),
            "MIC": scalar_chunk(loud, rate_hz=8000.0),
        }
    )
    assert motion_listener.events
    assert sound_listener.events


def test_condition_without_its_channel_skipped():
    hub = SensorHub()
    listener = RecordingListener()
    hub.push(parse_program(SOUND), listener)
    hub.feed({"ACC_X": scalar_chunk(_spiky_x())})  # no MIC data this round
    assert not listener.events


def test_remove_stops_events():
    hub = SensorHub()
    listener = RecordingListener()
    condition = hub.push(parse_program(MOTION), listener)
    hub.remove(condition)
    hub.feed({"ACC_X": scalar_chunk(_spiky_x())})
    assert not listener.events


def test_hub_power_counts_distinct_mcus():
    hub = SensorHub()
    hub.push(parse_program(MOTION))
    assert hub.power_mw == pytest.approx(MSP430.awake_power_mw)
    hub.push(parse_program(MOTION))  # same MCU: no double count
    assert hub.power_mw == pytest.approx(MSP430.awake_power_mw)


def test_raw_buffer_trimmed_to_window():
    hub = SensorHub(raw_buffer_seconds=1.0)
    hub.push(parse_program(MOTION))
    for i in range(5):
        hub.feed({"ACC_X": scalar_chunk(np.zeros(100), t0=i * 2.0)})
    buffer = hub.raw_buffer(("ACC_X",))
    assert len(buffer["ACC_X"]) <= 100  # only ~1 s retained


def test_wake_events_recorded_on_condition():
    hub = SensorHub()
    condition = hub.push(parse_program(MOTION))
    hub.feed({"ACC_X": scalar_chunk(_spiky_x())})
    assert condition.events
    assert condition.events[0].value >= 10.0
