"""Unit tests for IL serialization and round-tripping."""

import pytest

from repro.il.ast import ChannelRef, ILProgram, ILStatement, NodeRef
from repro.il.parser import parse_program
from repro.il.text import format_program, format_statement


def _program():
    statements = (
        ILStatement.make((ChannelRef("ACC_X"),), "movingAvg", 1, {"size": 10}),
        ILStatement.make((NodeRef(1),), "minThreshold", 2, {"threshold": 15.0}),
    )
    return ILProgram(statements, NodeRef(2))


def test_format_statement_shape():
    line = format_statement(_program().statements[0])
    assert line == "ACC_X -> movingAvg(id=1, params={size=10});"


def test_format_program_ends_with_out():
    text = format_program(_program())
    assert text.rstrip().endswith("2 -> OUT;")


def test_round_trip_preserves_program():
    original = _program()
    parsed = parse_program(format_program(original))
    assert parsed == original


def test_round_trip_with_strings_and_negatives():
    statements = (
        ILStatement.make(
            (ChannelRef("ACC_Y"),), "localExtrema", 1,
            {"mode": "min", "low": -6.75, "high": -3.75, "min_separation": 5},
        ),
    )
    program = ILProgram(statements, NodeRef(1))
    assert parse_program(format_program(program)) == program


def test_quoted_string_round_trip():
    statements = (
        ILStatement.make(
            (ChannelRef("MIC"),), "window", 1,
            {"size": 8, "shape": "hamming"},
        ),
    )
    program = ILProgram(statements, NodeRef(1))
    text = format_program(program)
    assert "hamming" in text
    assert parse_program(text) == program


def test_boolean_round_trip():
    statements = (
        ILStatement.make((ChannelRef("ACC_X"),), "movingAvg", 1, {"size": 3}),
    )
    program = ILProgram(statements, NodeRef(1))
    # booleans render as true/false and parse back
    from repro.il.text import _format_value
    assert _format_value(True) == "true"
    assert _format_value(False) == "false"


def test_unserializable_value_rejected():
    statement = ILStatement.make(
        (ChannelRef("ACC_X"),), "movingAvg", 1, {"size": object()}
    )
    with pytest.raises(TypeError):
        format_statement(statement)


def test_multi_input_rendering():
    statement = ILStatement.make(
        (NodeRef(1), NodeRef(2), NodeRef(3)), "vectorMagnitude", 4, {}
    )
    assert format_statement(statement) == "1,2,3 -> vectorMagnitude(id=4);"
