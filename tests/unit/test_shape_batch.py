"""Shape-keyed cross-fingerprint batching: signatures and equivalence.

Shape batching (`repro.hub.compile.BatchedPlan.execute_shape_batch`)
lifts per-node parameters into per-row tensors so graphs that share a
*shape* — same opcodes over the same wiring, different parameter values
— execute as one stacked dispatch.  Its correctness contract is the
batched path's, extended: every row of a heterogeneous shape batch must
be bit-identical to that row's own per-trace compiled plan — and
therefore to the fused path and the round-by-round interpreter oracle
at any chunking.  This module checks:

* :func:`shape_signature` keys graphs by opcode + topology with
  parameter values struck out (retuned copies collide, rewired or
  re-opcoded graphs do not);
* :func:`structural_key` separates only what the row-lowering rules
  cannot vary per row (thresholds lift, window widths do not);
* :func:`split_for_padding` bounds padding waste and partitions rows;
* for every opcode with a row-lowering rule, heterogeneous-parameter
  shape batches match per-trace compiled execution and the interpreter
  oracle exactly (times AND values), under randomized parameters;
* rows whose *structural* parameters differ still execute correctly
  (the per-row lowering fallback);
* the engine's :meth:`RunContext.wake_events_batch` dispatches
  same-shape different-fingerprint work as shape batches, bit-identical
  to the per-pair path, fills the per-fingerprint cache, counts shape
  rounds, and falls back cleanly when shape batching is off.
"""

import numpy as np
import pytest

from repro.hub.compile import (
    BatchDispatchInfo,
    compile_batched,
    compile_graph,
    shape_signature,
    split_for_padding,
    structural_key,
)
from repro.hub.costmodel import CostModel
from repro.sim.engine import RunContext
from tests.unit.test_fused_runtime import (
    PROGRAMS,
    _events,
    _graph,
    _random_rounds,
    _signal,
)
from tests.unit.test_hub_batch import RAGGED_S, _trace

#: One program template per opcode with a row-lowering rule.  Each maps
#: a numpy Generator to IL text whose liftable parameters are random,
#: so equivalence is checked across parameter space, not one constant.
ROW_LOWERED = {
    "min_threshold": lambda rng: (
        "ACC_X -> movingAvg(id=1, params={10});"
        f"1 -> minThreshold(id=2, params={{{rng.uniform(-0.5, 0.8):.3f}}});"
        "2 -> OUT;"
    ),
    "max_threshold": lambda rng: (
        "ACC_X -> movingAvg(id=1, params={10});"
        f"1 -> maxThreshold(id=2, params={{{rng.uniform(-0.8, 0.5):.3f}}});"
        "2 -> OUT;"
    ),
    "range_threshold": lambda rng: (
        "ACC_X -> movingAvg(id=1, params={10});"
        f"1 -> rangeThreshold(id=2, params={{{rng.uniform(-0.6, 0.0):.3f}, "
        f"{rng.uniform(0.1, 0.8):.3f}}});"
        "2 -> OUT;"
    ),
    "band_indicator": lambda rng: (
        f"ACC_X -> bandIndicator(id=1, params={{{rng.uniform(-0.8, -0.1):.3f}, "
        f"{rng.uniform(0.0, 0.8):.3f}}});"
        "1 -> OUT;"
    ),
    "sustained_threshold": lambda rng: (
        f"ACC_X -> sustainedThreshold(id=1, params={{{rng.uniform(0.0, 0.5):.3f}, "
        f"{rng.integers(2, 12)}}});"
        "1 -> OUT;"
    ),
}


def _retuned(threshold):
    """The hetero-fleet program: one shape, per-tenant threshold."""
    return (
        "ACC_X -> movingAvg(id=1, params={8});"
        f"1 -> maxThreshold(id=2, params={{{threshold}}});"
        "2 -> OUT;"
    )


class TestShapeSignature:
    def test_retuned_copies_share_a_signature(self):
        sigs = {shape_signature(_graph(_retuned(t))) for t in (0.1, 0.25, 9.0)}
        assert len(sigs) == 1

    def test_signature_is_prefixed_and_hex(self):
        sig = shape_signature(_graph(_retuned(0.1)))
        assert sig.startswith("shape:")
        int(sig[len("shape:"):], 16)  # the rest is a hex digest

    def test_different_opcode_changes_the_signature(self):
        high = _graph(
            "ACC_X -> movingAvg(id=1, params={8});"
            "1 -> minThreshold(id=2, params={0.1});"
            "2 -> OUT;"
        )
        assert shape_signature(high) != shape_signature(_graph(_retuned(0.1)))

    def test_different_wiring_changes_the_signature(self):
        chained = _graph(
            "ACC_X -> minOf(id=1);"
            "ACC_Y -> maxOf(id=2);"
            "1,2 -> sumOf(id=3);"
            "3 -> OUT;"
        )
        swapped = _graph(
            "ACC_X -> minOf(id=1);"
            "ACC_Y -> maxOf(id=2);"
            "2,1 -> sumOf(id=3);"
            "3 -> OUT;"
        )
        assert shape_signature(chained) != shape_signature(swapped)

    def test_node_ids_are_normalized_away(self):
        renumbered = (
            "ACC_X -> movingAvg(id=7, params={8});"
            "7 -> maxThreshold(id=3, params={0.1});"
            "3 -> OUT;"
        )
        assert shape_signature(_graph(renumbered)) == shape_signature(
            _graph(_retuned(0.1))
        )


class TestStructuralKey:
    def test_liftable_params_are_struck_out(self):
        assert structural_key(_graph(_retuned(0.1))) == structural_key(
            _graph(_retuned(7.5))
        )

    def test_non_liftable_params_are_kept(self):
        narrow = _graph(_retuned(0.1))
        wide = _graph(_retuned(0.1).replace("params={8}", "params={12}"))
        assert shape_signature(narrow) == shape_signature(wide)
        assert structural_key(narrow) != structural_key(wide)

    def test_sustained_count_lifts_with_threshold(self):
        a = _graph("ACC_X -> sustainedThreshold(id=1, params={0.2, 7}); 1 -> OUT;")
        b = _graph("ACC_X -> sustainedThreshold(id=1, params={0.4, 3}); 1 -> OUT;")
        assert structural_key(a) == structural_key(b)


class TestSplitForPadding:
    def test_uniform_rows_stay_together(self):
        assert split_for_padding([100, 100, 100, 100]) == [[0, 1, 2, 3]]

    def test_groups_partition_all_indices(self):
        lengths = [10, 900, 35, 250, 11, 40]
        groups = split_for_padding(lengths)
        flat = sorted(idx for group in groups for idx in group)
        assert flat == list(range(len(lengths)))

    def test_outlier_row_is_shed_into_its_own_group(self):
        groups = split_for_padding([100, 100, 100, 1000])
        assert [sorted(g) for g in groups] == [[0, 1, 2], [3]]

    def test_threshold_bounds_waste_within_each_group(self):
        lengths = [10, 15, 22, 33, 50, 75, 112, 168]
        for group in split_for_padding(lengths, threshold=1.3):
            rows = [lengths[idx] for idx in group]
            assert max(rows) / (sum(rows) / len(rows)) <= 1.3

    def test_padding_ratio_property(self):
        assert BatchDispatchInfo(1, 100, 150).padding_ratio == pytest.approx(1.5)
        assert BatchDispatchInfo(0, 0, 0).padding_ratio == 1.0


class TestShapeBatchEquivalence:
    """Per-opcode differential tests for the row-lowered kernels."""

    @pytest.mark.parametrize("name", sorted(ROW_LOWERED))
    @pytest.mark.parametrize("seed", [40, 41, 42])
    def test_hetero_rows_match_compiled_and_rounds(self, name, seed):
        rng = np.random.default_rng(seed)
        graphs = [_graph(ROW_LOWERED[name](rng)) for _ in range(4)]
        sigs = {shape_signature(g) for g in graphs}
        assert len(sigs) == 1  # retuning never changes the shape
        rows = [
            _signal(duration_s=float(rng.uniform(6.0, 30.0)), seed=seed + k)
            for k in range(len(graphs))
        ]
        pairs = [
            (compile_graph(graph), row) for graph, row in zip(graphs, rows)
        ]
        batched = compile_batched(graphs[0]).execute_shape_batch(pairs)
        for graph, row, plan_row, row_events in zip(
            graphs, rows, pairs, batched
        ):
            assert row_events == plan_row[0].execute(row)
            assert row_events == _events(graph, _random_rounds(row, rng))

    def test_structurally_different_rows_fall_back_per_row(self):
        # Same shape, but the movingAvg window (not liftable) differs:
        # the stacked pass must lower that step row by row and still
        # match each row's own compiled plan exactly.
        texts = [
            _retuned(0.1),
            _retuned(0.3).replace("params={8}", "params={12}"),
            _retuned(0.2).replace("params={8}", "params={5}"),
        ]
        graphs = [_graph(text) for text in texts]
        assert len({shape_signature(g) for g in graphs}) == 1
        assert len({structural_key(g) for g in graphs}) == 3
        rows = [
            _signal(duration_s=duration, seed=k)
            for k, duration in enumerate((20.0, 17.3, 24.9))
        ]
        pairs = [
            (compile_graph(graph), row) for graph, row in zip(graphs, rows)
        ]
        batched = compile_batched(graphs[0]).execute_shape_batch(pairs)
        for (plan, row), row_events in zip(pairs, batched):
            assert row_events == plan.execute(row)

    def test_shape_batch_of_one_matches_per_trace(self):
        graph = _graph(_retuned(0.25))
        row = _signal(duration_s=12.0, seed=7)
        plan = compile_graph(graph)
        [events] = compile_batched(graph).execute_shape_batch([(plan, row)])
        assert events == plan.execute(row)

    def test_homogeneous_rows_agree_with_execute_batch(self):
        graph = _graph(PROGRAMS["significant_motion"])
        rows = [
            _signal(duration_s=duration, seed=k)
            for k, duration in enumerate(RAGGED_S)
        ]
        plan = compile_graph(graph)
        bplan = compile_batched(graph)
        assert bplan.execute_shape_batch(
            [(plan, row) for row in rows]
        ) == bplan.execute_batch(rows)

    def test_info_reports_padding_cells(self):
        graph = _graph(_retuned(0.25))
        plan = compile_graph(graph)
        rows = [
            _signal(duration_s=duration, seed=k)
            for k, duration in enumerate((10.0, 9.0, 8.5))
        ]
        _, info = compile_batched(graph).execute_shape_batch_with_info(
            [(plan, row) for row in rows]
        )
        assert info.sub_batches == 1
        assert info.padded_cells >= info.valid_cells > 0


class TestEngineShapeBatch:
    """Engine-level shape batching: bit-identity, caching, counters."""

    def _pairs(self, thresholds=(0.05, 0.15, 0.25, 0.35)):
        graphs = [_graph(_retuned(t)) for t in thresholds]
        traces = [
            _trace(f"t{k}", duration, seed=k)
            for k, duration in enumerate(RAGGED_S[: len(graphs)])
        ]
        return graphs, list(zip(graphs, traces))

    def _pinned_context(self, graphs, **kwargs):
        """A context pre-settled on ``compiled`` for shape and rows."""
        context = RunContext(**kwargs)
        table = {shape_signature(graphs[0]): "compiled"}
        for graph in graphs:
            table[context.fingerprint(graph.program)] = "compiled"
        context.cost_model = CostModel(table=table)
        return context

    def test_bit_identical_to_per_pair_wake_events(self):
        graphs, pairs = self._pairs()
        reference = RunContext(batch=False)
        expected = [reference.wake_events(g, trace) for g, trace in pairs]
        assert self._pinned_context(graphs).wake_events_batch(pairs) == expected

    def test_probing_context_is_also_bit_identical(self):
        # No pinned table: early rows probe tiers one at a time, the
        # remainder dispatches as a shape batch once the model settles.
        graphs, pairs = self._pairs()
        reference = RunContext(batch=False)
        expected = [reference.wake_events(g, trace) for g, trace in pairs]
        assert RunContext().wake_events_batch(pairs) == expected

    def test_counts_shape_rounds_and_fills_the_cache(self):
        graphs, pairs = self._pairs()
        context = self._pinned_context(graphs)
        results = context.wake_events_batch(pairs)
        assert context.stats.shape_rounds == 1
        assert context.stats.shape_cells == len(pairs)
        assert context.stats.batch_rounds == 0  # no homogeneous dispatch
        assert context.stats.hub_misses == len(pairs)
        assert context.stats.batch_padded_cells >= context.stats.batch_valid_cells > 0
        # Later per-pair calls hit each row's own fingerprint entry.
        hits_before = context.stats.hub_hits
        for (g, trace), events in zip(pairs, results):
            assert context.wake_events(g, trace) == events
        assert context.stats.hub_hits == hits_before + len(pairs)
        # And a repeat batch is served entirely from cache.
        assert context.wake_events_batch(pairs) == results
        assert context.stats.shape_rounds == 1

    def test_shape_batch_disabled_falls_back_per_fingerprint(self):
        graphs, pairs = self._pairs()
        context = self._pinned_context(graphs, shape_batch=False)
        expected = [
            RunContext(batch=False).wake_events(g, t) for g, t in pairs
        ]
        assert context.wake_events_batch(pairs) == expected
        assert context.stats.shape_rounds == 0
        assert context.stats.shape_cells == 0

    def test_single_fingerprint_stays_on_the_homogeneous_path(self):
        graphs, _ = self._pairs(thresholds=(0.25,))
        traces = [
            _trace(f"h{k}", duration, seed=k)
            for k, duration in enumerate(RAGGED_S)
        ]
        pairs = [(graphs[0], trace) for trace in traces]
        context = self._pinned_context(graphs)
        context.wake_events_batch(pairs)
        assert context.stats.shape_rounds == 0
        assert context.stats.batch_rounds == 1
        assert context.stats.batched_cells == len(pairs)

    def test_mixed_structural_keys_split_into_sub_dispatches(self):
        # Two structural families under one shape: each sub-group gets
        # its own dispatch, and results still match the per-pair path.
        texts = [
            _retuned(0.05),
            _retuned(0.15),
            _retuned(0.25).replace("params={8}", "params={12}"),
            _retuned(0.35).replace("params={8}", "params={12}"),
        ]
        graphs = [_graph(text) for text in texts]
        traces = [
            _trace(f"m{k}", duration, seed=k)
            for k, duration in enumerate(RAGGED_S)
        ]
        pairs = list(zip(graphs, traces))
        context = self._pinned_context(graphs)
        reference = RunContext(batch=False)
        expected = [reference.wake_events(g, t) for g, t in pairs]
        assert context.wake_events_batch(pairs) == expected
        assert context.stats.shape_rounds == 2
        assert context.stats.shape_cells == len(pairs)
