"""Unit tests for the multi-tenant ConditionService."""

import pytest

from repro.serve import (
    Cancelled,
    Completed,
    ConditionService,
    Failed,
    Lane,
    Rejected,
    Submission,
    TenantQuota,
    Ticket,
)
from repro.serve.loadgen import INVALID_IL, VALID_ACCEL_IL


@pytest.fixture()
def registry(robot_trace):
    return {robot_trace.name: robot_trace}


@pytest.fixture()
def service(registry):
    svc = ConditionService(registry)
    yield svc
    svc.shutdown()


def _steps(registry, tenant="t1", **kwargs):
    (trace_name,) = registry
    return Submission(tenant=tenant, trace=trace_name, app="steps", **kwargs)


class TestSubmitValidation:
    def test_accepts_and_tickets(self, service, registry):
        ticket = service.submit(_steps(registry))
        assert isinstance(ticket, Ticket)
        assert ticket.tenant == "t1"
        assert service.queue_depth == 1

    def test_rejects_neither_app_nor_il(self, service, registry):
        (trace_name,) = registry
        outcome = service.submit(Submission(tenant="t", trace=trace_name))
        assert isinstance(outcome, Rejected)
        assert outcome.reason == "malformed"

    def test_rejects_both_app_and_il(self, service, registry):
        (trace_name,) = registry
        outcome = service.submit(
            Submission(
                tenant="t", trace=trace_name, app="steps",
                il=VALID_ACCEL_IL[0],
            )
        )
        assert isinstance(outcome, Rejected)
        assert outcome.reason == "malformed"

    def test_rejects_bad_chunking(self, service, registry):
        (trace_name,) = registry
        outcome = service.submit(
            Submission(
                tenant="t", trace=trace_name, il=VALID_ACCEL_IL[0],
                chunk_seconds=0.0,
            )
        )
        assert isinstance(outcome, Rejected)
        assert outcome.reason == "malformed"

    def test_rejects_unknown_names(self, service, registry):
        (trace_name,) = registry
        cases = [
            (Submission(tenant="t", trace=trace_name, app="steps",
                        hub="quantum"), "unknown_hub"),
            (Submission(tenant="t", trace="no-such-trace", app="steps"),
             "unknown_trace"),
            (Submission(tenant="t", trace=trace_name, app="no_such_app"),
             "unknown_app"),
        ]
        for submission, reason in cases:
            outcome = service.submit(submission)
            assert isinstance(outcome, Rejected)
            assert outcome.reason == reason

    def test_rejections_are_counted(self, service, registry):
        service.submit(Submission(tenant="t", trace="nope", app="steps"))
        snap = service.metrics()
        assert snap.rejected == {"unknown_trace": 1}
        assert snap.submitted == 1
        assert snap.accepted == 0


class TestQuotasAndBackpressure:
    def test_pending_quota_rejects_then_recovers(self, registry):
        svc = ConditionService(registry, quota=TenantQuota(max_pending=1))
        try:
            assert isinstance(svc.submit(_steps(registry)), Ticket)
            second = svc.submit(_steps(registry))
            assert isinstance(second, Rejected)
            assert second.reason == "tenant_quota"
            svc.pump()
            # Scheduling freed the pending slot.
            assert isinstance(svc.submit(_steps(registry)), Ticket)
        finally:
            svc.shutdown()

    def test_budget_is_lifetime(self, registry):
        svc = ConditionService(
            registry, quota=TenantQuota(max_submissions=1)
        )
        try:
            assert isinstance(svc.submit(_steps(registry)), Ticket)
            svc.pump()
            outcome = svc.submit(_steps(registry))
            assert isinstance(outcome, Rejected)
            assert outcome.reason == "tenant_budget"
            # Other tenants are unaffected.
            assert isinstance(
                svc.submit(_steps(registry, tenant="t2")), Ticket
            )
        finally:
            svc.shutdown()

    def test_bulk_backpressure_and_queue_full(self, registry):
        svc = ConditionService(registry, capacity=2, interactive_reserve=1)
        try:
            assert isinstance(svc.submit(_steps(registry)), Ticket)
            bulk = svc.submit(_steps(registry, tenant="t2"))
            assert isinstance(bulk, Rejected)
            assert bulk.reason == "bulk_backpressure"
            # The reserve still admits interactive work …
            interactive = svc.submit(
                _steps(registry, tenant="t3", lane=Lane.INTERACTIVE)
            )
            assert isinstance(interactive, Ticket)
            # … until the queue is genuinely full.
            full = svc.submit(
                _steps(registry, tenant="t4", lane=Lane.INTERACTIVE)
            )
            assert isinstance(full, Rejected)
            assert full.reason == "queue_full"
        finally:
            svc.shutdown()


class TestSchedulingAndDedup:
    def test_identical_submissions_coalesce_in_batch(self, service, registry):
        t1 = service.submit(_steps(registry, tenant="a"))
        t2 = service.submit(_steps(registry, tenant="b"))
        responses = service.pump()
        assert [r.ticket.submission_id for r in responses] == [
            t1.submission_id, t2.submission_id
        ]
        first, second = responses
        assert isinstance(first, Completed) and not first.dedup
        assert isinstance(second, Completed) and second.dedup
        assert second.result is first.result
        snap = service.metrics()
        assert snap.engine_runs == 1
        assert snap.dedup_hits == 1
        assert snap.dedup_hit_rate == 0.5

    def test_cross_round_memo_coalesces_later_rounds(self, service, registry):
        service.submit(_steps(registry))
        service.pump()
        service.submit(_steps(registry, tenant="later"))
        (response,) = service.pump()
        assert isinstance(response, Completed)
        assert response.dedup
        assert service.metrics().engine_runs == 1

    def test_results_fetchable_until_ttl(self, registry):
        svc = ConditionService(registry, result_ttl=3.0)
        try:
            ticket = svc.submit(_steps(registry))
            svc.pump()
            assert isinstance(svc.result(ticket.submission_id), Completed)
            # The logical clock ticks once per submit and once per
            # round; burn rounds until the TTL lapses.
            for _ in range(4):
                svc.submit(_steps(registry, tenant="filler"))
                svc.pump()
            assert svc.result(ticket.submission_id) is None
        finally:
            svc.shutdown()

    def test_latency_counts_rounds_waited(self, service, registry):
        ticket = service.submit(_steps(registry))
        (response,) = service.pump()
        assert response.ticket is ticket
        # One submit tick + one round tick between acceptance and
        # completion under the logical clock.
        assert response.latency == 1.0


class TestStructuredFailures:
    @pytest.mark.parametrize("il", INVALID_IL)
    def test_invalid_il_fails_structurally(self, service, registry, il):
        (trace_name,) = registry
        ticket = service.submit(
            Submission(tenant="t", trace=trace_name, il=il)
        )
        assert isinstance(ticket, Ticket)
        (response,) = service.pump()
        assert isinstance(response, Failed)
        assert response.error_type in {
            "ILSyntaxError", "ILValidationError", "UnknownAlgorithmError",
        }
        assert response.message

    def test_bad_il_does_not_poison_the_batch(self, service, registry):
        (trace_name,) = registry
        bad = service.submit(
            Submission(tenant="bad", trace=trace_name, il=INVALID_IL[0])
        )
        good = service.submit(_steps(registry, tenant="good"))
        responses = {r.ticket.submission_id: r for r in service.pump()}
        assert isinstance(responses[bad.submission_id], Failed)
        assert isinstance(responses[good.submission_id], Completed)
        snap = service.metrics()
        assert snap.failed == 1
        assert snap.completed == 1

    def test_il_missing_channel_fails_structurally(self, service, registry):
        # A microphone condition against an accelerometer-only trace.
        (trace_name,) = registry
        mic_il = (
            "MIC -> window(id=1, params={256});"
            "1 -> stat(id=2, params={rms});"
            "2 -> minThreshold(id=3, params={0.5});"
            "3 -> OUT;"
        )
        service.submit(Submission(tenant="t", trace=trace_name, il=mic_il))
        (response,) = service.pump()
        assert isinstance(response, Failed)
        assert response.error_type == "HubExecutionError"
        assert "MIC" in response.message


class TestShutdown:
    def test_shutdown_drains_and_is_idempotent(self, registry):
        svc = ConditionService(registry)
        svc.submit(_steps(registry))
        svc.submit(_steps(registry, tenant="t2"))
        responses = svc.shutdown()
        assert len(responses) == 2
        assert all(isinstance(r, Completed) for r in responses)
        assert svc.closed
        # The double-shutdown path: a strict no-op.
        assert svc.shutdown() == []
        assert svc.shutdown(drain=False) == []

    def test_shutdown_without_drain_cancels(self, registry):
        svc = ConditionService(registry)
        ticket = svc.submit(_steps(registry))
        responses = svc.shutdown(drain=False)
        assert len(responses) == 1
        assert isinstance(responses[0], Cancelled)
        assert responses[0].reason == "shutdown"
        # Cancellations are stored and counted like any terminal state.
        assert isinstance(svc.result(ticket.submission_id), Cancelled)
        assert svc.metrics().cancelled == 1

    def test_submit_after_shutdown_rejected(self, registry):
        svc = ConditionService(registry)
        svc.shutdown()
        outcome = svc.submit(_steps(registry))
        assert isinstance(outcome, Rejected)
        assert outcome.reason == "shutdown"

    def test_pool_service_shutdown_twice(self, registry):
        # jobs > 1 wires service shutdown to the engine's (idempotent)
        # pool teardown; small batches stay serial, so this exercises
        # the lifecycle without forking workers.
        svc = ConditionService(registry, jobs=2)
        svc.submit(_steps(registry))
        responses = svc.shutdown()
        assert len(responses) == 1
        assert svc.shutdown() == []
