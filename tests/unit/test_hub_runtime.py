"""Unit tests for the hub interpreter."""

import numpy as np
import pytest

from repro.errors import HubExecutionError, SidewinderError
from repro.il.parser import parse_program
from repro.il.validate import validate_program
from repro.hub.runtime import HubRuntime, split_into_rounds
from tests.conftest import scalar_chunk


def _runtime(text):
    return HubRuntime(validate_program(parse_program(text)))


def _acc_chunks(x, y=None, z=None, t0=0.0):
    chunks = {"ACC_X": scalar_chunk(x, t0=t0)}
    if y is not None:
        chunks["ACC_Y"] = scalar_chunk(y, t0=t0)
    if z is not None:
        chunks["ACC_Z"] = scalar_chunk(z, t0=t0)
    return chunks


SIGNIFICANT_MOTION = (
    "ACC_X -> movingAvg(id=1, params={10});"
    "ACC_Y -> movingAvg(id=2, params={10});"
    "ACC_Z -> movingAvg(id=3, params={10});"
    "1,2,3 -> vectorMagnitude(id=4);"
    "4 -> minThreshold(id=5, params={15});"
    "5 -> OUT;"
)


def test_fires_on_spike():
    runtime = _runtime(SIGNIFICANT_MOTION)
    n = 100
    x = np.zeros(n)
    x[40:60] = 30.0
    events = runtime.feed(_acc_chunks(x, np.zeros(n), np.zeros(n)))
    assert events
    assert 0.7 < events[0].time < 1.4  # spike at t=0.8, smoothing lag


def test_silent_on_quiet_data():
    runtime = _runtime(SIGNIFICANT_MOTION)
    n = 100
    quiet = np.random.default_rng(0).normal(0, 0.05, n)
    events = runtime.feed(_acc_chunks(quiet, quiet, quiet + 9.81))
    assert events == []


def test_missing_channel_rejected():
    runtime = _runtime(SIGNIFICANT_MOTION)
    with pytest.raises(HubExecutionError, match="ACC_Z"):
        runtime.feed(_acc_chunks(np.zeros(10), np.zeros(10)))


def test_missing_channel_is_library_error():
    # errors.py promises every library failure derives from
    # SidewinderError; the feed path used to leak a bare KeyError.
    runtime = _runtime(SIGNIFICANT_MOTION)
    with pytest.raises(SidewinderError):
        runtime.feed(_acc_chunks(np.zeros(10), np.zeros(10)))


def test_multi_input_synchronization_across_chunks():
    # Feed axes data in uneven chunk sizes; vector magnitude must stay
    # aligned (this fails without per-port buffering).
    text = (
        "ACC_X -> movingAvg(id=1, params={5});"
        "ACC_Y -> movingAvg(id=2, params={5});"
        "1,2 -> vectorMagnitude(id=3);"
        "3 -> minThreshold(id=4, params={0});"
        "4 -> OUT;"
    )
    runtime = _runtime(text)
    rng = np.random.default_rng(5)
    x = rng.normal(size=60)
    y = rng.normal(size=60)
    all_events = []
    for i in range(0, 60, 7):
        chunks = {
            "ACC_X": scalar_chunk(x[i : i + 7], t0=i / 50.0),
            "ACC_Y": scalar_chunk(y[i : i + 7], t0=i / 50.0),
        }
        all_events.extend(runtime.feed(chunks))
    # Reference: single-shot run.
    reference = _runtime(text).feed(
        {"ACC_X": scalar_chunk(x), "ACC_Y": scalar_chunk(y)}
    )
    assert len(all_events) == len(reference)
    assert np.allclose(
        [e.value for e in all_events], [e.value for e in reference]
    )


def test_state_records_track_has_result():
    runtime = _runtime(SIGNIFICANT_MOTION)
    runtime.feed(_acc_chunks(np.zeros(4), np.zeros(4), np.zeros(4)))
    state = runtime.states[1]
    assert state.opcode == "movingAvg"
    assert not state.has_result  # only 4 of 10 samples seen
    runtime.feed(_acc_chunks(np.zeros(10), np.zeros(10), np.zeros(10), t0=0.08))
    assert runtime.states[1].has_result


def test_reset_restores_initial_state():
    runtime = _runtime(SIGNIFICANT_MOTION)
    n = 50
    x = np.full(n, 30.0)
    first = runtime.feed(_acc_chunks(x, x, x))
    runtime.reset()
    second = runtime.feed(_acc_chunks(x, x, x))
    assert len(first) == len(second)
    assert not runtime.states[1].pending  # single-input: no port buffers


def test_run_accumulates_rounds():
    runtime = _runtime(SIGNIFICANT_MOTION)
    n = 100
    x = np.zeros(n)
    x[50:70] = 30.0
    rounds = split_into_rounds(
        {
            "ACC_X": (np.arange(n) / 50.0, x, 50.0),
            "ACC_Y": (np.arange(n) / 50.0, np.zeros(n), 50.0),
            "ACC_Z": (np.arange(n) / 50.0, np.zeros(n), 50.0),
        },
        chunk_seconds=0.5,
    )
    events = runtime.run(rounds)
    assert events


def test_split_into_rounds_covers_everything():
    n = 500
    times = np.arange(n) / 50.0
    values = np.arange(n, dtype=float)
    rounds = list(
        split_into_rounds({"ACC_X": (times, values, 50.0)}, chunk_seconds=1.7)
    )
    total = sum(len(r["ACC_X"]) for r in rounds)
    assert total == n
    stitched = np.concatenate([r["ACC_X"].values for r in rounds])
    assert np.array_equal(stitched, values)


def test_empty_round_produces_no_events():
    runtime = _runtime(SIGNIFICANT_MOTION)
    chunks = _acc_chunks(np.empty(0), np.empty(0), np.empty(0))
    assert runtime.feed(chunks) == []


def _reference_rounds(channel_data, chunk_seconds):
    """The pre-optimization per-round boolean-mask splitter (oracle)."""
    if not channel_data:
        return
    start = min(t[0][0] for t in channel_data.values() if len(t[0]))
    end = max(t[0][-1] for t in channel_data.values() if len(t[0]))
    t0 = start
    while t0 <= end:
        t1 = t0 + chunk_seconds
        round_arrays = {}
        for name, (times, values, rate) in channel_data.items():
            mask = (times >= t0) & (times < t1)
            round_arrays[name] = (times[mask], values[mask])
        yield round_arrays
        t0 = t1


def test_split_into_rounds_matches_mask_reference_on_ragged_rates():
    # Channels at wildly different rates with a non-zero, non-aligned
    # start and an awkward chunk length: every round must match the
    # boolean-mask reference sample for sample.
    rng = np.random.default_rng(7)
    channel_data = {}
    for name, rate, n in (("ACC_X", 50.0, 977), ("MIC", 8000.0, 156311),
                          ("ACC_Y", 13.0, 254)):
        times = 0.37 + np.arange(n) / rate
        channel_data[name] = (times, rng.normal(size=n), rate)
    chunk_seconds = 1.7
    got = list(split_into_rounds(channel_data, chunk_seconds))
    want = list(_reference_rounds(channel_data, chunk_seconds))
    assert len(got) == len(want)
    for got_round, want_round in zip(got, want):
        assert set(got_round) == set(want_round)
        for name in want_round:
            ref_times, ref_values = want_round[name]
            assert np.array_equal(got_round[name].times, ref_times)
            assert np.array_equal(got_round[name].values, ref_values)


def test_split_into_rounds_all_empty_channels_yields_no_rounds():
    # A trace segment with no samples used to crash with
    # "min() arg is an empty sequence"; it must simply produce no rounds.
    empty = np.empty(0)
    rounds = list(
        split_into_rounds(
            {"ACC_X": (empty, empty, 50.0), "ACC_Y": (empty, empty, 50.0)}
        )
    )
    assert rounds == []


def test_split_into_rounds_no_channels_yields_no_rounds():
    assert list(split_into_rounds({})) == []
