"""Shared-memory trace shipping: round trips, fallback, pool hygiene.

`repro.sim.shm` moves trace channel arrays into shared-memory segments
so every pool worker maps one copy instead of re-materializing its own
through pickle.  These tests pin the contract:

* an export/attach round trip reproduces every trace field and every
  sample bit-exactly, through read-only zero-copy views;
* the payload that actually crosses the pickle channel is a small
  envelope, orders of magnitude under the raw sample data;
* platforms where shared memory fails degrade to ``"direct"`` mode
  (the traces themselves ship, exactly the old behavior);
* closing an export is idempotent;
* a real pool run over shared memory returns results identical to the
  serial engine (skipped under ``REPRO_QUICK=1``).
"""

import os
import pickle

import numpy as np
import pytest

from repro.sim.shm import TraceExport, attach_traces, export_traces
from repro.traces.base import GroundTruthEvent, Trace

QUICK = os.environ.get("REPRO_QUICK") == "1"

RATE = 50.0


def _trace(name="shm-test", duration_s=60.0, seed=0):
    rng = np.random.default_rng(seed)
    n = int(duration_s * RATE)
    return Trace(
        name=name,
        data={
            "ACC_X": rng.standard_normal(n),
            "ACC_Y": rng.standard_normal(n),
            "ACC_Z": rng.standard_normal(n),
        },
        rate_hz={"ACC_X": RATE, "ACC_Y": RATE, "ACC_Z": RATE},
        duration=duration_s,
        events=[GroundTruthEvent("walking", 1.0, 5.0)],
        metadata={"seed": seed},
    )


class TestRoundTrip:
    def test_attach_reproduces_every_field_bit_exactly(self):
        traces = [_trace("a", seed=1), _trace("b", duration_s=20.0, seed=2)]
        export = export_traces(traces)
        try:
            assert export.mode == "shm"
            rebuilt = attach_traces(export.payload)
            assert [t.name for t in rebuilt] == ["a", "b"]
            for original, copy in zip(traces, rebuilt):
                assert copy.duration == original.duration
                assert copy.rate_hz == original.rate_hz
                assert copy.events == original.events
                assert copy.metadata == original.metadata
                for channel, samples in original.data.items():
                    np.testing.assert_array_equal(
                        copy.data[channel], samples
                    )
        finally:
            export.close()

    def test_attached_arrays_are_read_only_views(self):
        export = export_traces([_trace()])
        try:
            [copy] = attach_traces(export.payload)
            array = copy.data["ACC_X"]
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[0] = 1.0
        finally:
            export.close()

    def test_payload_is_a_small_envelope(self):
        traces = [_trace(duration_s=120.0)]
        export = export_traces(traces)
        try:
            assert export.mode == "shm"
            envelope = len(pickle.dumps(export.payload))
            raw = len(pickle.dumps(traces))
            assert envelope * 20 < raw
        finally:
            export.close()


class TestFallback:
    def test_allocation_failure_degrades_to_direct(self, monkeypatch):
        def refuse(*args, **kwargs):
            raise OSError("no shared memory here")

        monkeypatch.setattr(
            "multiprocessing.shared_memory.SharedMemory", refuse
        )
        traces = [_trace()]
        export = export_traces(traces)
        assert export.mode == "direct"
        assert export.segments == []
        # Direct payloads carry the very same objects.
        assert attach_traces(export.payload) == traces
        export.close()  # no-op, must not raise

    def test_attach_direct_payload_returns_traces(self):
        traces = [_trace("x"), _trace("y")]
        assert attach_traces(("direct", traces)) == traces


class TestClose:
    def test_close_is_idempotent(self):
        export = export_traces([_trace()])
        assert export.mode == "shm"
        assert export.segments
        export.close()
        assert export.segments == []
        export.close()

    def test_close_survives_missing_segments(self):
        export = export_traces([_trace(duration_s=5.0)])
        # Unlink behind the export's back (a worker exit can race us).
        for segment in list(export.segments):
            segment.close()
            segment.unlink()
        export.close()


@pytest.mark.skipif(QUICK, reason="pool startup is slow for quick runs")
class TestPoolOverSharedMemory:
    def test_pool_results_match_serial(self, robot_trace, quiet_robot_trace):
        from repro.apps import StepsApp
        from repro.sim import AlwaysAwake, Oracle, Sidewinder
        from repro.sim.engine import (
            execute_plan_with_info,
            plan_matrix,
            shutdown_pool,
        )

        configs = [AlwaysAwake(), Oracle(), Sidewinder()] * 5
        plan = plan_matrix(
            configs, [StepsApp()], [robot_trace, quiet_robot_trace]
        )
        serial, info = execute_plan_with_info(plan, jobs=1)
        assert info.mode == "serial"
        try:
            pooled, pool_info = execute_plan_with_info(plan, jobs=2)
            assert pool_info.mode == "pool"
            from repro.sim import engine

            if engine._DEFAULT_POOL.export is not None:
                assert engine._DEFAULT_POOL.export.mode == "shm"
            assert pooled == serial
        finally:
            shutdown_pool()
