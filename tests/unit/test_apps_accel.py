"""Unit tests for the accelerometer applications (precise detectors and
wake-up conditions)."""

import numpy as np
import pytest

from repro.api.compile import compile_pipeline
from repro.apps.headbutts import HeadbuttApp
from repro.apps.steps import StepsApp
from repro.apps.transitions import TransitionsApp
from repro.eval.metrics import match_events
from repro.il.validate import validate_program
from repro.sim.simulator import run_wakeup_condition


def _full_windows(trace):
    return [(0.0, trace.duration)]


class TestStepsApp:
    def test_detects_every_bout(self, robot_trace):
        app = StepsApp()
        detections = app.detect(robot_trace, _full_windows(robot_trace))
        match = match_events(
            app.events_of_interest(robot_trace), detections, app.match_tolerance_s
        )
        assert match.recall == 1.0
        assert match.precision >= 0.95

    def test_step_count_accuracy(self, robot_trace):
        app = StepsApp()
        detections = app.detect(robot_trace, _full_windows(robot_trace))
        true_steps = sum(
            len(e.meta("step_times"))
            for e in robot_trace.events_with_label("walking")
        )
        counted = StepsApp.count_steps(detections)
        assert counted == pytest.approx(true_steps, rel=0.15)

    def test_silent_on_idle(self, quiet_robot_trace):
        app = StepsApp()
        idle = quiet_robot_trace.slice(0.0, 5.0)
        # Very unlikely the first 5 s contain a walking bout; if they
        # do, skip (the slice keeps its events, so check).
        if not idle.events_with_label("walking"):
            assert app.detect(idle, _full_windows(idle)) == []

    def test_windows_restrict_visibility(self, robot_trace):
        app = StepsApp()
        bout = app.events_of_interest(robot_trace)[0]
        outside = [
            d for d in app.detect(robot_trace, [(bout.start, bout.end)])
            if not bout.start - 1 <= d.time <= bout.end + 1
        ]
        assert outside == []

    def test_wakeup_condition_catches_all_bouts(self, robot_trace):
        app = StepsApp()
        graph = validate_program(compile_pipeline(app.build_wakeup_pipeline()))
        events = run_wakeup_condition(graph, robot_trace)
        for bout in app.events_of_interest(robot_trace):
            assert any(
                bout.start - 1 <= e.time <= bout.end + 1 for e in events
            ), bout


class TestTransitionsApp:
    def test_detects_every_transition(self, robot_trace):
        app = TransitionsApp()
        detections = app.detect(robot_trace, _full_windows(robot_trace))
        match = match_events(
            app.events_of_interest(robot_trace), detections, app.match_tolerance_s
        )
        assert match.recall == 1.0
        assert match.precision >= 0.9

    def test_directions_alternate(self, robot_trace):
        app = TransitionsApp()
        detections = app.detect(robot_trace, _full_windows(robot_trace))
        directions = [d.label for d in detections]
        for a, b in zip(directions, directions[1:]):
            assert a != b  # sit, stand, sit, stand, ...

    def test_wakeup_condition_catches_all(self, robot_trace):
        app = TransitionsApp()
        graph = validate_program(compile_pipeline(app.build_wakeup_pipeline()))
        events = run_wakeup_condition(graph, robot_trace)
        for transition in app.events_of_interest(robot_trace):
            assert any(
                transition.start - 1 <= e.time <= transition.end + 1
                for e in events
            )

    def test_wakeup_silent_during_walking(self, robot_trace):
        app = TransitionsApp()
        graph = validate_program(compile_pipeline(app.build_wakeup_pipeline()))
        events = run_wakeup_condition(graph, robot_trace)
        transitions = app.events_of_interest(robot_trace)
        for event in events:
            near_transition = any(
                t.start - 2 <= event.time <= t.end + 2 for t in transitions
            )
            assert near_transition, f"spurious wake at {event.time}"


class TestHeadbuttApp:
    def test_detects_every_headbutt(self, robot_trace):
        app = HeadbuttApp()
        detections = app.detect(robot_trace, _full_windows(robot_trace))
        match = match_events(
            app.events_of_interest(robot_trace), detections, app.match_tolerance_s
        )
        assert match.recall == 1.0
        assert match.precision >= 0.9

    def test_ignores_transitions_and_walking(self, robot_trace):
        app = HeadbuttApp()
        detections = app.detect(robot_trace, _full_windows(robot_trace))
        headbutts = app.events_of_interest(robot_trace)
        for d in detections:
            assert any(
                h.start - 0.6 <= d.time <= h.end + 0.6 for h in headbutts
            ), f"false headbutt at {d.time}"

    def test_wakeup_condition_fires_only_near_headbutts(self, robot_trace):
        app = HeadbuttApp()
        graph = validate_program(compile_pipeline(app.build_wakeup_pipeline()))
        events = run_wakeup_condition(graph, robot_trace)
        headbutts = app.events_of_interest(robot_trace)
        assert events
        for event in events:
            assert any(
                h.start - 1 <= event.time <= h.end + 1 for h in headbutts
            )
