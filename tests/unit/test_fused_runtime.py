"""Fused hub execution: eligibility rules and bit-exact equivalence.

The fused fast path (`HubRuntime.run_fused`) replaces hundreds of small
feed rounds with a few coalesced ones.  Its correctness rests entirely
on the `chunk_invariant` capability flag, so this module checks:

* every registered chunk-invariant opcode is exercised by at least one
  equivalence program (a registry-driven completeness assertion keeps
  future opcodes honest);
* for each program, the fused run produces *identical* `WakeEvent`
  lists (exact float equality) to round-by-round runs at several chunk
  sizes, to randomized irregular chunking, and to a single-round feed —
  including window warm-up across boundaries and multi-input
  synchronization;
* graphs containing a non-invariant node (`expMovingAvg`) are rejected
  with a reason, and `run_fused` refuses to run them.
"""

import numpy as np
import pytest

from repro.algorithms.base import available_opcodes, get_algorithm_class
from repro.errors import HubExecutionError
from repro.hub.runtime import (
    HubRuntime,
    fusion_eligibility,
    split_into_rounds,
)
from repro.il.parser import parse_program
from repro.il.validate import validate_program
from repro.sensors.samples import Chunk, StreamKind

RATE = 50.0

#: Equivalence programs.  Together their graphs must use every
#: registered chunk-invariant opcode (asserted below).
PROGRAMS = {
    "significant_motion": (
        # movingAvg warm-up + multi-input synchronization across rounds.
        "ACC_X -> movingAvg(id=1, params={10});"
        "ACC_Y -> movingAvg(id=2, params={10});"
        "ACC_Z -> movingAvg(id=3, params={10});"
        "1,2,3 -> vectorMagnitude(id=4);"
        "4 -> minThreshold(id=5, params={0.4});"
        "5 -> OUT;"
    ),
    "window_stat": (
        # Window warm-up and hop spanning chunk boundaries.
        "ACC_X -> window(id=1, params={25, 10, rectangular});"
        "1 -> stat(id=2, params={mean});"
        "2 -> maxThreshold(id=3, params={0.5});"
        "3 -> OUT;"
    ),
    "spectral": (
        "ACC_X -> window(id=1, params={32, 16, hamming});"
        "1 -> fft(id=2);"
        "2 -> dominantFrequency(id=3, params={magnitude, 0.5, 20});"
        "3 -> OUT;"
    ),
    "filtered_band": (
        "ACC_X -> window(id=1, params={32, 32, rectangular});"
        "1 -> lowPass(id=2, params={8});"
        "2 -> stat(id=3, params={std});"
        "3 -> rangeThreshold(id=4, params={0.01, 10});"
        "4 -> OUT;"
    ),
    "highpass_ifft": (
        "ACC_X -> window(id=1, params={32, 32, rectangular});"
        "1 -> highPass(id=2, params={4});"
        "2 -> stat(id=3, params={rms});"
        "3 -> OUT;"
    ),
    "ifft_roundtrip": (
        "ACC_X -> window(id=1, params={16, 16, rectangular});"
        "1 -> fft(id=2);"
        "2 -> ifft(id=3);"
        "3 -> stat(id=4, params={max});"
        "4 -> OUT;"
    ),
    "zero_crossings": (
        "ACC_X -> window(id=1, params={25, 25, rectangular});"
        "1 -> zeroCrossingRate(id=2);"
        "2 -> OUT;"
    ),
    "aggregates": (
        "ACC_X,ACC_Y -> minOf(id=1);"
        "ACC_X,ACC_Y -> maxOf(id=2);"
        "1,2 -> sumOf(id=3);"
        "ACC_Z,3 -> meanOf(id=4);"
        "4 -> bandIndicator(id=5, params={-0.5, 0.5});"
        "5 -> OUT;"
    ),
    "sustained": (
        # Integer run-length state crossing chunk boundaries.
        "ACC_X -> sustainedThreshold(id=1, params={0.2, 7});"
        "1 -> OUT;"
    ),
    "extrema": (
        "ACC_X -> localExtrema(id=1, params={max, 0.3, 10, 3});"
        "1 -> OUT;"
    ),
}

EMA_PROGRAM = (
    "ACC_X -> expMovingAvg(id=1, params={0.5});"
    "1 -> maxThreshold(id=2, params={0.1});"
    "2 -> OUT;"
)


def _graph(text):
    return validate_program(parse_program(text))


def _signal(duration_s=30.0, seed=0):
    """A rich test signal: tones + noise so every stage produces events."""
    rng = np.random.default_rng(seed)
    t = np.arange(0.0, duration_s, 1.0 / RATE)
    x = np.sin(2 * np.pi * 2.0 * t) + 0.3 * rng.standard_normal(t.size)
    y = np.cos(2 * np.pi * 1.3 * t) + 0.3 * rng.standard_normal(t.size)
    z = 0.5 * np.sin(2 * np.pi * 0.7 * t) + 0.3 * rng.standard_normal(t.size)
    return {
        "ACC_X": (t, x, RATE),
        "ACC_Y": (t, y, RATE),
        "ACC_Z": (t, z, RATE),
    }


def _random_rounds(channel_data, rng):
    """Split the channels at random item boundaries (irregular rounds)."""
    n = len(next(iter(channel_data.values()))[0])
    cuts = np.sort(rng.choice(np.arange(1, n), size=rng.integers(5, 25), replace=False))
    edges = [0, *cuts.tolist(), n]
    for i0, i1 in zip(edges[:-1], edges[1:]):
        yield {
            name: Chunk.scalars(times[i0:i1], values[i0:i1], rate)
            for name, (times, values, rate) in channel_data.items()
        }


def _events(graph, rounds):
    graph.reset()
    return HubRuntime(graph).run(rounds)


class TestCompleteness:
    def test_programs_cover_every_chunk_invariant_opcode(self):
        invariant = {
            op
            for op in available_opcodes()
            if get_algorithm_class(op).chunk_invariant
        }
        covered = set()
        for text in PROGRAMS.values():
            graph = _graph(text)
            covered.update(node.algorithm.opcode for node in graph.nodes)
        assert covered == invariant

    def test_exp_moving_avg_is_declared_variant(self):
        assert get_algorithm_class("expMovingAvg").chunk_invariant is False


class TestEligibility:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_shipped_programs_are_eligible(self, name):
        assert fusion_eligibility(_graph(PROGRAMS[name])) is None

    def test_variant_node_blocks_fusion_with_reason(self):
        reason = fusion_eligibility(_graph(EMA_PROGRAM))
        assert reason is not None
        assert "expMovingAvg" in reason

    def test_run_fused_refuses_ineligible_graph(self):
        graph = _graph(EMA_PROGRAM)
        data = _signal(duration_s=5.0)
        with pytest.raises(HubExecutionError, match="not fusion-eligible"):
            HubRuntime(graph).run_fused({"ACC_X": data["ACC_X"]})


class TestFusedEquivalence:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    @pytest.mark.parametrize("chunk_seconds", [0.37, 1.0, 2.3, 4.0])
    def test_fused_equals_rounds(self, name, chunk_seconds):
        graph = _graph(PROGRAMS[name])
        data = _signal()
        by_rounds = _events(graph, split_into_rounds(data, chunk_seconds))
        graph.reset()
        fused = HubRuntime(graph).run_fused(data, chunk_seconds)
        assert fused == by_rounds  # exact times AND values
        # The programs are chosen so equivalence is not vacuous.
        assert fused, f"{name}: test signal produced no wake events"

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_fused_equals_randomized_chunking(self, name, seed):
        graph = _graph(PROGRAMS[name])
        data = _signal()
        rng = np.random.default_rng(seed)
        irregular = _events(graph, _random_rounds(data, rng))
        graph.reset()
        fused = HubRuntime(graph).run_fused(data)
        assert fused == irregular

    def test_fused_equals_single_round(self):
        # One giant round is the degenerate fusion: identical too.
        graph = _graph(PROGRAMS["window_stat"])
        data = _signal()
        t, x, rate = data["ACC_X"]
        whole = _events(
            graph,
            [{"ACC_X": Chunk(StreamKind.SCALAR, t, x, rate)}],
        )
        graph.reset()
        fused = HubRuntime(graph).run_fused({"ACC_X": data["ACC_X"]})
        assert fused == whole


class TestSplitIntoRounds:
    def test_slices_are_views_of_the_input(self):
        t = np.arange(0.0, 8.0, 1.0 / RATE)
        x = np.sin(t)
        rounds = list(split_into_rounds({"ACC_X": (t, x, RATE)}, 4.0))
        assert len(rounds) >= 2
        chunk = rounds[0]["ACC_X"]
        assert chunk.values.base is x or chunk.values.base is not None
