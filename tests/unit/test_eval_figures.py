"""Unit tests for the figure builders on miniature corpora."""

import pytest

from repro.eval.figures import figure5_series, figure6_series, figure7_series
from repro.traces.human import HumanScenario, HumanTraceConfig, generate_human_trace
from repro.traces.robot import RobotRunConfig, generate_robot_run


@pytest.fixture(scope="module")
def mini_robot():
    return [
        generate_robot_run(RobotRunConfig(group=g, duration_s=180.0, seed=70 + g))
        for g in (1, 3)
    ]


@pytest.fixture(scope="module")
def mini_humans():
    return [
        generate_human_trace(
            HumanTraceConfig(scenario, duration_s=240.0, seed=80 + i)
        )
        for i, scenario in enumerate(
            (HumanScenario.COMMUTE, HumanScenario.OFFICE)
        )
    ]


def test_figure5_structure(mini_robot):
    series, matrix = figure5_series(traces=mini_robot)
    assert set(series) == {1, 3}
    for group, per_app in series.items():
        assert set(per_app) == {"steps", "transitions", "headbutts"}
        for bars in per_app.values():
            assert set(bars) == {
                "AA", "DC-2", "DC-5", "DC-10", "DC-20", "DC-30",
                "Ba-10", "PA", "Sw",
            }
            for value in bars.values():
                assert value > 0


def test_figure5_oracle_normalization(mini_robot):
    series, matrix = figure5_series(traces=mini_robot)
    # Ratio definition: config power over oracle power for the group.
    group1 = [t.name for t in mini_robot if t.metadata["group"] == 1]
    aa = matrix.mean_power("always_awake", "steps", group1)
    oracle = matrix.mean_power("oracle", "steps", group1)
    assert series[1]["steps"]["AA"] == pytest.approx(aa / oracle)


def test_figure6_structure(mini_robot):
    group1 = [t for t in mini_robot if t.metadata["group"] == 1]
    series, matrix = figure6_series(traces=group1, intervals=(2.0, 10.0))
    assert matrix.execution is not None
    assert set(series) == {"steps", "transitions", "headbutts"}
    for curve in series.values():
        assert set(curve) == {2.0, 10.0}
        assert all(0.0 <= v <= 1.0 for v in curve.values())


def test_figure7_structure(mini_humans):
    series, matrix = figure7_series(traces=mini_humans)
    assert set(series) == {"commute", "office"}
    for bars in series.values():
        assert set(bars) == {"AA", "DC-10", "Ba-10", "PA", "Sw"}
        assert bars["Sw"] <= bars["AA"]
