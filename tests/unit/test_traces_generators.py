"""Unit tests for the robot / human / audio trace generators."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.audio import (
    EVENT_FRACTIONS,
    AudioEnvironment,
    AudioTraceConfig,
    generate_audio_trace,
)
from repro.traces.human import (
    WALKING_FRACTION,
    HumanScenario,
    HumanTraceConfig,
    generate_human_trace,
)
from repro.traces.robot import (
    GROUP_IDLE_FRACTION,
    RobotRunConfig,
    generate_robot_run,
)


class TestRobot:
    def test_determinism(self):
        config = RobotRunConfig(group=2, duration_s=120.0, seed=5)
        a = generate_robot_run(config)
        b = generate_robot_run(config)
        assert np.array_equal(a.data["ACC_X"], b.data["ACC_X"])
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = generate_robot_run(RobotRunConfig(group=2, duration_s=120.0, seed=1))
        b = generate_robot_run(RobotRunConfig(group=2, duration_s=120.0, seed=2))
        assert not np.array_equal(a.data["ACC_X"], b.data["ACC_X"])

    def test_activity_scales_with_group(self, robot_trace, quiet_robot_trace):
        active_g2 = robot_trace.event_seconds()
        active_g1 = quiet_robot_trace.event_seconds()
        assert active_g2 > 2 * active_g1

    def test_event_mix_has_all_classes(self, robot_trace):
        for label in ("walking", "transition", "headbutt"):
            assert robot_trace.events_with_label(label), label

    def test_walking_dominates_activity(self, robot_trace):
        walk = robot_trace.event_seconds("walking")
        other = robot_trace.event_seconds() - walk
        assert walk > other

    def test_step_times_inside_bouts(self, robot_trace):
        for bout in robot_trace.events_with_label("walking"):
            steps = bout.meta("step_times")
            assert steps
            for t in steps:
                assert bout.start <= t <= bout.end

    def test_gravity_baseline_on_z(self, quiet_robot_trace):
        z = quiet_robot_trace.data["ACC_Z"]
        assert np.median(z) == pytest.approx(9.81, abs=0.3)

    def test_headbutts_reach_detector_band(self, robot_trace):
        y = robot_trace.data["ACC_Y"]
        rate = robot_trace.rate_hz["ACC_Y"]
        for event in robot_trace.events_with_label("headbutt"):
            i0, i1 = int(event.start * rate), int(event.end * rate)
            assert y[i0:i1].min() <= -3.75

    def test_invalid_group_rejected(self):
        with pytest.raises(TraceError):
            RobotRunConfig(group=4)

    def test_too_short_rejected(self):
        with pytest.raises(TraceError):
            RobotRunConfig(group=1, duration_s=10.0)

    def test_group_idle_fractions_match_paper(self):
        assert GROUP_IDLE_FRACTION == {1: 0.90, 2: 0.50, 3: 0.10}


class TestHuman:
    def test_walking_fraction_in_paper_range(self):
        for fraction in WALKING_FRACTION.values():
            assert 0.20 <= fraction <= 0.37

    def test_has_confounder_motion(self, human_trace):
        assert human_trace.events_with_label("other_motion")

    def test_walking_fraction_approximate(self, human_trace):
        measured = human_trace.event_seconds("walking") / human_trace.duration
        target = WALKING_FRACTION[HumanScenario.COMMUTE]
        assert measured == pytest.approx(target, abs=0.08)

    def test_determinism(self):
        config = HumanTraceConfig(HumanScenario.OFFICE, 200.0, seed=9)
        a = generate_human_trace(config)
        b = generate_human_trace(config)
        assert np.array_equal(a.data["ACC_Y"], b.data["ACC_Y"])


class TestAudio:
    def test_event_fractions_near_paper(self, audio_trace):
        for label, target in EVENT_FRACTIONS.items():
            measured = audio_trace.event_seconds(label) / audio_trace.duration
            assert measured == pytest.approx(target, abs=0.025), label

    def test_at_least_one_phrase_segment(self):
        for seed in range(5):
            trace = generate_audio_trace(
                AudioTraceConfig(AudioEnvironment.OUTDOORS, 120.0, seed=seed)
            )
            speech = trace.events_with_label("speech")
            if speech:
                assert any(e.meta("phrase") for e in speech)

    def test_events_do_not_overlap(self, audio_trace):
        events = sorted(audio_trace.events, key=lambda e: e.start)
        for a, b in zip(events, events[1:]):
            assert a.end <= b.start + 1e-9

    def test_amplitude_reasonable(self, audio_trace):
        assert np.abs(audio_trace.data["MIC"]).max() < 2.0

    def test_environments_have_distinct_backgrounds(self):
        quiet = generate_audio_trace(
            AudioTraceConfig(AudioEnvironment.OFFICE, 60.0, seed=1)
        )
        windy = generate_audio_trace(
            AudioTraceConfig(AudioEnvironment.OUTDOORS, 60.0, seed=1)
        )
        assert np.std(windy.data["MIC"]) > np.std(quiet.data["MIC"])
