"""Unit tests for the open-loop driver and the overload sweep."""

import pytest

from repro.errors import ServiceError
from repro.serve import (
    OpenLoopSpec,
    ShardCluster,
    SimClock,
    Submission,
    TenantQuota,
    overload_sweep,
    poisson_arrivals,
    run_open_loop,
)
from repro.serve.loadgen import LoadSpec


@pytest.fixture()
def registry(robot_trace):
    return {robot_trace.name: robot_trace}


def _workload(registry, n):
    (trace_name,) = registry
    return [
        Submission(tenant=f"device-{i:05d}", trace=trace_name, app="steps")
        for i in range(n)
    ]


class TestSimClock:
    def test_advances_and_reads(self):
        clock = SimClock()
        assert clock.now() == 0.0
        assert clock() == 0.0
        clock.advance_to(3.5)
        assert clock.now() == 3.5

    def test_refuses_to_rewind(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ServiceError, match="rewind"):
            clock.advance_to(9.0)

    def test_has_no_tick(self):
        # Services probe for a tick method and no-op without one; the
        # open-loop driver must own the timeline exclusively.
        assert not hasattr(SimClock(), "tick")


class TestPoissonArrivals:
    def test_deterministic_per_seed(self):
        assert poisson_arrivals(32.0, 8.0, seed=7) == poisson_arrivals(
            32.0, 8.0, seed=7
        )
        assert poisson_arrivals(32.0, 8.0, seed=7) != poisson_arrivals(
            32.0, 8.0, seed=8
        )

    def test_rate_sets_the_mean(self):
        arrivals = poisson_arrivals(50.0, 100.0, seed=0)
        # ~5000 expected; Poisson fluctuation is a few percent.
        assert 4500 <= len(arrivals) <= 5500

    def test_sorted_within_horizon(self):
        arrivals = poisson_arrivals(10.0, 5.0, seed=3)
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= t < 5.0 for t in arrivals)


class TestOpenLoopSpec:
    def test_validates_shape(self):
        with pytest.raises(ServiceError, match="rate"):
            OpenLoopSpec(rate=0.0)
        with pytest.raises(ServiceError, match="duration"):
            OpenLoopSpec(duration_s=-1.0)
        with pytest.raises(ServiceError, match="pump_interval"):
            OpenLoopSpec(pump_interval_s=0.0)


class TestRunOpenLoop:
    def test_underload_completes_everything(self, registry):
        clock = SimClock()
        cluster = ShardCluster(
            registry, shards=2, clock_factory=lambda: clock
        )
        spec = OpenLoopSpec(rate=8.0, duration_s=8.0, seed=0)
        try:
            report = run_open_loop(
                cluster, clock, spec, submissions=_workload(registry, 64)
            )
        finally:
            cluster.shutdown(drain=False)
        assert report.arrivals == report.accepted + report.shed_total
        assert report.shed_total == 0
        assert report.completed == report.accepted > 0
        assert report.goodput == pytest.approx(
            report.completed / spec.duration_s
        )
        # Latency is simulated seconds: arrival to the next pump
        # boundary, so never more than one interval under light load.
        assert 0.0 < report.latency_p50 <= spec.pump_interval_s
        assert report.latency_p999 >= report.latency_p50

    def test_deterministic_replay(self, registry):
        def drive():
            clock = SimClock()
            cluster = ShardCluster(
                registry, shards=2, clock_factory=lambda: clock
            )
            try:
                return run_open_loop(
                    cluster, clock,
                    OpenLoopSpec(rate=16.0, duration_s=4.0, seed=1),
                    submissions=_workload(registry, 32),
                ).as_dict()
            finally:
                cluster.shutdown(drain=False)

        first, second = drive(), drive()
        first.pop("wall_s"), second.pop("wall_s")
        assert first == second

    def test_overload_sheds(self, registry):
        # Capacity is shards x batch_size per interval = 4/s; offering
        # 40/s against a 16-deep queue must shed through backpressure.
        clock = SimClock()
        cluster = ShardCluster(
            registry,
            shards=1,
            capacity=16,
            interactive_reserve=2,
            batch_size=4,
            quota=TenantQuota(max_pending=1_000_000),
            clock_factory=lambda: clock,
        )
        try:
            report = run_open_loop(
                cluster, clock,
                OpenLoopSpec(rate=40.0, duration_s=4.0, seed=0),
                submissions=_workload(registry, 256),
            )
        finally:
            cluster.shutdown(drain=False)
        assert report.shed_total > 0
        assert report.arrivals == report.accepted + report.shed_total
        assert report.completed == report.accepted  # drain finishes all

    def test_empty_workload_is_an_error(self, registry):
        clock = SimClock()
        cluster = ShardCluster(registry, clock_factory=lambda: clock)
        try:
            with pytest.raises(ServiceError, match="workload"):
                run_open_loop(
                    cluster, clock, OpenLoopSpec(), submissions=[]
                )
        finally:
            cluster.shutdown(drain=False)


class TestOverloadSweep:
    def test_one_report_per_rate_tail_grows(self, registry):
        def make_cluster(clock):
            return ShardCluster(
                registry,
                shards=1,
                capacity=16,
                interactive_reserve=2,
                batch_size=4,
                quota=TenantQuota(max_pending=1_000_000),
                clock_factory=lambda: clock,
            )

        spec = OpenLoopSpec(
            rate=1.0, duration_s=4.0, seed=0,
            load=LoadSpec(fleet=8, seed=0),
        )
        rates = (2.0, 40.0)
        reports = overload_sweep(make_cluster, spec, rates)
        assert [r.offered_rate for r in reports] == list(rates)
        calm, slammed = reports
        assert calm.shed_total == 0
        assert slammed.shed_total > 0
        assert slammed.latency_p99 >= calm.latency_p99
