"""Unit tests for power accounting and the Table 1 profile."""

import pytest

from repro.hub.mcu import LM4F120, MSP430
from repro.power.accounting import account
from repro.power.phone import NEXUS4
from repro.power.timeline import PhoneState, build_timeline


def test_table1_values():
    rows = NEXUS4.table1_rows()
    values = {state: mw for state, mw, _ in rows}
    assert values["Awake, running sensor-driven application"] == 323.0
    assert values["Asleep"] == 9.7
    assert values["Asleep-to-Awake Transition"] == 384.0
    assert values["Awake-to-Asleep Transition"] == 341.0
    durations = [d for _, _, d in rows]
    assert durations == ["N/A", "N/A", "1 second", "1 second"]


def test_power_mw_by_state():
    assert NEXUS4.power_mw(PhoneState.AWAKE) == 323.0
    assert NEXUS4.power_mw(PhoneState.ASLEEP) == 9.7
    assert NEXUS4.power_mw(PhoneState.WAKING) == 384.0
    assert NEXUS4.power_mw(PhoneState.SLEEPING) == 341.0


def test_breakdown_components_sum_to_total():
    timeline = build_timeline(100.0, [(10.0, 30.0)], NEXUS4)
    breakdown = account(timeline, NEXUS4, mcus=(MSP430,))
    assert breakdown.total_mw == pytest.approx(
        breakdown.phone_awake_mw
        + breakdown.phone_asleep_mw
        + breakdown.phone_transition_mw
        + breakdown.hub_mw
    )
    assert breakdown.hub_mw == pytest.approx(3.6)


def test_breakdown_matches_timeline_average():
    timeline = build_timeline(100.0, [(10.0, 30.0)], NEXUS4)
    breakdown = account(timeline, NEXUS4)
    assert breakdown.phone_mw == pytest.approx(
        timeline.average_power_mw(NEXUS4)
    )


def test_hub_override_wins():
    timeline = build_timeline(10.0, [], NEXUS4)
    breakdown = account(timeline, NEXUS4, mcus=(MSP430,), hub_mw=42.0)
    assert breakdown.hub_mw == 42.0


def test_two_mcus_sum():
    timeline = build_timeline(10.0, [], NEXUS4)
    breakdown = account(timeline, NEXUS4, mcus=(MSP430, LM4F120))
    assert breakdown.hub_mw == pytest.approx(3.6 + 49.4)


def test_awake_fraction_and_wakeups():
    timeline = build_timeline(100.0, [(10.0, 30.0), (50.0, 60.0)], NEXUS4)
    breakdown = account(timeline, NEXUS4)
    assert breakdown.awake_fraction == pytest.approx(0.30)
    assert breakdown.wakeup_count == 2


def test_total_energy():
    timeline = build_timeline(100.0, [(0.0, 100.0)], NEXUS4)
    breakdown = account(timeline, NEXUS4)
    assert breakdown.total_energy_mj == pytest.approx(323.0 * 100.0)
