"""Unit tests for the hub-to-phone link model."""

import pytest

from repro.errors import SimulationError
from repro.hub.link import (
    CAMERA_CLASS_BYTES_PER_SECOND,
    I2C_FAST_MODE,
    SPI_20MHZ,
    UART_DEBUG,
    LinkModel,
    batch_bytes,
    batch_transfer_seconds,
    can_stream,
    channel_stream_bytes_per_second,
    sample_bytes_for_kind,
    stream_bytes_per_second,
)
from repro.sensors.channels import ACC_X, MIC


class TestSampleBytesForKind:
    def test_known_kinds(self):
        assert sample_bytes_for_kind("accelerometer") == 2
        assert sample_bytes_for_kind("microphone") == 1

    def test_unknown_kind_names_itself_and_the_supported_set(self):
        with pytest.raises(SimulationError) as excinfo:
            sample_bytes_for_kind("barometer")
        message = str(excinfo.value)
        assert "'barometer'" in message
        assert "accelerometer" in message
        assert "microphone" in message

    def test_camera_kind_points_at_a_faster_bus(self):
        with pytest.raises(
            SimulationError, match="higher bandwidth data bus"
        ):
            sample_bytes_for_kind("camera")


def test_uart_payload_rate():
    # 115200 baud, 8N1: 80% of raw bits are payload.
    assert UART_DEBUG.payload_bytes_per_second == pytest.approx(11_520.0)


def test_accel_stream_tiny():
    # 50 Hz x 2 bytes = 100 B/s per axis.
    assert channel_stream_bytes_per_second(ACC_X) == pytest.approx(100.0)


def test_mic_stream_fits_uart_barely():
    # 8 kHz mu-law audio: 8000 B/s against 11520 B/s — the paper's
    # "sufficient bandwidth to support ... a microphone".
    assert can_stream([MIC], UART_DEBUG)
    assert stream_bytes_per_second([MIC]) > 0.5 * UART_DEBUG.payload_bytes_per_second


def test_three_axis_accel_fits_everything():
    channels = ["ACC_X", "ACC_Y", "ACC_Z"]
    for link in (UART_DEBUG, I2C_FAST_MODE, SPI_20MHZ):
        assert can_stream(channels, link)


def test_camera_needs_more_than_serial():
    # The paper's camera example: even I2C fast mode is not enough.
    assert CAMERA_CLASS_BYTES_PER_SECOND > I2C_FAST_MODE.payload_bytes_per_second
    assert CAMERA_CLASS_BYTES_PER_SECOND > UART_DEBUG.payload_bytes_per_second
    assert CAMERA_CLASS_BYTES_PER_SECOND < SPI_20MHZ.payload_bytes_per_second


def test_channel_names_accepted():
    assert stream_bytes_per_second(["MIC"]) == stream_bytes_per_second([MIC])


def test_batch_sizes():
    assert batch_bytes(["ACC_X"], 10.0) == pytest.approx(1000.0)
    assert batch_bytes(["MIC"], 10.0) == pytest.approx(80_000.0)


def test_audio_batch_transfer_dominates_uart():
    # 10 s of audio over the debug UART takes ~7 s to upload.
    seconds = batch_transfer_seconds(["MIC"], 10.0, UART_DEBUG)
    assert 5.0 < seconds < 9.0
    # I2C fast mode cuts that to ~2 s.
    assert batch_transfer_seconds(["MIC"], 10.0, I2C_FAST_MODE) < 3.0


def test_accel_batch_transfer_negligible():
    seconds = batch_transfer_seconds(["ACC_X", "ACC_Y", "ACC_Z"], 10.0, UART_DEBUG)
    assert seconds < 0.5


def test_overloaded_link_rejected():
    slow = LinkModel("slow", 9600.0, 0.8)
    with pytest.raises(SimulationError, match="cannot sustain"):
        batch_transfer_seconds(["MIC"], 10.0, slow)


def test_negative_sizes_rejected():
    with pytest.raises(SimulationError):
        UART_DEBUG.transfer_seconds(-1.0)
    with pytest.raises(SimulationError):
        batch_bytes(["MIC"], -1.0)


def test_batching_config_pays_transfer_time(audio_trace):
    """Over the UART, audio batching spends most of its awake time just
    receiving the batch — its power jumps accordingly."""
    from repro.apps import SirenDetectorApp
    from repro.sim import Batching

    ideal = Batching(10.0).run(SirenDetectorApp(), audio_trace)
    over_uart = Batching(10.0, link=UART_DEBUG).run(SirenDetectorApp(), audio_trace)
    assert over_uart.average_power_mw > ideal.average_power_mw * 1.3
    assert over_uart.recall == 1.0


def test_batching_accel_unaffected_by_uart(robot_trace):
    from repro.apps import HeadbuttApp
    from repro.sim import Batching

    ideal = Batching(10.0).run(HeadbuttApp(), robot_trace)
    over_uart = Batching(10.0, link=UART_DEBUG).run(HeadbuttApp(), robot_trace)
    assert over_uart.average_power_mw == pytest.approx(
        ideal.average_power_mw, rel=0.05
    )
