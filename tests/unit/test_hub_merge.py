"""Unit tests for pipeline merging across concurrent conditions."""

import numpy as np
import pytest

from repro.api.compile import compile_pipeline
from repro.apps import MusicJournalApp, PhraseDetectionApp, StepsApp, TransitionsApp
from repro.hub.merge import (
    MultiTapRuntime,
    merge_programs,
    merged_cycles_per_second,
    merged_graph,
)
from repro.hub.runtime import HubRuntime
from repro.il.parser import parse_program
from repro.il.validate import validate_program
from tests.conftest import scalar_chunk

SIGNIFICANT_MOTION = (
    "ACC_X -> movingAvg(id=1, params={10});"
    "ACC_Y -> movingAvg(id=2, params={10});"
    "ACC_Z -> movingAvg(id=3, params={10});"
    "1,2,3 -> vectorMagnitude(id=4);"
    "4 -> minThreshold(id=5, params={15});"
    "5 -> OUT;"
)

# Same front end, different admission threshold.
GENTLE_MOTION = SIGNIFICANT_MOTION.replace("params={15}", "params={11}")


def test_shares_common_prefix():
    merged = merge_programs(
        [parse_program(SIGNIFICANT_MOTION), parse_program(GENTLE_MOTION)]
    )
    # movingAvg x3 + vectorMagnitude shared; two thresholds distinct.
    assert merged.node_count == 6
    assert merged.shared_nodes == 4
    assert merged.original_node_count == 10
    assert len(set(merged.taps)) == 2


def test_identical_programs_collapse():
    merged = merge_programs(
        [parse_program(SIGNIFICANT_MOTION), parse_program(SIGNIFICANT_MOTION)]
    )
    assert merged.node_count == 5
    assert merged.shared_nodes == 5
    assert merged.taps[0] == merged.taps[1]


def test_disjoint_programs_share_nothing():
    audio = (
        "MIC -> window(id=1, params={256});"
        "1 -> stat(id=2, params={rms});"
        "2 -> minThreshold(id=3, params={0.5});"
        "3 -> OUT;"
    )
    merged = merge_programs(
        [parse_program(SIGNIFICANT_MOTION), parse_program(audio)]
    )
    assert merged.shared_nodes == 0
    assert merged.node_count == 8


def test_different_params_not_shared():
    other = SIGNIFICANT_MOTION.replace("params={10}", "params={12}", 1)
    merged = merge_programs(
        [parse_program(SIGNIFICANT_MOTION), parse_program(other)]
    )
    # ACC_X movingAvg differs -> its vectorMagnitude and threshold also
    # differ; ACC_Y/ACC_Z movingAvg still shared.
    assert merged.shared_nodes == 2


def test_merged_cycles_below_sum_of_parts():
    programs = [parse_program(SIGNIFICANT_MOTION), parse_program(GENTLE_MOTION)]
    separate = sum(
        validate_program(p).total_cycles_per_second for p in programs
    )
    merged = merge_programs(programs)
    assert merged_cycles_per_second(merged) < separate


def test_single_program_passthrough():
    program = parse_program(SIGNIFICANT_MOTION)
    merged = merge_programs([program])
    assert merged.node_count == 5
    assert merged.shared_nodes == 0


def test_paper_apps_music_phrase_share_feature_extraction():
    """The music and phrase conditions share their entire windowed
    feature front end (amplitude variance + ZCR variance branches)."""
    programs = [
        compile_pipeline(MusicJournalApp().build_wakeup_pipeline()),
        compile_pipeline(PhraseDetectionApp().build_wakeup_pipeline()),
    ]
    merged = merge_programs(programs)
    assert merged.shared_nodes >= 4  # both windows, ZCR, second window, stats


def test_paper_apps_steps_transitions_share_nothing_expensive():
    programs = [
        compile_pipeline(StepsApp().build_wakeup_pipeline()),
        compile_pipeline(TransitionsApp().build_wakeup_pipeline()),
    ]
    merged = merge_programs(programs)  # different axes: no sharing
    assert merged.shared_nodes == 0


class TestMultiTapRuntime:
    def _spike(self, magnitude, n=120):
        x = np.zeros(n)
        x[60:80] = magnitude
        return x

    def _chunks(self, x):
        n = len(x)
        zero = np.zeros(n)
        return {
            "ACC_X": scalar_chunk(x),
            "ACC_Y": scalar_chunk(zero),
            "ACC_Z": scalar_chunk(zero),
        }

    def test_taps_fire_independently(self):
        merged = merge_programs(
            [parse_program(SIGNIFICANT_MOTION), parse_program(GENTLE_MOTION)]
        )
        runtime = MultiTapRuntime(merged)
        # Magnitude ~12.5: above the 11 threshold, below the 15 one.
        events = runtime.feed(self._chunks(self._spike(12.5)))
        strict_tap, gentle_tap = merged.taps
        assert events[gentle_tap]
        assert not events[strict_tap]

    def test_matches_unmerged_execution(self):
        programs = [parse_program(SIGNIFICANT_MOTION), parse_program(GENTLE_MOTION)]
        merged = merge_programs(programs)
        runtime = MultiTapRuntime(merged)
        x = self._spike(20.0)
        merged_events = runtime.feed(self._chunks(x))
        for program, tap in zip(programs, merged.taps):
            reference = HubRuntime(validate_program(program)).feed(
                self._chunks(x)
            )
            assert [e.time for e in merged_events[tap]] == [
                e.time for e in reference
            ]
            assert [e.value for e in merged_events[tap]] == [
                e.value for e in reference
            ]

    def test_reset(self):
        merged = merge_programs([parse_program(SIGNIFICANT_MOTION)])
        runtime = MultiTapRuntime(merged)
        first = runtime.feed(self._chunks(self._spike(20.0)))
        runtime.reset()
        second = runtime.feed(self._chunks(self._spike(20.0)))
        (tap,) = merged.taps
        assert len(first[tap]) == len(second[tap])


class TestServeStyleCoalescing:
    """Merging in the fleet-coalescing regime: N tenants, one condition.

    The serving layer dedups identical submissions before the engine;
    merging is the hub-side analogue.  Both must agree that N copies of
    a condition cost one runtime and answer exactly like N separate
    runs.
    """

    def test_n_identical_programs_collapse_to_one(self):
        for n in (2, 5, 16):
            merged = merge_programs(
                [parse_program(SIGNIFICANT_MOTION) for _ in range(n)]
            )
            # One runtime's worth of nodes, every tap aliased onto it;
            # each of the n-1 later copies shares all 5 nodes.
            assert merged.node_count == 5
            assert merged.shared_nodes == 5 * (n - 1)
            assert merged.original_node_count == 5 * n
            assert len(merged.taps) == n
            assert len(set(merged.taps)) == 1

    def test_n_identical_apps_wake_events_bit_identical(self):
        n = 4
        programs = [
            compile_pipeline(StepsApp().build_wakeup_pipeline())
            for _ in range(n)
        ]
        merged = merge_programs(programs)
        graph = validate_program(programs[0])
        assert merged.node_count == merged.original_node_count // n

        # Peaks must land inside the step detector's localExtrema band
        # ([2.1, 5.1] after the moving average), so a ~3.5-amplitude
        # oscillation with mild noise produces a healthy event stream.
        rng = np.random.default_rng(7)
        signal = np.sin(np.arange(600) / 5.0) * 3.5 + rng.normal(
            0.0, 0.2, 600
        )
        chunks = {name: scalar_chunk(signal) for name in graph.channels}
        merged_events = MultiTapRuntime(merged).feed(chunks)
        # Every tenant's tap sees the same event list …
        per_tap = [merged_events[tap] for tap in merged.taps]
        assert all(events is per_tap[0] for events in per_tap)
        # … and it is bit-identical to one unmerged per-app run.
        reference = HubRuntime(
            validate_program(
                compile_pipeline(StepsApp().build_wakeup_pipeline())
            )
        ).feed(chunks)
        assert len(reference) > 0
        assert per_tap[0] == reference

    def test_mixed_fleet_matches_per_app_runs(self):
        # A head-heavy mix (the Zipf regime): three tenants on the
        # strict condition, two on the gentle one.  Merged output per
        # tap must equal each condition's standalone run.
        programs = (
            [parse_program(SIGNIFICANT_MOTION)] * 3
            + [parse_program(GENTLE_MOTION)] * 2
        )
        merged = merge_programs(programs)
        assert merged.node_count == 6  # one runtime + one extra threshold
        assert len(set(merged.taps)) == 2

        x = np.zeros(120)
        x[60:80] = 12.5  # between the two thresholds
        zero = np.zeros(120)
        chunks = {
            "ACC_X": scalar_chunk(x),
            "ACC_Y": scalar_chunk(zero),
            "ACC_Z": scalar_chunk(zero),
        }
        merged_events = MultiTapRuntime(merged).feed(chunks)
        for text, tap in zip(
            [SIGNIFICANT_MOTION] * 3 + [GENTLE_MOTION] * 2, merged.taps
        ):
            reference = HubRuntime(
                validate_program(parse_program(text))
            ).feed(chunks)
            assert merged_events[tap] == reference


def test_merged_graph_channels_union():
    audio = (
        "MIC -> window(id=1, params={256});"
        "1 -> stat(id=2, params={rms});"
        "2 -> minThreshold(id=3, params={0.5});"
        "3 -> OUT;"
    )
    merged = merge_programs(
        [parse_program(SIGNIFICANT_MOTION), parse_program(audio)]
    )
    graph = merged_graph(merged)
    assert set(graph.channels) == {"ACC_X", "ACC_Y", "ACC_Z", "MIC"}
