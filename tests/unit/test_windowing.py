"""Unit tests for the windowing algorithm."""

import numpy as np
import pytest

from repro.algorithms.windowing import Window
from repro.errors import ParameterError
from repro.sensors.samples import StreamKind
from tests.conftest import scalar_chunk


def test_no_output_until_full_window():
    window = Window(size=10)
    out = window.process([scalar_chunk(np.arange(9))])
    assert out.is_empty


def test_emits_one_frame_when_full():
    window = Window(size=10)
    out = window.process([scalar_chunk(np.arange(10))])
    assert out.values.shape == (1, 10)
    assert list(out.values[0]) == list(np.arange(10, dtype=float))


def test_non_overlapping_frames_partition_input():
    window = Window(size=4)
    out = window.process([scalar_chunk(np.arange(12))])
    assert out.values.shape == (3, 4)
    assert np.array_equal(out.values.ravel(), np.arange(12, dtype=float))


def test_hop_gives_overlap():
    window = Window(size=4, hop=2)
    out = window.process([scalar_chunk(np.arange(8))])
    # frames start at 0, 2, 4
    assert out.values.shape == (3, 4)
    assert list(out.values[1]) == [2.0, 3.0, 4.0, 5.0]


def test_frame_timestamp_is_last_sample():
    window = Window(size=5)
    chunk = scalar_chunk(np.arange(5), rate_hz=50.0)
    out = window.process([chunk])
    assert out.times[0] == pytest.approx(chunk.times[-1])


def test_state_carries_across_chunks():
    window = Window(size=6)
    first = window.process([scalar_chunk(np.arange(4))])
    assert first.is_empty
    second = window.process([scalar_chunk(np.arange(4, 8), t0=4 / 50.0)])
    assert second.values.shape == (1, 6)
    assert list(second.values[0]) == [0, 1, 2, 3, 4, 5]


def test_hamming_tapers_edges():
    window = Window(size=16, shape="hamming")
    out = window.process([scalar_chunk(np.ones(16))])
    frame = out.values[0]
    assert frame[0] == pytest.approx(0.08, abs=0.01)
    assert frame[8] > 0.9


def test_reset_clears_buffer():
    window = Window(size=4)
    window.process([scalar_chunk(np.arange(3))])
    window.reset()
    out = window.process([scalar_chunk(np.arange(3))])
    assert out.is_empty


def test_output_kind_is_frame():
    assert Window(size=4).output_kind is StreamKind.FRAME


def test_invalid_shape_rejected():
    with pytest.raises(ParameterError):
        Window(size=4, shape="blackman")


def test_invalid_size_rejected():
    with pytest.raises(ParameterError):
        Window(size=0)


def test_shape_propagation_rate_and_width():
    from repro.algorithms.base import StreamShape
    window = Window(size=100, hop=50)
    shape = window.propagate_shape(
        [StreamShape(StreamKind.SCALAR, 1000.0, 1, 1000.0)]
    )
    assert shape.kind is StreamKind.FRAME
    assert shape.items_per_second == pytest.approx(20.0)
    assert shape.width == 100
