"""Unit tests for aggregation algorithms."""

import numpy as np

from repro.algorithms.aggregate import MaxOf, MeanOf, MinOf, SumOf
from tests.conftest import scalar_chunk


def _pair():
    return [scalar_chunk([1.0, 4.0, 2.0]), scalar_chunk([3.0, 2.0, 2.0])]


def test_min_of():
    assert list(MinOf().process(_pair()).values) == [1.0, 2.0, 2.0]


def test_max_of():
    assert list(MaxOf().process(_pair()).values) == [3.0, 4.0, 2.0]


def test_sum_of():
    assert list(SumOf().process(_pair()).values) == [4.0, 6.0, 4.0]


def test_mean_of():
    assert list(MeanOf().process(_pair()).values) == [2.0, 3.0, 2.0]


def test_three_inputs():
    chunks = [scalar_chunk([1.0]), scalar_chunk([2.0]), scalar_chunk([3.0])]
    assert SumOf().process(chunks).values[0] == 6.0


def test_empty_passthrough():
    empty = scalar_chunk([])
    assert MinOf().process([empty, empty]).is_empty


def test_times_from_first_input():
    a = scalar_chunk([1.0, 2.0], rate_hz=50.0)
    b = scalar_chunk([3.0, 4.0], rate_hz=50.0)
    out = MaxOf().process([a, b])
    assert np.allclose(out.times, a.times)
