"""Unit tests for recall/precision metrics."""

import pytest

from repro.apps.base import Detection
from repro.eval.metrics import match_events, precision_score, recall_score
from repro.traces.base import GroundTruthEvent


def _event(start, end, label="x"):
    return GroundTruthEvent.make(label, start, end)


def test_perfect_match():
    events = [_event(1.0, 2.0), _event(5.0, 6.0)]
    detections = [Detection(1.5), Detection(5.5)]
    match = match_events(events, detections, 0.5)
    assert match.recall == 1.0
    assert match.precision == 1.0
    assert match.f1 == 1.0


def test_missed_event_lowers_recall():
    events = [_event(1.0, 2.0), _event(5.0, 6.0)]
    match = match_events(events, [Detection(1.5)], 0.5)
    assert match.recall == 0.5
    assert match.precision == 1.0


def test_false_detection_lowers_precision():
    events = [_event(1.0, 2.0)]
    match = match_events(events, [Detection(1.5), Detection(40.0)], 0.5)
    assert match.precision == 0.5
    assert match.recall == 1.0


def test_tolerance_widens_matching():
    events = [_event(10.0, 11.0)]
    detection = [Detection(9.2)]
    assert match_events(events, detection, 0.5).recall == 0.0
    assert match_events(events, detection, 1.0).recall == 1.0


def test_interval_detection_overlap():
    events = [_event(10.0, 20.0)]
    match = match_events(events, [Detection(2.0, end=10.5)], 0.0)
    assert match.recall == 1.0


def test_empty_events_recall_one():
    assert recall_score([], [Detection(1.0)], 0.5) == 1.0


def test_empty_detections_precision_one():
    assert precision_score([_event(1.0, 2.0)], [], 0.5) == 1.0


def test_f1_zero_when_both_zero():
    match = match_events([_event(1.0, 2.0)], [Detection(99.0)], 0.1)
    assert match.recall == 0.0 and match.precision == 0.0
    assert match.f1 == 0.0


def test_one_detection_catches_adjacent_events():
    events = [_event(1.0, 2.0), _event(2.1, 3.0)]
    match = match_events(events, [Detection(1.9, end=2.2)], 0.2)
    assert match.recall == 1.0


def test_indices_reported():
    events = [_event(1.0, 2.0), _event(5.0, 6.0)]
    detections = [Detection(40.0), Detection(5.5)]
    match = match_events(events, detections, 0.2)
    assert match.caught_events == (1,)
    assert match.true_detections == (1,)


def test_scores_bounded():
    events = [_event(float(i), float(i) + 0.5) for i in range(0, 20, 2)]
    detections = [Detection(float(i) / 3) for i in range(30)]
    match = match_events(events, detections, 0.3)
    assert 0.0 <= match.recall <= 1.0
    assert 0.0 <= match.precision <= 1.0
