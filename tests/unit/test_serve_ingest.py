"""Streaming ingestion through the service: chunks in, wake events out.

The contract under test is the tentpole identity: a subscription fed a
stream chunk by chunk — across pump rounds, device retries, even a
crash and journal recovery in the middle — emits **bit-identical**
wake events to running the same condition over the finally assembled
trace whole.  Plus the request-path furniture around it: structured
rejections, idempotent re-push, stream-only pump rounds, and the new
``stream_*`` metrics fields.
"""

import numpy as np
import pytest

from repro.api.manager import validate_condition
from repro.errors import TraceError
from repro.sim.simulator import run_wakeup_condition
from repro.serve import (
    HUB_CATALOGS,
    ConditionService,
    Rejected,
    Submission,
)

RATE = 50.0

#: One template per stream-state flavour: bounded incremental replay,
#: chunk-invariant whole-graph replay (debounced extrema), and the
#: round-replica fallback (expMovingAvg is round-seeded).
CONDITIONS = {
    "incremental": (
        "ACC_X -> movingAvg(id=1, params={10});"
        "1 -> minThreshold(id=2, params={0.4});"
        "2 -> OUT;"
    ),
    "chunked_replay": (
        "ACC_X -> localExtrema(id=1, params={max, 0.3, 10, 3});"
        "1 -> OUT;"
    ),
    "round_replay": (
        "ACC_X -> expMovingAvg(id=1, params={0.5});"
        "1 -> maxThreshold(id=2, params={0.1});"
        "2 -> OUT;"
    ),
}


def _chunks(seed=0, count=8, n=100):
    rng = np.random.default_rng(seed)
    return [
        {
            "ACC_X": rng.normal(0.35, 0.35, size=n),
            "ACC_Y": rng.normal(0.7, 0.25, size=n),
        }
        for _ in range(count)
    ]


def _push_all(service, chunks, tenant="t0", stream="s0", pump_every=1,
              start=0):
    for seq, chunk in enumerate(chunks, start=start):
        service.push_chunk(
            tenant, stream, seq, chunk,
            rate_hz={"ACC_X": RATE, "ACC_Y": RATE} if seq == 0 else None,
        )
        if (seq + 1) % pump_every == 0:
            service.pump()


def _reference(il, chunks, chunk_seconds=4.0):
    """The whole-trace answer: assemble, then one direct engine run."""
    from repro.traces.stream import StreamBuffer
    buffer = StreamBuffer("s0", {"ACC_X": RATE, "ACC_Y": RATE})
    for seq, chunk in enumerate(chunks):
        buffer.push(seq, chunk)
    _, graph, _ = validate_condition(il, HUB_CATALOGS["default"])
    return tuple(run_wakeup_condition(graph, buffer.to_trace(), chunk_seconds))


class TestStreamedEqualsWhole:
    @pytest.mark.parametrize("name", sorted(CONDITIONS))
    def test_streamed_events_bit_identical(self, name):
        il = CONDITIONS[name]
        chunks = _chunks(seed=3)
        service = ConditionService(traces={})
        _push_all(service, chunks[:1])
        sub_id = service.subscribe_stream(
            Submission(tenant="t0", trace="s0", il=il)
        )
        assert isinstance(sub_id, int)
        _push_all(service, chunks[1:], pump_every=3, start=1)
        logs = service.close_stream("t0", "s0")
        assert logs[sub_id] == _reference(il, chunks)
        assert service.stream_results(sub_id) == logs[sub_id]

    def test_many_subscriptions_one_stream(self):
        chunks = _chunks(seed=9)
        service = ConditionService(traces={})
        _push_all(service, chunks[:1])
        subs = {
            name: service.subscribe_stream(
                Submission(tenant="t0", trace="s0", il=il)
            )
            for name, il in CONDITIONS.items()
        }
        _push_all(service, chunks[1:], pump_every=2, start=1)
        logs = service.close_stream("t0", "s0")
        for name, il in CONDITIONS.items():
            assert logs[subs[name]] == _reference(il, chunks), name

    def test_duplicate_seq_does_not_skew_results(self):
        il = CONDITIONS["incremental"]
        chunks = _chunks(seed=5)
        service = ConditionService(traces={})
        _push_all(service, chunks[:1])
        sub_id = service.subscribe_stream(
            Submission(tenant="t0", trace="s0", il=il)
        )
        for seq, chunk in enumerate(chunks[1:], start=1):
            service.push_chunk("t0", "s0", seq, chunk)
            # Reconnect retry: the same seq again is a counted no-op.
            assert not service.push_chunk("t0", "s0", seq, chunk)
            service.pump()
        assert service.close_stream("t0", "s0")[sub_id] == _reference(
            il, chunks
        )


class TestRequestPath:
    def test_app_submission_rejected(self):
        service = ConditionService(traces={})
        service.push_chunk(
            "t0", "s0", 0, _chunks(count=1)[0],
            rate_hz={"ACC_X": RATE, "ACC_Y": RATE},
        )
        rejected = service.subscribe_stream(
            Submission(tenant="t0", trace="s0", app="pedometer")
        )
        assert isinstance(rejected, Rejected)
        assert rejected.reason == "invalid_subscription"

    def test_unknown_stream_rejected(self):
        service = ConditionService(traces={})
        rejected = service.subscribe_stream(
            Submission(tenant="t0", trace="nope", il=CONDITIONS["incremental"])
        )
        assert isinstance(rejected, Rejected)
        assert "no chunks yet" in rejected.detail

    def test_missing_channel_rejected(self):
        service = ConditionService(traces={})
        service.push_chunk(
            "t0", "s0", 0, {"ACC_X": np.zeros(100)}, rate_hz={"ACC_X": RATE}
        )
        rejected = service.subscribe_stream(
            Submission(
                tenant="t0", trace="s0",
                il="MIC -> maxThreshold(id=1, params={0.5}); 1 -> OUT;",
            )
        )
        assert isinstance(rejected, Rejected)
        assert "MIC" in rejected.detail

    def test_first_chunk_must_carry_rate(self):
        from repro.errors import ServiceError
        service = ConditionService(traces={})
        with pytest.raises(ServiceError, match="rate_hz"):
            service.push_chunk("t0", "s0", 0, {"ACC_X": np.zeros(10)})

    def test_sequence_gap_raises(self):
        service = ConditionService(traces={})
        service.push_chunk(
            "t0", "s0", 0, {"ACC_X": np.zeros(100)}, rate_hz={"ACC_X": RATE}
        )
        with pytest.raises(TraceError, match="chunks must append in order"):
            service.push_chunk("t0", "s0", 2, {"ACC_X": np.zeros(100)})

    def test_stream_cursor_tracks_next_seq(self):
        service = ConditionService(traces={})
        assert service.stream_cursor("t0", "s0") == 0
        for seq, chunk in enumerate(_chunks(count=3)):
            service.push_chunk(
                "t0", "s0", seq, chunk,
                rate_hz={"ACC_X": RATE, "ACC_Y": RATE} if seq == 0 else None,
            )
        assert service.stream_cursor("t0", "s0") == 3


class TestPumpAndMetrics:
    def test_stream_only_pump_advances(self):
        service = ConditionService(traces={})
        chunks = _chunks(seed=1, count=2)
        _push_all(service, chunks[:1])
        sub_id = service.subscribe_stream(
            Submission(tenant="t0", trace="s0", il=CONDITIONS["incremental"])
        )
        assert service.metrics().stream_backlog > 0
        responses = service.pump()  # no queued submissions: stream-only
        assert responses == []
        snap = service.metrics()
        assert snap.stream_backlog == 0
        assert snap.stream_lag_s == 0.0
        assert snap.stream_chunks == 1
        assert snap.stream_subscriptions == 1
        assert snap.stream_rounds > 0
        assert service.stream_results(sub_id)  # events already emitted

    def test_occupancy_stacks_same_template(self):
        """Same-batch_key subscriptions share each round's dispatches."""
        service = ConditionService(traces={})
        chunks = _chunks(seed=2)
        thresholds = (0.2, 0.3, 0.4, 0.5)
        _push_all(service, chunks[:1])
        for threshold in thresholds:
            result = service.subscribe_stream(
                Submission(
                    tenant="t0", trace="s0",
                    il=(
                        "ACC_X -> movingAvg(id=1, params={10});"
                        f"1 -> minThreshold(id=2, params={{{threshold}}});"
                        "2 -> OUT;"
                    ),
                )
            )
            assert isinstance(result, int)
        _push_all(service, chunks[1:], pump_every=1, start=1)
        snap = service.metrics()
        assert snap.stream_cells >= len(thresholds) * snap.stream_rounds
        assert snap.stream_occupancy >= len(thresholds)

    def test_empty_pump_stays_noop(self):
        service = ConditionService(traces={})
        assert service.pump() == []
        assert service.metrics().stream_rounds == 0


class TestRecovery:
    def test_mid_stream_crash_recovers_bit_identical(self, tmp_path):
        il = CONDITIONS["incremental"]
        chunks = _chunks(seed=11)
        journal = tmp_path / "shard.journal"

        service = ConditionService(traces={}, journal=journal)
        _push_all(service, chunks[:1])
        sub_id = service.subscribe_stream(
            Submission(tenant="t0", trace="s0", il=il)
        )
        for seq in range(1, 5):
            service.push_chunk("t0", "s0", seq, chunks[seq])
            service.pump()
        # Crash: a new service rebuilds buffers + subscriptions from the
        # journal's chunk/sub records and catches the cursor up.
        recovered, _ = ConditionService.recover(journal, traces={})
        resync = recovered.stream_cursor("t0", "s0")
        assert resync == 5
        # The device re-pushes from the resync point (idempotent dupes
        # below it would be no-ops) and the drive finishes normally.
        for seq in range(resync, len(chunks)):
            recovered.push_chunk("t0", "s0", seq, chunks[seq])
            recovered.pump()
        logs = recovered.close_stream("t0", "s0")
        assert logs[sub_id] == _reference(il, chunks)

    def test_unflushed_chunks_fall_off_and_repush(self, tmp_path):
        """Chunks pushed but never flushed are simply not applied after
        recovery; the resync cursor tells the device where to resume."""
        il = CONDITIONS["incremental"]
        chunks = _chunks(seed=13)
        journal = tmp_path / "shard.journal"

        service = ConditionService(traces={}, journal=journal)
        _push_all(service, chunks[:1])
        sub_id = service.subscribe_stream(
            Submission(tenant="t0", trace="s0", il=il)
        )
        service.pump()  # flushes chunk 0 + the subscription
        # These two never hit a pump, so they are buffered, not durable.
        service.push_chunk("t0", "s0", 1, chunks[1])
        service.push_chunk("t0", "s0", 2, chunks[2])

        recovered, _ = ConditionService.recover(journal, traces={})
        resync = recovered.stream_cursor("t0", "s0")
        assert resync == 1
        for seq in range(resync, len(chunks)):
            recovered.push_chunk("t0", "s0", seq, chunks[seq])
            recovered.pump()
        logs = recovered.close_stream("t0", "s0")
        assert logs[sub_id] == _reference(il, chunks)
