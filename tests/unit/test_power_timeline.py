"""Unit tests for device state timelines."""

import pytest

from repro.errors import SimulationError
from repro.power.phone import NEXUS4
from repro.power.timeline import (
    Interval,
    PhoneState,
    Timeline,
    always_awake_timeline,
    build_timeline,
    merge_windows,
)


class TestMergeWindows:
    def test_sorts_and_merges_overlaps(self):
        merged = merge_windows([(5.0, 7.0), (1.0, 3.0), (2.5, 4.0)], min_gap=0.0)
        assert merged == [(1.0, 4.0), (5.0, 7.0)]

    def test_merges_short_gaps(self):
        merged = merge_windows([(0.0, 2.0), (3.0, 4.0)], min_gap=2.0)
        assert merged == [(0.0, 4.0)]

    def test_drops_empty_windows(self):
        assert merge_windows([(3.0, 3.0), (5.0, 4.0)], min_gap=0.0) == []


class TestBuildTimeline:
    def test_covers_exactly_duration(self):
        timeline = build_timeline(100.0, [(10.0, 20.0), (50.0, 60.0)], NEXUS4)
        assert timeline.intervals[0].start == 0.0
        assert timeline.intervals[-1].end == pytest.approx(100.0)
        total = sum(i.duration for i in timeline.intervals)
        assert total == pytest.approx(100.0)

    def test_transitions_surround_awake_windows(self):
        timeline = build_timeline(100.0, [(10.0, 20.0)], NEXUS4)
        states = [i.state for i in timeline.intervals]
        assert states == [
            PhoneState.ASLEEP,
            PhoneState.WAKING,
            PhoneState.AWAKE,
            PhoneState.SLEEPING,
            PhoneState.ASLEEP,
        ]
        assert timeline.seconds_in(PhoneState.WAKING) == pytest.approx(1.0)
        assert timeline.seconds_in(PhoneState.SLEEPING) == pytest.approx(1.0)

    def test_no_windows_means_asleep(self):
        timeline = build_timeline(50.0, [], NEXUS4)
        assert timeline.asleep_seconds == pytest.approx(50.0)
        assert timeline.wakeup_count == 0

    def test_short_gap_stays_awake(self):
        # A 1.5 s gap cannot fit a 2 s transition round trip.
        timeline = build_timeline(30.0, [(5.0, 10.0), (11.5, 15.0)], NEXUS4)
        assert timeline.wakeup_count == 1
        assert timeline.awake_seconds == pytest.approx(10.0)

    def test_barely_fitting_gap_sleeps_briefly(self):
        timeline = build_timeline(30.0, [(5.0, 10.0), (12.5, 15.0)], NEXUS4)
        assert timeline.wakeup_count == 2
        # Gap of 2.5 s: two 1 s transitions around a 0.5 s sleep.
        sandwiched = [
            i for i in timeline.intervals
            if i.state is PhoneState.ASLEEP and 10.0 <= i.start < 12.5
        ]
        assert len(sandwiched) == 1
        assert sandwiched[0].duration == pytest.approx(0.5)

    def test_exact_round_trip_gap_sleeps_zero(self):
        # A gap of exactly one sleep + wake transition round trip is
        # kept: the device attempts the sleep and gets zero real sleep
        # (this is what makes 2 s duty cycling cost more than staying
        # awake, Section 5.4).
        timeline = build_timeline(30.0, [(5.0, 10.0), (12.0, 15.0)], NEXUS4)
        assert timeline.wakeup_count == 2
        sandwiched = [
            i for i in timeline.intervals
            if i.state is PhoneState.ASLEEP and 10.0 <= i.start < 12.0
        ]
        assert not sandwiched

    def test_window_at_start_begins_awake(self):
        timeline = build_timeline(20.0, [(0.0, 5.0)], NEXUS4)
        assert timeline.intervals[0].state is PhoneState.AWAKE

    def test_window_to_end_has_no_tail_sleep(self):
        timeline = build_timeline(20.0, [(15.0, 20.0)], NEXUS4)
        assert timeline.intervals[-1].state is PhoneState.AWAKE

    def test_windows_clipped_to_duration(self):
        timeline = build_timeline(20.0, [(18.0, 40.0)], NEXUS4)
        assert timeline.intervals[-1].end == pytest.approx(20.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(SimulationError):
            build_timeline(0.0, [], NEXUS4)

    def test_short_lead_time_compresses_transition(self):
        timeline = build_timeline(20.0, [(0.5, 5.0)], NEXUS4)
        assert timeline.intervals[0].state is PhoneState.WAKING
        assert timeline.intervals[0].duration == pytest.approx(0.5)


class TestTimelineMath:
    def test_gap_rejected(self):
        with pytest.raises(SimulationError, match="gap"):
            Timeline([
                Interval(PhoneState.AWAKE, 0.0, 5.0),
                Interval(PhoneState.ASLEEP, 6.0, 10.0),
            ])

    def test_negative_interval_rejected(self):
        with pytest.raises(SimulationError):
            Timeline([Interval(PhoneState.AWAKE, 5.0, 1.0)])

    def test_always_awake_average_power(self):
        timeline = always_awake_timeline(600.0)
        assert timeline.average_power_mw(NEXUS4) == pytest.approx(323.0)

    def test_asleep_average_power(self):
        timeline = build_timeline(600.0, [], NEXUS4)
        assert timeline.average_power_mw(NEXUS4) == pytest.approx(9.7)

    def test_duty_cycle_2s_interval_exceeds_always_awake(self):
        # Section 5.4: with a 2 s sleep interval the round trip leaves no
        # real sleep, and the transition overhead pushes the average
        # *above* Always Awake's 323 mW.
        windows = []
        t = 0.0
        while t < 600.0:
            windows.append((t, t + 4.0))
            t += 4.0 + 2.0
        timeline = build_timeline(600.0, windows, NEXUS4)
        avg = timeline.average_power_mw(NEXUS4)
        assert avg > NEXUS4.awake_mw
        assert avg == pytest.approx(336.0, abs=2.0)

    def test_energy_is_power_times_time(self):
        timeline = build_timeline(100.0, [(10.0, 30.0)], NEXUS4)
        assert timeline.energy_mj(NEXUS4) == pytest.approx(
            timeline.average_power_mw(NEXUS4) * 100.0
        )

    def test_awake_windows_roundtrip(self):
        windows = [(10.0, 20.0), (50.0, 55.0)]
        timeline = build_timeline(100.0, windows, NEXUS4)
        assert timeline.awake_windows() == windows
