"""Unit tests for the six sensing configurations."""

import pytest

from repro.apps import HeadbuttApp, StepsApp, TransitionsApp
from repro.errors import SimulationError
from repro.sim import (
    AlwaysAwake,
    Batching,
    DutyCycling,
    Oracle,
    PredefinedActivity,
    Sidewinder,
)


class TestAlwaysAwake:
    def test_power_is_awake_constant(self, robot_trace):
        result = AlwaysAwake().run(StepsApp(), robot_trace)
        assert result.average_power_mw == pytest.approx(323.0)
        assert result.recall == 1.0
        assert result.power.awake_fraction == 1.0
        assert result.mcu_names == ()


class TestOracle:
    def test_perfect_metrics(self, robot_trace):
        result = Oracle().run(HeadbuttApp(), robot_trace)
        assert result.recall == 1.0
        assert result.precision == 1.0

    def test_cheapest_configuration(self, robot_trace):
        for app_cls in (StepsApp, TransitionsApp, HeadbuttApp):
            oracle = Oracle().run(app_cls(), robot_trace).average_power_mw
            sidewinder = Sidewinder().run(app_cls(), robot_trace).average_power_mw
            always = AlwaysAwake().run(app_cls(), robot_trace).average_power_mw
            assert oracle <= sidewinder <= always

    def test_awake_tracks_event_time(self, robot_trace, quiet_robot_trace):
        busy = Oracle().run(StepsApp(), robot_trace).average_power_mw
        quiet = Oracle().run(StepsApp(), quiet_robot_trace).average_power_mw
        assert busy > quiet  # group 2 walks much more than group 1

    def test_no_hub_charged(self, robot_trace):
        assert Oracle().run(StepsApp(), robot_trace).power.hub_mw == 0.0


class TestDutyCycling:
    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            DutyCycling(0.0)

    def test_name_embeds_interval(self):
        assert DutyCycling(10).name == "duty_cycling_10s"

    def test_short_interval_beats_nothing(self, robot_trace):
        # Section 5.4: a 2 s interval costs more than Always Awake.
        result = DutyCycling(2.0).run(StepsApp(), robot_trace)
        assert result.average_power_mw > 323.0

    def test_longer_interval_cheaper(self, quiet_robot_trace):
        short = DutyCycling(5.0).run(HeadbuttApp(), quiet_robot_trace)
        long = DutyCycling(30.0).run(HeadbuttApp(), quiet_robot_trace)
        assert long.average_power_mw < short.average_power_mw

    def test_recall_degrades_with_interval(self, quiet_robot_trace):
        short = DutyCycling(2.0).run(TransitionsApp(), quiet_robot_trace)
        long = DutyCycling(30.0).run(TransitionsApp(), quiet_robot_trace)
        assert long.recall <= short.recall

    def test_no_hub_charged(self, robot_trace):
        assert DutyCycling(10).run(StepsApp(), robot_trace).power.hub_mw == 0.0


class TestBatching:
    def test_perfect_recall(self, robot_trace):
        for app_cls in (StepsApp, TransitionsApp, HeadbuttApp):
            result = Batching(10.0).run(app_cls(), robot_trace)
            assert result.recall == 1.0, app_cls.name

    def test_msp430_charged(self, robot_trace):
        result = Batching(10.0).run(StepsApp(), robot_trace)
        assert result.power.hub_mw == pytest.approx(3.6)
        assert result.mcu_names == ("TI MSP430",)

    def test_longer_interval_cheaper(self, quiet_robot_trace):
        short = Batching(5.0).run(HeadbuttApp(), quiet_robot_trace)
        long = Batching(30.0).run(HeadbuttApp(), quiet_robot_trace)
        assert long.average_power_mw < short.average_power_mw

    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            Batching(-1.0)


class TestPredefinedActivity:
    def test_same_trigger_for_all_accel_apps(self, robot_trace):
        config = PredefinedActivity()
        powers = {
            app_cls.name: config.run(app_cls(), robot_trace).average_power_mw
            for app_cls in (StepsApp, TransitionsApp, HeadbuttApp)
        }
        # One generic trigger: identical wake windows, identical power.
        assert len({round(p, 6) for p in powers.values()}) == 1

    def test_full_recall_at_default_thresholds(self, robot_trace):
        config = PredefinedActivity()
        for app_cls in (StepsApp, TransitionsApp, HeadbuttApp):
            assert config.run(app_cls(), robot_trace).recall == 1.0

    def test_msp430_charged(self, robot_trace):
        result = PredefinedActivity().run(StepsApp(), robot_trace)
        assert result.power.hub_mw == pytest.approx(3.6)

    def test_higher_threshold_less_power(self, robot_trace):
        sensitive = PredefinedActivity(motion_threshold=0.3)
        lazy = PredefinedActivity(motion_threshold=1.5)
        app = HeadbuttApp()
        assert (
            lazy.run(app, robot_trace).average_power_mw
            <= sensitive.run(app, robot_trace).average_power_mw
        )

    def test_audio_app_uses_sound_pipeline(self, audio_trace):
        from repro.apps import SirenDetectorApp
        result = PredefinedActivity().run(SirenDetectorApp(), audio_trace)
        assert result.recall == 1.0

    def test_unknown_sensor_rejected(self, robot_trace):
        from repro.apps.base import SensingApplication

        class Weird(SensingApplication):
            name = "weird"
            channels = ("ACC_X", "MIC")

        with pytest.raises(SimulationError):
            PredefinedActivity().pipeline_for(Weird())


class TestSidewinder:
    def test_full_recall_all_accel_apps(self, robot_trace):
        for app_cls in (StepsApp, TransitionsApp, HeadbuttApp):
            result = Sidewinder().run(app_cls(), robot_trace)
            assert result.recall == 1.0, app_cls.name

    def test_msp430_for_accel(self, robot_trace):
        result = Sidewinder().run(StepsApp(), robot_trace)
        assert result.mcu_names == ("TI MSP430",)

    def test_lm4f120_for_sirens(self, audio_trace):
        from repro.apps import SirenDetectorApp
        result = Sidewinder().run(SirenDetectorApp(), audio_trace)
        assert result.mcu_names == ("TI LM4F120",)
        assert result.power.hub_mw == pytest.approx(49.4)

    def test_hub_wake_count_recorded(self, robot_trace):
        result = Sidewinder().run(StepsApp(), robot_trace)
        assert result.hub_wake_count > 0

    def test_rare_events_cost_least(self, robot_trace):
        steps = Sidewinder().run(StepsApp(), robot_trace).average_power_mw
        headbutts = Sidewinder().run(HeadbuttApp(), robot_trace).average_power_mw
        assert headbutts < steps
