"""Unit tests for the algorithm registry and base class."""

import pytest

from repro.algorithms.base import (
    available_opcodes,
    create,
    get_algorithm_class,
    register,
)
from repro.errors import ParameterError, UnknownAlgorithmError


def test_known_opcodes_present():
    opcodes = available_opcodes()
    for expected in (
        "movingAvg", "expMovingAvg", "window", "fft", "ifft", "lowPass",
        "highPass", "vectorMagnitude", "zeroCrossingRate", "stat",
        "dominantFrequency", "minThreshold", "maxThreshold",
        "rangeThreshold", "sustainedThreshold", "localExtrema",
        "bandIndicator", "minOf", "maxOf", "sumOf", "meanOf",
    ):
        assert expected in opcodes


def test_unknown_opcode_raises():
    with pytest.raises(UnknownAlgorithmError):
        get_algorithm_class("convolve2d")


def test_create_instantiates_with_params():
    algo = create("movingAvg", size=10)
    assert algo.opcode == "movingAvg"
    assert algo.params == {"size": 10}


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="registered twice"):
        @register("movingAvg")
        class Duplicate:  # pragma: no cover - never used
            pass


def test_parameter_validation_helpers():
    with pytest.raises(ParameterError):
        create("movingAvg", size=-1)
    with pytest.raises(ParameterError):
        create("movingAvg", size="ten")
    with pytest.raises(ParameterError):
        create("movingAvg", size=2.5)
    with pytest.raises(ParameterError):
        create("minThreshold", threshold="high")


def test_bool_is_not_an_integer():
    with pytest.raises(ParameterError):
        create("movingAvg", size=True)


def test_repr_shows_params():
    assert "size=10" in repr(create("movingAvg", size=10))
