"""Unit tests for the streaming local-extrema algorithm."""

import numpy as np
import pytest

from repro.algorithms.peaks import LocalExtrema
from repro.errors import ParameterError
from tests.conftest import scalar_chunk


def _pulse_train(n_pulses, height, rate=50.0, period=25):
    """Signal with raised-cosine pulses of the given peak height."""
    n = n_pulses * period
    signal = np.zeros(n)
    for k in range(n_pulses):
        center = k * period + period // 2
        span = np.arange(-8, 9)
        signal[center + span] += height * 0.5 * (1 + np.cos(np.pi * span / 8))
    return signal


def test_detects_in_band_maxima():
    algo = LocalExtrema("max", low=2.5, high=4.5)
    out = algo.process([scalar_chunk(_pulse_train(4, 3.5))])
    assert len(out) == 4
    assert np.all(out.values >= 2.5) and np.all(out.values <= 4.5)


def test_out_of_band_peaks_ignored():
    algo = LocalExtrema("max", low=2.5, high=4.5)
    out = algo.process([scalar_chunk(_pulse_train(4, 8.0))])
    assert out.is_empty


def test_minima_mode():
    algo = LocalExtrema("min", low=-6.75, high=-3.75)
    out = algo.process([scalar_chunk(-_pulse_train(3, 5.0))])
    assert len(out) == 3
    assert np.all(out.values <= -3.75)


def test_chunked_equals_whole():
    signal = _pulse_train(6, 3.5)
    whole = LocalExtrema("max", 2.5, 4.5).process([scalar_chunk(signal)])
    algo = LocalExtrema("max", 2.5, 4.5)
    parts = []
    for i in range(0, len(signal), 17):
        out = algo.process([scalar_chunk(signal[i : i + 17], t0=i / 50.0)])
        parts.append(out.values)
    chunked = np.concatenate(parts)
    assert np.allclose(chunked, whole.values)


def test_min_separation_debounces():
    # Two adjacent wiggles within the band, closer than min_separation.
    signal = np.zeros(30)
    signal[10] = 3.0
    signal[13] = 3.2
    strict = LocalExtrema("max", 2.5, 4.5, min_separation=10)
    out = strict.process([scalar_chunk(signal)])
    assert len(out) == 1
    loose = LocalExtrema("max", 2.5, 4.5, min_separation=1)
    assert len(loose.process([scalar_chunk(signal)])) == 2


def test_separation_across_chunks():
    signal = np.zeros(30)
    signal[14] = 3.0
    algo = LocalExtrema("max", 2.5, 4.5, min_separation=20)
    first = algo.process([scalar_chunk(signal)])
    assert len(first) == 1
    # Second chunk has a peak 18 samples after the first one (< 20).
    signal2 = np.zeros(30)
    signal2[2] = 3.0
    second = algo.process([scalar_chunk(signal2, t0=0.6)])
    assert second.is_empty


def test_reset():
    algo = LocalExtrema("max", 2.5, 4.5, min_separation=100)
    algo.process([scalar_chunk(_pulse_train(1, 3.5))])
    algo.reset()
    out = algo.process([scalar_chunk(_pulse_train(1, 3.5))])
    assert len(out) == 1


def test_invalid_mode():
    with pytest.raises(ParameterError):
        LocalExtrema("saddle", 0.0, 1.0)


def test_invalid_band():
    with pytest.raises(ParameterError):
        LocalExtrema("max", 5.0, 1.0)
