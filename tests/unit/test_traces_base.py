"""Unit tests for Trace and GroundTruthEvent containers."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.base import GroundTruthEvent, Trace


def _trace(duration=10.0, rate=50.0, events=()):
    n = int(duration * rate)
    return Trace(
        name="test",
        data={"ACC_X": np.zeros(n)},
        rate_hz={"ACC_X": rate},
        duration=duration,
        events=list(events),
    )


class TestGroundTruthEvent:
    def test_duration_and_midpoint(self):
        event = GroundTruthEvent.make("walking", 2.0, 6.0)
        assert event.duration == 4.0
        assert event.midpoint == 4.0

    def test_metadata_access(self):
        event = GroundTruthEvent.make("walking", 0.0, 1.0, step_times=(0.5,))
        assert event.meta("step_times") == (0.5,)
        assert event.meta("missing", "default") == "default"

    def test_backwards_event_rejected(self):
        with pytest.raises(TraceError):
            GroundTruthEvent("x", 5.0, 2.0)

    def test_hashable(self):
        assert hash(GroundTruthEvent.make("a", 0.0, 1.0, k=(1, 2)))


class TestTrace:
    def test_requires_channels(self):
        with pytest.raises(TraceError, match="no channels"):
            Trace("t", {}, {}, 1.0)

    def test_unknown_channel_rejected(self):
        from repro.errors import UnknownChannelError
        with pytest.raises(UnknownChannelError):
            Trace("t", {"FOO": np.zeros(10)}, {"FOO": 10.0}, 1.0)

    def test_sample_count_must_match_duration(self):
        with pytest.raises(TraceError, match="inconsistent"):
            Trace("t", {"ACC_X": np.zeros(10)}, {"ACC_X": 50.0}, 10.0)

    def test_event_outside_trace_rejected(self):
        with pytest.raises(TraceError, match="outside"):
            _trace(events=[GroundTruthEvent.make("x", 5.0, 20.0)])

    def test_events_sorted(self):
        trace = _trace(
            events=[
                GroundTruthEvent.make("b", 5.0, 6.0),
                GroundTruthEvent.make("a", 1.0, 2.0),
            ]
        )
        assert [e.label for e in trace.events] == ["a", "b"]

    def test_times_spacing(self):
        trace = _trace(rate=50.0)
        times = trace.times("ACC_X")
        assert times[1] - times[0] == pytest.approx(0.02)

    def test_events_with_label_and_seconds(self):
        trace = _trace(
            events=[
                GroundTruthEvent.make("walking", 0.0, 4.0),
                GroundTruthEvent.make("headbutt", 5.0, 5.5),
            ]
        )
        assert len(trace.events_with_label("walking")) == 1
        assert trace.event_seconds("walking") == pytest.approx(4.0)
        assert trace.event_seconds() == pytest.approx(4.5)

    def test_slice_rebases_times_and_events(self):
        trace = _trace(
            duration=10.0,
            events=[GroundTruthEvent.make("walking", 3.0, 7.0)],
        )
        part = trace.slice(2.0, 8.0)
        assert part.duration == pytest.approx(6.0)
        assert len(part.data["ACC_X"]) == 300
        event = part.events[0]
        assert event.start == pytest.approx(1.0)
        assert event.end == pytest.approx(5.0)

    def test_slice_clips_partial_events(self):
        trace = _trace(
            duration=10.0,
            events=[GroundTruthEvent.make("walking", 0.0, 5.0)],
        )
        part = trace.slice(4.0, 10.0)
        assert part.events[0].end == pytest.approx(1.0)

    def test_empty_slice_rejected(self):
        with pytest.raises(TraceError):
            _trace().slice(5.0, 5.0)

    def test_channel_arrays_structure(self):
        trace = _trace()
        arrays = trace.channel_arrays()
        times, values, rate = arrays["ACC_X"]
        assert len(times) == len(values)
        assert rate == 50.0
