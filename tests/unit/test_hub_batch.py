"""Tensor-major batched execution: eligibility and bit-exact equivalence.

The batched path (`repro.hub.compile.BatchedPlan`) stacks *B* traces'
channel arrays into ``(B, n_max)`` tensors and runs every node's
``lower_batched`` rule once.  Its correctness contract extends the
compiled path's: each row of a batched execution must be *bit-identical*
to the per-trace compiled plan — and therefore to the fused path and
the round-by-round interpreter oracle at any chunking.  This module
checks:

* for each equivalence program (shared with the fused and compiled
  suites), every row of a ragged batch matches per-trace compiled,
  fused, and round-by-round execution exactly (times AND values);
* equivalence holds under randomized algorithm parameters and
  randomized irregular chunking, not just the shipped constants;
* rows are independent: duplicated rows agree with each other and with
  a batch of one;
* ineligible graphs get human-readable reasons (inherited compile
  reasons; non-scalar output streams) and ``compile_batched`` refuses
  them;
* the engine's :meth:`RunContext.wake_events_batch` is bit-identical
  to per-pair :meth:`RunContext.wake_events`, fills the same cache,
  counts batch rounds, and falls back cleanly when batching is off.
"""

import numpy as np
import pytest

from repro.errors import HubExecutionError
from repro.hub.compile import (
    batch_eligibility,
    compile_batched,
    compile_graph,
)
from repro.hub.costmodel import CostModel
from repro.hub.runtime import HubRuntime, split_into_rounds
from repro.sim.engine import RunContext
from repro.traces.base import Trace
from tests.unit.test_fused_runtime import (
    EMA_PROGRAM,
    PROGRAMS,
    RATE,
    _events,
    _graph,
    _random_rounds,
    _signal,
)
from tests.unit.test_hub_compile import TEMPLATES

#: Ragged row durations — deliberately not multiples of each other or
#: of any chunk size, so padding and per-row lengths are exercised.
RAGGED_S = (30.0, 17.3, 24.9, 8.6)

WINDOW_OUT_PROGRAM = (
    "ACC_X -> window(id=1, params={16, 16, rectangular});"
    "1 -> OUT;"
)


def _rows(durations=RAGGED_S, seed0=0):
    """One channel-data mapping per trace, ragged lengths."""
    return [
        _signal(duration_s=duration, seed=seed0 + k)
        for k, duration in enumerate(durations)
    ]


def _trace(name, duration_s, seed):
    """A Trace wrapping `_signal` arrays (times match Trace.times)."""
    data = _signal(duration_s=duration_s, seed=seed)
    return Trace(
        name=name,
        data={channel: values for channel, (_, values, _) in data.items()},
        rate_hz={channel: rate for channel, (_, _, rate) in data.items()},
        duration=duration_s,
    )


class TestEligibility:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_shipped_programs_are_batch_eligible(self, name):
        assert batch_eligibility(_graph(PROGRAMS[name])) is None

    def test_compile_reasons_carry_over(self):
        reason = batch_eligibility(_graph(EMA_PROGRAM))
        assert reason is not None
        assert "expMovingAvg" in reason

    def test_non_scalar_output_blocks_batching_with_reason(self):
        graph = _graph(WINDOW_OUT_PROGRAM)
        # Compilable (window is chunk-invariant with a lowering rule)...
        assert batch_eligibility(graph) is not None
        # ...but not batchable: unstacking needs scalar output items.
        assert "scalar output stream" in batch_eligibility(graph)

    def test_compile_batched_refuses_ineligible_graph(self):
        with pytest.raises(HubExecutionError, match="not batch-eligible"):
            compile_batched(_graph(EMA_PROGRAM))


class TestBatchedEquivalence:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_rows_match_compiled_fused_and_rounds(self, name):
        graph = _graph(PROGRAMS[name])
        rows = _rows()
        batched = compile_batched(graph).execute_batch(rows)
        plan = compile_graph(graph)
        for row, row_events in zip(rows, batched):
            assert row_events == plan.execute(row)
            by_rounds = _events(graph, split_into_rounds(row, 4.0))
            assert row_events == by_rounds  # exact times AND values
            graph.reset()
            assert HubRuntime(graph).run_fused(row) == by_rounds

    @pytest.mark.parametrize("template", sorted(TEMPLATES))
    @pytest.mark.parametrize("seed", [30, 31, 32])
    def test_random_params_and_chunking(self, template, seed):
        rng = np.random.default_rng(seed)
        graph = _graph(TEMPLATES[template](rng))
        durations = [float(rng.uniform(6.0, 30.0)) for _ in range(3)]
        rows = _rows(durations, seed0=seed)
        batched = compile_batched(graph).execute_batch(rows)
        for row, row_events in zip(rows, batched):
            assert row_events == _events(graph, _random_rounds(row, rng))

    def test_batch_of_one_matches_per_trace(self):
        graph = _graph(PROGRAMS["significant_motion"])
        row = _signal(duration_s=12.0, seed=7)
        [events] = compile_batched(graph).execute_batch([row])
        assert events == compile_graph(graph).execute(row)

    def test_rows_are_independent(self):
        graph = _graph(PROGRAMS["window_stat"])
        a = _signal(duration_s=20.0, seed=1)
        b = _signal(duration_s=9.4, seed=2)
        first, middle, last = compile_batched(graph).execute_batch([a, b, a])
        assert first == last
        assert first == compile_graph(graph).execute(a)
        assert middle == compile_graph(graph).execute(b)


class TestWakeEventsBatch:
    """Engine-level batching: bit-identity, caching, counters."""

    def _pairs(self, count=4):
        graph = _graph(PROGRAMS["significant_motion"])
        traces = [
            _trace(f"t{k}", duration, seed=k)
            for k, duration in enumerate(RAGGED_S[:count])
        ]
        return graph, [(graph, trace) for trace in traces]

    def _pinned_context(self, graph, **kwargs):
        """A context whose cost model is pre-settled on ``compiled``."""
        context = RunContext(**kwargs)
        fingerprint = context.fingerprint(graph.program)
        context.cost_model = CostModel(table={fingerprint: "compiled"})
        return context

    def test_bit_identical_to_per_pair_wake_events(self):
        graph, pairs = self._pairs()
        reference = RunContext(batch=False)
        expected = [
            reference.wake_events(g, trace) for g, trace in pairs
        ]
        batched = self._pinned_context(graph).wake_events_batch(pairs)
        assert batched == expected

    def test_probing_context_is_also_bit_identical(self):
        # No pinned table: the first rows probe tiers one at a time,
        # and the remainder batches once the model settles.
        graph, pairs = self._pairs()
        reference = RunContext(batch=False)
        expected = [
            reference.wake_events(g, trace) for g, trace in pairs
        ]
        assert RunContext().wake_events_batch(pairs) == expected

    def test_counts_one_round_and_fills_the_cache(self):
        graph, pairs = self._pairs()
        context = self._pinned_context(graph)
        results = context.wake_events_batch(pairs)
        assert context.stats.batch_rounds == 1
        assert context.stats.batched_cells == len(pairs)
        assert context.stats.hub_misses == len(pairs)
        # Later per-pair calls hit the same cache entries.
        hits_before = context.stats.hub_hits
        for (g, trace), events in zip(pairs, results):
            assert context.wake_events(g, trace) == events
        assert context.stats.hub_hits == hits_before + len(pairs)
        # And a repeat batch is served entirely from cache.
        assert context.wake_events_batch(pairs) == results
        assert context.stats.batch_rounds == 1

    def test_duplicate_pairs_share_one_computation(self):
        graph, pairs = self._pairs(count=2)
        doubled = pairs + pairs
        context = self._pinned_context(graph)
        results = context.wake_events_batch(doubled)
        assert results[:2] == results[2:]
        assert context.stats.hub_misses == 2
        assert context.stats.batched_cells == 2

    def test_batch_disabled_falls_back_per_pair(self):
        graph, pairs = self._pairs()
        context = self._pinned_context(graph, batch=False)
        expected = [context.wake_events(g, t) for g, t in pairs]
        context_off = self._pinned_context(graph, batch=False)
        assert context_off.wake_events_batch(pairs) == expected
        assert context_off.stats.batch_rounds == 0
        assert context_off.stats.batched_cells == 0

    def test_unbatchable_graph_drains_per_pair(self):
        graph = _graph(EMA_PROGRAM)
        traces = [_trace(f"u{k}", 10.0, seed=k) for k in range(3)]
        pairs = [(graph, trace) for trace in traces]
        context = RunContext()
        reference = RunContext(batch=False)
        assert context.wake_events_batch(pairs) == [
            reference.wake_events(g, t) for g, t in pairs
        ]
        assert context.stats.batch_rounds == 0

    def test_missing_channel_raises(self):
        graph = _graph(PROGRAMS["significant_motion"])
        trace = Trace(
            name="mic-only",
            data={"MIC": np.zeros(160)},
            rate_hz={"MIC": 16.0},
            duration=10.0,
        )
        with pytest.raises(HubExecutionError, match="lacks channels"):
            RunContext().wake_events_batch([(graph, trace)])
