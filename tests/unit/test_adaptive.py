"""Unit tests for self-tuning wake-up conditions."""

import numpy as np
import pytest

from repro.api.branch import ProcessingBranch
from repro.api.pipeline import ProcessingPipeline
from repro.api.stubs import MinThreshold, MovingAverage
from repro.apps.base import Detection, SensingApplication
from repro.errors import SimulationError
from repro.sim.adaptive import AdaptiveSidewinder, ThresholdTuner
from repro.sim.configs.sidewinder import Sidewinder
from repro.traces.base import GroundTruthEvent, Trace


class SpikeApp(SensingApplication):
    """Toy app: events are x-axis spikes of magnitude ~10; the trace
    also contains weaker (~4) confounder spikes that a loose wake-up
    condition fires on but the precise detector rejects."""

    name = "spikes"
    event_label = "spike"
    channels = ("ACC_X",)
    match_tolerance_s = 1.0

    def build_wakeup_pipeline(self):
        pipeline = ProcessingPipeline()
        pipeline.add(
            ProcessingBranch("ACC_X")
            .add(MovingAverage(3))
            .add(MinThreshold(2.0))  # deliberately loose
        )
        return pipeline

    def detect(self, trace, windows):
        detections = []
        rate = trace.rate_hz["ACC_X"]
        from repro.apps.detectors import iter_window_arrays, local_maxima
        for start, samples in iter_window_arrays(trace, "ACC_X", windows):
            for idx in local_maxima(samples, 8.0, 100.0, int(rate)):
                detections.append(
                    Detection(time=start + idx / rate, label="spike")
                )
        return detections


def spike_trace(duration=400.0, seed=0):
    """Strong spikes (events) every ~40 s, weak ones every ~20 s."""
    rate = 50.0
    rng = np.random.default_rng(seed)
    n = int(duration * rate)
    x = rng.normal(0, 0.05, n)
    events = []
    t = 15.0
    toggle = True
    while t < duration - 5:
        i = int(t * rate)
        magnitude = 10.0 if toggle else 4.0
        x[i : i + 10] += magnitude * np.hanning(10)
        if toggle:
            events.append(GroundTruthEvent.make("spike", t - 0.2, t + 0.4))
        toggle = not toggle
        t += 20.0 + rng.uniform(-2, 2)
    return Trace(
        "synthetic/spikes",
        {"ACC_X": x},
        {"ACC_X": rate},
        duration,
        events,
    )


class TestThresholdTuner:
    def test_holds_without_feedback(self):
        tuner = ThresholdTuner(2.0, direction=+1.0)
        assert tuner.update([], []) == 2.0

    def test_holds_without_true_positives(self):
        # No confirmed events: no safety evidence, no tightening (the
        # paper's false-negative asymmetry).
        tuner = ThresholdTuner(2.0, direction=+1.0)
        assert tuner.update([], [3.0, 3.5]) == 2.0

    def test_holds_when_fp_rate_acceptable(self):
        tuner = ThresholdTuner(2.0, direction=+1.0, target_fp_rate=0.5)
        assert tuner.update([9.0, 9.5], [3.0]) == 2.0  # 33% < 50%

    def test_tightens_toward_safety_bound(self):
        tuner = ThresholdTuner(2.0, direction=+1.0, safety_margin=0.25,
                               step_fraction=1.0)
        new = tuner.update([10.0], [3.0, 3.5, 4.0])
        # bound = 2 + 0.75*(10-2) = 8; full step reaches it.
        assert new == pytest.approx(8.0)

    def test_never_crosses_weakest_true_positive(self):
        tuner = ThresholdTuner(2.0, direction=+1.0, safety_margin=0.1,
                               step_fraction=1.0)
        for _ in range(10):
            new = tuner.update([9.0, 12.0], [3.0] * 10)
        assert new < 9.0

    def test_max_threshold_direction(self):
        tuner = ThresholdTuner(-2.0, direction=-1.0, safety_margin=0.25,
                               step_fraction=1.0)
        new = tuner.update([-9.0], [-3.0, -3.5, -4.0])
        assert new == pytest.approx(-2.0 + 0.75 * (-9.0 + 2.0))
        assert new > -9.0

    def test_parameter_validation(self):
        with pytest.raises(SimulationError):
            ThresholdTuner(0.0, +1.0, safety_margin=1.5)
        with pytest.raises(SimulationError):
            ThresholdTuner(0.0, +1.0, step_fraction=0.0)


class TestAdaptiveSidewinder:
    def test_reduces_power_keeps_recall(self):
        trace = spike_trace()
        app = SpikeApp()
        static = Sidewinder().run(app, trace)
        adaptive_config = AdaptiveSidewinder(epochs=4)
        adaptive = adaptive_config.run(SpikeApp(), trace)
        assert adaptive.recall == 1.0
        assert static.recall == 1.0
        assert adaptive.average_power_mw < static.average_power_mw

    def test_threshold_trajectory_monotone(self):
        config = AdaptiveSidewinder(epochs=4)
        config.run(SpikeApp(), spike_trace())
        thresholds = [r.threshold for r in config.last_reports]
        assert thresholds == sorted(thresholds)  # only ever tightens
        assert thresholds[-1] > thresholds[0]

    def test_late_epochs_have_fewer_false_positives(self):
        config = AdaptiveSidewinder(epochs=4)
        config.run(SpikeApp(), spike_trace())
        first, last = config.last_reports[0], config.last_reports[-1]
        assert last.false_positive_rate < first.false_positive_rate

    def test_rejects_untunable_condition(self):
        from repro.apps import StepsApp  # ends in localExtrema
        with pytest.raises(SimulationError, match="adaptive tuning"):
            AdaptiveSidewinder().run(StepsApp(), spike_trace())

    def test_epoch_validation(self):
        with pytest.raises(SimulationError):
            AdaptiveSidewinder(epochs=0)

    def test_works_for_headbutt_app(self, robot_trace):
        """The paper's headbutt condition ends in maxThreshold and is
        directly tunable; on a clean robot trace there are no false
        positives, so the threshold simply holds."""
        from repro.apps import HeadbuttApp
        config = AdaptiveSidewinder(epochs=2)
        result = config.run(HeadbuttApp(), robot_trace)
        assert result.recall == 1.0
        thresholds = {r.threshold for r in config.last_reports}
        assert len(thresholds) == 1  # never moved
