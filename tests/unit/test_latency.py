"""Unit tests for the detection-latency (timeliness) metric."""

import pytest

from repro.apps.base import Detection
from repro.eval.metrics import (
    detection_latencies,
    first_awake_at,
    mean_detection_latency,
)
from repro.traces.base import GroundTruthEvent


def _event(start, end):
    return GroundTruthEvent.make("e", start, end)


class TestFirstAwakeAt:
    def test_inside_window(self):
        assert first_awake_at(5.0, [(4.0, 8.0)]) == 5.0

    def test_before_window(self):
        assert first_awake_at(2.0, [(4.0, 8.0)]) == 4.0

    def test_after_all_windows(self):
        assert first_awake_at(10.0, [(4.0, 8.0)]) is None

    def test_picks_earliest_window(self):
        assert first_awake_at(2.0, [(20.0, 25.0), (4.0, 8.0)]) == 4.0


class TestLatencies:
    def test_immediate_when_always_awake(self):
        events = [_event(10.0, 11.0)]
        detections = [Detection(10.5)]
        latencies = detection_latencies(events, detections, 0.5)
        assert latencies == [0.0]

    def test_batching_style_delay(self):
        # Event ends at 11; the phone next wakes at 20.
        events = [_event(10.0, 11.0)]
        detections = [Detection(10.5)]
        latencies = detection_latencies(
            events, detections, 0.5, awake_windows=[(20.0, 24.0)]
        )
        assert latencies == [pytest.approx(9.0)]

    def test_detection_while_awake_immediate(self):
        events = [_event(10.0, 11.0)]
        detections = [Detection(10.5)]
        latencies = detection_latencies(
            events, detections, 0.5, awake_windows=[(10.0, 14.0)]
        )
        assert latencies == [0.0]

    def test_missed_events_excluded(self):
        events = [_event(10.0, 11.0), _event(50.0, 51.0)]
        detections = [Detection(10.5)]
        latencies = detection_latencies(events, detections, 0.5)
        assert len(latencies) == 1

    def test_never_awake_again_excluded(self):
        events = [_event(10.0, 11.0)]
        detections = [Detection(10.5)]
        latencies = detection_latencies(
            events, detections, 0.5, awake_windows=[(0.0, 5.0)]
        )
        assert latencies == []

    def test_mean_zero_when_empty(self):
        assert mean_detection_latency([], [], 0.5) == 0.0

    def test_earliest_detection_wins(self):
        events = [_event(10.0, 11.0)]
        detections = [Detection(10.5), Detection(10.8)]
        latencies = detection_latencies(
            events, detections, 0.5, awake_windows=[(12.0, 13.0), (30.0, 31.0)]
        )
        assert latencies == [pytest.approx(1.0)]


class TestConfigurationLatencies:
    def test_batching_latency_tracks_interval(self, robot_trace):
        """Batching's latency grows with the interval while Sidewinder's
        stays near zero — Section 5.4's trade-off in numbers.  Uses the
        transition app (many events) so the averages are stable."""
        from repro.apps import TransitionsApp
        from repro.sim import Batching, Sidewinder

        app = TransitionsApp()
        events = app.events_of_interest(robot_trace)
        assert len(events) >= 10  # enough events to average over

        sidewinder = Sidewinder().run(app, robot_trace)
        sw_latency = sidewinder.mean_latency_s(events, app.match_tolerance_s)
        assert sw_latency < 1.0

        short = Batching(5.0).run(app, robot_trace)
        long = Batching(30.0).run(app, robot_trace)
        short_latency = short.mean_latency_s(events, app.match_tolerance_s)
        long_latency = long.mean_latency_s(events, app.match_tolerance_s)
        assert long_latency > short_latency
        assert long_latency > 4.0
        assert short_latency >= sw_latency
