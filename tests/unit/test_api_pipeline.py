"""Unit tests for ProcessingBranch / ProcessingPipeline construction."""

import pytest

from repro.api.branch import ProcessingBranch
from repro.api.pipeline import ProcessingPipeline
from repro.api.stubs import MinThreshold, MovingAverage, VectorMagnitude
from repro.errors import PipelineError, UnknownChannelError
from repro.sensors.channels import ACC_X


def test_branch_accepts_channel_object():
    branch = ProcessingBranch(ACC_X)
    assert branch.source is ACC_X


def test_branch_accepts_channel_name():
    branch = ProcessingBranch("ACC_Z")
    assert branch.source.name == "ACC_Z"


def test_branch_rejects_unknown_name():
    with pytest.raises(UnknownChannelError):
        ProcessingBranch("TEMP")


def test_branch_rejects_non_channel():
    with pytest.raises(PipelineError):
        ProcessingBranch(42)


def test_branch_add_chains_fluently():
    branch = ProcessingBranch(ACC_X).add(MovingAverage(5)).add(MinThreshold(1))
    assert len(branch.algorithms) == 2


def test_branch_rejects_non_stub():
    with pytest.raises(PipelineError):
        ProcessingBranch(ACC_X).add("movingAvg")


def test_pipeline_add_branch_and_stage():
    pipeline = ProcessingPipeline()
    pipeline.add(ProcessingBranch(ACC_X))
    pipeline.add(VectorMagnitude())
    assert len(pipeline.branches) == 1
    assert len(pipeline.stages) == 1


def test_pipeline_add_branch_list():
    pipeline = ProcessingPipeline()
    pipeline.add([ProcessingBranch(ACC_X), ProcessingBranch("ACC_Y")])
    assert len(pipeline.branches) == 2


def test_branch_after_stage_rejected():
    pipeline = ProcessingPipeline()
    pipeline.add(ProcessingBranch(ACC_X))
    pipeline.add(MinThreshold(5))
    with pytest.raises(PipelineError, match="before pipeline-level"):
        pipeline.add(ProcessingBranch("ACC_Y"))


def test_pipeline_rejects_garbage():
    with pytest.raises(PipelineError):
        ProcessingPipeline().add(3.14)


def test_stub_eager_parameter_validation():
    from repro.errors import ParameterError
    with pytest.raises(ParameterError):
        MovingAverage(0)


def test_stub_equality_and_hash():
    assert MovingAverage(5) == MovingAverage(5)
    assert MovingAverage(5) != MovingAverage(6)
    assert hash(MovingAverage(5)) == hash(MovingAverage(5))
