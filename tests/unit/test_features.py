"""Unit tests for feature-extraction algorithms."""

import numpy as np
import pytest

from repro.algorithms.features import DominantFrequency, VectorMagnitude, ZeroCrossingRate
from repro.algorithms.transforms import FFT
from repro.algorithms.windowing import Window
from repro.errors import ParameterError
from tests.conftest import scalar_chunk


class TestVectorMagnitude:
    def test_three_axis_magnitude(self):
        vm = VectorMagnitude()
        out = vm.process(
            [scalar_chunk([3.0]), scalar_chunk([4.0]), scalar_chunk([0.0])]
        )
        assert out.values[0] == pytest.approx(5.0)

    def test_two_inputs_supported(self):
        vm = VectorMagnitude()
        out = vm.process([scalar_chunk([1.0, 0.0]), scalar_chunk([0.0, 1.0])])
        assert np.allclose(out.values, [1.0, 1.0])

    def test_gravity_vector(self):
        vm = VectorMagnitude()
        out = vm.process(
            [scalar_chunk([0.0]), scalar_chunk([0.0]), scalar_chunk([9.81])]
        )
        assert out.values[0] == pytest.approx(9.81)

    def test_empty_passthrough(self):
        vm = VectorMagnitude()
        empty = scalar_chunk([])
        assert vm.process([empty, empty, empty]).is_empty


class TestZeroCrossingRate:
    def _zcr(self, signal, rate=8000.0):
        frames = Window(size=len(signal)).process(
            [scalar_chunk(signal, rate_hz=rate)]
        )
        return ZeroCrossingRate().process([frames]).values[0]

    def test_constant_signal_zero(self):
        assert self._zcr(np.ones(64)) == 0.0

    def test_alternating_signal_one(self):
        signal = np.tile([1.0, -1.0], 32)
        assert self._zcr(signal) == pytest.approx(1.0)

    def test_sine_zcr_tracks_frequency(self):
        rate = 8000.0
        n = 800
        t = np.arange(n) / rate
        # A sine at f crosses zero 2f times per second.
        slow = self._zcr(np.sin(2 * np.pi * 100 * t), rate)
        fast = self._zcr(np.sin(2 * np.pi * 1000 * t), rate)
        assert slow == pytest.approx(2 * 100 / rate, rel=0.1)
        assert fast == pytest.approx(2 * 1000 / rate, rel=0.1)

    def test_bounded_in_unit_interval(self):
        rng = np.random.default_rng(3)
        value = self._zcr(rng.normal(size=256))
        assert 0.0 <= value <= 1.0


class TestDominantFrequency:
    def _spectrum(self, signal, rate=8000.0):
        frames = Window(size=len(signal)).process(
            [scalar_chunk(signal, rate_hz=rate)]
        )
        return FFT().process([frames])

    def test_frequency_mode_finds_tone(self):
        rate = 8000.0
        tone = np.sin(2 * np.pi * 1250 * np.arange(512) / rate)
        out = DominantFrequency("frequency").process([self._spectrum(tone, rate)])
        assert out.values[0] == pytest.approx(1250, abs=rate / 512)

    def test_band_restriction(self):
        rate = 8000.0
        t = np.arange(512) / rate
        # Strong 200 Hz tone + weak 1000 Hz tone; band excludes the strong one.
        signal = 2.0 * np.sin(2 * np.pi * 200 * t) + 0.3 * np.sin(2 * np.pi * 1000 * t)
        out = DominantFrequency("frequency", min_hz=850, max_hz=1800).process(
            [self._spectrum(signal, rate)]
        )
        assert out.values[0] == pytest.approx(1000, abs=rate / 512)

    def test_ratio_high_for_pure_tone_low_for_noise(self):
        rate = 8000.0
        rng = np.random.default_rng(4)
        tone = np.sin(2 * np.pi * 1000 * np.arange(512) / rate)
        noise = rng.normal(size=512)
        tone_ratio = DominantFrequency("ratio").process(
            [self._spectrum(tone, rate)]
        ).values[0]
        noise_ratio = DominantFrequency("ratio").process(
            [self._spectrum(noise, rate)]
        ).values[0]
        assert tone_ratio > 5 * noise_ratio

    def test_dc_excluded_from_dominance(self):
        rate = 8000.0
        signal = np.full(512, 10.0) + 0.1 * np.sin(
            2 * np.pi * 500 * np.arange(512) / rate
        )
        out = DominantFrequency("frequency").process([self._spectrum(signal, rate)])
        assert out.values[0] > 0  # not the DC bin

    def test_invalid_mode(self):
        with pytest.raises(ParameterError):
            DominantFrequency("phase")

    def test_empty_band_rejected(self):
        rate = 8000.0
        tone = np.sin(2 * np.pi * 100 * np.arange(64) / rate)
        spectrum = self._spectrum(tone, rate)
        algo = DominantFrequency("ratio", min_hz=3999.0, max_hz=3999.5)
        with pytest.raises(ParameterError, match="no FFT bins"):
            algo.process([spectrum])
