"""Unit tests for the simulation engine (RunContext and the planner)."""

import pytest

from repro.apps import HeadbuttApp, SirenDetectorApp, StepsApp
from repro.errors import HubExecutionError
from repro.sim import AlwaysAwake, Oracle, Sidewinder
from repro.sim.engine import (
    RunContext,
    execute_plan,
    plan_matrix,
    program_fingerprint,
)
from repro.sim.configs.predefined import significant_motion_pipeline
from repro.sim.simulator import run_wakeup_condition


class TestFingerprint:
    def test_stable_across_compiles(self):
        from repro.api.compile import compile_pipeline
        a = compile_pipeline(StepsApp().build_wakeup_pipeline())
        b = compile_pipeline(StepsApp().build_wakeup_pipeline())
        assert a is not b
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_sensitive_to_parameters(self):
        from repro.api.compile import compile_pipeline
        a = compile_pipeline(significant_motion_pipeline(0.8))
        b = compile_pipeline(significant_motion_pipeline(0.9))
        assert program_fingerprint(a) != program_fingerprint(b)

    def test_sensitive_to_structure(self):
        from repro.api.compile import compile_pipeline
        a = compile_pipeline(StepsApp().build_wakeup_pipeline())
        b = compile_pipeline(HeadbuttApp().build_wakeup_pipeline())
        assert program_fingerprint(a) != program_fingerprint(b)


class TestRunContextCaches:
    def test_compile_shares_graphs(self):
        ctx = RunContext()
        g1 = ctx.compile(StepsApp().build_wakeup_pipeline())
        g2 = ctx.compile(StepsApp().build_wakeup_pipeline())
        assert g1 is g2
        assert ctx.stats.compile_hits == 1
        assert ctx.stats.compile_misses == 1

    def test_wake_events_match_fresh_run(self, robot_trace):
        ctx = RunContext()
        graph = ctx.compile(StepsApp().build_wakeup_pipeline())
        cached = ctx.wake_events(graph, robot_trace)
        fresh = run_wakeup_condition(
            ctx.compile(StepsApp().build_wakeup_pipeline()), robot_trace
        )
        assert [(e.time, e.value) for e in cached] == [
            (e.time, e.value) for e in fresh
        ]

    def test_wake_events_served_from_cache(self, robot_trace):
        ctx = RunContext()
        graph = ctx.compile(StepsApp().build_wakeup_pipeline())
        first = ctx.wake_events(graph, robot_trace)
        second = ctx.wake_events(graph, robot_trace)
        assert first is second
        assert ctx.stats.hub_hits == 1
        assert ctx.stats.hub_misses == 1

    def test_cached_graph_reuse_stays_cold(self, robot_trace):
        # Two different traces through one cached graph: the second run
        # must not see algorithm state left over from the first.
        ctx = RunContext()
        graph = ctx.compile(StepsApp().build_wakeup_pipeline())
        ctx.wake_events(graph, robot_trace)
        again = ctx.wake_events(graph, robot_trace, chunk_seconds=2.0)
        cold = run_wakeup_condition(
            ctx.compile(StepsApp().build_wakeup_pipeline()),
            robot_trace,
            chunk_seconds=2.0,
        )
        assert [(e.time, e.value) for e in again] == [
            (e.time, e.value) for e in cold
        ]

    def test_missing_channel_raises(self, robot_trace):
        ctx = RunContext()
        graph = ctx.compile(SirenDetectorApp().build_wakeup_pipeline())
        with pytest.raises(HubExecutionError, match="MIC"):
            ctx.wake_events(graph, robot_trace)

    def test_channel_arrays_computed_once(self, robot_trace):
        ctx = RunContext()
        a = ctx.channel_arrays(robot_trace)
        b = ctx.channel_arrays(robot_trace)
        assert a is b
        assert ctx.stats.trace_hits == 1

    def test_detections_cached_and_faithful(self, robot_trace):
        ctx = RunContext()
        app = StepsApp()
        windows = [(0.0, 30.0), (60.0, 90.0)]
        cached = ctx.detections(app, robot_trace, windows)
        direct = app.detect(robot_trace, windows)
        assert list(cached) == list(direct)
        again = ctx.detections(app, robot_trace, windows)
        assert again is cached
        assert ctx.stats.detect_hits == 1

    def test_distinct_windows_are_distinct_entries(self, robot_trace):
        ctx = RunContext()
        app = StepsApp()
        ctx.detections(app, robot_trace, [(0.0, 30.0)])
        ctx.detections(app, robot_trace, [(0.0, 31.0)])
        assert ctx.stats.detect_misses == 2

    def test_cache_disabled_computes_fresh(self, robot_trace):
        ctx = RunContext(cache=False)
        g1 = ctx.compile(StepsApp().build_wakeup_pipeline())
        g2 = ctx.compile(StepsApp().build_wakeup_pipeline())
        assert g1 is not g2
        e1 = ctx.wake_events(g1, robot_trace)
        e2 = ctx.wake_events(g2, robot_trace)
        assert [(e.time, e.value) for e in e1] == [
            (e.time, e.value) for e in e2
        ]
        assert ctx.stats.total_hits == 0


class TestPlanner:
    def test_plan_matrix_shape_and_order(self, robot_trace, quiet_robot_trace):
        configs = [AlwaysAwake(), Oracle()]
        apps = [StepsApp(), HeadbuttApp()]
        plan = plan_matrix(configs, apps, [robot_trace, quiet_robot_trace])
        assert len(plan) == 2 * 2 * 2
        assert [c.index for c in plan.cells] == list(range(len(plan)))
        # Trace-major order: the first half of the plan is trace 1.
        assert all(
            c.trace is robot_trace for c in plan.cells[: len(plan) // 2]
        )

    def test_plan_matrix_records_skips(self, robot_trace):
        plan = plan_matrix(
            [AlwaysAwake()], [StepsApp(), SirenDetectorApp()], [robot_trace]
        )
        assert len(plan) == 1
        assert len(plan.skipped) == 1
        skip = plan.skipped[0]
        assert skip.app_name == "sirens"
        assert skip.missing_channels == ("MIC",)
        assert "MIC" in skip.describe()

    def test_execute_plan_returns_in_plan_order(self, robot_trace):
        configs = [Oracle(), AlwaysAwake()]
        plan = plan_matrix(configs, [StepsApp()], [robot_trace])
        results = execute_plan(plan)
        assert [r.config_name for r in results] == ["oracle", "always_awake"]

    def test_execute_plan_reuses_external_context(self, robot_trace):
        plan = plan_matrix([Sidewinder()], [StepsApp()], [robot_trace])
        ctx = RunContext()
        execute_plan(plan, context=ctx)
        assert ctx.stats.hub_misses == 1
        execute_plan(plan, context=ctx)
        assert ctx.stats.hub_misses == 1
        assert ctx.stats.hub_hits >= 1


class TestPlanFromCells:
    def test_trace_major_order_with_input_indices(
        self, robot_trace, quiet_robot_trace
    ):
        from repro.sim.engine import plan_from_cells

        # Interleave traces on purpose: the plan groups trace-major for
        # locality, but cell indices keep pointing at input positions.
        triples = [
            (AlwaysAwake(), StepsApp(), robot_trace),
            (AlwaysAwake(), StepsApp(), quiet_robot_trace),
            (Oracle(), HeadbuttApp(), robot_trace),
        ]
        plan = plan_from_cells(triples)
        assert [c.trace.name for c in plan.cells] == [
            robot_trace.name, robot_trace.name, quiet_robot_trace.name
        ]
        assert [c.index for c in plan.cells] == [0, 2, 1]

    def test_results_come_back_in_input_order(
        self, robot_trace, quiet_robot_trace
    ):
        from repro.sim.engine import plan_from_cells

        triples = [
            (AlwaysAwake(), StepsApp(), robot_trace),
            (AlwaysAwake(), StepsApp(), quiet_robot_trace),
            (Oracle(), StepsApp(), robot_trace),
        ]
        results = execute_plan(plan_from_cells(triples))
        assert [(r.config_name, r.trace_name) for r in results] == [
            ("always_awake", robot_trace.name),
            ("always_awake", quiet_robot_trace.name),
            ("oracle", robot_trace.name),
        ]

    def test_missing_channels_are_skipped(self, robot_trace):
        from repro.sim.engine import plan_from_cells

        plan = plan_from_cells(
            [
                (AlwaysAwake(), StepsApp(), robot_trace),
                (AlwaysAwake(), SirenDetectorApp(), robot_trace),
            ]
        )
        assert len(plan) == 1
        assert [s.app_name for s in plan.skipped] == ["sirens"]
        assert plan.skipped[0].missing_channels == ("MIC",)

    def test_serial_info_reports_cache_stats(self, robot_trace):
        from repro.sim.engine import execute_plan_with_info, plan_from_cells

        ctx = RunContext()
        plan = plan_from_cells([(Sidewinder(), StepsApp(), robot_trace)])
        _, info = execute_plan_with_info(plan, context=ctx)
        assert info.mode == "serial"
        assert info.cache_stats == ctx.stats.as_dict()
        assert info.cache_stats["hub_misses"] == 1


class TestShutdownPool:
    def test_shutdown_is_idempotent(self, robot_trace, quiet_robot_trace):
        from repro.sim.engine import execute_plan_with_info, shutdown_pool

        # Cold: shutting down with no pool is a no-op …
        shutdown_pool()
        shutdown_pool()
        # … and after a pool run, repeated shutdowns stay safe.
        configs = [AlwaysAwake(), Oracle(), Sidewinder()] * 5
        plan = plan_matrix(configs, [StepsApp()], [robot_trace, quiet_robot_trace])
        _, info = execute_plan_with_info(plan, jobs=2)
        assert info.mode == "pool"
        shutdown_pool()
        shutdown_pool()
        # The engine recovers: the next pool run forks a fresh pool.
        _, again = execute_plan_with_info(plan, jobs=2)
        assert again.mode == "pool"
        assert not again.pool_reused
        shutdown_pool()


class TestMergedWindowKeying:
    def test_split_windows_share_one_entry(self, robot_trace):
        # Two window lists covering the same signal — one split at 30 s,
        # one contiguous — merge to the same spans and must share a
        # cache entry: the detector only ever sees the merged spans.
        ctx = RunContext()
        app = StepsApp()
        first = ctx.detections(app, robot_trace, [(0.0, 30.0), (30.0, 60.0)])
        second = ctx.detections(app, robot_trace, [(0.0, 60.0)])
        assert second is first
        assert ctx.stats.detect_misses == 1
        assert ctx.stats.detect_hits == 1

    def test_merged_result_is_faithful(self, robot_trace):
        ctx = RunContext()
        app = StepsApp()
        cached = ctx.detections(app, robot_trace, [(0.0, 30.0), (30.0, 60.0)])
        direct = app.detect(robot_trace, [(0.0, 60.0)])
        assert list(cached) == list(direct)

    def test_equal_app_instances_share_entries(self, robot_trace):
        # Content-keyed apps: a re-pickled copy (as in a pool worker
        # dispatch) must hit the same entries as the original.
        ctx = RunContext()
        ctx.detections(StepsApp(), robot_trace, [(0.0, 30.0)])
        ctx.detections(StepsApp(), robot_trace, [(0.0, 30.0)])
        assert ctx.stats.detect_misses == 1
        assert ctx.stats.detect_hits == 1


class TestFusedContext:
    def test_fused_and_round_events_identical(self, robot_trace):
        # compiled=False on both sides so this really compares the two
        # interpreter tiers, not the compiled plan against itself.
        graph_program = StepsApp().build_wakeup_pipeline()
        fused_ctx = RunContext(fuse=True, compiled=False)
        round_ctx = RunContext(fuse=False, compiled=False)
        fused = fused_ctx.wake_events(fused_ctx.compile(graph_program), robot_trace)
        by_rounds = round_ctx.wake_events(
            round_ctx.compile(StepsApp().build_wakeup_pipeline()), robot_trace
        )
        assert fused == by_rounds


class TestCompiledContext:
    def test_compiled_fused_and_round_events_identical(self, robot_trace):
        program = StepsApp().build_wakeup_pipeline()
        compiled_ctx = RunContext(compiled=True)
        fused_ctx = RunContext(compiled=False, fuse=True)
        round_ctx = RunContext(compiled=False, fuse=False)
        compiled = compiled_ctx.wake_events(
            compiled_ctx.compile(program), robot_trace
        )
        fused = fused_ctx.wake_events(
            fused_ctx.compile(StepsApp().build_wakeup_pipeline()), robot_trace
        )
        by_rounds = round_ctx.wake_events(
            round_ctx.compile(StepsApp().build_wakeup_pipeline()), robot_trace
        )
        assert compiled == fused == by_rounds

    def test_plan_cached_by_fingerprint(self, robot_trace, quiet_robot_trace):
        ctx = RunContext(compiled=True)
        graph = ctx.compile(StepsApp().build_wakeup_pipeline())
        ctx.wake_events(graph, robot_trace)
        assert ctx.stats.plan_misses == 1
        # A second trace through the same condition reuses the plan …
        ctx.wake_events(graph, quiet_robot_trace)
        assert ctx.stats.plan_hits == 1
        # … and so does an equal program compiled separately.
        again = ctx.compile(StepsApp().build_wakeup_pipeline())
        ctx.wake_events(again, robot_trace, chunk_seconds=2.0)
        assert ctx.stats.plan_hits == 2
        assert ctx.stats.plan_misses == 1

    def test_ineligible_condition_falls_back(self, robot_trace):
        from repro.il.parser import parse_program

        # expMovingAvg is not chunk-invariant, so the condition cannot
        # compile (or fuse) and must interpret round by round — with the
        # ineligibility memoized, not re-derived per trace.
        program = parse_program(
            "ACC_X -> expMovingAvg(id=1, params={0.2});"
            "1 -> minThreshold(id=2, params={2.0});"
            "2 -> OUT;"
        )
        ctx = RunContext(compiled=True)
        graph = ctx.validated(program)
        events = ctx.wake_events(graph, robot_trace)
        round_ctx = RunContext(compiled=False, fuse=False)
        expected = round_ctx.wake_events(
            round_ctx.validated(parse_program(
                "ACC_X -> expMovingAvg(id=1, params={0.2});"
                "1 -> minThreshold(id=2, params={2.0});"
                "2 -> OUT;"
            )),
            robot_trace,
        )
        assert events == expected
        assert ctx.compiled_plan(graph) is None
        assert ctx.stats.plan_hits >= 1


class TestExecutor:
    def test_small_plan_falls_back_to_serial(self, robot_trace):
        from repro.sim.engine import MIN_POOL_CELLS, execute_plan_with_info, shutdown_pool

        shutdown_pool()
        plan = plan_matrix([AlwaysAwake(), Oracle()], [StepsApp()], [robot_trace])
        assert len(plan) < MIN_POOL_CELLS
        results, info = execute_plan_with_info(plan, jobs=4)
        assert len(results) == len(plan)
        assert info.mode == "serial"
        assert info.requested_jobs == 4
        assert "below the pool threshold" in info.reason

    def test_pool_persists_and_is_reused(self, robot_trace, quiet_robot_trace):
        from repro.sim.engine import execute_plan_with_info, shutdown_pool

        shutdown_pool()
        configs = [AlwaysAwake(), Oracle(), Sidewinder()] * 5
        plan = plan_matrix(configs, [StepsApp()], [robot_trace, quiet_robot_trace])
        serial = execute_plan(plan)
        first, info1 = execute_plan_with_info(plan, jobs=2)
        assert info1.mode == "pool"
        assert not info1.pool_reused
        assert info1.batches == 2
        second, info2 = execute_plan_with_info(plan, jobs=2)
        assert info2.mode == "pool"
        assert info2.pool_reused

        def rows(results):
            return [
                (r.config_name, r.app_name, r.trace_name,
                 r.average_power_mw, r.recall, r.precision)
                for r in results
            ]

        assert rows(first) == rows(serial)
        assert rows(second) == rows(serial)
        shutdown_pool()
