"""Unit tests for wake-up data delivery options."""

import numpy as np
import pytest

from repro.api.listener import RecordingListener
from repro.errors import SimulationError
from repro.hub.delivery import (
    RAW_DELIVERY,
    TRIGGER_DELIVERY,
    DeliveryMode,
    DeliverySpec,
    cheapest_sufficient_delivery,
    delivery_latency_s,
    payload_bytes,
    validate_delivery,
)
from repro.hub.hub import SensorHub
from repro.hub.link import I2C_FAST_MODE, UART_DEBUG
from repro.il.parser import parse_program
from repro.il.validate import validate_program
from tests.conftest import scalar_chunk

MOTION = (
    "ACC_X -> movingAvg(id=1, params={5});"
    "1 -> minThreshold(id=2, params={10});"
    "2 -> OUT;"
)

AUDIO = (
    "MIC -> window(id=1, params={2048});"
    "1 -> stat(id=2, params={variance});"
    "2 -> minThreshold(id=3, params={0.001});"
    "3 -> OUT;"
)


def _graph(text):
    return validate_program(parse_program(text))


class TestSpecs:
    def test_node_requires_id(self):
        with pytest.raises(SimulationError, match="node_id"):
            DeliverySpec(DeliveryMode.NODE)

    def test_negative_buffer_rejected(self):
        with pytest.raises(SimulationError):
            DeliverySpec(DeliveryMode.RAW, buffer_s=-1.0)

    def test_validate_unknown_node(self):
        spec = DeliverySpec(DeliveryMode.NODE, node_id=99)
        with pytest.raises(SimulationError, match="not in condition"):
            validate_delivery(spec, _graph(MOTION))

    def test_validate_known_node(self):
        validate_delivery(DeliverySpec(DeliveryMode.NODE, node_id=1), _graph(MOTION))


class TestPayloadSizes:
    def test_trigger_is_minimal(self):
        graph = _graph(AUDIO)
        assert payload_bytes(TRIGGER_DELIVERY, graph) < 10

    def test_raw_audio_is_huge(self):
        graph = _graph(AUDIO)
        raw = payload_bytes(RAW_DELIVERY, graph)
        assert raw == pytest.approx(4.0 * 8000 * 1)  # 4 s of mu-law audio

    def test_feature_delivery_tiny_for_audio(self):
        graph = _graph(AUDIO)
        features = DeliverySpec(DeliveryMode.NODE, node_id=2, buffer_s=4.0)
        assert payload_bytes(features, graph) < 0.01 * payload_bytes(
            RAW_DELIVERY, graph
        )

    def test_latency_on_link(self):
        graph = _graph(AUDIO)
        raw_latency = delivery_latency_s(RAW_DELIVERY, graph, UART_DEBUG)
        trig_latency = delivery_latency_s(TRIGGER_DELIVERY, graph, UART_DEBUG)
        assert raw_latency > 2.0
        assert trig_latency < 0.01

    def test_cheapest_sufficient(self):
        graph = _graph(AUDIO)
        features = DeliverySpec(DeliveryMode.NODE, node_id=2, buffer_s=4.0)
        chosen = cheapest_sufficient_delivery(
            graph, [RAW_DELIVERY, features], UART_DEBUG, deadline_s=0.5
        )
        assert chosen is features

    def test_cheapest_sufficient_raises_when_none_fit(self):
        graph = _graph(AUDIO)
        with pytest.raises(SimulationError, match="no delivery option"):
            cheapest_sufficient_delivery(
                graph, [RAW_DELIVERY], UART_DEBUG, deadline_s=0.1
            )

    def test_faster_link_helps(self):
        graph = _graph(AUDIO)
        assert delivery_latency_s(RAW_DELIVERY, graph, I2C_FAST_MODE) < (
            delivery_latency_s(RAW_DELIVERY, graph, UART_DEBUG)
        )


class TestHubIntegration:
    def _spiky(self, n=100):
        x = np.zeros(n)
        x[40:70] = 20.0
        return {"ACC_X": scalar_chunk(x)}

    def test_raw_default(self):
        hub = SensorHub()
        listener = RecordingListener()
        hub.push(parse_program(MOTION), listener)
        hub.feed(self._spiky())
        event = listener.events[0]
        assert "ACC_X" in event.raw_data
        assert event.features is None

    def test_trigger_delivery_omits_raw(self):
        hub = SensorHub()
        listener = RecordingListener()
        hub.push(parse_program(MOTION), listener, delivery=TRIGGER_DELIVERY)
        hub.feed(self._spiky())
        event = listener.events[0]
        assert event.raw_data == {}
        assert event.features is None

    def test_node_delivery_carries_features(self):
        hub = SensorHub()
        listener = RecordingListener()
        spec = DeliverySpec(DeliveryMode.NODE, node_id=1, buffer_s=2.0)
        hub.push(parse_program(MOTION), listener, delivery=spec)
        hub.feed(self._spiky())
        event = listener.events[0]
        assert event.raw_data == {}
        assert event.features is not None
        assert len(event.features) > 0
        # The features are the moving average's output: smoothed x.
        assert event.features.max() <= 20.0 + 1e-9

    def test_push_rejects_bad_node(self):
        hub = SensorHub()
        with pytest.raises(SimulationError):
            hub.push(
                parse_program(MOTION),
                delivery=DeliverySpec(DeliveryMode.NODE, node_id=42),
            )

    def test_manager_passthrough(self):
        from repro.api import (
            MinThreshold,
            MovingAverage,
            ProcessingBranch,
            ProcessingPipeline,
            SidewinderSensorManager,
        )
        manager = SidewinderSensorManager()
        listener = RecordingListener()
        pipeline = ProcessingPipeline()
        pipeline.add(
            ProcessingBranch(manager.ACCELEROMETER_X)
            .add(MovingAverage(5))
            .add(MinThreshold(10))
        )
        manager.push(pipeline, listener, delivery=TRIGGER_DELIVERY)
        manager.hub.feed(self._spiky())
        assert listener.events
        assert listener.events[0].raw_data == {}
