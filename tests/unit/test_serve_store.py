"""Unit tests for the result store's TTL, eviction order, and spill tier."""

import json

import pytest

from repro.errors import JournalError, ServiceError
from repro.serve import persist
from repro.serve.store import ResultStore
from repro.serve.submission import Completed, Ticket


def _response(sid, tag="r"):
    return Completed(Ticket(sid, "t1", 0.0), result=(tag, sid))


class TestTTL:
    def test_get_before_and_after_expiry(self):
        store = ResultStore(ttl=10.0)
        store.put(1, _response(1), now=0.0)
        assert store.get(1, now=9.9) == _response(1)
        assert store.get(1, now=10.0) is None
        assert len(store) == 0

    def test_rejects_bad_parameters(self, tmp_path):
        with pytest.raises(ServiceError):
            ResultStore(ttl=0.0)
        with pytest.raises(ServiceError):
            ResultStore(ttl=10.0, memory_budget=4)  # budget, nowhere to spill
        with pytest.raises(ServiceError):
            ResultStore(ttl=10.0, spill_dir=tmp_path, memory_budget=0)

    def test_reput_refreshes_ttl(self):
        store = ResultStore(ttl=10.0)
        store.put(1, _response(1), now=0.0)
        store.put(1, _response(1, "fresh"), now=8.0)
        assert store.get(1, now=15.0) == _response(1, "fresh")

    def test_eviction_order_survives_reput(self):
        # Regression: a re-put used to leave its key in the old dict
        # position, so the expiry-ordered scan's early ``break`` hit the
        # refreshed (unexpired) entry first and stranded expired entries
        # sitting behind it.
        store = ResultStore(ttl=10.0)
        store.put(1, _response(1), now=0.0)
        store.put(2, _response(2), now=1.0)
        store.put(1, _response(1, "fresh"), now=5.0)  # moves 1 to the end
        # now=12: entry 2 (expiry 11) is expired, entry 1 (expiry 15) not.
        assert store.evict_expired(now=12.0) == 1
        assert store.get(2, now=12.0) is None
        assert store.get(1, now=12.0) == _response(1, "fresh")


class TestSpillTier:
    @pytest.fixture()
    def store(self, tmp_path):
        return ResultStore(ttl=100.0, spill_dir=tmp_path, memory_budget=2)

    def test_spills_oldest_beyond_budget(self, store, tmp_path):
        for sid in (1, 2, 3):
            store.put(sid, _response(sid), now=float(sid))
        assert len(store) == 3
        assert store.spilled_count == 1
        assert store.spill_writes == 1
        assert persist.spill_path(tmp_path, 1).exists()
        assert not persist.spill_path(tmp_path, 3).exists()

    def test_faults_back_bit_identical(self, store, tmp_path):
        for sid in (1, 2, 3):
            store.put(sid, _response(sid), now=float(sid))
        assert store.get(1, now=4.0) == _response(1)
        assert store.spill_reads == 1
        # Faulting 1 back re-spilled the now-coldest resident (2).
        assert store.spilled_count == 1
        assert not persist.spill_path(tmp_path, 1).exists()
        assert persist.spill_path(tmp_path, 2).exists()

    def test_ttl_eviction_spans_both_tiers(self, tmp_path):
        store = ResultStore(ttl=10.0, spill_dir=tmp_path, memory_budget=1)
        store.put(1, _response(1), now=0.0)
        store.put(2, _response(2), now=1.0)  # spills 1
        assert store.spilled_count == 1
        assert store.evict_expired(now=20.0) == 2
        assert len(store) == 0
        assert not persist.spill_path(tmp_path, 1).exists()

    def test_reput_drops_stale_spill_file(self, store, tmp_path):
        for sid in (1, 2, 3):
            store.put(sid, _response(sid), now=float(sid))
        store.put(1, _response(1, "fresh"), now=4.0)
        assert not persist.spill_path(tmp_path, 1).exists()
        assert store.get(1, now=5.0) == _response(1, "fresh")

    def test_corrupted_spill_raises_journal_error(self, store, tmp_path):
        for sid in (1, 2, 3):
            store.put(sid, _response(sid), now=float(sid))
        sidecar = persist.spill_path(tmp_path, 1).with_suffix(".json")
        manifest = json.loads(sidecar.read_text())
        manifest["crc32"] ^= 0xFF
        sidecar.write_text(json.dumps(manifest))
        with pytest.raises(JournalError):
            store.get(1, now=4.0)

    def test_close_removes_owned_spill_files(self, store, tmp_path):
        for sid in (1, 2, 3):
            store.put(sid, _response(sid), now=float(sid))
        store.close()
        assert not persist.spill_path(tmp_path, 1).exists()


class TestPersist:
    def test_round_trip(self, tmp_path):
        response = _response(7)
        persist.save_response(tmp_path, 7, response, expiry=42.0)
        assert persist.load_response(tmp_path, 7) == response
        manifest = json.loads(
            persist.spill_path(tmp_path, 7).with_suffix(".json").read_text()
        )
        assert manifest["tenant"] == "t1"
        assert manifest["kind"] == "Completed"
        assert manifest["expiry"] == 42.0

    def test_missing_entry_raises(self, tmp_path):
        with pytest.raises(JournalError):
            persist.load_response(tmp_path, 99)

    def test_torn_archive_raises(self, tmp_path):
        persist.save_response(tmp_path, 7, _response(7), expiry=42.0)
        path = persist.spill_path(tmp_path, 7)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(JournalError):
            persist.load_response(tmp_path, 7)

    def test_delete_is_idempotent(self, tmp_path):
        persist.save_response(tmp_path, 7, _response(7), expiry=42.0)
        persist.delete_response(tmp_path, 7)
        persist.delete_response(tmp_path, 7)
        assert not persist.spill_path(tmp_path, 7).exists()
