"""Unit tests for the Statistic algorithm."""

import numpy as np
import pytest

from repro.algorithms.statistics import STATISTIC_NAMES, Statistic
from repro.algorithms.windowing import Window
from repro.errors import ParameterError
from tests.conftest import scalar_chunk


def _stat(name, signal):
    frames = Window(size=len(signal)).process([scalar_chunk(signal)])
    return Statistic(name).process([frames]).values[0]


@pytest.mark.parametrize("name", STATISTIC_NAMES)
def test_matches_numpy(name):
    rng = np.random.default_rng(11)
    data = rng.normal(size=64)
    reference = {
        "mean": np.mean(data),
        "variance": np.var(data),
        "std": np.std(data),
        "min": np.min(data),
        "max": np.max(data),
        "range": np.ptp(data),
        "rms": np.sqrt(np.mean(data**2)),
        "median": np.median(data),
        "energy": np.sum(data**2),
        "mad": np.mean(np.abs(data - np.mean(data))),
    }[name]
    assert _stat(name, data) == pytest.approx(reference)


def test_multiple_frames_vectorized():
    frames = Window(size=4).process([scalar_chunk(np.arange(12, dtype=float))])
    out = Statistic("mean").process([frames])
    assert np.allclose(out.values, [1.5, 5.5, 9.5])


def test_unknown_statistic_rejected():
    with pytest.raises(ParameterError, match="unknown statistic"):
        Statistic("kurtosis")


def test_empty_input():
    from repro.sensors.samples import Chunk, StreamKind
    empty = Chunk.empty(StreamKind.FRAME, 50.0, width=8)
    assert Statistic("mean").process([empty]).is_empty


def test_cost_scales_with_width():
    from repro.algorithms.base import StreamShape
    from repro.sensors.samples import StreamKind
    narrow = StreamShape(StreamKind.FRAME, 1.0, 16, 50.0)
    wide = StreamShape(StreamKind.FRAME, 1.0, 1024, 50.0)
    stat = Statistic("variance")
    assert stat.cycles_per_item([wide]) > stat.cycles_per_item([narrow])
