"""Unit tests for fault-aware condition execution and watchdog recovery."""

import pytest

from repro.apps import HeadbuttApp
from repro.errors import HubExecutionError
from repro.hub.faults import NO_FAULTS, FaultPlan
from repro.hub.reliability import ReliabilityPolicy
from repro.sim import PredefinedActivity, Sidewinder
from repro.sim.configs.predefined import (
    significant_motion_pipeline,
    significant_sound_pipeline,
)
from repro.sim.recovery import degraded_sense_windows, run_condition_under_faults
from repro.sim.simulator import (
    compile_app_condition,
    faulty_condition_windows,
    run_wakeup_condition,
)


@pytest.fixture(scope="module")
def motion_graph():
    return compile_app_condition(significant_motion_pipeline())


class TestRunConditionUnderFaults:
    def test_no_faults_matches_clean_execution(self, robot_trace, motion_graph):
        clean_events = run_wakeup_condition(motion_graph, robot_trace)
        run = run_condition_under_faults(motion_graph, robot_trace, NO_FAULTS)
        assert [d.event_time for d in run.deliveries] == [
            e.time for e in clean_events
        ]
        assert all(d.arrival_time == d.event_time for d in run.deliveries)
        assert all(d.payload_delivered for d in run.deliveries)
        assert run.report.hub_resets == 0
        assert run.report.lost_wakeups == 0
        assert run.report.reliability_mj == 0.0
        assert run.resident_spans == ((0.0, robot_trace.duration),)

    def test_naive_reset_flatlines(self, robot_trace, motion_graph):
        plan = FaultPlan(hub_reset_times=(100.0,))
        run = run_condition_under_faults(motion_graph, robot_trace, plan)
        assert run.report.hub_resets == 1
        assert run.resident_spans == ((0.0, 100.0),)
        assert all(d.event_time < 100.0 for d in run.deliveries)
        assert run.degraded_windows == ()

    def test_watchdog_recovers_from_reset(self, robot_trace, motion_graph):
        plan = FaultPlan(hub_reset_times=(100.0,))
        policy = ReliabilityPolicy()
        run = run_condition_under_faults(
            motion_graph, robot_trace, plan, policy
        )
        assert run.report.watchdog_trips >= 1
        assert run.report.repushes >= 1
        assert run.report.degraded_seconds > 0.0
        assert len(run.resident_spans) == 2
        resumed_at = run.resident_spans[1][0]
        assert 100.0 < resumed_at < robot_trace.duration
        assert any(d.event_time > resumed_at for d in run.deliveries)

    def test_detection_latency_bounded_by_heartbeat(self, robot_trace, motion_graph):
        # Fast path: the rebooted hub's stale heartbeat confesses, so
        # recovery lands within reboot + one heartbeat period + push.
        plan = FaultPlan(hub_reset_times=(100.0,), hub_reboot_s=2.0)
        policy = ReliabilityPolicy(heartbeat_period_s=5.0)
        run = run_condition_under_faults(
            motion_graph, robot_trace, plan, policy
        )
        resumed_at = run.resident_spans[1][0]
        assert resumed_at - 100.0 < 2.0 + 2 * 5.0

    def test_naive_wake_loss(self, robot_trace, motion_graph):
        plan = FaultPlan(seed=3, wake_drop_probability=0.3)
        run = run_condition_under_faults(motion_graph, robot_trace, plan)
        assert run.report.lost_wakeups > 0
        assert len(run.deliveries) + run.report.lost_wakeups == run.hub_event_count

    def test_reliable_wake_loss_recovered_by_retries(
        self, robot_trace, motion_graph
    ):
        plan = FaultPlan(seed=3, wake_drop_probability=0.3)
        run = run_condition_under_faults(
            motion_graph, robot_trace, plan, ReliabilityPolicy()
        )
        assert run.report.lost_wakeups == 0
        assert run.report.retransmissions > 0
        assert run.report.reliability_mj > 0.0

    def test_delayed_wake_interrupts(self, robot_trace, motion_graph):
        plan = FaultPlan(
            seed=4, wake_delay_probability=0.9, wake_delay_s=1.5
        )
        run = run_condition_under_faults(motion_graph, robot_trace, plan)
        delays = [d.arrival_time - d.event_time for d in run.deliveries]
        assert any(delay == pytest.approx(1.5) for delay in delays)
        assert all(delay in (0.0, pytest.approx(1.5)) for delay in delays)

    def test_chunk_loss_starves_the_condition(self, robot_trace, motion_graph):
        clean = run_condition_under_faults(motion_graph, robot_trace, NO_FAULTS)
        plan = FaultPlan(seed=5, chunk_drop_probability=0.5)
        lossy = run_condition_under_faults(motion_graph, robot_trace, plan)
        assert lossy.report.lost_chunks > 0
        assert lossy.hub_event_count < clean.hub_event_count

    def test_spurious_trips_on_heartbeat_blackout(
        self, robot_trace, motion_graph
    ):
        # A very lossy wire with a healthy hub: the watchdog trips
        # spuriously, re-pushes, and the condition keeps working.
        plan = FaultPlan(seed=6, heartbeat_drop_probability=0.85)
        run = run_condition_under_faults(
            motion_graph, robot_trace, plan, ReliabilityPolicy()
        )
        assert run.report.hub_resets == 0
        assert run.report.watchdog_trips > 0
        assert run.report.repushes == run.report.watchdog_trips
        assert len(run.resident_spans) == run.report.repushes + 1

    def test_deterministic_under_fixed_seed(self, robot_trace, motion_graph):
        plan = FaultPlan(
            seed=9,
            hub_reset_times=(80.0,),
            wake_drop_probability=0.2,
            payload_drop_probability=0.2,
            chunk_drop_probability=0.05,
        )
        runs = [
            run_condition_under_faults(
                motion_graph, robot_trace, plan, ReliabilityPolicy()
            )
            for _ in range(2)
        ]
        assert runs[0].report == runs[1].report
        assert runs[0].deliveries == runs[1].deliveries
        assert runs[0].degraded_windows == runs[1].degraded_windows

    def test_missing_channel_is_hub_execution_error(self, robot_trace):
        sound = compile_app_condition(significant_sound_pipeline())
        with pytest.raises(HubExecutionError, match="MIC"):
            run_condition_under_faults(sound, robot_trace, NO_FAULTS)


class TestDegradedSenseWindows:
    def test_duty_cycle_covers_interval(self):
        policy = ReliabilityPolicy(degraded_sense_s=4.0, degraded_sleep_s=10.0)
        windows = degraded_sense_windows(((0.0, 30.0),), policy)
        assert windows == [(0.0, 4.0), (14.0, 18.0), (28.0, 30.0)]

    def test_empty_intervals_no_windows(self):
        assert degraded_sense_windows((), ReliabilityPolicy()) == []


class TestFaultyConditionWindows:
    def test_lost_payloads_shrink_visibility(self, robot_trace, motion_graph):
        lossless = FaultPlan(seed=12)
        lossy = FaultPlan(seed=12, payload_drop_probability=0.95)
        _, detect_full, run_full = faulty_condition_windows(
            motion_graph, robot_trace, lossless
        )
        _, detect_lossy, run_lossy = faulty_condition_windows(
            motion_graph, robot_trace, lossy
        )
        assert any(not d.payload_delivered for d in run_lossy.deliveries)
        visible = lambda ws: sum(b - a for a, b in ws)
        assert visible(detect_lossy) < visible(detect_full)

    def test_degraded_windows_join_awake_time(self, robot_trace, motion_graph):
        # A long brown-out loop forces the slow watchdog path; the
        # degraded duty cycle must appear in the awake windows.
        plan = FaultPlan(hub_reset_times=(100.0,), hub_reboot_s=60.0)
        policy = ReliabilityPolicy()
        awake, _, run = faulty_condition_windows(
            motion_graph, robot_trace, plan, policy
        )
        assert run.report.degraded_seconds > 10.0
        degraded_start = run.degraded_windows[0][0]
        assert any(a <= degraded_start < b for a, b in awake)


class TestConfigIntegration:
    def test_sidewinder_surfaces_counters(self, robot_trace):
        plan = FaultPlan(
            seed=21, hub_reset_times=(120.0,), wake_drop_probability=0.1
        )
        result = Sidewinder(fault_plan=plan).run(HeadbuttApp(), robot_trace)
        assert result.fault_report is not None
        assert result.hub_resets == 1
        assert result.power.reliability_mw == 0.0

    def test_sidewinder_reliable_beats_naive(self, robot_trace):
        plan = FaultPlan(
            seed=21,
            hub_reset_times=(120.0,),
            wake_drop_probability=0.15,
            payload_drop_probability=0.15,
        )
        app = HeadbuttApp()
        naive = Sidewinder(fault_plan=plan).run(app, robot_trace)
        reliable = Sidewinder(
            fault_plan=plan, reliability=ReliabilityPolicy()
        ).run(app, robot_trace)
        assert reliable.recall > naive.recall
        assert reliable.retransmissions > 0
        assert reliable.power.reliability_mw > 0.0

    def test_reliability_power_included_in_total(self, robot_trace):
        plan = FaultPlan(seed=21, wake_drop_probability=0.2)
        result = Sidewinder(
            fault_plan=plan, reliability=ReliabilityPolicy()
        ).run(HeadbuttApp(), robot_trace)
        power = result.power
        assert power.reliability_mw > 0.0
        assert power.total_mw == pytest.approx(
            power.phone_mw + power.hub_mw + power.reliability_mw
        )

    def test_predefined_activity_accepts_fault_plan(self, robot_trace):
        from repro.apps import StepsApp

        plan = FaultPlan(seed=22, hub_reset_times=(120.0,))
        naive = PredefinedActivity(fault_plan=plan).run(StepsApp(), robot_trace)
        reliable = PredefinedActivity(
            fault_plan=plan, reliability=ReliabilityPolicy()
        ).run(StepsApp(), robot_trace)
        assert naive.fault_report is not None
        assert naive.hub_resets == 1
        assert reliable.recall >= naive.recall

    def test_fault_free_result_counters_default_to_zero(self, robot_trace):
        result = Sidewinder().run(HeadbuttApp(), robot_trace)
        assert result.fault_report is None
        assert result.hub_resets == 0
        assert result.retransmissions == 0
        assert result.lost_wakeups == 0
        assert result.degraded_seconds == 0.0
