"""Unit tests for battery projection and sensor-fault injection."""

import numpy as np
import pytest

from repro.errors import SimulationError, TraceError
from repro.power.battery import NEXUS4_BATTERY, BatteryModel, lifetime_gain
from repro.traces.perturb import dropout, noise_burst, random_fault_spans, stuck_sensor


class TestBattery:
    def test_usable_energy(self):
        assert NEXUS4_BATTERY.usable_energy_mwh == pytest.approx(
            2100 * 3.8 * 0.9
        )

    def test_always_awake_about_a_day(self):
        hours = NEXUS4_BATTERY.hours_at(323.0)
        assert 20.0 < hours < 26.0

    def test_sidewinder_weeks(self):
        # A Sidewinder deployment around 20 mW: two weeks or more.
        assert NEXUS4_BATTERY.days_at(20.0) > 14.0

    def test_lifetime_gain_is_power_ratio(self):
        assert lifetime_gain(323.0, 32.3) == pytest.approx(10.0)

    def test_invalid_power_rejected(self):
        with pytest.raises(SimulationError):
            NEXUS4_BATTERY.hours_at(0.0)
        with pytest.raises(SimulationError):
            lifetime_gain(-1.0, 5.0)

    def test_custom_battery(self):
        battery = BatteryModel("test", 1000.0, 3.7, usable_fraction=1.0)
        assert battery.hours_at(370.0) == pytest.approx(10.0)


class TestPerturbations:
    def test_stuck_holds_last_value(self, robot_trace):
        faulty = stuck_sensor(robot_trace, "ACC_X", [(10.0, 12.0)])
        rate = robot_trace.rate_hz["ACC_X"]
        i0 = int(10.0 * rate)
        held = robot_trace.data["ACC_X"][i0 - 1]
        assert np.all(faulty.data["ACC_X"][i0 : int(12.0 * rate)] == held)

    def test_original_not_mutated(self, robot_trace):
        before = robot_trace.data["ACC_X"].copy()
        stuck_sensor(robot_trace, "ACC_X", [(10.0, 12.0)])
        dropout(robot_trace, "ACC_X", [(20.0, 22.0)])
        noise_burst(robot_trace, "ACC_X", [(30.0, 32.0)], sigma=1.0)
        assert np.array_equal(robot_trace.data["ACC_X"], before)

    def test_dropout_fills_constant(self, robot_trace):
        faulty = dropout(robot_trace, "ACC_Z", [(5.0, 6.0)], fill=-1.0)
        rate = robot_trace.rate_hz["ACC_Z"]
        assert np.all(
            faulty.data["ACC_Z"][int(5 * rate) : int(6 * rate)] == -1.0
        )

    def test_noise_burst_raises_variance(self, robot_trace):
        faulty = noise_burst(robot_trace, "ACC_Y", [(5.0, 15.0)], sigma=3.0, seed=1)
        rate = robot_trace.rate_hz["ACC_Y"]
        window = slice(int(5 * rate), int(15 * rate))
        assert np.std(faulty.data["ACC_Y"][window]) > np.std(
            robot_trace.data["ACC_Y"][window]
        )

    def test_negative_sigma_rejected(self, robot_trace):
        with pytest.raises(TraceError):
            noise_burst(robot_trace, "ACC_X", [(1.0, 2.0)], sigma=-1.0)

    def test_empty_span_rejected(self, robot_trace):
        with pytest.raises(TraceError):
            stuck_sensor(robot_trace, "ACC_X", [(5.0, 5.0)])

    def test_ground_truth_preserved(self, robot_trace):
        faulty = dropout(robot_trace, "ACC_X", [(10.0, 20.0)])
        assert faulty.events == robot_trace.events
        assert faulty.metadata["fault"] == "dropout"

    def test_other_channels_untouched(self, robot_trace):
        faulty = dropout(robot_trace, "ACC_X", [(10.0, 20.0)])
        assert np.array_equal(faulty.data["ACC_Y"], robot_trace.data["ACC_Y"])


class TestRandomFaultSpans:
    def test_respects_budget_and_length(self, robot_trace):
        spans = random_fault_spans(robot_trace, total_fault_s=20.0, span_s=5.0)
        assert len(spans) == 4
        for start, end in spans:
            assert end - start == pytest.approx(5.0)
            assert 0.0 <= start and end <= robot_trace.duration

    def test_non_overlapping(self, robot_trace):
        spans = random_fault_spans(robot_trace, 60.0, 5.0, seed=3)
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0

    def test_avoid_events(self, robot_trace):
        spans = random_fault_spans(
            robot_trace, 30.0, 3.0, seed=4, avoid_events=True
        )
        for start, end in spans:
            for event in robot_trace.events:
                assert not (end > event.start and start < event.end)

    def test_invalid_args(self, robot_trace):
        with pytest.raises(TraceError):
            random_fault_spans(robot_trace, 10.0, 0.0)

    def test_span_longer_than_trace_rejected(self, robot_trace):
        # Used to silently draw from uniform(0, negative) — now a
        # diagnosable error.
        with pytest.raises(TraceError, match="exceeds trace duration"):
            random_fault_spans(
                robot_trace, 10.0, span_s=robot_trace.duration + 1.0
            )

    def test_budget_below_span_yields_nothing(self, robot_trace):
        assert random_fault_spans(robot_trace, total_fault_s=2.0, span_s=5.0) == []

    def test_zero_budget_yields_nothing(self, robot_trace):
        assert random_fault_spans(robot_trace, 0.0, 5.0) == []

    def test_deterministic_per_seed(self, robot_trace):
        a = random_fault_spans(robot_trace, 30.0, 5.0, seed=11)
        b = random_fault_spans(robot_trace, 30.0, 5.0, seed=11)
        c = random_fault_spans(robot_trace, 30.0, 5.0, seed=12)
        assert a == b
        assert a != c


class TestPerturbationEdgeCases:
    def test_span_past_trace_end_is_clamped(self, robot_trace):
        end = robot_trace.duration
        faulty = dropout(robot_trace, "ACC_X", [(end - 1.0, end + 10.0)], fill=7.0)
        samples = faulty.data["ACC_X"]
        assert len(samples) == len(robot_trace.data["ACC_X"])
        rate = robot_trace.rate_hz["ACC_X"]
        assert np.all(samples[int((end - 1.0) * rate) :] == 7.0)

    def test_overlapping_spans_compose(self, robot_trace):
        # Overlapping spans are legal; each is applied in order, so the
        # union of both regions ends up perturbed.
        faulty = dropout(
            robot_trace, "ACC_X", [(10.0, 14.0), (12.0, 16.0)], fill=0.5
        )
        rate = robot_trace.rate_hz["ACC_X"]
        region = faulty.data["ACC_X"][int(10 * rate) : int(16 * rate)]
        assert np.all(region == 0.5)

    def test_overlapping_stuck_spans_hold_first_value(self, robot_trace):
        faulty = stuck_sensor(
            robot_trace, "ACC_Y", [(10.0, 14.0), (12.0, 16.0)]
        )
        rate = robot_trace.rate_hz["ACC_Y"]
        held = robot_trace.data["ACC_Y"][int(10 * rate) - 1]
        region = faulty.data["ACC_Y"][int(10 * rate) : int(16 * rate)]
        assert np.all(region == held)

    def test_stuck_span_at_trace_start_holds_first_sample(self, robot_trace):
        faulty = stuck_sensor(robot_trace, "ACC_X", [(0.0, 2.0)])
        rate = robot_trace.rate_hz["ACC_X"]
        first = robot_trace.data["ACC_X"][0]
        assert np.all(faulty.data["ACC_X"][: int(2 * rate)] == first)

    def test_noise_burst_deterministic_per_seed(self, robot_trace):
        a = noise_burst(robot_trace, "ACC_Z", [(5.0, 10.0)], sigma=2.0, seed=3)
        b = noise_burst(robot_trace, "ACC_Z", [(5.0, 10.0)], sigma=2.0, seed=3)
        c = noise_burst(robot_trace, "ACC_Z", [(5.0, 10.0)], sigma=2.0, seed=4)
        assert np.array_equal(a.data["ACC_Z"], b.data["ACC_Z"])
        assert not np.array_equal(a.data["ACC_Z"], c.data["ACC_Z"])

    def test_noise_burst_zero_sigma_is_identity(self, robot_trace):
        faulty = noise_burst(robot_trace, "ACC_X", [(5.0, 10.0)], sigma=0.0)
        assert np.array_equal(faulty.data["ACC_X"], robot_trace.data["ACC_X"])

    def test_samples_outside_spans_untouched(self, robot_trace):
        faulty = noise_burst(
            robot_trace, "ACC_X", [(5.0, 10.0)], sigma=3.0, seed=1
        )
        rate = robot_trace.rate_hz["ACC_X"]
        assert np.array_equal(
            faulty.data["ACC_X"][: int(5 * rate)],
            robot_trace.data["ACC_X"][: int(5 * rate)],
        )
        assert np.array_equal(
            faulty.data["ACC_X"][int(10 * rate) :],
            robot_trace.data["ACC_X"][int(10 * rate) :],
        )


class TestRobustnessUnderFaults:
    def test_stuck_sensor_outside_events_harmless(self, robot_trace):
        """Faults during idle time do not cost recall."""
        from repro.apps import HeadbuttApp
        from repro.sim import Sidewinder
        spans = random_fault_spans(
            robot_trace, 30.0, 5.0, seed=7, avoid_events=True
        )
        faulty = stuck_sensor(robot_trace, "ACC_Y", spans)
        result = Sidewinder().run(HeadbuttApp(), faulty)
        assert result.recall == 1.0

    def test_dropout_during_events_costs_recall(self, robot_trace):
        """Zeroing the y axis across every headbutt hides them all —
        the conditions cannot conjure events out of missing data."""
        from repro.apps import HeadbuttApp
        from repro.sim import Sidewinder
        app = HeadbuttApp()
        spans = [
            (e.start - 0.2, e.end + 0.2)
            for e in app.events_of_interest(robot_trace)
        ]
        faulty = dropout(robot_trace, "ACC_Y", spans)
        result = Sidewinder().run(app, faulty)
        assert result.recall == 0.0

    def test_noise_bursts_cost_energy_not_recall(self, quiet_robot_trace):
        """EMI-style bursts trigger spurious wake-ups (energy) but the
        precise detector keeps precision and recall."""
        from repro.apps import StepsApp
        from repro.sim import PredefinedActivity
        spans = random_fault_spans(
            quiet_robot_trace, 40.0, 5.0, seed=9, avoid_events=True
        )
        noisy = noise_burst(quiet_robot_trace, "ACC_X", spans, sigma=2.5, seed=9)
        clean_result = PredefinedActivity().run(StepsApp(), quiet_robot_trace)
        noisy_result = PredefinedActivity().run(StepsApp(), noisy)
        assert noisy_result.recall == 1.0
        assert noisy_result.average_power_mw > clean_result.average_power_mw
