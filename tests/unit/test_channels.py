"""Unit tests for sensor channel definitions."""

import pytest

from repro.errors import UnknownChannelError
from repro.sensors.channels import (
    ACC_X,
    ACC_Y,
    ACC_Z,
    ACCELEROMETER_CHANNELS,
    MIC,
    SensorKind,
    all_channels,
    channel_by_name,
)


def test_accelerometer_channels_order():
    assert ACCELEROMETER_CHANNELS == (ACC_X, ACC_Y, ACC_Z)


def test_channel_lookup_by_name():
    assert channel_by_name("ACC_X") is ACC_X
    assert channel_by_name("MIC") is MIC


def test_unknown_channel_raises():
    with pytest.raises(UnknownChannelError):
        channel_by_name("GYRO_X")


def test_channel_kinds():
    assert ACC_X.kind is SensorKind.ACCELEROMETER
    assert MIC.kind is SensorKind.MICROPHONE


def test_rates_positive():
    for channel in all_channels():
        assert channel.rate_hz > 0


def test_audio_rate_covers_siren_band():
    # Nyquist must exceed the siren detector's 1800 Hz upper band edge.
    assert MIC.rate_hz / 2 > 1800


def test_str_is_il_name():
    assert str(ACC_Y) == "ACC_Y"
