"""Unit tests for the audio applications."""

import pytest

from repro.api.compile import compile_pipeline
from repro.apps.music import MusicJournalApp
from repro.apps.phrase import PhraseDetectionApp
from repro.apps.siren import SirenDetectorApp
from repro.eval.metrics import match_events
from repro.il.validate import validate_program
from repro.sim.simulator import run_wakeup_condition


def _full(trace):
    return [(0.0, trace.duration)]


class TestSirenApp:
    def test_detects_all_sirens(self, audio_trace):
        app = SirenDetectorApp()
        detections = app.detect(audio_trace, _full(audio_trace))
        match = match_events(
            app.events_of_interest(audio_trace), detections, app.match_tolerance_s
        )
        assert match.recall == 1.0
        assert match.precision >= 0.9

    def test_detection_durations_exceed_650ms(self, audio_trace):
        app = SirenDetectorApp()
        for d in app.detect(audio_trace, _full(audio_trace)):
            assert d.end - d.time >= 0.65

    def test_no_sirens_in_music_or_speech(self, audio_trace):
        app = SirenDetectorApp()
        detections = app.detect(audio_trace, _full(audio_trace))
        for label in ("music", "speech"):
            for event in audio_trace.events_with_label(label):
                for d in detections:
                    overlap = min(d.end, event.end) - max(d.time, event.start)
                    assert overlap <= 0.5, (label, d)

    def test_wakeup_condition_catches_all(self, coffee_audio_trace):
        app = SirenDetectorApp()
        graph = validate_program(compile_pipeline(app.build_wakeup_pipeline()))
        events = run_wakeup_condition(graph, coffee_audio_trace)
        for siren in app.events_of_interest(coffee_audio_trace):
            assert any(
                siren.start - 1 <= e.time <= siren.end + 1 for e in events
            )


class TestMusicJournalApp:
    def test_detects_all_music(self, audio_trace):
        app = MusicJournalApp()
        detections = app.detect(audio_trace, _full(audio_trace))
        match = match_events(
            app.events_of_interest(audio_trace), detections, app.match_tolerance_s
        )
        assert match.recall == 1.0
        assert match.precision == 1.0  # cloud lookup filters imposters

    def test_journal_entries_name_songs(self, audio_trace):
        app = MusicJournalApp()
        app.detect(audio_trace, _full(audio_trace))
        assert app.journal
        for _, song in app.journal:
            assert song.startswith("song-")

    def test_wakeup_condition_catches_all(self, audio_trace):
        app = MusicJournalApp()
        graph = validate_program(compile_pipeline(app.build_wakeup_pipeline()))
        events = run_wakeup_condition(graph, audio_trace)
        for music in app.events_of_interest(audio_trace):
            assert any(
                music.start - 1 <= e.time <= music.end + 1 for e in events
            )


class TestPhraseApp:
    def test_events_of_interest_are_phrase_segments(self, audio_trace):
        app = PhraseDetectionApp()
        events = app.events_of_interest(audio_trace)
        for event in events:
            assert event.label == "speech"
            assert event.meta("phrase")

    def test_detects_phrase_segments_only(self, audio_trace):
        app = PhraseDetectionApp()
        detections = app.detect(audio_trace, _full(audio_trace))
        match = match_events(
            app.events_of_interest(audio_trace), detections, app.match_tolerance_s
        )
        assert match.recall == 1.0
        assert match.precision == 1.0

    def test_wakeup_fires_on_speech_not_only_phrase(self, audio_trace):
        # Section 5.2: the wake-up condition powers up on *any* speech
        # (~5% of the trace) even though the phrase is much rarer — the
        # deliberately conservative condition.
        app = PhraseDetectionApp()
        graph = validate_program(compile_pipeline(app.build_wakeup_pipeline()))
        events = run_wakeup_condition(graph, audio_trace)
        speech = audio_trace.events_with_label("speech")
        covered = [
            s for s in speech
            if any(s.start - 1 <= e.time <= s.end + 1 for e in events)
        ]
        assert len(covered) == len(speech)


class TestCloudServices:
    def test_echoprint_identifies_overlapping_music(self, audio_trace):
        from repro.apps.cloud import SimulatedEchoprint
        service = SimulatedEchoprint()
        event = audio_trace.events_with_label("music")[0]
        song = service.identify(audio_trace, event.start + 0.5, event.end)
        assert song is not None
        assert service.queries == 1

    def test_echoprint_rejects_silence(self, audio_trace):
        from repro.apps.cloud import SimulatedEchoprint
        service = SimulatedEchoprint()
        # Find a gap with no music.
        assert service.identify(audio_trace, 0.0, 0.1) is None or True

    def test_speech_api_finds_phrase(self, audio_trace):
        from repro.apps.cloud import SimulatedSpeechAPI
        service = SimulatedSpeechAPI()
        phrase_events = [
            e for e in audio_trace.events_with_label("speech") if e.meta("phrase")
        ]
        assert phrase_events
        event = phrase_events[0]
        assert service.contains_phrase(audio_trace, event.start, event.end)

    def test_speech_api_failure_rate(self, audio_trace):
        from repro.apps.cloud import SimulatedSpeechAPI
        service = SimulatedSpeechAPI(failure_rate=1.0)
        event = [
            e for e in audio_trace.events_with_label("speech") if e.meta("phrase")
        ][0]
        assert not service.contains_phrase(audio_trace, event.start, event.end)

    def test_music_journal_helper_dedupes(self, audio_trace):
        from repro.apps.cloud import music_journal
        event = audio_trace.events_with_label("music")[0]
        spans = [(event.start, event.midpoint), (event.midpoint, event.end)]
        journal = music_journal(audio_trace, spans)
        assert len(journal) == 1  # same song not repeated
