"""Unit tests for the standard corpora."""

from repro.traces.library import (
    ROBOT_GROUP_RUNS,
    audio_corpus,
    human_corpus,
    robot_corpus,
    robot_group,
)

#: Small sizes for test speed; corpora are parameterized by duration.
_ROBOT_S = 120.0
_HUMAN_S = 150.0
_AUDIO_S = 60.0


def test_robot_corpus_run_counts_match_paper():
    # Section 4.1: 18 runs — 9 group 1, 6 group 2, 3 group 3.
    assert ROBOT_GROUP_RUNS == ((1, 9), (2, 6), (3, 3))
    corpus = robot_corpus(duration_s=_ROBOT_S)
    assert len(corpus) == 18
    by_group = {}
    for trace in corpus:
        by_group.setdefault(trace.metadata["group"], []).append(trace)
    assert {g: len(ts) for g, ts in by_group.items()} == {1: 9, 2: 6, 3: 3}


def test_robot_group_filter():
    group2 = robot_group(2, duration_s=_ROBOT_S)
    assert len(group2) == 6
    assert all(t.metadata["group"] == 2 for t in group2)


def test_human_corpus_has_three_scenarios():
    corpus = human_corpus(duration_s=_HUMAN_S)
    scenarios = {t.metadata["scenario"] for t in corpus}
    assert scenarios == {"commute", "retail", "office"}


def test_audio_corpus_has_three_environments():
    corpus = audio_corpus(duration_s=_AUDIO_S)
    environments = {t.metadata["environment"] for t in corpus}
    assert environments == {"office", "coffee_shop", "outdoors"}


def test_corpora_are_cached_and_deterministic():
    a = robot_corpus(duration_s=_ROBOT_S)
    b = robot_corpus(duration_s=_ROBOT_S)
    assert a is b  # lru_cache
    import numpy as np
    c = robot_corpus(duration_s=_ROBOT_S, base_seed=1000)
    assert np.array_equal(a[0].data["ACC_X"], c[0].data["ACC_X"])


def test_all_trace_names_unique():
    names = [t.name for t in robot_corpus(duration_s=_ROBOT_S)]
    names += [t.name for t in human_corpus(duration_s=_HUMAN_S)]
    names += [t.name for t in audio_corpus(duration_s=_AUDIO_S)]
    assert len(names) == len(set(names))
