"""Guards on public-API quality: docstrings and exports.

Every public module, class and function in the library must carry a
docstring, and the package ``__all__`` lists must only export names
that exist.  These tests keep the documentation promise enforceable.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if method.__doc__ and method.__doc__.strip():
                    continue
                # Overrides inherit the base method's documentation.
                inherited = any(
                    getattr(base, method_name, None) is not None
                    and getattr(base, method_name).__doc__
                    for base in member.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, f"{module.__name__}: {undocumented}"


@pytest.mark.parametrize(
    "module",
    [m for m in ALL_MODULES if hasattr(m, "__all__")],
    ids=lambda m: m.__name__,
)
def test_dunder_all_entries_exist(module):
    missing = [name for name in module.__all__ if not hasattr(module, name)]
    assert not missing, f"{module.__name__}: {missing}"


def test_top_level_convenience_exports():
    # The flagship classes are importable from the obvious places.
    from repro.api import ProcessingPipeline, SidewinderSensorManager  # noqa: F401
    from repro.sim import Sidewinder, Oracle  # noqa: F401
    from repro.hub import SensorHub, MSP430  # noqa: F401
