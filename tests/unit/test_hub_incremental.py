"""Incremental (bounded-replay) streaming execution: eligibility and
bit-exact equivalence.

The streaming ingestion path evaluates a subscription's condition on
each newly arrived span, carrying a retained replay tail per plan step
(`repro.hub.incremental`).  Its correctness contract is the streaming
analogue of the fused/compiled/batched suites: the concatenation of
per-arrival outputs must be *bit-identical* (exact times AND values) to
running the final assembled trace whole, for any arrival chunking.
This module checks:

* eligibility composes batch eligibility with the per-opcode
  ``incremental`` flag and per-instance parameter gates, each with a
  human-readable reason;
* for each equivalence program, randomized irregular arrival spans
  reproduce the whole-trace compiled plan exactly — singly and when
  many subscriptions advance together through stacked dispatches,
  including out-of-step interleavings where states receive differently
  sized spans (some empty) in the same round;
* shape-batched advancing (same structure, per-row threshold values)
  stays row-identical to per-state advancing;
* the two whole-graph replay fallbacks are themselves arrival-chunking
  invariant: chunk-invariant graphs fed arbitrary spans match the
  compiled plan, and non-invariant graphs fed via the canonical round
  replica match the round-by-round interpreter at the subscription's
  ``chunk_seconds``.
"""

import numpy as np
import pytest

from repro.errors import HubExecutionError
from repro.hub.compile import compile_graph
from repro.hub.incremental import (
    ChunkedReplayState,
    IncrementalGraphState,
    RoundReplayState,
    advance_rows,
    advance_rows_with_info,
    incremental_eligibility,
    make_stream_state,
)
from repro.hub.runtime import split_into_rounds
from repro.sensors.samples import Chunk
from tests.unit.test_fused_runtime import (
    EMA_PROGRAM,
    PROGRAMS,
    _events,
    _graph,
    _random_rounds,
    _signal,
)

#: Programs whose every node supports bounded replay.  "extrema" is the
#: one shipped equivalence program that does not (min_separation=3
#: debounces against emission history).
INCREMENTAL_PROGRAMS = {
    name: text for name, text in PROGRAMS.items() if name != "extrema"
}
INCREMENTAL_PROGRAMS["extrema_debounce_free"] = (
    "ACC_X -> localExtrema(id=1, params={max, 0.3, 10, 1});"
    "1 -> OUT;"
)

HOP_EXCEEDS_SIZE = (
    "ACC_X -> window(id=1, params={8, 12, rectangular});"
    "1 -> stat(id=2, params={mean});"
    "2 -> OUT;"
)


def _threshold_program(threshold):
    return (
        "ACC_X -> movingAvg(id=1, params={10});"
        f"1 -> minThreshold(id=2, params={{{threshold}}});"
        "2 -> OUT;"
    )


def _empty_spans(channel_data):
    return {
        name: Chunk.scalars(np.empty(0), np.empty(0), rate)
        for name, (_times, _values, rate) in channel_data.items()
    }


def _stream(state, channel_data, rng):
    """Feed randomized irregular arrival spans; return all events."""
    events = []
    for spans in _random_rounds(channel_data, rng):
        events.extend(state.advance(spans))
    events.extend(state.close())
    return events


class TestEligibility:
    @pytest.mark.parametrize("name", sorted(INCREMENTAL_PROGRAMS))
    def test_bounded_replay_programs_are_eligible(self, name):
        assert incremental_eligibility(_graph(INCREMENTAL_PROGRAMS[name])) is None

    def test_batch_reasons_carry_over(self):
        reason = incremental_eligibility(_graph(EMA_PROGRAM))
        assert reason is not None
        assert "expMovingAvg" in reason

    def test_debounced_extrema_gets_parameter_reason(self):
        reason = incremental_eligibility(_graph(PROGRAMS["extrema"]))
        assert reason is not None
        assert "min_separation" in reason

    def test_hop_exceeding_size_gets_parameter_reason(self):
        reason = incremental_eligibility(_graph(HOP_EXCEEDS_SIZE))
        assert reason is not None
        assert "hop" in reason

    def test_state_constructor_refuses_ineligible_graph(self):
        with pytest.raises(HubExecutionError, match="not incremental-eligible"):
            IncrementalGraphState(_graph(EMA_PROGRAM))

    def test_mode_selection(self):
        assert isinstance(
            make_stream_state(_graph(PROGRAMS["sustained"]), 4.0),
            IncrementalGraphState,
        )
        assert isinstance(
            make_stream_state(_graph(PROGRAMS["extrema"]), 4.0),
            ChunkedReplayState,
        )
        assert isinstance(
            make_stream_state(_graph(EMA_PROGRAM), 4.0), RoundReplayState
        )


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("name", sorted(INCREMENTAL_PROGRAMS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_arrivals_match_whole_trace(self, name, seed):
        graph = _graph(INCREMENTAL_PROGRAMS[name])
        channel_data = _signal(duration_s=24.0, seed=seed)
        whole = compile_graph(graph).execute(channel_data)
        streamed = _stream(
            IncrementalGraphState(graph),
            channel_data,
            np.random.default_rng(seed + 100),
        )
        assert streamed == whole  # exact times AND values

    def test_tiny_spans_cross_every_warmup_boundary(self):
        graph = _graph(INCREMENTAL_PROGRAMS["significant_motion"])
        channel_data = _signal(duration_s=4.0, seed=7)
        whole = compile_graph(graph).execute(channel_data)
        state = IncrementalGraphState(graph)
        n = len(channel_data["ACC_X"][0])
        events = []
        i0 = 0
        rng = np.random.default_rng(8)
        while i0 < n:
            i1 = min(n, i0 + int(rng.integers(1, 4)))
            events.extend(
                state.advance(
                    {
                        name: Chunk.scalars(t[i0:i1], v[i0:i1], rate)
                        for name, (t, v, rate) in channel_data.items()
                    }
                )
            )
            i0 = i1
        events.extend(state.close())
        assert events == whole

    def test_idle_rounds_change_nothing(self):
        graph = _graph(INCREMENTAL_PROGRAMS["sustained"])
        channel_data = _signal(duration_s=12.0, seed=3)
        whole = compile_graph(graph).execute(channel_data)
        state = IncrementalGraphState(graph)
        events = []
        for spans in _random_rounds(channel_data, np.random.default_rng(9)):
            events.extend(state.advance(spans))
            assert state.advance(_empty_spans(channel_data)) == []
        events.extend(state.close())
        assert events == whole


class TestBatchedAdvance:
    def test_interleaved_states_match_whole_trace(self):
        graph_text = INCREMENTAL_PROGRAMS["significant_motion"]
        datas = [_signal(duration_s=10.0 + 3 * k, seed=40 + k) for k in range(3)]
        states = [IncrementalGraphState(_graph(graph_text)) for _ in datas]
        assert len({state.batch_key for state in states}) == 1
        # Each state's arrivals are cut at different boundaries, so in
        # any given round the states are out of step (one may receive
        # nothing at all).
        arrival_lists = [
            list(_random_rounds(data, np.random.default_rng(50 + k)))
            for k, data in enumerate(datas)
        ]
        rounds = max(len(arrivals) for arrivals in arrival_lists)
        events = [[] for _ in states]
        info_rows = 0
        for k in range(rounds):
            spans = [
                arrivals[k] if k < len(arrivals) else _empty_spans(data)
                for arrivals, data in zip(arrival_lists, datas)
            ]
            results, info = advance_rows_with_info(states, spans)
            info_rows += info.rows
            for per_state, new in zip(events, results):
                per_state.extend(new)
        for state, per_state in zip(states, events):
            per_state.extend(state.close())
        assert info_rows > rounds  # genuinely stacked, not row-at-a-time
        for data, per_state, graph in zip(datas, events, (s.graph for s in states)):
            assert per_state == compile_graph(graph).execute(data)

    def test_shape_batched_rows_match_per_state(self):
        thresholds = (0.2, 0.4, 0.6)
        graphs = [_graph(_threshold_program(t)) for t in thresholds]
        states = [IncrementalGraphState(g) for g in graphs]
        assert len({state.batch_key for state in states}) == 1
        data = _signal(duration_s=16.0, seed=60)
        arrivals = list(_random_rounds(data, np.random.default_rng(61)))
        batched = [[] for _ in states]
        for spans in arrivals:
            for per_state, new in zip(
                batched, advance_rows(states, [spans] * len(states))
            ):
                per_state.extend(new)
        for graph, per_state in zip(graphs, batched):
            assert per_state == compile_graph(graph).execute(data)

    def test_mixed_batch_keys_are_refused(self):
        a = IncrementalGraphState(_graph(_threshold_program(0.2)))
        b = IncrementalGraphState(_graph(INCREMENTAL_PROGRAMS["sustained"]))
        with pytest.raises(HubExecutionError, match="batch key"):
            advance_rows([a, b], [{}, {}])


class TestReplayFallbacks:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_chunked_replay_matches_whole_trace(self, seed):
        # Fusion-eligible but not incremental: debounced extrema.
        graph = _graph(PROGRAMS["extrema"])
        channel_data = _signal(duration_s=20.0, seed=seed)
        whole = compile_graph(graph).execute(channel_data)
        streamed = _stream(
            ChunkedReplayState(graph),
            channel_data,
            np.random.default_rng(seed + 200),
        )
        assert streamed == whole

    @pytest.mark.parametrize("chunk_seconds", [4.0, 2.5])
    def test_round_replay_matches_canonical_rounds(self, chunk_seconds):
        graph = _graph(EMA_PROGRAM)
        channel_data = _signal(duration_s=21.0, seed=5)
        reference = _events(
            graph, split_into_rounds(channel_data, chunk_seconds)
        )
        graph.reset()
        streamed = _stream(
            RoundReplayState(graph, chunk_seconds),
            channel_data,
            np.random.default_rng(6),
        )
        assert streamed == reference

    def test_round_replay_emits_before_close(self):
        graph = _graph(EMA_PROGRAM)
        channel_data = _signal(duration_s=30.0, seed=11)
        state = RoundReplayState(graph, 4.0)
        early = []
        for spans in _random_rounds(channel_data, np.random.default_rng(12)):
            early.extend(state.advance(spans))
        assert early  # rounds flow while the stream is still open
        late = state.close()
        graph.reset()
        assert early + late == _events(
            graph, split_into_rounds(channel_data, 4.0)
        )

    def test_round_replay_empty_stream_closes_clean(self):
        state = RoundReplayState(_graph(EMA_PROGRAM), 4.0)
        assert state.close() == []
