"""Unit tests for MCU feasibility analysis and selection."""

import pytest

from repro.api.compile import compile_pipeline
from repro.errors import FeasibilityError
from repro.hub.feasibility import analyze, estimate_ram_bytes, is_feasible, select_mcu
from repro.hub.mcu import DEFAULT_CATALOG, LM4F120, MSP430, MCUModel
from repro.il.parser import parse_program
from repro.il.validate import validate_program


def _graph(text):
    return validate_program(parse_program(text))


ACCEL_CONDITION = (
    "ACC_X -> movingAvg(id=1, params={10});"
    "1 -> minThreshold(id=2, params={15});"
    "2 -> OUT;"
)

AUDIO_FFT_CONDITION = (
    "MIC -> window(id=1, params={size=512, hop=256});"
    "1 -> highPass(id=2, params={750});"
    "2 -> fft(id=3);"
    "3 -> dominantFrequency(id=4, params={mode=ratio, min_hz=850, max_hz=1800});"
    "4 -> minThreshold(id=5, params={15});"
    "5 -> OUT;"
)


def test_accel_condition_fits_msp430():
    # Paper Section 4.3: everything except the siren detector runs on
    # the MSP430.
    assert is_feasible(_graph(ACCEL_CONDITION), MSP430)


def test_audio_fft_exceeds_msp430():
    # Paper Section 4: the MSP430 "was unable to run the FFT-based
    # low-pass filter in real-time".
    assert not is_feasible(_graph(AUDIO_FFT_CONDITION), MSP430)


def test_audio_fft_fits_lm4f120():
    assert is_feasible(_graph(AUDIO_FFT_CONDITION), LM4F120)


def test_select_prefers_cheapest_feasible():
    assert select_mcu(_graph(ACCEL_CONDITION)) is MSP430
    assert select_mcu(_graph(AUDIO_FFT_CONDITION)) is LM4F120


def test_select_raises_when_nothing_fits():
    tiny = MCUModel("tiny", 0.5, 1000.0, 0.5, 64)
    with pytest.raises(FeasibilityError):
        select_mcu(_graph(AUDIO_FFT_CONDITION), (tiny,))


def test_report_fields_consistent():
    report = analyze(_graph(AUDIO_FFT_CONDITION), MSP430)
    assert report.cycles_per_second == pytest.approx(
        sum(c for _, c in report.per_node_cycles)
    )
    assert report.utilization > 1.0
    assert not report.feasible


def test_ram_estimate_counts_window_sizes():
    small = estimate_ram_bytes(_graph(ACCEL_CONDITION))
    big = estimate_ram_bytes(
        _graph(
            "MIC -> window(id=1, params={4096});"
            "1 -> stat(id=2, params={rms});"
            "2 -> minThreshold(id=3, params={1});"
            "3 -> OUT;"
        )
    )
    assert big > small
    assert big >= 4096 * 2  # 16-bit samples


def test_ram_can_be_the_binding_constraint():
    graph = _graph(
        "ACC_X -> window(id=1, params={40000});"
        "1 -> stat(id=2, params={mean});"
        "2 -> minThreshold(id=3, params={1});"
        "3 -> OUT;"
    )
    assert not is_feasible(graph, MSP430)  # 80 KB of state, 10 KB RAM


def test_all_paper_apps_place_as_in_section_4_3():
    from repro.apps import all_applications
    placements = {}
    for app in all_applications():
        graph = validate_program(compile_pipeline(app.build_wakeup_pipeline()))
        placements[app.name] = select_mcu(graph, DEFAULT_CATALOG).name
    assert placements["sirens"] == "TI LM4F120"
    for name, mcu in placements.items():
        if name != "sirens":
            assert mcu == "TI MSP430", name


def test_mcu_power_ordering_matches_paper():
    # "an energy footprint an order of magnitude greater"
    assert LM4F120.awake_power_mw > 10 * MSP430.awake_power_mw
    assert MSP430.awake_power_mw == pytest.approx(3.6)
    assert LM4F120.awake_power_mw == pytest.approx(49.4)
