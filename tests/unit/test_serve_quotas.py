"""Unit tests for per-tenant admission control."""

import pytest

from repro.errors import ServiceError
from repro.serve import AdmissionController, TenantQuota


class TestTenantQuota:
    def test_rejects_non_positive_pending(self):
        with pytest.raises(ServiceError, match="max_pending"):
            TenantQuota(max_pending=0)

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ServiceError, match="max_submissions"):
            TenantQuota(max_submissions=0)

    def test_unmetered_budget_by_default(self):
        assert TenantQuota().max_submissions is None


class TestAdmissionController:
    def test_pending_quota_enforced_per_tenant(self):
        ctl = AdmissionController(TenantQuota(max_pending=2))
        assert ctl.admit("a") is None
        ctl.on_accepted("a")
        assert ctl.admit("a") is None
        ctl.on_accepted("a")
        assert ctl.admit("a") == "tenant_quota"
        # Another tenant is unaffected.
        assert ctl.admit("b") is None

    def test_scheduling_frees_pending_slots(self):
        ctl = AdmissionController(TenantQuota(max_pending=1))
        ctl.on_accepted("a")
        assert ctl.admit("a") == "tenant_quota"
        ctl.on_scheduled("a")
        assert ctl.admit("a") is None

    def test_budget_is_lifetime_not_pending(self):
        ctl = AdmissionController(TenantQuota(max_pending=8, max_submissions=2))
        for _ in range(2):
            assert ctl.admit("a") is None
            ctl.on_accepted("a")
            ctl.on_scheduled("a")
        # Queue is empty, but the lifetime budget is spent.
        assert ctl.admit("a") == "tenant_budget"
        assert ctl.accepted()["a"] == 2

    def test_budget_checked_before_pending_quota(self):
        ctl = AdmissionController(TenantQuota(max_pending=1, max_submissions=1))
        ctl.on_accepted("a")
        assert ctl.admit("a") == "tenant_budget"

    def test_pending_view_drops_zeroed_tenants(self):
        ctl = AdmissionController(TenantQuota())
        ctl.on_accepted("a")
        ctl.on_accepted("b")
        ctl.on_scheduled("a")
        assert ctl.pending() == {"b": 1}
        ctl.on_scheduled("b")
        assert ctl.pending() == {}
