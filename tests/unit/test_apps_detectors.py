"""Unit tests for the shared precise-detector helpers."""

import numpy as np
import pytest

from repro.apps.detectors import (
    frame_signal,
    iter_window_arrays,
    local_maxima,
    merge_spans,
    moving_average,
    spans_from_mask,
    zero_crossing_rate,
)


class TestMergeSpans:
    def test_merges_overlaps_and_sorts(self):
        assert merge_spans([(5.0, 7.0), (1.0, 3.0), (2.0, 4.0)]) == [
            (1.0, 4.0), (5.0, 7.0),
        ]

    def test_min_gap_merges_nearby(self):
        assert merge_spans([(0.0, 1.0), (1.5, 2.0)], min_gap=1.0) == [(0.0, 2.0)]

    def test_drops_degenerate(self):
        assert merge_spans([(2.0, 2.0)]) == []


class TestIterWindowArrays:
    def test_yields_merged_window_slices(self, robot_trace):
        windows = [(10.0, 12.0), (11.0, 14.0), (50.0, 52.0)]
        pieces = list(iter_window_arrays(robot_trace, "ACC_X", windows))
        assert len(pieces) == 2  # first two merged
        start, samples = pieces[0]
        assert start == pytest.approx(10.0)
        assert len(samples) == pytest.approx(4.0 * 50, abs=1)

    def test_clipped_to_trace(self, robot_trace):
        pieces = list(
            iter_window_arrays(robot_trace, "ACC_X", [(-5.0, 2.0)])
        )
        start, samples = pieces[0]
        assert start == 0.0
        assert len(samples) == 100

    def test_out_of_range_window_empty(self, robot_trace):
        assert list(
            iter_window_arrays(robot_trace, "ACC_X", [(1e6, 1e6 + 5)])
        ) == []


class TestMovingAverage:
    def test_short_input_empty(self):
        assert len(moving_average(np.arange(3.0), 5)) == 0

    def test_values(self):
        out = moving_average(np.array([1.0, 2.0, 3.0, 4.0]), 2)
        assert np.allclose(out, [1.5, 2.5, 3.5])


class TestLocalMaximaProminence:
    def test_margin_rejects_edge_peaks(self):
        signal = np.zeros(30)
        signal[2] = 3.0  # too close to the left edge for margin=5
        signal[15] = 3.0
        idx = local_maxima(signal, 2.0, 4.0, min_separation=1, margin=5,
                           prominence=1.0)
        assert list(idx) == [15]

    def test_prominence_rejects_shallow_wiggles(self):
        # A plateau at 3.0 with a tiny wiggle: fails 1.0 prominence.
        signal = np.full(30, 3.0)
        signal[15] = 3.2
        idx = local_maxima(signal, 2.0, 4.0, min_separation=1, margin=5,
                           prominence=1.0)
        assert len(idx) == 0

    def test_zero_margin_keeps_legacy_behaviour(self):
        signal = np.zeros(10)
        signal[1] = 3.0
        idx = local_maxima(signal, 2.0, 4.0, min_separation=1)
        assert list(idx) == [1]


class TestFrameHelpers:
    def test_frame_signal_shapes(self):
        frames = frame_signal(np.arange(10.0), size=4, hop=3)
        assert frames.shape == (3, 4)
        assert list(frames[1]) == [3.0, 4.0, 5.0, 6.0]

    def test_frame_signal_short_input(self):
        assert frame_signal(np.arange(3.0), 8, 8).shape[0] == 0

    def test_zcr_matches_hub_algorithm(self):
        """The detector-side ZCR must agree with the hub-side one, or
        the two stages would disagree about the same signal."""
        from repro.algorithms.features import ZeroCrossingRate
        from repro.algorithms.windowing import Window
        from tests.conftest import scalar_chunk

        rng = np.random.default_rng(2)
        signal = rng.normal(size=512)
        ours = zero_crossing_rate(frame_signal(signal, 128, 128))
        hub_frames = Window(128).process([scalar_chunk(signal)])
        hub = ZeroCrossingRate().process([hub_frames]).values
        assert np.allclose(ours, hub)


class TestSpansFromMask:
    def test_runs_extracted(self):
        times = np.arange(6, dtype=float)
        mask = np.array([False, True, True, False, True, False])
        spans = spans_from_mask(mask, times)
        assert spans[0] == (1.0, 3.0)
        assert spans[1] == (4.0, 5.0)

    def test_run_to_end(self):
        times = np.arange(4, dtype=float)
        mask = np.array([False, False, True, True])
        spans = spans_from_mask(mask, times)
        assert spans == [(2.0, 3.0)]

    def test_empty_mask(self):
        assert spans_from_mask(np.array([]), np.array([])) == []

    def test_all_true(self):
        times = np.arange(3, dtype=float)
        spans = spans_from_mask(np.array([True] * 3), times)
        assert spans == [(0.0, 2.0)]
