"""StreamBuffer: append-only growing traces behind streaming ingestion.

The buffer's central identity is what makes incremental evaluation
digest-identical to whole-trace replay: for any cursor, the spans
handed out by ``spans_since`` concatenate to bitwise the same arrays
(and timestamps) ``to_trace`` produces at the end.  These tests pin
that identity plus the push protocol — idempotent duplicates, gap
refusal, fixed channel set — the device resync path leans on.
"""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.stream import StreamBuffer


def _buffer(rate=50.0):
    return StreamBuffer("stream-0", {"ACC_X": rate, "ACC_Y": rate})


def _chunks(seed=0, count=5, n=100):
    rng = np.random.default_rng(seed)
    return [
        {
            "ACC_X": rng.normal(size=n),
            "ACC_Y": rng.normal(size=n),
        }
        for _ in range(count)
    ]


class TestConstruction:
    def test_requires_channels(self):
        with pytest.raises(TraceError, match="no channels"):
            StreamBuffer("s", {})

    def test_requires_positive_rates(self):
        with pytest.raises(TraceError, match="no sampling rate"):
            StreamBuffer("s", {"ACC_X": 0.0})

    def test_channels_sorted(self):
        buffer = StreamBuffer("s", {"ACC_Y": 50.0, "ACC_X": 50.0})
        assert buffer.channels == ("ACC_X", "ACC_Y")


class TestPushProtocol:
    def test_in_order_chunks_apply(self):
        buffer = _buffer()
        for seq, chunk in enumerate(_chunks()):
            assert buffer.push(seq, chunk) is True
        assert buffer.next_seq == 5
        assert buffer.counts() == {"ACC_X": 500, "ACC_Y": 500}
        assert buffer.total_samples == 1000

    def test_duplicate_seq_is_idempotent_noop(self):
        buffer = _buffer()
        chunks = _chunks()
        buffer.push(0, chunks[0])
        before = {name: buffer.counts()[name] for name in buffer.channels}
        # A reconnect retry (or journal replay) re-pushes the same seq.
        assert buffer.push(0, chunks[1]) is False
        assert buffer.counts() == before
        assert buffer.next_seq == 1

    def test_sequence_gap_rejected(self):
        buffer = _buffer()
        buffer.push(0, _chunks()[0])
        with pytest.raises(TraceError, match="seq 2 arrived before seq 1"):
            buffer.push(2, _chunks()[1])

    def test_unknown_channel_rejected(self):
        buffer = _buffer()
        with pytest.raises(TraceError, match="unknown channels"):
            buffer.push(0, {"MIC": np.zeros(10)})

    def test_chunk_may_omit_channels(self):
        buffer = _buffer()
        buffer.push(0, {"ACC_X": np.ones(100)})
        assert buffer.counts() == {"ACC_X": 100, "ACC_Y": 0}
        assert buffer.end_seconds == pytest.approx(2.0)
        assert buffer.watermark_seconds == 0.0


class TestSpanIdentity:
    def test_spans_concatenate_to_assembled_trace(self):
        """Walking any cursor schedule reproduces to_trace bitwise."""
        buffer = _buffer()
        chunks = _chunks(seed=7)
        collected = {name: [] for name in buffer.channels}
        cursor = {}
        for seq, chunk in enumerate(chunks):
            buffer.push(seq, chunk)
            if seq % 2 == 0:  # irregular: advance every other push
                spans, cursor = buffer.spans_since(cursor)
                for name, span in spans.items():
                    if not span.is_empty:
                        collected[name].append(span)
        spans, cursor = buffer.spans_since(cursor)  # final catch-up
        for name, span in spans.items():
            if not span.is_empty:
                collected[name].append(span)
        trace = buffer.to_trace()
        for name in buffer.channels:
            values = np.concatenate([s.values for s in collected[name]])
            times = np.concatenate([s.times for s in collected[name]])
            assert np.array_equal(values, trace.data[name])
            assert np.array_equal(times, trace.times(name))

    def test_channel_span_matches_trace_times(self):
        buffer = _buffer()
        buffer.push(0, _chunks()[0])
        span = buffer.channel_span("ACC_X", 25, 75)
        trace = buffer.to_trace()
        assert np.array_equal(span.times, trace.times("ACC_X")[25:75])
        assert np.array_equal(span.values, trace.data["ACC_X"][25:75])

    def test_channel_span_clamps_and_empties(self):
        buffer = _buffer()
        buffer.push(0, _chunks()[0])
        assert len(buffer.channel_span("ACC_X", 50, 10_000)) == 50
        assert buffer.channel_span("ACC_X", 100, 100).is_empty

    def test_spans_since_unknown_cursor_key_counts_as_zero(self):
        buffer = _buffer()
        buffer.push(0, _chunks()[0])
        spans, moved = buffer.spans_since({})
        assert {name: len(span) for name, span in spans.items()} == {
            "ACC_X": 100, "ACC_Y": 100,
        }
        assert moved == {"ACC_X": 100, "ACC_Y": 100}


class TestToTrace:
    def test_assembled_trace_shape(self):
        buffer = _buffer()
        for seq, chunk in enumerate(_chunks()):
            buffer.push(seq, chunk)
        trace = buffer.to_trace()
        assert trace.name == "stream-0"
        assert trace.duration == pytest.approx(10.0)
        assert trace.metadata == {"kind": "stream", "chunks": 5}
        assert trace.channels == ("ACC_X", "ACC_Y")

    def test_empty_stream_rejected(self):
        with pytest.raises(TraceError, match="no samples"):
            _buffer().to_trace()

    def test_trace_name_override(self):
        buffer = _buffer()
        buffer.push(0, _chunks()[0])
        assert buffer.to_trace(name="replica").name == "replica"
