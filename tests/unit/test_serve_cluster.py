"""Unit tests for the sharded cluster and its asyncio front end."""

import asyncio

import pytest

from repro.errors import ServiceKilled, SidewinderError
from repro.serve import (
    Completed,
    Rejected,
    ServiceFaultPlan,
    ShardCluster,
    Submission,
    TenantQuota,
    Ticket,
    shard_journal_path,
)
from repro.serve.cluster import merge_snapshots
from repro.serve.metrics import MetricsSnapshot


@pytest.fixture()
def registry(robot_trace):
    return {robot_trace.name: robot_trace}


def _steps(registry, tenant):
    (trace_name,) = registry
    return Submission(tenant=tenant, trace=trace_name, app="steps")


def _tenant_on_shard(cluster, registry, shard, hint=0):
    """A tenant name the router places on ``shard``."""
    (trace_name,) = registry
    for i in range(hint, hint + 10_000):
        tenant = f"device-{i:05d}"
        if cluster.router.route(tenant, trace_name) == shard:
            return tenant
    raise AssertionError(f"no tenant found for shard {shard}")


class TestShardCluster:
    def test_submit_routes_by_router(self, registry):
        cluster = ShardCluster(registry, shards=3)
        try:
            for i in range(12):
                submission = _steps(registry, f"device-{i:05d}")
                routed = cluster.submit(submission)
                assert routed.shard == cluster.router.route_submission(
                    submission
                )
                assert routed.accepted
                assert isinstance(routed.response, Ticket)
        finally:
            cluster.shutdown()

    def test_pump_completes_and_result_lookup(self, registry):
        cluster = ShardCluster(registry, shards=2)
        try:
            routed = cluster.submit(_steps(registry, "device-00000"))
            responses = cluster.pump()
            (response,) = responses[routed.shard]
            assert isinstance(response, Completed)
            assert (
                cluster.result(routed.shard, routed.response.submission_id)
                == response
            )
        finally:
            cluster.shutdown()

    def test_parallel_and_serial_pumps_agree(self, registry):
        outcomes = []
        for parallel in (True, False):
            cluster = ShardCluster(
                registry, shards=4, parallel_pumps=parallel
            )
            try:
                for i in range(16):
                    cluster.submit(_steps(registry, f"device-{i:05d}"))
                drained = cluster.drain()
                outcomes.append({
                    shard: [type(r).__name__ for r in responses]
                    for shard, responses in drained.items()
                })
            finally:
                cluster.shutdown()
        assert outcomes[0] == outcomes[1]

    def test_metrics_merge_and_per_shard_breakdown(self, registry):
        cluster = ShardCluster(registry, shards=3)
        try:
            for i in range(9):
                cluster.submit(_steps(registry, f"device-{i:05d}"))
            cluster.drain()
            snap = cluster.metrics()
            assert snap.shards == 3
            assert len(snap.per_shard) == 3
            assert snap.merged.submitted == 9
            assert snap.merged.completed == 9
            assert snap.merged.completed == sum(
                s.completed for s in snap.per_shard
            )
            assert "shard 0" in snap.describe()
            assert snap.as_dict()["shards"] == 3
        finally:
            cluster.shutdown()

    def test_killed_shard_goes_dead_and_refuses(self, registry, tmp_path):
        cluster = ShardCluster(
            registry,
            shards=2,
            journal_dir=tmp_path,
            faults={0: ServiceFaultPlan(kill_at_pump=0)},
        )
        try:
            victim = _tenant_on_shard(cluster, registry, 0)
            survivor = _tenant_on_shard(cluster, registry, 1)
            cluster.submit(_steps(registry, victim))
            cluster.submit(_steps(registry, survivor))
            responses = cluster.pump()
            assert cluster.dead_shards == (0,)
            assert responses[0] == []  # nothing from the dead shard
            # The dead shard refuses; the live one keeps serving.
            refused = cluster.submit(_steps(registry, victim))
            assert isinstance(refused.response, Rejected)
            assert refused.response.reason == "shard_down"
            assert cluster.submit(_steps(registry, survivor)).accepted
        finally:
            cluster.shutdown()

    def test_recover_shard_in_place(self, registry, tmp_path):
        cluster = ShardCluster(
            registry,
            shards=2,
            journal_dir=tmp_path,
            faults={0: ServiceFaultPlan(kill_at_pump=0)},
        )
        try:
            victim = _tenant_on_shard(cluster, registry, 0)
            cluster.submit(_steps(registry, victim))
            cluster.pump()
            assert cluster.dead_shards == (0,)
            stats = cluster.recover_shard(0)
            assert cluster.dead_shards == ()
            assert stats.accepts == 1
            # The recovered shard serves again and its queue drains.
            assert cluster.submit(_steps(registry, victim)).accepted
            drained = cluster.drain()
            assert all(
                isinstance(r, Completed) for r in drained.get(0, [])
            )
        finally:
            cluster.shutdown()

    def test_recover_shard_requires_journal_dir(self, registry):
        cluster = ShardCluster(registry, shards=2)
        try:
            with pytest.raises(SidewinderError, match="journal"):
                cluster.recover_shard(0)
        finally:
            cluster.shutdown()

    def test_per_shard_journals_on_disk(self, registry, tmp_path):
        cluster = ShardCluster(registry, shards=3, journal_dir=tmp_path)
        try:
            for i in range(9):
                cluster.submit(_steps(registry, f"device-{i:05d}"))
            cluster.drain()
        finally:
            cluster.shutdown()
        for shard in range(3):
            assert shard_journal_path(tmp_path, shard).exists()

    def test_whole_cluster_recovery(self, registry, tmp_path):
        cluster = ShardCluster(
            registry,
            shards=2,
            quota=TenantQuota(max_pending=8),
            journal_dir=tmp_path,
        )
        tickets = 0
        try:
            for i in range(8):
                if cluster.submit(_steps(registry, f"device-{i:05d}")).accepted:
                    tickets += 1
            cluster.drain()
        finally:
            cluster.shutdown()

        rebuilt, stats = ShardCluster.recover(
            tmp_path, registry, shards=2, quota=TenantQuota(max_pending=8)
        )
        try:
            assert set(stats) == {0, 1}
            assert sum(len(s.replayed) for s in stats.values()) == tickets
            # The rebuilt cluster keeps serving.
            assert rebuilt.submit(_steps(registry, "device-99999")).accepted
            rebuilt.drain()
        finally:
            rebuilt.shutdown()


def _snapshot(**overrides):
    base = dict(
        submitted=0, accepted=0, rejected={}, completed=0, failed=0,
        cancelled=0, engine_runs=0, dedup_hits=0, dedup_hit_rate=0.0,
        latency_p50=0.0, latency_p90=0.0, latency_p99=0.0,
        queue_depth=0, store_size=0,
    )
    base.update(overrides)
    return MetricsSnapshot(**base)


class TestMergeSnapshots:
    def test_counters_add_and_percentiles_pool(self):
        a = _snapshot(
            submitted=4, accepted=4, completed=4,
            rejected={"tenant_quota": 1},
            engine_runs=2, dedup_hits=2, dedup_hit_rate=0.5,
        )
        b = _snapshot(
            submitted=2, accepted=2, completed=2,
            rejected={"tenant_quota": 2, "queue_full": 1},
            engine_runs=2, dedup_hits=0, dedup_hit_rate=0.0,
        )
        merged = merge_snapshots(
            [a, b], [[1.0, 2.0, 3.0, 4.0], [10.0, 20.0]]
        )
        assert merged.submitted == 6
        assert merged.completed == 6
        assert merged.rejected == {"tenant_quota": 3, "queue_full": 1}
        assert merged.dedup_hit_rate == pytest.approx(2 / 6)
        # Percentiles come from the pooled samples, not an average of
        # per-shard percentiles.
        assert merged.latency_p50 == 3.0
        assert merged.latency_p99 == 20.0
        assert merged.latency_p999 == 20.0

    def test_any_degraded_shard_degrades_the_fleet(self):
        healthy = _snapshot()
        sick = _snapshot(health_state="degraded")
        assert merge_snapshots([healthy, sick], [[], []]).health_state == (
            "degraded"
        )
        assert merge_snapshots([healthy], [[]]).health_state == "healthy"


class TestAsyncCluster:
    def test_future_resolves_at_pump_time(self, registry):
        from repro.serve import AsyncCluster

        async def drive():
            cluster = ShardCluster(registry, shards=2)
            front = AsyncCluster(cluster)
            try:
                future = front.submit(_steps(registry, "device-00000"))
                assert not future.done()  # resolution waits for the pump
                assert front.pending == 1
                await front.pump()
                response = await future
                assert isinstance(response, Completed)
                assert front.pending == 0
            finally:
                await front.shutdown()

        asyncio.run(drive())

    def test_rejection_resolves_immediately(self, registry):
        from repro.serve import AsyncCluster

        async def drive():
            cluster = ShardCluster(
                registry, shards=1, quota=TenantQuota(max_pending=1)
            )
            front = AsyncCluster(cluster)
            try:
                front.submit(_steps(registry, "t1"))
                second = front.submit(_steps(registry, "t1"))
                assert second.done()
                response = await second
                assert isinstance(response, Rejected)
                assert response.reason == "tenant_quota"
            finally:
                await front.shutdown()

        asyncio.run(drive())

    def test_dead_shard_fails_pending_futures(self, registry, tmp_path):
        from repro.serve import AsyncCluster

        async def drive():
            cluster = ShardCluster(
                registry,
                shards=2,
                journal_dir=tmp_path,
                faults={0: ServiceFaultPlan(kill_at_pump=0)},
            )
            front = AsyncCluster(cluster)
            try:
                victim = _tenant_on_shard(cluster, registry, 0)
                future = front.submit(_steps(registry, victim))
                await front.pump()
                assert cluster.dead_shards == (0,)
                with pytest.raises(ServiceKilled):
                    await future
            finally:
                await front.shutdown()

        asyncio.run(drive())

    def test_drain_resolves_everything(self, registry):
        from repro.serve import AsyncCluster

        async def drive():
            cluster = ShardCluster(registry, shards=3)
            front = AsyncCluster(cluster)
            try:
                futures = [
                    front.submit(_steps(registry, f"device-{i:05d}"))
                    for i in range(9)
                ]
                await front.drain()
                responses = await asyncio.gather(*futures)
                assert all(isinstance(r, Completed) for r in responses)
            finally:
                await front.shutdown()

        asyncio.run(drive())
