"""Unit tests for trace composition."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.compose import concat_traces, repeat_trace
from repro.traces.human import HumanScenario, HumanTraceConfig, generate_human_trace
from repro.traces.robot import RobotRunConfig, generate_robot_run


@pytest.fixture(scope="module")
def segments():
    return [
        generate_human_trace(
            HumanTraceConfig(scenario, duration_s=200.0, seed=60 + i)
        )
        for i, scenario in enumerate(
            (HumanScenario.COMMUTE, HumanScenario.OFFICE, HumanScenario.RETAIL)
        )
    ]


def test_duration_and_samples_add_up(segments):
    day = concat_traces(segments, name="day")
    assert day.duration == pytest.approx(600.0)
    assert len(day.data["ACC_X"]) == sum(len(s.data["ACC_X"]) for s in segments)


def test_events_shifted(segments):
    day = concat_traces(segments)
    first_events = len(segments[0].events)
    shifted = day.events[first_events] if len(day.events) > first_events else None
    assert day.events
    # Events from the second segment start at/after 200 s.
    second_segment_events = [
        e for e in day.events if 200.0 <= e.start < 400.0
    ]
    assert len(second_segment_events) >= len(segments[1].events) - 1


def test_step_times_shift_with_their_bout(segments):
    day = concat_traces(segments)
    for bout in day.events_with_label("walking"):
        for t in bout.meta("step_times"):
            assert bout.start - 1e-9 <= t <= bout.end + 1e-9


def test_segments_recorded(segments):
    day = concat_traces(segments, name="day")
    spans = day.metadata["segments"]
    assert len(spans) == 3
    assert spans[0][1] == 0.0
    assert spans[-1][2] == pytest.approx(600.0)


def test_signal_continuity(segments):
    day = concat_traces(segments)
    boundary = len(segments[0].data["ACC_X"])
    assert np.array_equal(
        day.data["ACC_X"][:boundary], segments[0].data["ACC_X"]
    )
    assert np.array_equal(
        day.data["ACC_X"][boundary : boundary + 100],
        segments[1].data["ACC_X"][:100],
    )


def test_channel_mismatch_rejected(segments):
    from repro.traces.audio import AudioEnvironment, AudioTraceConfig, generate_audio_trace
    audio = generate_audio_trace(
        AudioTraceConfig(AudioEnvironment.OFFICE, duration_s=60.0, seed=1)
    )
    with pytest.raises(TraceError, match="channel mismatch"):
        concat_traces([segments[0], audio])


def test_empty_rejected():
    with pytest.raises(TraceError):
        concat_traces([])


def test_repeat(segments):
    tiled = repeat_trace(segments[0], 3)
    assert tiled.duration == pytest.approx(600.0)
    assert len(tiled.events) == 3 * len(segments[0].events)
    with pytest.raises(TraceError):
        repeat_trace(segments[0], 0)


def test_composite_simulates_end_to_end(segments):
    """A composed day runs through the simulator like any trace."""
    from repro.apps import StepsApp
    from repro.sim import Sidewinder
    day = concat_traces(segments)
    result = Sidewinder().run(StepsApp(), day)
    assert result.recall == 1.0


def test_robot_segments_compose(segments):
    runs = [
        generate_robot_run(RobotRunConfig(group=g, duration_s=120.0, seed=g))
        for g in (1, 2, 3)
    ]
    day = concat_traces(runs)
    assert day.duration == pytest.approx(360.0)
    assert day.events_with_label("headbutt")
