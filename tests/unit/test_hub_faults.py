"""Unit tests for system-fault plans and the deterministic injector."""

import pytest

from repro.errors import FaultInjectionError, SidewinderError
from repro.hub.faults import NO_FAULTS, FaultInjector, FaultPlan


class TestFaultPlanValidation:
    def test_default_plan_is_benign(self):
        assert NO_FAULTS.hub_reset_times == ()
        assert NO_FAULTS.wake_drop_probability == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"wake_drop_probability": -0.1},
            {"wake_drop_probability": 1.0},
            {"wake_delay_probability": 1.5},
            {"payload_drop_probability": -1e-9},
            {"chunk_drop_probability": 2.0},
            {"heartbeat_drop_probability": 1.0},
        ],
    )
    def test_probabilities_must_lie_in_unit_interval(self, kwargs):
        with pytest.raises(FaultInjectionError):
            FaultPlan(**kwargs)

    def test_negative_reset_time_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(hub_reset_times=(-1.0,))

    def test_non_positive_reboot_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(hub_reboot_s=0.0)

    def test_negative_wake_delay_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(wake_delay_s=-0.5)

    def test_validation_error_is_library_error(self):
        with pytest.raises(SidewinderError):
            FaultPlan(wake_drop_probability=7.0)

    def test_reset_times_sorted_and_deduplicated(self):
        plan = FaultPlan(hub_reset_times=(30.0, 10.0, 30.0))
        assert plan.hub_reset_times == (10.0, 30.0)

    def test_resets_before_clips_to_duration(self):
        plan = FaultPlan(hub_reset_times=(10.0, 500.0))
        assert plan.resets_before(100.0) == [10.0]

    def test_heartbeat_drop_defaults_to_wake_drop(self):
        plan = FaultPlan(wake_drop_probability=0.2)
        assert plan.heartbeat_drop == 0.2
        explicit = FaultPlan(
            wake_drop_probability=0.2, heartbeat_drop_probability=0.05
        )
        assert explicit.heartbeat_drop == 0.05


class TestFaultInjector:
    def test_benign_plan_never_faults(self):
        injector = FaultInjector(NO_FAULTS)
        for _ in range(100):
            assert not injector.wake_dropped()
            assert not injector.payload_dropped()
            assert not injector.chunk_dropped()
            assert not injector.heartbeat_dropped()
            assert injector.wake_delay() == 0.0

    def test_same_plan_same_draws(self):
        plan = FaultPlan(
            seed=5,
            wake_drop_probability=0.5,
            wake_delay_probability=0.5,
            payload_drop_probability=0.5,
        )
        a, b = FaultInjector(plan), FaultInjector(plan)
        draws_a = [
            (a.wake_dropped(), a.wake_delay(), a.payload_dropped())
            for _ in range(50)
        ]
        draws_b = [
            (b.wake_dropped(), b.wake_delay(), b.payload_dropped())
            for _ in range(50)
        ]
        assert draws_a == draws_b

    def test_streams_are_independent(self):
        """Extra draws in one category must not shift another's stream."""
        plan = FaultPlan(seed=11, wake_drop_probability=0.5,
                         chunk_drop_probability=0.5)
        plain = FaultInjector(plan)
        interleaved = FaultInjector(plan)
        expected = [plain.chunk_dropped() for _ in range(20)]
        observed = []
        for _ in range(20):
            interleaved.wake_dropped()  # extra traffic on another stream
            interleaved.wake_dropped()
            observed.append(interleaved.chunk_dropped())
        assert observed == expected

    def test_different_seeds_diverge(self):
        a = FaultInjector(FaultPlan(seed=1, wake_drop_probability=0.5))
        b = FaultInjector(FaultPlan(seed=2, wake_drop_probability=0.5))
        draws_a = [a.wake_dropped() for _ in range(64)]
        draws_b = [b.wake_dropped() for _ in range(64)]
        assert draws_a != draws_b

    def test_delay_draw_returns_plan_delay(self):
        plan = FaultPlan(wake_delay_probability=0.999, wake_delay_s=0.7)
        injector = FaultInjector(plan)
        delays = {injector.wake_delay() for _ in range(50)}
        assert 0.7 in delays
        assert delays <= {0.0, 0.7}
