"""Unit tests for the reliable transport (CRC, ACK/retry, backoff)."""

import pytest

from repro.errors import FaultInjectionError
from repro.hub.link import UART_DEBUG
from repro.hub.reliability import (
    ACK_BYTES,
    DEFAULT_RELIABILITY,
    ReliabilityPolicy,
    ReliableLink,
)


def _never():
    return False


def _always():
    return True


class TestReliabilityPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crc_overhead": -0.1},
            {"max_retries": -1},
            {"initial_backoff_s": -0.1},
            {"backoff_cap_s": -1.0},
            {"backoff_factor": 0.5},
            {"heartbeat_period_s": 0.0},
            {"heartbeat_tolerance": 0},
            {"degraded_sense_s": 0.0},
            {"degraded_sleep_s": -1.0},
            {"link_active_mw": -1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(FaultInjectionError):
            ReliabilityPolicy(**kwargs)

    def test_backoff_grows_then_caps(self):
        policy = ReliabilityPolicy(
            initial_backoff_s=0.05, backoff_factor=2.0, backoff_cap_s=0.4
        )
        values = [policy.backoff_s(i) for i in range(6)]
        assert values[0] == pytest.approx(0.05)
        assert values[1] == pytest.approx(0.10)
        assert values == sorted(values)
        assert values[-1] == pytest.approx(0.4)


class TestReliableLink:
    def test_clean_send_is_one_attempt(self):
        link = ReliableLink(UART_DEBUG, DEFAULT_RELIABILITY)
        outcome = link.send(100.0, _never)
        assert outcome.delivered
        assert outcome.attempts == 1
        assert outcome.retransmissions == 0
        expected = link.frame_seconds(100.0) + link.ack_seconds()
        assert outcome.completion_s == pytest.approx(expected)
        assert outcome.link_busy_s == pytest.approx(expected)

    def test_crc_overhead_slows_the_frame(self):
        policy = ReliabilityPolicy(crc_overhead=0.10)
        link = ReliableLink(UART_DEBUG, policy)
        assert link.frame_seconds(1000.0) == pytest.approx(
            UART_DEBUG.transfer_seconds(1100.0)
        )
        assert link.frame_seconds(1000.0) > UART_DEBUG.transfer_seconds(1000.0)

    def test_exhausted_retries_fail(self):
        policy = ReliabilityPolicy(max_retries=3)
        link = ReliableLink(UART_DEBUG, policy)
        outcome = link.send(50.0, _always)
        assert not outcome.delivered
        assert outcome.attempts == 4  # first try + 3 retries
        # Every attempt burned wire time, but no ACK ever came back.
        assert outcome.link_busy_s == pytest.approx(
            4 * link.frame_seconds(50.0)
        )

    def test_single_loss_recovers_with_backoff(self):
        fates = iter([True, False])  # first attempt corrupted
        link = ReliableLink(UART_DEBUG, DEFAULT_RELIABILITY)
        outcome = link.send(50.0, lambda: next(fates))
        assert outcome.delivered
        assert outcome.attempts == 2
        expected = (
            2 * link.frame_seconds(50.0)
            + DEFAULT_RELIABILITY.backoff_s(0)
            + link.ack_seconds()
        )
        assert outcome.completion_s == pytest.approx(expected)
        # Backoff is idle waiting, not wire time.
        assert outcome.link_busy_s < outcome.completion_s

    def test_ack_frame_costs_wire_time(self):
        link = ReliableLink(UART_DEBUG, DEFAULT_RELIABILITY)
        assert link.ack_seconds() == pytest.approx(
            UART_DEBUG.transfer_seconds(float(ACK_BYTES))
        )

    def test_energy_scales_with_busy_time(self):
        policy = ReliabilityPolicy(link_active_mw=10.0)
        link = ReliableLink(UART_DEBUG, policy)
        assert link.energy_mj(2.0) == pytest.approx(20.0)
        assert link.energy_mj(0.0) == 0.0
