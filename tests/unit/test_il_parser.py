"""Unit tests for the intermediate-language parser."""

import pytest

from repro.errors import ILSyntaxError
from repro.il.ast import ChannelRef, NodeRef
from repro.il.parser import parse_program

FIGURE2C = """
ACC_X -> movingAvg(id=1, params={10});
ACC_Y -> movingAvg(id=2, params={10});
ACC_Z -> movingAvg(id=3, params={10});
1,2,3 -> vectorMagnitude(id=4);
4 -> minThreshold(id=5, params={15});
5 -> OUT;
"""


def test_parses_paper_figure2c():
    program = parse_program(FIGURE2C)
    assert len(program) == 5
    assert program.output == NodeRef(5)
    first = program.statements[0]
    assert first.inputs == (ChannelRef("ACC_X"),)
    assert first.opcode == "movingAvg"
    assert first.param_dict() == {"size": 10}


def test_positional_params_map_via_param_order():
    program = parse_program("ACC_X -> movingAvg(id=1, params={7}); 1 -> OUT;")
    assert program.statements[0].param_dict() == {"size": 7}


def test_named_params():
    program = parse_program(
        "ACC_X -> localExtrema(id=1, params={mode=max, low=2.5, high=4.5}); 1 -> OUT;"
    )
    assert program.statements[0].param_dict() == {
        "mode": "max", "low": 2.5, "high": 4.5,
    }


def test_quoted_string_params():
    program = parse_program(
        'ACC_X -> window(id=1, params={size=8, shape="hamming"}); 1 -> OUT;'
    )
    assert program.statements[0].param_dict()["shape"] == "hamming"


def test_negative_and_float_values():
    program = parse_program(
        "ACC_Y -> rangeThreshold(id=1, params={low=-6.75, high=-3.75}); 1 -> OUT;"
    )
    params = program.statements[0].param_dict()
    assert params["low"] == -6.75 and params["high"] == -3.75


def test_comments_and_blank_lines_ignored():
    text = """
    # the significant motion condition
    ACC_X -> movingAvg(id=1, params={10});  # smooth

    1 -> OUT;
    """
    assert len(parse_program(text)) == 1


def test_multi_input_node():
    program = parse_program(
        "ACC_X -> movingAvg(id=1, params={2});"
        "ACC_Y -> movingAvg(id=2, params={2});"
        "1,2 -> vectorMagnitude(id=3); 3 -> OUT;"
    )
    assert program.statements[2].inputs == (NodeRef(1), NodeRef(2))


def test_missing_out_rejected():
    with pytest.raises(ILSyntaxError, match="no OUT"):
        parse_program("ACC_X -> movingAvg(id=1, params={2});")


def test_duplicate_out_rejected():
    with pytest.raises(ILSyntaxError, match="duplicate OUT"):
        parse_program(
            "ACC_X -> movingAvg(id=1, params={2}); 1 -> OUT; 1 -> OUT;"
        )


def test_out_with_args_rejected():
    with pytest.raises(ILSyntaxError, match="OUT takes no arguments"):
        parse_program("ACC_X -> movingAvg(id=1, params={2}); 1 -> OUT(id=9);")


def test_out_must_be_fed_by_node():
    with pytest.raises(ILSyntaxError, match="exactly one node id"):
        parse_program("ACC_X -> movingAvg(id=1, params={2}); ACC_X -> OUT;")


def test_missing_id_rejected():
    with pytest.raises(ILSyntaxError, match="missing id"):
        parse_program("ACC_X -> movingAvg(params={2}); 1 -> OUT;")


def test_unterminated_statement_rejected():
    with pytest.raises(ILSyntaxError, match="not terminated"):
        parse_program("ACC_X -> movingAvg(id=1, params={2})")


def test_garbage_rejected():
    with pytest.raises(ILSyntaxError):
        parse_program("?!? -> nothing; 1 -> OUT;")


def test_too_many_positional_params():
    with pytest.raises(ILSyntaxError, match="positional"):
        parse_program("ACC_X -> fft(id=1, params={1, 2, 3}); 1 -> OUT;")


def test_positional_and_named_conflict():
    with pytest.raises(ILSyntaxError, match="both positionally and by name"):
        parse_program("ACC_X -> movingAvg(id=1, params={10, size=5}); 1 -> OUT;")


def test_positional_params_with_unknown_opcode_is_parse_error():
    # Positional values need the opcode's declared parameter order, so
    # an unknown opcode is rejected at parse time with a clean error.
    with pytest.raises(ILSyntaxError, match="cannot map positional"):
        parse_program("ACC_X -> convolve(id=1, params={5}); 1 -> OUT;")


def test_error_reports_line_number():
    text = "ACC_X -> movingAvg(id=1, params={2});\nbroken stuff here;\n1 -> OUT;"
    with pytest.raises(ILSyntaxError, match="line 2"):
        parse_program(text)
