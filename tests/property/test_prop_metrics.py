"""Property-based tests on the recall/precision metrics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import Detection
from repro.eval.metrics import match_events
from repro.traces.base import GroundTruthEvent


@st.composite
def events_strategy(draw):
    count = draw(st.integers(0, 10))
    events = []
    for _ in range(count):
        start = draw(st.floats(0, 500, allow_nan=False))
        length = draw(st.floats(0.1, 30, allow_nan=False))
        events.append(GroundTruthEvent.make("e", start, start + length))
    return events


@st.composite
def detections_strategy(draw):
    count = draw(st.integers(0, 15))
    detections = []
    for _ in range(count):
        t = draw(st.floats(0, 500, allow_nan=False))
        detections.append(Detection(t))
    return detections


tolerances = st.floats(0.0, 10.0, allow_nan=False)


@given(events=events_strategy(), detections=detections_strategy(), tol=tolerances)
@settings(max_examples=150, deadline=None)
def test_scores_in_unit_interval(events, detections, tol):
    match = match_events(events, detections, tol)
    assert 0.0 <= match.recall <= 1.0
    assert 0.0 <= match.precision <= 1.0
    assert 0.0 <= match.f1 <= 1.0


@given(events=events_strategy(), detections=detections_strategy(), tol=tolerances)
@settings(max_examples=100, deadline=None)
def test_recall_monotone_in_detections(events, detections, tol):
    fewer = match_events(events, detections[: len(detections) // 2], tol)
    more = match_events(events, detections, tol)
    assert more.recall >= fewer.recall


@given(events=events_strategy(), detections=detections_strategy(), tol=tolerances)
@settings(max_examples=100, deadline=None)
def test_wider_tolerance_never_hurts_recall(events, detections, tol):
    narrow = match_events(events, detections, tol)
    wide = match_events(events, detections, tol + 5.0)
    assert wide.recall >= narrow.recall
    assert wide.precision >= narrow.precision


@given(events=events_strategy(), tol=tolerances)
@settings(max_examples=50, deadline=None)
def test_detections_at_midpoints_give_perfect_recall(events, tol):
    detections = [Detection(e.midpoint) for e in events]
    match = match_events(events, detections, tol)
    assert match.recall == 1.0
    assert match.precision == 1.0


@given(events=events_strategy(), detections=detections_strategy(), tol=tolerances)
@settings(max_examples=100, deadline=None)
def test_counts_consistent(events, detections, tol):
    match = match_events(events, detections, tol)
    assert match.n_events == len(events)
    assert match.n_detections == len(detections)
    assert len(match.caught_events) <= match.n_events
    assert len(match.true_detections) <= match.n_detections
