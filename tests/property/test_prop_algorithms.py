"""Property-based tests on the hub algorithms.

The central invariant is *chunking transparency*: feeding a signal in
one chunk or in arbitrary split points must produce identical output —
the paper's interpreter runs continuously on streamed sensor data, so
no algorithm may behave differently depending on delivery granularity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.admission import MinThreshold, RangeThreshold, SustainedThreshold
from repro.algorithms.base import create
from repro.algorithms.features import VectorMagnitude, ZeroCrossingRate
from repro.algorithms.filters import ExponentialMovingAverage, MovingAverage
from repro.algorithms.peaks import LocalExtrema
from repro.algorithms.windowing import Window
from repro.sensors.samples import Chunk, StreamKind
from tests.conftest import scalar_chunk

signals = st.lists(
    st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    min_size=0,
    max_size=200,
)

split_seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _split_points(seed, n):
    rng = np.random.default_rng(seed)
    if n == 0:
        return []
    n_cuts = int(rng.integers(0, min(6, n)))
    return sorted(rng.choice(np.arange(1, n + 1), size=n_cuts, replace=False))


def _run_chunked(factory, values, cuts):
    algo = factory()
    outputs = []
    last = 0
    for cut in list(cuts) + [len(values)]:
        chunk = scalar_chunk(values[last:cut], t0=last / 50.0)
        outputs.append(algo.process([chunk]))
        last = cut
    times = np.concatenate([o.times for o in outputs]) if outputs else np.empty(0)
    if outputs and outputs[0].kind is not StreamKind.SCALAR:
        widths = {o.values.shape[1] for o in outputs if len(o)}
        if len(widths) > 1:  # pragma: no cover - would be a bug
            raise AssertionError(widths)
        vals = np.concatenate([o.values for o in outputs if len(o)]) if any(
            len(o) for o in outputs
        ) else np.empty((0, 0))
    else:
        vals = np.concatenate([o.values for o in outputs]) if outputs else np.empty(0)
    return times, vals


_FACTORIES = {
    "movingAvg": lambda: MovingAverage(size=7),
    "expMovingAvg": lambda: ExponentialMovingAverage(alpha=0.25),
    "window": lambda: Window(size=16, hop=8),
    "minThreshold": lambda: MinThreshold(threshold=3.0),
    "rangeThreshold": lambda: RangeThreshold(low=-5.0, high=5.0),
    "sustainedThreshold": lambda: SustainedThreshold(threshold=1.0, count=4),
    "localExtrema": lambda: LocalExtrema("max", low=1.0, high=20.0, min_separation=3),
}


@pytest.mark.parametrize("name", sorted(_FACTORIES))
@given(values=signals, seed=split_seeds)
@settings(max_examples=30, deadline=None)
def test_chunking_transparency(name, values, seed):
    factory = _FACTORIES[name]
    values = np.asarray(values)
    whole_t, whole_v = _run_chunked(factory, values, cuts=[])
    part_t, part_v = _run_chunked(factory, values, cuts=_split_points(seed, len(values)))
    assert np.allclose(whole_t, part_t)
    assert np.allclose(whole_v, part_v, atol=1e-9)


@given(values=signals)
@settings(max_examples=50, deadline=None)
def test_moving_average_bounded_by_input(values):
    values = np.asarray(values)
    out = MovingAverage(size=5).process([scalar_chunk(values)])
    if len(out):
        assert out.values.max() <= values.max() + 1e-12
        assert out.values.min() >= values.min() - 1e-12


@given(values=signals)
@settings(max_examples=50, deadline=None)
def test_ema_bounded_by_input(values):
    values = np.asarray(values)
    out = ExponentialMovingAverage(alpha=0.5).process([scalar_chunk(values)])
    if len(out):
        assert out.values.max() <= values.max() + 1e-9
        assert out.values.min() >= values.min() - 1e-9


@given(values=st.lists(st.floats(-10, 10, allow_nan=False), min_size=32, max_size=64))
@settings(max_examples=50, deadline=None)
def test_zcr_in_unit_interval(values):
    frames = Window(size=len(values)).process([scalar_chunk(values)])
    out = ZeroCrossingRate().process([frames])
    assert 0.0 <= out.values[0] <= 1.0


@given(values=st.lists(st.floats(-10, 10, allow_nan=False), min_size=8, max_size=128))
@settings(max_examples=50, deadline=None)
def test_fft_ifft_roundtrip(values):
    from repro.algorithms.transforms import FFT, IFFT
    frames = Window(size=len(values) - len(values) % 2 or 2).process(
        [scalar_chunk(values)]
    )
    if frames.is_empty:
        return
    back = IFFT().process([FFT().process([frames])])
    assert np.allclose(back.values, frames.values, atol=1e-8)


@given(
    values=st.lists(st.floats(-10, 10, allow_nan=False), min_size=3, max_size=100),
)
@settings(max_examples=50, deadline=None)
def test_vector_magnitude_nonnegative_and_triangle(values):
    values = np.asarray(values)
    chunks = [scalar_chunk(values), scalar_chunk(-values), scalar_chunk(values * 0.5)]
    out = VectorMagnitude().process(chunks)
    assert np.all(out.values >= 0)
    # magnitude >= |any single component|
    assert np.all(out.values >= np.abs(values) - 1e-12)


@given(values=signals, threshold=st.floats(-20, 20, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_threshold_output_subset_of_input(values, threshold):
    values = np.asarray(values)
    out = MinThreshold(threshold=threshold).process([scalar_chunk(values)])
    assert len(out) <= len(values)
    assert np.all(out.values >= threshold)


@given(values=signals)
@settings(max_examples=30, deadline=None)
def test_window_frames_are_input_slices(values):
    values = np.asarray(values)
    out = Window(size=8, hop=4).process([scalar_chunk(values)])
    for k in range(len(out)):
        start = k * 4
        assert np.array_equal(out.values[k], values[start : start + 8])
