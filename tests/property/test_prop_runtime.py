"""Property-based tests on hub-runtime invariants.

Whatever condition and whatever data, the interpreter must satisfy:

* determinism — same graph, same data, same events;
* temporal sanity — wake events carry non-decreasing timestamps that
  lie within the data's time span;
* reset completeness — a reset runtime replays identically.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.compile import compile_pipeline
from repro.hub.runtime import HubRuntime
from repro.il.validate import validate_program
from tests.conftest import scalar_chunk
from tests.property.test_prop_il import random_pipeline

seeds = st.integers(0, 2**31 - 1)


def _data(seed, n=180):
    rng = np.random.default_rng(seed)
    data = {}
    for name in ("ACC_X", "ACC_Y", "ACC_Z"):
        x = rng.normal(0, 3.0, n)
        for _ in range(rng.integers(0, 3)):
            i = rng.integers(0, n - 8)
            x[i : i + 8] += rng.uniform(-40, 40)
        data[name] = x
    return data


def _run(graph, data, chunk=45):
    runtime = HubRuntime(graph)
    events = []
    n = len(next(iter(data.values())))
    for lo in range(0, n, chunk):
        chunks = {
            name: scalar_chunk(values[lo : lo + chunk], t0=lo / 50.0)
            for name, values in data.items()
            if name in graph.channels
        }
        events.extend(runtime.feed(chunks))
    return runtime, events


@given(pipeline=random_pipeline(), seed=seeds)
@settings(max_examples=50, deadline=None)
def test_deterministic(pipeline, seed):
    graph1 = validate_program(compile_pipeline(pipeline))
    graph2 = validate_program(compile_pipeline(pipeline))
    data = _data(seed)
    _, first = _run(graph1, data)
    _, second = _run(graph2, data)
    assert [(e.time, e.value) for e in first] == [
        (e.time, e.value) for e in second
    ]


@given(pipeline=random_pipeline(), seed=seeds)
@settings(max_examples=50, deadline=None)
def test_event_times_sane(pipeline, seed):
    graph = validate_program(compile_pipeline(pipeline))
    data = _data(seed)
    n = len(data["ACC_X"])
    _, events = _run(graph, data)
    times = [e.time for e in events]
    assert times == sorted(times)
    for t in times:
        assert -1e-9 <= t <= (n - 1) / 50.0 + 1e-9
    for e in events:
        assert np.isfinite(e.value)


@given(pipeline=random_pipeline(), seed=seeds)
@settings(max_examples=30, deadline=None)
def test_reset_replays_identically(pipeline, seed):
    graph = validate_program(compile_pipeline(pipeline))
    data = _data(seed)
    runtime, first = _run(graph, data)
    runtime.reset()
    second = []
    n = len(data["ACC_X"])
    for lo in range(0, n, 45):
        chunks = {
            name: scalar_chunk(values[lo : lo + 45], t0=lo / 50.0)
            for name, values in data.items()
            if name in graph.channels
        }
        second.extend(runtime.feed(chunks))
    assert [(e.time, e.value) for e in first] == [
        (e.time, e.value) for e in second
    ]
