"""Property-based tests: pipeline merging never changes semantics.

For random pairs of valid pipelines, the merged multi-tap execution must
produce exactly the events each condition produces when run alone — on
the same random input data.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.compile import compile_pipeline
from repro.hub.merge import MultiTapRuntime, merge_programs
from repro.hub.runtime import HubRuntime
from repro.il.validate import validate_program
from tests.conftest import scalar_chunk
from tests.property.test_prop_il import random_pipeline


def _acc_data(seed, n=200):
    rng = np.random.default_rng(seed)
    # Mix of noise and occasional large excursions so thresholds and
    # extrema actually fire sometimes.
    data = {}
    for name in ("ACC_X", "ACC_Y", "ACC_Z"):
        x = rng.normal(0, 2.0, n)
        for _ in range(rng.integers(0, 4)):
            i = rng.integers(0, n - 10)
            x[i : i + 10] += rng.uniform(-30, 30)
        data[name] = x
    return data


def _chunks(data, lo, hi, t0_offset=0.0):
    return {
        name: scalar_chunk(values[lo:hi], t0=lo / 50.0 + t0_offset)
        for name, values in data.items()
    }


@given(
    seed=st.integers(0, 2**31 - 1),
    pipelines=st.tuples(random_pipeline(), random_pipeline()),
)
@settings(max_examples=40, deadline=None)
def test_merged_execution_equals_separate(seed, pipelines):
    programs = [compile_pipeline(p) for p in pipelines]
    merged = merge_programs(programs)
    runtime = MultiTapRuntime(merged)
    data = _acc_data(seed)

    merged_events = {tap: [] for tap in merged.taps}
    for lo in range(0, 200, 50):
        round_events = runtime.feed(_chunks(data, lo, lo + 50))
        for tap, events in round_events.items():
            merged_events[tap].extend(events)

    for program, tap in zip(programs, merged.taps):
        reference_runtime = HubRuntime(validate_program(program))
        reference = []
        for lo in range(0, 200, 50):
            chunks = {
                name: chunk
                for name, chunk in _chunks(data, lo, lo + 50).items()
                if name in reference_runtime.graph.channels
            }
            reference.extend(reference_runtime.feed(chunks))
        got = merged_events[tap]
        assert len(got) == len(reference)
        assert np.allclose([e.time for e in got], [e.time for e in reference])
        assert np.allclose(
            [e.value for e in got], [e.value for e in reference]
        )


@given(pipelines=st.lists(random_pipeline(), min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_merge_accounting_invariants(pipelines):
    programs = [compile_pipeline(p) for p in pipelines]
    merged = merge_programs(programs)
    total_nodes = sum(len(p) for p in programs)
    assert merged.node_count + merged.shared_nodes == total_nodes
    assert merged.node_count <= total_nodes
    assert len(merged.taps) == len(programs)
    # Every tap refers to a node in the merged program.
    ids = {s.node_id for s in merged.program.statements}
    assert set(merged.taps) <= ids
    # Merged ids are dense from 1.
    assert sorted(ids) == list(range(1, len(ids) + 1))


@given(pipeline=random_pipeline())
@settings(max_examples=30, deadline=None)
def test_self_merge_halves_nothing(pipeline):
    program = compile_pipeline(pipeline)
    merged = merge_programs([program, program])
    assert merged.node_count == len(program)
    assert merged.shared_nodes == len(program)
    assert merged.taps[0] == merged.taps[1]
