"""Fuzzing the IL parser: arbitrary input must fail *cleanly*.

The hub accepts intermediate code from (potentially buggy) sensor
managers; whatever bytes arrive, the parser must either produce a
program or raise :class:`~repro.errors.ILSyntaxError` — never an
uncontrolled exception.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ILSyntaxError
from repro.il.parser import parse_program
from repro.il.text import format_program


@given(text=st.text(max_size=300))
@settings(max_examples=300, deadline=None)
def test_arbitrary_text_never_crashes(text):
    try:
        parse_program(text)
    except ILSyntaxError:
        pass  # the contract: malformed input raises exactly this


@given(text=st.text(alphabet="ACX_Y-> movingAvg(id=1,params={0});\nOUT", max_size=200))
@settings(max_examples=300, deadline=None)
def test_il_like_text_never_crashes(text):
    """Near-miss inputs (IL alphabet) are the likeliest corruptions."""
    try:
        parse_program(text)
    except ILSyntaxError:
        pass


@given(
    mutation_point=st.integers(0, 200),
    replacement=st.characters(),
)
@settings(max_examples=200, deadline=None)
def test_single_character_corruption(mutation_point, replacement):
    """Flip one character of a valid program: parse or clean reject."""
    valid = (
        "ACC_X -> movingAvg(id=1, params={10});\n"
        "ACC_Y -> movingAvg(id=2, params={10});\n"
        "1,2 -> vectorMagnitude(id=3);\n"
        "3 -> minThreshold(id=4, params={15});\n"
        "4 -> OUT;\n"
    )
    index = mutation_point % len(valid)
    corrupted = valid[:index] + replacement + valid[index + 1:]
    try:
        program = parse_program(corrupted)
    except ILSyntaxError:
        return
    # If it still parses, it must serialize back without crashing.
    format_program(program)
