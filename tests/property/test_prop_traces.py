"""Property-based tests on the trace generators.

Whatever the seed, duration and variant, a generated trace must be
internally consistent: samples match the declared duration and rate,
events lie inside the trace with the right labels and metadata, and
generation is a pure function of its config.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.base import GroundTruthEvent, Trace
from repro.traces.compose import concat_traces
from repro.traces.audio import AudioEnvironment, AudioTraceConfig, generate_audio_trace
from repro.traces.human import HumanScenario, HumanTraceConfig, generate_human_trace
from repro.traces.robot import (
    ACTIVITY_SPLIT,
    GROUP_IDLE_FRACTION,
    RobotRunConfig,
    generate_robot_run,
)

seeds = st.integers(0, 2**31 - 1)


@given(
    seed=seeds,
    group=st.sampled_from([1, 2, 3]),
    duration=st.floats(120.0, 300.0),
)
@settings(max_examples=15, deadline=None)
def test_robot_trace_invariants(seed, group, duration):
    trace = generate_robot_run(
        RobotRunConfig(group=group, duration_s=duration, seed=seed)
    )
    rate = trace.rate_hz["ACC_X"]
    for channel in ("ACC_X", "ACC_Y", "ACC_Z"):
        assert abs(len(trace.data[channel]) - duration * rate) <= 1
        assert np.all(np.isfinite(trace.data[channel]))
    labels = {e.label for e in trace.events}
    assert labels <= {"walking", "transition", "headbutt"}
    for event in trace.events:
        assert 0.0 <= event.start <= event.end <= trace.duration + 1e-9
    # Walking bouts carry in-bout step times.
    for bout in trace.events_with_label("walking"):
        for t in bout.meta("step_times"):
            assert bout.start - 1e-9 <= t <= bout.end + 1e-9
    # Activity roughly follows the group's budget (loose bounds: the
    # scheduler truncates at the trace end).
    active = trace.event_seconds()
    budget = duration * (1.0 - GROUP_IDLE_FRACTION[group])
    assert active <= budget * 1.35 + 10.0


@given(
    seed=seeds,
    scenario=st.sampled_from(list(HumanScenario)),
    duration=st.floats(150.0, 300.0),
)
@settings(max_examples=10, deadline=None)
def test_human_trace_invariants(seed, scenario, duration):
    trace = generate_human_trace(
        HumanTraceConfig(scenario=scenario, duration_s=duration, seed=seed)
    )
    assert {e.label for e in trace.events} <= {"walking", "other_motion"}
    assert trace.events_with_label("walking")
    for event in trace.events:
        assert 0.0 <= event.start <= event.end <= trace.duration + 1e-9
    assert np.all(np.isfinite(trace.data["ACC_Z"]))


@given(
    seed=seeds,
    environment=st.sampled_from(list(AudioEnvironment)),
    duration=st.floats(90.0, 180.0),
)
@settings(max_examples=10, deadline=None)
def test_audio_trace_invariants(seed, environment, duration):
    trace = generate_audio_trace(
        AudioTraceConfig(environment=environment, duration_s=duration, seed=seed)
    )
    assert {e.label for e in trace.events} <= {"siren", "music", "speech"}
    events = sorted(trace.events, key=lambda e: e.start)
    for a, b in zip(events, events[1:]):
        assert a.end <= b.start + 1e-9  # placement never overlaps
    speech = trace.events_with_label("speech")
    if speech:
        assert any(e.meta("phrase") for e in speech)  # guaranteed target
    assert np.all(np.isfinite(trace.data["MIC"]))
    assert np.abs(trace.data["MIC"]).max() < 3.0


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_slice_concat_roundtrip_bitwise(data):
    """Cutting a trace into pieces and splicing them back is lossless.

    ``concat_traces`` over ``Trace.slice`` pieces must round-trip the
    original **bit-identically**: channel arrays, duration, event
    times, and time-valued event metadata (``*_times``, re-based out
    by slice and back in by concat).  Cut points are drawn at integer
    seconds in the gaps between events and all event times are dyadic
    rationals, so every re-basing is exact float arithmetic — any
    mismatch is a real offset bug, not rounding.
    """
    rng = np.random.default_rng(data.draw(seeds, label="seed"))
    n_sec = data.draw(st.integers(4, 12), label="duration_s")
    rate = 50.0
    # At most one event per integer-second cell, strictly inside it, so
    # integer cut points never split an event.
    cells = data.draw(
        st.sets(st.integers(0, n_sec - 1), min_size=1), label="event_cells"
    )
    events = [
        GroundTruthEvent.make(
            "walking", c + 0.25, c + 0.75, step_times=(c + 0.25, c + 0.5)
        )
        for c in sorted(cells)
    ]
    trace = Trace(
        name="synthetic",
        data={
            "ACC_X": rng.normal(size=int(n_sec * rate)),
            "ACC_Y": rng.normal(size=int(n_sec * rate)),
        },
        rate_hz={"ACC_X": rate, "ACC_Y": rate},
        duration=float(n_sec),
        events=events,
    )
    cuts = data.draw(
        st.sets(st.integers(1, n_sec - 1), min_size=1), label="cuts"
    )
    bounds = [0.0] + [float(c) for c in sorted(cuts)] + [float(n_sec)]
    pieces = [
        trace.slice(a, b) for a, b in zip(bounds, bounds[1:])
    ]
    # Slice re-bases *_times metadata along with the event itself.
    for piece in pieces:
        for event in piece.events:
            for t in event.meta("step_times"):
                assert event.start <= t <= event.end
    rebuilt = concat_traces(pieces)
    assert rebuilt.duration == trace.duration
    for channel in trace.data:
        assert rebuilt.data[channel].dtype == trace.data[channel].dtype
        assert np.array_equal(rebuilt.data[channel], trace.data[channel])
        assert np.array_equal(rebuilt.times(channel), trace.times(channel))
    assert rebuilt.events == trace.events
    assert rebuilt.metadata["segments"] == [
        (piece.name, a, b)
        for piece, (a, b) in zip(pieces, zip(bounds, bounds[1:]))
    ]


@given(seed=seeds, group=st.sampled_from([1, 2, 3]))
@settings(max_examples=6, deadline=None)
def test_robot_generation_deterministic(seed, group):
    config = RobotRunConfig(group=group, duration_s=120.0, seed=seed)
    a = generate_robot_run(config)
    b = generate_robot_run(config)
    assert a.events == b.events
    for channel in a.data:
        assert np.array_equal(a.data[channel], b.data[channel])
