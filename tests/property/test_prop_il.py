"""Property-based tests on the intermediate language round trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.branch import ProcessingBranch
from repro.api.compile import compile_pipeline
from repro.api.pipeline import ProcessingPipeline
from repro.api.stubs import (
    ExponentialMovingAverage,
    LocalExtrema,
    MaxThreshold,
    MinThreshold,
    MovingAverage,
    RangeThreshold,
    SustainedThreshold,
    VectorMagnitude,
)
from repro.il.parser import parse_program
from repro.il.text import format_program
from repro.il.validate import validate_program
from repro.sensors.channels import ACC_X, ACC_Y, ACC_Z

_finite = dict(allow_nan=False, allow_infinity=False)


@st.composite
def scalar_stub(draw):
    """A random scalar-to-scalar algorithm stub."""
    kind = draw(st.integers(0, 5))
    if kind == 0:
        return MovingAverage(draw(st.integers(1, 50)))
    if kind == 1:
        return ExponentialMovingAverage(draw(st.floats(0.01, 1.0, **_finite)))
    if kind == 2:
        return MinThreshold(draw(st.floats(-100, 100, **_finite)))
    if kind == 3:
        return MaxThreshold(draw(st.floats(-100, 100, **_finite)))
    if kind == 4:
        low = draw(st.floats(-100, 0, **_finite))
        return RangeThreshold(low, low + draw(st.floats(0, 100, **_finite)))
    return SustainedThreshold(
        draw(st.floats(-100, 100, **_finite)), draw(st.integers(1, 20))
    )


@st.composite
def random_pipeline(draw):
    """A random valid multi-branch accelerometer pipeline."""
    axes = draw(
        st.lists(
            st.sampled_from([ACC_X, ACC_Y, ACC_Z]),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    pipeline = ProcessingPipeline()
    for axis in axes:
        branch = ProcessingBranch(axis)
        for _ in range(draw(st.integers(0, 3))):
            branch.add(draw(scalar_stub()))
        pipeline.add(branch)
    if len(axes) > 1:
        pipeline.add(VectorMagnitude())
    for _ in range(draw(st.integers(0, 2))):
        pipeline.add(draw(scalar_stub()))
    # Must end on at least one algorithm overall.
    if len(axes) == 1 and not pipeline.stages and not pipeline.branches[0].algorithms:
        pipeline.add(MinThreshold(0.0))
    return pipeline


@given(pipeline=random_pipeline())
@settings(max_examples=100, deadline=None)
def test_compile_format_parse_roundtrip(pipeline):
    program = compile_pipeline(pipeline)
    text = format_program(program)
    assert parse_program(text) == program


@given(pipeline=random_pipeline())
@settings(max_examples=100, deadline=None)
def test_compiled_pipelines_always_validate(pipeline):
    program = compile_pipeline(pipeline)
    graph = validate_program(program)
    assert graph.output_id == program.output.node_id
    assert len(graph.nodes) == len(program.statements)


@given(pipeline=random_pipeline())
@settings(max_examples=50, deadline=None)
def test_node_ids_dense_from_one(pipeline):
    program = compile_pipeline(pipeline)
    ids = [s.node_id for s in program.statements]
    assert ids == list(range(1, len(ids) + 1))


@given(pipeline=random_pipeline())
@settings(max_examples=50, deadline=None)
def test_reformat_is_idempotent(pipeline):
    program = compile_pipeline(pipeline)
    text = format_program(program)
    assert format_program(parse_program(text)) == text
