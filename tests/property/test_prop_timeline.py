"""Property-based tests on timelines and power accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.accounting import account
from repro.power.phone import NEXUS4
from repro.power.timeline import PhoneState, build_timeline, merge_windows

durations = st.floats(min_value=10.0, max_value=2000.0, allow_nan=False)


@st.composite
def windows_in(draw, duration):
    """Random awake windows inside [0, duration]."""
    count = draw(st.integers(min_value=0, max_value=10))
    windows = []
    for _ in range(count):
        a = draw(st.floats(min_value=0.0, max_value=duration, allow_nan=False))
        b = draw(st.floats(min_value=0.0, max_value=duration, allow_nan=False))
        windows.append((min(a, b), max(a, b)))
    return windows


@given(data=st.data(), duration=durations)
@settings(max_examples=100, deadline=None)
def test_timeline_conserves_time(data, duration):
    windows = data.draw(windows_in(duration))
    timeline = build_timeline(duration, windows, NEXUS4)
    total = sum(i.duration for i in timeline.intervals)
    assert total == pytest.approx(duration, rel=1e-9)
    assert timeline.intervals[0].start == 0.0
    assert timeline.intervals[-1].end == pytest.approx(duration)


@given(data=st.data(), duration=durations)
@settings(max_examples=100, deadline=None)
def test_timeline_no_adjacent_same_state_gaps(data, duration):
    windows = data.draw(windows_in(duration))
    timeline = build_timeline(duration, windows, NEXUS4)
    for a, b in zip(timeline.intervals, timeline.intervals[1:]):
        assert a.end == pytest.approx(b.start)


@given(data=st.data(), duration=durations)
@settings(max_examples=100, deadline=None)
def test_average_power_bounded_by_extremes(data, duration):
    windows = data.draw(windows_in(duration))
    timeline = build_timeline(duration, windows, NEXUS4)
    avg = timeline.average_power_mw(NEXUS4)
    assert NEXUS4.asleep_mw - 1e-9 <= avg <= NEXUS4.wake_transition_mw + 1e-9


@given(data=st.data(), duration=durations)
@settings(max_examples=100, deadline=None)
def test_transitions_paired(data, duration):
    windows = data.draw(windows_in(duration))
    timeline = build_timeline(duration, windows, NEXUS4)
    waking = sum(1 for i in timeline.intervals if i.state is PhoneState.WAKING)
    sleeping = sum(1 for i in timeline.intervals if i.state is PhoneState.SLEEPING)
    # Each wake is eventually followed by a sleep, except when the trace
    # starts awake (no wake transition) or ends awake (no sleep).
    assert abs(waking - sleeping) <= 1


@given(data=st.data(), duration=durations)
@settings(max_examples=60, deadline=None)
def test_more_awake_time_costs_more(data, duration):
    windows = data.draw(windows_in(duration))
    base = build_timeline(duration, windows, NEXUS4)
    wider = build_timeline(
        duration,
        windows + [(0.0, min(duration, duration * 0.5))],
        NEXUS4,
    )
    assert wider.awake_seconds >= base.awake_seconds - 1e-9
    if wider.awake_seconds > base.awake_seconds + 2.5:
        # Enough extra awake time to dominate transition bookkeeping.
        assert wider.energy_mj(NEXUS4) > base.energy_mj(NEXUS4)


@given(data=st.data(), duration=durations)
@settings(max_examples=60, deadline=None)
def test_accounting_breakdown_sums(data, duration):
    windows = data.draw(windows_in(duration))
    timeline = build_timeline(duration, windows, NEXUS4)
    breakdown = account(timeline, NEXUS4)
    assert breakdown.phone_mw == pytest.approx(
        timeline.average_power_mw(NEXUS4), rel=1e-9
    )
    assert 0.0 <= breakdown.awake_fraction <= 1.0


@given(
    windows=st.lists(
        st.tuples(
            st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False)
        ),
        max_size=12,
    ),
    min_gap=st.floats(0.0, 10.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_merge_windows_invariants(windows, min_gap):
    normalized = [(min(a, b), max(a, b)) for a, b in windows]
    merged = merge_windows(normalized, min_gap)
    # Sorted, disjoint with gaps >= min_gap, and covering >= the input.
    for (a0, a1), (b0, b1) in zip(merged, merged[1:]):
        assert a1 < b0
        assert b0 - a1 >= min_gap - 1e-9
    total_in = sum(b - a for a, b in normalized if b > a)
    total_out = sum(b - a for a, b in merged)
    assert total_out >= 0
    if normalized:
        assert total_out <= max(
            (b for _, b in normalized), default=0
        ) - min((a for a, _ in normalized), default=0) + 1e-9
