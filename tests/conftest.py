"""Shared fixtures: small deterministic traces and helper factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sensors.samples import Chunk
from repro.traces.audio import AudioEnvironment, AudioTraceConfig, generate_audio_trace
from repro.traces.human import HumanScenario, HumanTraceConfig, generate_human_trace
from repro.traces.robot import RobotRunConfig, generate_robot_run


def scalar_chunk(values, rate_hz=50.0, t0=0.0):
    """Build a SCALAR chunk with evenly spaced timestamps."""
    values = np.asarray(values, dtype=float)
    times = t0 + np.arange(len(values)) / rate_hz
    return Chunk.scalars(times, values, rate_hz)


@pytest.fixture(scope="session")
def robot_trace():
    """One small group-2 robot run shared across tests."""
    return generate_robot_run(RobotRunConfig(group=2, duration_s=240.0, seed=42))


@pytest.fixture(scope="session")
def quiet_robot_trace():
    """A group-1 (90% idle) robot run."""
    return generate_robot_run(RobotRunConfig(group=1, duration_s=240.0, seed=43))


@pytest.fixture(scope="session")
def audio_trace():
    """One small office audio trace shared across tests."""
    return generate_audio_trace(
        AudioTraceConfig(AudioEnvironment.OFFICE, duration_s=120.0, seed=44)
    )


@pytest.fixture(scope="session")
def coffee_audio_trace():
    """A coffee-shop audio trace (louder background)."""
    return generate_audio_trace(
        AudioTraceConfig(AudioEnvironment.COFFEE_SHOP, duration_s=120.0, seed=45)
    )


@pytest.fixture(scope="session")
def human_trace():
    """One small commute human trace."""
    return generate_human_trace(
        HumanTraceConfig(HumanScenario.COMMUTE, duration_s=300.0, seed=46)
    )
