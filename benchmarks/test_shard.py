"""Sharded serving: partition scaling, digest identity, tail latency.

Drives the fleet-1000 workload through :class:`ShardCluster` at 1 and
4 shards and records ``results/BENCH_shard.json``:

* **Open-loop goodput scaling** — Poisson arrivals on a simulated
  clock swept across offered rates that cross single-shard capacity
  (``batch_size / pump_interval``).  A shard drains one batch per pump
  boundary, so an N-shard cluster's capacity is N× a single shard's —
  the partitioned-scheduler speedup, measured in *simulated-time*
  goodput so the result is a property of the architecture, not of how
  many host cores the benchmark machine has (wall time is recorded
  honestly alongside).  Gate: ≥2× fleet-1000 goodput at 4 shards vs 1
  at the over-capacity offered rate.
* **Digest identity** — the topology-independent
  :func:`~repro.serve.loadgen.completion_digest` of the 4-shard
  closed-loop drive must equal the 1-shard reference: sharding
  repartitions work, it never changes an answer.
* **Tail latency** — p50/p90/p99/p99.9 vs offered load per topology,
  the hockey-stick curve the open-loop generator exists to expose.
"""

import json
import os

from benchmarks.conftest import RESULTS_DIR, run_once, save_artifact
from repro.apps import all_applications
from repro.eval.report import render_table
from repro.serve import (
    LoadSpec,
    OpenLoopSpec,
    ShardCluster,
    TenantQuota,
    completion_digest,
    fleet_workload,
    overload_sweep,
    run_cluster_fleet,
)
from repro.traces.library import audio_corpus, human_corpus, robot_corpus

QUICK = os.environ.get("REPRO_QUICK") == "1"

#: The acceptance fleet size: 1000 simulated devices.
FLEET = 1000

#: Trace length for the serve registry (matches ``benchmarks/test_serve``).
TRACE_DURATION_S = 120.0 if QUICK else 360.0

#: Per-shard scheduling batch and pump cadence; together they set a
#: single shard's capacity in submissions per simulated second.
BATCH_SIZE = 64
PUMP_INTERVAL_S = 1.0
SHARD_CAPACITY_PER_S = BATCH_SIZE / PUMP_INTERVAL_S

#: Offered rates as multiples of single-shard capacity: from half a
#: shard to past four shards, so both topologies saturate in-sweep.
RATE_MULTIPLIERS = (0.5, 1.0, 2.0, 3.0, 4.0)

#: The multiplier the ≥2× scaling gate reads (3× one shard's capacity:
#: far past a single shard, comfortably under four).
GATE_MULTIPLIER = 3.0

#: Simulated seconds of arrivals per sweep point.
OPEN_LOOP_DURATION_S = 10.0 if QUICK else 30.0

#: 4 shards must at least double 1-shard goodput at the gate rate.
MIN_SHARD_SPEEDUP = 2.0


def _registry():
    """The serve-bench trace registry (matches ``repro serve-bench``)."""
    traces = (
        robot_corpus(duration_s=TRACE_DURATION_S)[:3]
        + audio_corpus(duration_s=TRACE_DURATION_S)
        + human_corpus(duration_s=TRACE_DURATION_S)
    )
    return {trace.name: trace for trace in traces}


def _load_spec():
    return LoadSpec(
        fleet=FLEET, seed=0, min_submissions=1, max_submissions=2
    )


def _merge_results(payload):
    """Merge one module's payload into ``results/BENCH_shard.json``."""
    target = RESULTS_DIR / "BENCH_shard.json"
    merged = json.loads(target.read_text()) if target.exists() else {}
    merged.update(payload)
    target.write_text(json.dumps(merged, indent=2) + "\n")


def test_shard_goodput_scaling(benchmark):
    traces = _registry()
    rates = [m * SHARD_CAPACITY_PER_S for m in RATE_MULTIPLIERS]
    spec = OpenLoopSpec(
        rate=rates[0],
        duration_s=OPEN_LOOP_DURATION_S,
        seed=0,
        pump_interval_s=PUMP_INTERVAL_S,
        load=_load_spec(),
    )

    def sweep():
        out = {}
        for shards in (1, 4):
            def make_cluster(clock, shards=shards):
                return ShardCluster(
                    traces,
                    shards=shards,
                    batch_size=BATCH_SIZE,
                    quota=TenantQuota(
                        max_pending=1_000_000, max_submissions=10_000_000
                    ),
                    clock_factory=lambda: clock,
                )

            out[shards] = overload_sweep(make_cluster, spec, rates)
        return out

    sweeps = run_once(benchmark, sweep)

    gate_rate = GATE_MULTIPLIER * SHARD_CAPACITY_PER_S
    by_rate = {
        shards: {r.offered_rate: r for r in reports}
        for shards, reports in sweeps.items()
    }
    one = by_rate[1][gate_rate]
    four = by_rate[4][gate_rate]
    speedup = four.goodput / one.goodput

    rows = []
    for shards, reports in sorted(sweeps.items()):
        for report in reports:
            # Arrival accounting balances at every point.
            assert report.arrivals == report.accepted + report.shed_total
            rows.append((
                str(shards),
                f"{report.offered_rate:.0f}",
                str(report.arrivals),
                str(report.shed_total),
                f"{report.goodput:.1f}",
                f"{report.latency_p50:.2f}",
                f"{report.latency_p99:.2f}",
                f"{report.latency_p999:.2f}",
                f"{report.wall_s:.2f}",
            ))
    # Under capacity nothing sheds; past it the single shard saturates
    # near its capacity while four shards keep absorbing the rate.
    assert by_rate[1][rates[0]].shed_total == 0
    assert by_rate[4][rates[0]].shed_total == 0
    assert one.shed_total > 0
    # Tails grow monotonically into overload on the single shard.
    assert (
        by_rate[1][rates[-1]].latency_p99
        >= by_rate[1][rates[0]].latency_p99
    )

    _merge_results({
        "quick": QUICK,
        "fleet": FLEET,
        "trace_duration_s": TRACE_DURATION_S,
        "open_loop": {
            "duration_s": OPEN_LOOP_DURATION_S,
            "pump_interval_s": PUMP_INTERVAL_S,
            "batch_size": BATCH_SIZE,
            "shard_capacity_per_s": SHARD_CAPACITY_PER_S,
            "gate_rate": gate_rate,
            "goodput_1_shard": one.goodput,
            "goodput_4_shards": four.goodput,
            "speedup": round(speedup, 2),
            "min_speedup": MIN_SHARD_SPEEDUP,
            "sweeps": {
                str(shards): [r.as_dict() for r in reports]
                for shards, reports in sweeps.items()
            },
        },
    })
    save_artifact(
        "shard_scaling",
        render_table(
            ["shards", "rate/s", "arrivals", "shed", "goodput/s",
             "p50", "p99", "p99.9", "wall s"],
            rows,
            title=(
                f"Open-loop shard scaling at fleet {FLEET} "
                f"({OPEN_LOOP_DURATION_S:.0f} simulated s per point; "
                f"4-shard speedup {speedup:.2f}x at "
                f"{gate_rate:.0f}/s offered)"
            ),
        ),
    )

    assert speedup >= MIN_SHARD_SPEEDUP, (
        f"4-shard goodput {four.goodput:.1f}/s is only {speedup:.2f}x "
        f"the 1-shard {one.goodput:.1f}/s at {gate_rate:.0f}/s offered"
    )


def test_shard_digest_identity(benchmark):
    traces = _registry()
    submissions = fleet_workload(
        _load_spec(), all_applications(), list(traces.values())
    )

    def drive_both():
        reports = {}
        for shards in (1, 4):
            cluster = ShardCluster(
                traces, shards=shards, quota=TenantQuota(max_pending=8)
            )
            try:
                reports[shards] = run_cluster_fleet(
                    cluster, submissions, pump_every=32
                )
            finally:
                cluster.shutdown()
        return reports

    reports = run_once(benchmark, drive_both)

    digests = {
        shards: completion_digest(report.pairs)
        for shards, report in reports.items()
    }
    for shards, report in reports.items():
        assert report.tickets == len(report.responses), shards
    # The acceptance gate: sharding never changes an answer.
    assert digests[4] == digests[1], digests

    merged = reports[4].metrics.merged
    _merge_results({
        "digest_identity": {
            "fleet": FLEET,
            "submissions": len(submissions),
            "digest": digests[1],
            "digests_match": True,
            "wall_s_1_shard": reports[1].wall_s,
            "wall_s_4_shards": reports[4].wall_s,
            "dedup_hit_rate_4_shards": merged.dedup_hit_rate,
        },
    })
    save_artifact(
        "shard_digest",
        render_table(
            ["shards", "tickets", "completed", "dedup rate", "wall s",
             "digest"],
            [
                (
                    str(shards),
                    str(report.tickets),
                    str(report.metrics.merged.completed),
                    f"{report.metrics.merged.dedup_hit_rate:.1%}",
                    f"{report.wall_s:.2f}",
                    digests[shards][:16],
                )
                for shards, report in sorted(reports.items())
            ],
            title=(
                f"Completion-digest identity at fleet {FLEET}: "
                f"1-shard == 4-shard ({digests[1][:16]}…)"
            ),
        ),
    )
