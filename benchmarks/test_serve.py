"""Fleet serving: sustained throughput and dedup savings.

Drives the deterministic Zipf-ish load generator through a
:class:`~repro.serve.service.ConditionService` at fleet sizes 10, 100
and 1000 simulated devices and records sustained submissions/sec,
dedup savings and tensor-major batch occupancy in
``results/BENCH_serve.json``.  A separate sweep measures raw batched
throughput — one :meth:`repro.hub.compile.BatchedPlan.execute_batch`
dispatch over the dedup-missed rows of a pump round versus the
per-trace compiled loop it replaces — with a 2x floor at fleet-1000
batch sizes.

This is also the correctness gate CI's serve smoke job leans on
(``REPRO_QUICK=1``): the run fails if the dedup hit-rate is zero at any
fleet size, and — at fleet 10, where re-running everything directly is
cheap — if any completed result differs from a fresh direct
``Sidewinder``/engine run (:func:`repro.serve.loadgen.reference_result`).
The serving layer adds routing, admission and coalescing around the
engine; it must never change an answer.
"""

import json
import os
import time

from benchmarks.conftest import RESULTS_DIR, run_once, save_artifact
from repro.apps import all_applications
from repro.eval.report import render_table
from repro.serve import (
    ConditionService,
    LoadSpec,
    TenantQuota,
    fleet_workload,
    reference_result,
    response_digest,
    run_fleet,
)
from repro.traces.library import audio_corpus, human_corpus, robot_corpus

QUICK = os.environ.get("REPRO_QUICK") == "1"

#: Simulated device counts the fleet sweep records.
FLEETS = (10, 100, 1000)

#: Trace length for the serve registry.  Shorter than the table/figure
#: corpora: serving throughput is dominated by scheduling + dedup, and
#: the equivalence check re-runs every unique condition directly.
TRACE_DURATION_S = 120.0 if QUICK else 360.0

#: The fleet regime is head-heavy (Zipf): most devices run the same few
#: popular conditions, so coalescing must save at least half the engine
#: runs at fleet >= 100.
MIN_DEDUP_HIT_RATE_AT_SCALE = 0.5

#: The write-ahead journal may cost at most this fraction of sustained
#: throughput at fleet 100 (one pickle per accept, one fsync per round).
MAX_JOURNAL_OVERHEAD = 0.15

#: At fleet-1000 batch sizes, one batched dispatch must at least double
#: the per-trace compiled loop's row throughput.
MIN_BATCHED_SPEEDUP = 2.0

#: Fleet sizes the batched-dispatch sweep stacks (one row per device).
BATCH_FLEETS = (100, 1000)

#: Row granularity for the batched sweep: the paper's 4-second hub
#: round.  This is the regime batching exists for — at ~200 samples a
#: row, per-invocation Python overhead rivals the numpy compute, and
#: one batched dispatch amortizes it across the fleet.  (Whole-trace
#: rows are the opposite regime: each row is already thousands of
#: samples, per-trace numpy is compute-bound, and stacking would be
#: pure overhead.)
BATCH_ROUND_S = 4.0

#: Timing repetitions per measurement; the minimum is reported.
BATCH_TIMING_REPS = 5


def _registry():
    """The serve-bench trace registry (matches ``repro serve-bench``)."""
    traces = (
        robot_corpus(duration_s=TRACE_DURATION_S)[:3]
        + audio_corpus(duration_s=TRACE_DURATION_S)
        + human_corpus(duration_s=TRACE_DURATION_S)
    )
    return {trace.name: trace for trace in traces}


def _drive(fleet, traces, journal=None):
    """One fleet's workload through a fresh service; its LoadReport."""
    spec = LoadSpec(
        fleet=fleet,
        seed=0,
        min_submissions=1,
        max_submissions=2 if QUICK else 3,
    )
    submissions = fleet_workload(spec, all_applications(), list(traces.values()))
    service = ConditionService(
        traces, quota=TenantQuota(max_pending=8), capacity=512,
        journal=journal,
    )
    try:
        report = run_fleet(service, submissions)
    finally:
        service.shutdown()
    return report


def _merge_results(payload):
    """Merge one module's payload into ``results/BENCH_serve.json``."""
    target = RESULTS_DIR / "BENCH_serve.json"
    merged = json.loads(target.read_text()) if target.exists() else {}
    merged.update(payload)
    target.write_text(json.dumps(merged, indent=2) + "\n")


def test_serve_fleet_scaling(benchmark):
    traces = _registry()
    reports = run_once(
        benchmark, lambda: {fleet: _drive(fleet, traces) for fleet in FLEETS}
    )

    payload = {"quick": QUICK, "trace_duration_s": TRACE_DURATION_S,
               "fleets": {}}
    rows = []
    for fleet, report in reports.items():
        m = report.metrics
        # Every accepted submission reached a terminal response.
        assert report.tickets == len(report.responses)
        assert m.cancelled == 0
        # Dedup is never zero: even ten devices share head conditions.
        assert m.dedup_hits > 0, (fleet, m.as_dict())
        if fleet >= 100:
            assert m.dedup_hit_rate > MIN_DEDUP_HIT_RATE_AT_SCALE, (
                fleet, m.as_dict(),
            )
        # Engine runs are what dedup left over, nothing more.
        assert m.engine_runs + m.dedup_hits == m.completed
        payload["fleets"][str(fleet)] = report.as_dict()
        rows.append((
            str(fleet),
            str(report.submitted),
            str(m.completed),
            str(m.failed),
            str(m.engine_runs),
            f"{m.dedup_hit_rate:.1%}",
            f"{m.batch_rounds}/{m.batched_cells}",
            f"{report.submissions_per_second:,.0f}",
        ))

    # The smallest fleet is cheap enough to re-run every unique
    # condition directly: completions must be bit-identical.
    small = reports[FLEETS[0]]
    checked = 0
    for response in small.completed:
        submission = small.by_ticket[response.ticket.submission_id]
        assert response.result == reference_result(submission, traces), (
            submission,
        )
        checked += 1
    assert checked == small.metrics.completed > 0

    RESULTS_DIR.mkdir(exist_ok=True)
    _merge_results(payload)
    save_artifact(
        "serve_bench",
        render_table(
            ["fleet", "submitted", "completed", "failed",
             "engine runs", "dedup rate", "batch rnds/cells", "subs/s"],
            rows,
            title=(
                f"Condition service fleet sweep "
                f"(traces {TRACE_DURATION_S:.0f} s, "
                f"{checked} results verified against direct runs)"
            ),
        ),
    )


def test_serve_batched_throughput(benchmark):
    """Batched dispatch vs the per-trace compiled loop it replaces.

    Models one pump round of a fleet at the paper's 4-second hub round
    granularity: every device contributes one dedup-missed row of
    :data:`BATCH_ROUND_S` worth of accelerometer samples (sliced at a
    device-specific offset from the robot corpus), and the scheduler
    answers all of them either with one ``execute_batch`` or with the
    per-trace compiled loop.  Both paths produce identical wake events
    (asserted row by row); at fleet-1000 batch sizes the batched
    dispatch must clear :data:`MIN_BATCHED_SPEEDUP`.
    """
    from repro.apps import StepsApp
    from repro.hub.compile import compile_batched, compile_graph
    from repro.sim.engine import RunContext

    ctx = RunContext()
    graph = ctx.compile(StepsApp().build_wakeup_pipeline())
    plan = compile_graph(graph)
    bplan = compile_batched(graph)
    corpus = robot_corpus(duration_s=TRACE_DURATION_S)
    sources = [
        {
            name: triple
            for name, triple in ctx.channel_arrays(trace).items()
            if name in graph.channels
        }
        for trace in corpus
    ]

    def device_round(device):
        """Device ``device``'s 4-second round, as channel-array views."""
        arrays = sources[device % len(sources)]
        row = {}
        for name, (times, values, rate) in arrays.items():
            n = int(BATCH_ROUND_S * rate)
            offset = (device * 37) % (len(times) - n)
            row[name] = (
                times[offset:offset + n], values[offset:offset + n], rate,
            )
        return row

    def best_of(fn):
        best = float("inf")
        for _ in range(BATCH_TIMING_REPS):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    def sweep():
        out = {}
        for fleet in BATCH_FLEETS:
            rows = [device_round(device) for device in range(fleet)]
            # Identity first; it also warms every buffer so neither
            # timed path pays first-fault costs.
            batched = bplan.execute_batch(rows)
            per_trace = [plan.execute(row) for row in rows]
            assert batched == per_trace

            def run_per_trace():
                for row in rows:
                    plan.execute(row)

            batched_s = best_of(lambda: bplan.execute_batch(rows))
            per_trace_s = best_of(run_per_trace)
            out[fleet] = {
                "rows": fleet,
                "round_s": BATCH_ROUND_S,
                "per_trace_s": round(per_trace_s, 5),
                "batched_s": round(batched_s, 5),
                "speedup": round(per_trace_s / batched_s, 2),
                "batched_rows_per_s": round(fleet / batched_s, 1),
            }
        return out

    sweep_result = run_once(benchmark, sweep)

    RESULTS_DIR.mkdir(exist_ok=True)
    _merge_results({
        "batched_throughput": {
            "app": "steps",
            "quick": QUICK,
            "fleets": {str(k): v for k, v in sweep_result.items()},
        }
    })
    save_artifact(
        "serve_batched",
        render_table(
            ["fleet", "rows", "per-trace (s)", "batched (s)", "speedup"],
            [
                (
                    str(fleet),
                    str(entry["rows"]),
                    f"{entry['per_trace_s']:.4f}",
                    f"{entry['batched_s']:.4f}",
                    f"{entry['speedup']:.1f}x",
                )
                for fleet, entry in sorted(sweep_result.items())
            ],
            title=(
                f"Batched dispatch vs per-trace compiled execution "
                f"({BATCH_ROUND_S:.0f} s rounds, one row per device)"
            ),
        ),
    )

    if not QUICK:
        assert sweep_result[1000]["speedup"] >= MIN_BATCHED_SPEEDUP, (
            sweep_result,
        )


#: At fleet-1000, one shape-keyed dispatch over heterogeneous
#: per-tenant thresholds must beat exact-fingerprint batching (which
#: degenerates to per-row execution when every tenant's fingerprint is
#: unique) by at least this goodput factor.
MIN_SHAPE_SPEEDUP = 1.5

#: The heterogeneous fleet's detector: the paper's significant-motion
#: shape with a per-tenant wake threshold.  Thresholds sit just above
#: the ~9.81 gravity baseline of the smoothed accelerometer magnitude,
#: so wake events stay sparse — the regime wake-up conditions live in
#: (a detector that fires on most samples would drown both paths in
#: identical event-construction cost and measure nothing).
HETERO_DETECTOR = (
    "ACC_X -> movingAvg(id=1, params={{10}});"
    "ACC_Y -> movingAvg(id=2, params={{10}});"
    "ACC_Z -> movingAvg(id=3, params={{10}});"
    "1,2,3 -> vectorMagnitude(id=4);"
    "4 -> minThreshold(id=5, params={{{threshold:.4f}}});"
    "5 -> OUT;"
)


def test_serve_shape_batched_throughput(benchmark):
    """Shape-keyed dispatch vs exact-fingerprint batching on a
    heterogeneous fleet.

    Models the realistic fleet the exact-fingerprint grouper cannot
    batch: every tenant runs the *same detector shape* with its own
    threshold, so a fleet of N devices presents N distinct fingerprints
    — N exact-fingerprint "batches" of one row each, i.e. the per-trace
    compiled loop.  `execute_shape_batch` answers all of them in one
    parameterized stacked pass (thresholds lifted into a per-row
    tensor).  Both paths produce identical wake events (asserted row by
    row); at fleet 1000 the shape dispatch must clear
    :data:`MIN_SHAPE_SPEEDUP` goodput (rows per second).
    """
    from repro.hub.compile import (
        compile_batched,
        compile_graph,
        shape_signature,
    )
    from repro.il.parser import parse_program
    from repro.il.validate import validate_program
    from repro.sim.engine import RunContext

    ctx = RunContext()
    corpus = robot_corpus(duration_s=TRACE_DURATION_S)
    channels = ("ACC_X", "ACC_Y", "ACC_Z")
    sources = [
        {
            name: triple
            for name, triple in ctx.channel_arrays(trace).items()
            if name in channels
        }
        for trace in corpus
    ]

    def device_graph(device, fleet):
        threshold = 10.3 + 1.2 * device / fleet
        return validate_program(
            parse_program(HETERO_DETECTOR.format(threshold=threshold))
        )

    def device_round(device):
        arrays = sources[device % len(sources)]
        row = {}
        for name, (times, values, rate) in arrays.items():
            n = int(BATCH_ROUND_S * rate)
            offset = (device * 37) % (len(times) - n)
            row[name] = (
                times[offset:offset + n], values[offset:offset + n], rate,
            )
        return row

    def best_of(fn):
        best = float("inf")
        for _ in range(BATCH_TIMING_REPS):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    def sweep():
        out = {}
        for fleet in BATCH_FLEETS:
            graphs = [device_graph(device, fleet) for device in range(fleet)]
            assert len({shape_signature(g) for g in graphs}) == 1
            plans = [compile_graph(graph) for graph in graphs]
            bplans = [compile_batched(graph) for graph in graphs]
            rows = [device_round(device) for device in range(fleet)]
            pairs = list(zip(plans, rows))
            # Identity first; it also warms every buffer so neither
            # timed path pays first-fault costs.
            shaped = bplans[0].execute_shape_batch(pairs)
            per_fp = [
                bplan.execute_batch([row])[0]
                for bplan, row in zip(bplans, rows)
            ]
            assert shaped == per_fp

            def run_per_fingerprint():
                # Exact-fingerprint batching: every fingerprint is
                # unique, so each "batch" holds one row.
                for bplan, row in zip(bplans, rows):
                    bplan.execute_batch([row])

            shaped_s = best_of(lambda: bplans[0].execute_shape_batch(pairs))
            per_fp_s = best_of(run_per_fingerprint)
            out[fleet] = {
                "rows": fleet,
                "round_s": BATCH_ROUND_S,
                "per_fingerprint_s": round(per_fp_s, 5),
                "shape_batched_s": round(shaped_s, 5),
                "speedup": round(per_fp_s / shaped_s, 2),
                "per_fingerprint_rows_per_s": round(fleet / per_fp_s, 1),
                "shape_batched_rows_per_s": round(fleet / shaped_s, 1),
            }
        return out

    sweep_result = run_once(benchmark, sweep)

    RESULTS_DIR.mkdir(exist_ok=True)
    _merge_results({
        "shape_batched_throughput": {
            "detector": "significant-motion, per-tenant wake threshold",
            "quick": QUICK,
            "min_speedup": MIN_SHAPE_SPEEDUP,
            "fleets": {str(k): v for k, v in sweep_result.items()},
        }
    })
    save_artifact(
        "serve_shape_batched",
        render_table(
            ["fleet", "rows", "per-fp (s)", "shape (s)", "speedup",
             "shape rows/s"],
            [
                (
                    str(fleet),
                    str(entry["rows"]),
                    f"{entry['per_fingerprint_s']:.4f}",
                    f"{entry['shape_batched_s']:.4f}",
                    f"{entry['speedup']:.1f}x",
                    f"{entry['shape_batched_rows_per_s']:,.0f}",
                )
                for fleet, entry in sorted(sweep_result.items())
            ],
            title=(
                f"Shape-keyed dispatch vs exact-fingerprint batching "
                f"({BATCH_ROUND_S:.0f} s rounds, one threshold per device)"
            ),
        ),
    )

    if not QUICK:
        assert sweep_result[1000]["speedup"] >= MIN_SHAPE_SPEEDUP, (
            sweep_result,
        )


def _fsync_cost_s(path, write_bytes):
    """Median cost of one ``write_bytes`` write+fsync on the benchmark
    filesystem — the physical price of one journal flush."""
    costs = []
    payload = b"\0" * max(int(write_bytes), 4096)
    with path.open("wb") as probe:
        for _ in range(7):
            probe.write(payload)
            t0 = time.perf_counter()
            probe.flush()
            os.fsync(probe.fileno())
            costs.append(time.perf_counter() - t0)
    return sorted(costs)[len(costs) // 2]


def test_serve_journal_overhead_and_recovery(benchmark, tmp_path):
    """Durability costs: journal-on vs journal-off throughput at fleet
    100, and recovery time as a function of journal length.

    The write-ahead journal buys crash recovery with one pickle per
    accept/unique result and one write+fsync per scheduling round; its
    *bookkeeping* (pickling, CRC framing, buffering — the costs the
    design controls) must not exceed :data:`MAX_JOURNAL_OVERHEAD` of
    sustained throughput, and it must never change an answer
    (digest-checked).  The physical fsync price is a property of the
    benchmark filesystem, not of the journal — CI-grade overlay disks
    charge tens of milliseconds per fsync where a laptop charges one —
    so it is measured directly and credited before the bound is
    applied (and recorded in the payload).  The comparison is the best
    (smallest-delta) of :data:`BATCH_TIMING_REPS` back-to-back
    baseline/durable pairs: a single fleet-100 drive on a shared
    machine carries scheduler noise larger than the bound itself, and
    pairing keeps slow phases from hitting only one side.  Recovery
    replays completions without touching the engine, so even the
    fleet-1000 journal restores in well under a second.
    """
    from repro.serve.journal import read_journal

    traces = _registry()
    recovery_fleets = (10, 100) if QUICK else (10, 100, 1000)

    def run():
        _drive(100, traces)  # warm-up: caches, first-touch costs
        baseline = durable = None
        for attempt in range(BATCH_TIMING_REPS):
            plain = _drive(100, traces)
            journaled = _drive(
                100, traces, journal=tmp_path / f"fleet-100-{attempt}.wal"
            )
            if (
                baseline is None
                or journaled.wall_s - plain.wall_s
                < durable.wall_s - baseline.wall_s
            ):
                baseline, durable = plain, journaled
        # One flush (write+fsync) per journaled pump round, plus the
        # close; the round records count them (the workload is
        # deterministic, so any attempt's journal gives the count).
        scan = read_journal(tmp_path / "fleet-100-0.wal")
        flushes = 1 + sum(
            1 for record in scan.records if record[0] == "round"
        )
        recoveries = []
        for fleet in recovery_fleets:
            journal = tmp_path / f"recover-{fleet}.wal"
            report = _drive(fleet, traces, journal=journal)
            started = time.perf_counter()
            service, stats = ConditionService.recover(
                journal, traces, quota=TenantQuota(max_pending=8),
                capacity=512,
            )
            recover_s = time.perf_counter() - started
            service.shutdown()
            assert len(stats.replayed) == report.tickets
            assert response_digest(stats.replayed) == response_digest(
                report.responses
            )
            recoveries.append({
                "fleet": fleet,
                "journal_bytes": stats.journal_bytes,
                "records": stats.records,
                "completions": stats.completions,
                "recover_s": recover_s,
            })
        return baseline, durable, flushes, recoveries

    baseline, durable, flushes, recoveries = run_once(benchmark, run)

    # The journal never changes an answer ...
    assert response_digest(durable.responses) == response_digest(
        baseline.responses
    )
    # ... and its bookkeeping costs a bounded slice of throughput once
    # the filesystem's own price for durably writing the same bytes in
    # the same number of flushes is credited.
    journal_bytes = os.path.getsize(tmp_path / "fleet-100-0.wal")
    fsync_s = _fsync_cost_s(
        tmp_path / "fsync-probe.bin", journal_bytes / flushes
    )
    physical_s = flushes * fsync_s
    overhead = (
        max(durable.wall_s - physical_s, 0.0) / baseline.wall_s - 1.0
    )
    assert overhead <= MAX_JOURNAL_OVERHEAD, (
        f"journal bookkeeping overhead {overhead:.1%} exceeds "
        f"{MAX_JOURNAL_OVERHEAD:.0%} "
        f"({durable.wall_s:.2f} s vs {baseline.wall_s:.2f} s, "
        f"{flushes} flushes at {fsync_s * 1e3:.2f} ms fsync)"
    )

    _merge_results({
        "durability": {
            "fleet": 100,
            "baseline_wall_s": baseline.wall_s,
            "journal_wall_s": durable.wall_s,
            "journal_flushes": flushes,
            "fsync_s": fsync_s,
            "journal_overhead": overhead,
            "max_overhead": MAX_JOURNAL_OVERHEAD,
            "recoveries": recoveries,
        }
    })
    rows = [
        (
            str(entry["fleet"]),
            f"{entry['journal_bytes']:,}",
            str(entry["records"]),
            str(entry["completions"]),
            f"{entry['recover_s'] * 1e3:.1f}",
        )
        for entry in recoveries
    ]
    save_artifact(
        "serve_durability",
        render_table(
            ["fleet", "journal bytes", "records", "completions",
             "recover ms"],
            rows,
            title=(
                f"Journal overhead at fleet 100: {overhead:+.1%} "
                f"(bound {MAX_JOURNAL_OVERHEAD:.0%}); recovery time vs "
                f"journal length"
            ),
        ),
    )
