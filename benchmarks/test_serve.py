"""Fleet serving: sustained throughput and dedup savings.

Drives the deterministic Zipf-ish load generator through a
:class:`~repro.serve.service.ConditionService` at fleet sizes 10, 100
and 1000 simulated devices and records sustained submissions/sec plus
dedup savings in ``results/BENCH_serve.json``.

This is also the correctness gate CI's serve smoke job leans on
(``REPRO_QUICK=1``): the run fails if the dedup hit-rate is zero at any
fleet size, and — at fleet 10, where re-running everything directly is
cheap — if any completed result differs from a fresh direct
``Sidewinder``/engine run (:func:`repro.serve.loadgen.reference_result`).
The serving layer adds routing, admission and coalescing around the
engine; it must never change an answer.
"""

import json
import os
import time

from benchmarks.conftest import RESULTS_DIR, run_once, save_artifact
from repro.apps import all_applications
from repro.eval.report import render_table
from repro.serve import (
    ConditionService,
    LoadSpec,
    TenantQuota,
    fleet_workload,
    reference_result,
    response_digest,
    run_fleet,
)
from repro.traces.library import audio_corpus, human_corpus, robot_corpus

QUICK = os.environ.get("REPRO_QUICK") == "1"

#: Simulated device counts the fleet sweep records.
FLEETS = (10, 100, 1000)

#: Trace length for the serve registry.  Shorter than the table/figure
#: corpora: serving throughput is dominated by scheduling + dedup, and
#: the equivalence check re-runs every unique condition directly.
TRACE_DURATION_S = 120.0 if QUICK else 360.0

#: The fleet regime is head-heavy (Zipf): most devices run the same few
#: popular conditions, so coalescing must save at least half the engine
#: runs at fleet >= 100.
MIN_DEDUP_HIT_RATE_AT_SCALE = 0.5

#: The write-ahead journal may cost at most this fraction of sustained
#: throughput at fleet 100 (one pickle per accept, one fsync per round).
MAX_JOURNAL_OVERHEAD = 0.15


def _registry():
    """The serve-bench trace registry (matches ``repro serve-bench``)."""
    traces = (
        robot_corpus(duration_s=TRACE_DURATION_S)[:3]
        + audio_corpus(duration_s=TRACE_DURATION_S)
        + human_corpus(duration_s=TRACE_DURATION_S)
    )
    return {trace.name: trace for trace in traces}


def _drive(fleet, traces, journal=None):
    """One fleet's workload through a fresh service; its LoadReport."""
    spec = LoadSpec(
        fleet=fleet,
        seed=0,
        min_submissions=1,
        max_submissions=2 if QUICK else 3,
    )
    submissions = fleet_workload(spec, all_applications(), list(traces.values()))
    service = ConditionService(
        traces, quota=TenantQuota(max_pending=8), capacity=512,
        journal=journal,
    )
    try:
        report = run_fleet(service, submissions)
    finally:
        service.shutdown()
    return report


def _merge_results(payload):
    """Merge one module's payload into ``results/BENCH_serve.json``."""
    target = RESULTS_DIR / "BENCH_serve.json"
    merged = json.loads(target.read_text()) if target.exists() else {}
    merged.update(payload)
    target.write_text(json.dumps(merged, indent=2) + "\n")


def test_serve_fleet_scaling(benchmark):
    traces = _registry()
    reports = run_once(
        benchmark, lambda: {fleet: _drive(fleet, traces) for fleet in FLEETS}
    )

    payload = {"quick": QUICK, "trace_duration_s": TRACE_DURATION_S,
               "fleets": {}}
    rows = []
    for fleet, report in reports.items():
        m = report.metrics
        # Every accepted submission reached a terminal response.
        assert report.tickets == len(report.responses)
        assert m.cancelled == 0
        # Dedup is never zero: even ten devices share head conditions.
        assert m.dedup_hits > 0, (fleet, m.as_dict())
        if fleet >= 100:
            assert m.dedup_hit_rate > MIN_DEDUP_HIT_RATE_AT_SCALE, (
                fleet, m.as_dict(),
            )
        # Engine runs are what dedup left over, nothing more.
        assert m.engine_runs + m.dedup_hits == m.completed
        payload["fleets"][str(fleet)] = report.as_dict()
        rows.append((
            str(fleet),
            str(report.submitted),
            str(m.completed),
            str(m.failed),
            str(m.engine_runs),
            f"{m.dedup_hit_rate:.1%}",
            f"{report.submissions_per_second:,.0f}",
        ))

    # The smallest fleet is cheap enough to re-run every unique
    # condition directly: completions must be bit-identical.
    small = reports[FLEETS[0]]
    checked = 0
    for response in small.completed:
        submission = small.by_ticket[response.ticket.submission_id]
        assert response.result == reference_result(submission, traces), (
            submission,
        )
        checked += 1
    assert checked == small.metrics.completed > 0

    RESULTS_DIR.mkdir(exist_ok=True)
    _merge_results(payload)
    save_artifact(
        "serve_bench",
        render_table(
            ["fleet", "submitted", "completed", "failed",
             "engine runs", "dedup rate", "subs/s"],
            rows,
            title=(
                f"Condition service fleet sweep "
                f"(traces {TRACE_DURATION_S:.0f} s, "
                f"{checked} results verified against direct runs)"
            ),
        ),
    )


def test_serve_journal_overhead_and_recovery(benchmark, tmp_path):
    """Durability costs: journal-on vs journal-off throughput at fleet
    100, and recovery time as a function of journal length.

    The write-ahead journal buys crash recovery with one pickle per
    accept/unique result and one write+fsync per scheduling round; it
    must not cost more than :data:`MAX_JOURNAL_OVERHEAD` of sustained
    throughput, and it must never change an answer (digest-checked).
    Recovery replays completions without touching the engine, so even
    the fleet-1000 journal restores in well under a second.
    """
    traces = _registry()
    recovery_fleets = (10, 100) if QUICK else (10, 100, 1000)

    def run():
        _drive(100, traces)  # warm-up: caches, first-touch costs
        baseline = _drive(100, traces)
        durable = _drive(100, traces, journal=tmp_path / "fleet-100.wal")
        recoveries = []
        for fleet in recovery_fleets:
            journal = tmp_path / f"recover-{fleet}.wal"
            report = _drive(fleet, traces, journal=journal)
            started = time.perf_counter()
            service, stats = ConditionService.recover(
                journal, traces, quota=TenantQuota(max_pending=8),
                capacity=512,
            )
            recover_s = time.perf_counter() - started
            service.shutdown()
            assert len(stats.replayed) == report.tickets
            assert response_digest(stats.replayed) == response_digest(
                report.responses
            )
            recoveries.append({
                "fleet": fleet,
                "journal_bytes": stats.journal_bytes,
                "records": stats.records,
                "completions": stats.completions,
                "recover_s": recover_s,
            })
        return baseline, durable, recoveries

    baseline, durable, recoveries = run_once(benchmark, run)

    # The journal never changes an answer ...
    assert response_digest(durable.responses) == response_digest(
        baseline.responses
    )
    # ... and costs a bounded slice of throughput.
    overhead = durable.wall_s / baseline.wall_s - 1.0
    assert overhead <= MAX_JOURNAL_OVERHEAD, (
        f"journal overhead {overhead:.1%} exceeds "
        f"{MAX_JOURNAL_OVERHEAD:.0%} "
        f"({durable.wall_s:.2f} s vs {baseline.wall_s:.2f} s)"
    )

    _merge_results({
        "durability": {
            "fleet": 100,
            "baseline_wall_s": baseline.wall_s,
            "journal_wall_s": durable.wall_s,
            "journal_overhead": overhead,
            "max_overhead": MAX_JOURNAL_OVERHEAD,
            "recoveries": recoveries,
        }
    })
    rows = [
        (
            str(entry["fleet"]),
            f"{entry['journal_bytes']:,}",
            str(entry["records"]),
            str(entry["completions"]),
            f"{entry['recover_s'] * 1e3:.1f}",
        )
        for entry in recoveries
    ]
    save_artifact(
        "serve_durability",
        render_table(
            ["fleet", "journal bytes", "records", "completions",
             "recover ms"],
            rows,
            title=(
                f"Journal overhead at fleet 100: {overhead:+.1%} "
                f"(bound {MAX_JOURNAL_OVERHEAD:.0%}); recovery time vs "
                f"journal length"
            ),
        ),
    )
