"""Ablation: the recall/power threshold trade-off (Sections 2.1.2, 5.3).

Two sweeps:

* the Predefined Activity calibration the paper performed ("we explored
  the parameter space... values that minimize power consumption, while
  maintaining 100% detection recall") — power falls as the trigger gets
  lazier until recall collapses;
* a conservativeness sweep on a Sidewinder wake-up condition (the
  headbutt threshold), quantifying how much energy the prescribed
  high-recall margin costs.
"""

import pytest

from benchmarks.conftest import run_once, save_artifact
from repro.api.branch import ProcessingBranch
from repro.api.pipeline import ProcessingPipeline
from repro.api.stubs import MaxThreshold, MovingAverage
from repro.apps import HeadbuttApp, StepsApp, TransitionsApp
from repro.eval.report import render_table
from repro.sensors.channels import ACC_Y
from repro.sim.calibrate import calibrate_predefined_activity, sweep_recall_power


def test_pa_motion_calibration_sweep(benchmark, robot_traces):
    pairs = [
        (cls(), trace)
        for cls in (StepsApp, TransitionsApp, HeadbuttApp)
        for trace in robot_traces[:6]
    ]
    grid = [0.3, 0.5, 0.7, 0.9, 1.1, 1.4, 1.8]

    def compute():
        return calibrate_predefined_activity("motion", grid, pairs)

    result = run_once(benchmark, compute)
    rows = [
        (f"{p.threshold:.2f}", f"{p.min_recall:.2f}", f"{p.mean_power_mw:.1f}")
        for p in result.points
    ]
    save_artifact(
        "ablation_pa_motion_sweep",
        render_table(
            ["threshold", "min recall", "mean power (mW)"],
            rows,
            title=(
                "Ablation: significant-motion threshold sweep "
                f"(best with 100% recall: {result.best_threshold})"
            ),
        ),
    )
    # Power decreases monotonically with the threshold...
    powers = [p.mean_power_mw for p in result.points]
    assert all(a >= b - 0.5 for a, b in zip(powers, powers[1:]))
    # ...until recall collapses past the calibrated optimum.
    assert result.points[-1].min_recall < 1.0
    assert result.best_threshold < grid[-1]


def test_sidewinder_conservativeness_sweep(benchmark, robot_traces):
    """How much does the high-recall margin on the headbutt wake-up
    condition cost?  (Answer: almost nothing — which is why the paper
    recommends conservative conditions.)"""
    from repro.sim import Sidewinder

    class TunableHeadbutt(HeadbuttApp):
        def __init__(self, wake_threshold: float):
            self.wake_threshold = wake_threshold

        def build_wakeup_pipeline(self):
            pipeline = ProcessingPipeline()
            pipeline.add(
                ProcessingBranch(ACC_Y)
                .add(MovingAverage(3))
                .add(MaxThreshold(self.wake_threshold))
            )
            return pipeline

    traces = [t for t in robot_traces if t.metadata["group"] == 2]
    thresholds = [-2.0, -2.5, -3.0, -3.5, -4.0, -4.5, -5.0]

    def compute():
        rows = []
        for threshold in thresholds:
            app = TunableHeadbutt(threshold)
            results = [Sidewinder().run(app, t) for t in traces]
            rows.append(
                (
                    threshold,
                    min(r.recall for r in results),
                    sum(r.average_power_mw for r in results) / len(results),
                )
            )
        return rows

    rows = run_once(benchmark, compute)
    save_artifact(
        "ablation_sw_conservativeness",
        render_table(
            ["wake threshold (m/s^2)", "min recall", "mean power (mW)"],
            [(f"{t:.2f}", f"{r:.2f}", f"{p:.1f}") for t, r, p in rows],
            title="Ablation: headbutt wake-up condition conservativeness",
        ),
    )
    by_threshold = {t: (r, p) for t, r, p in rows}
    # The conservative setting (loose threshold, -2.0) keeps recall 1.0.
    assert by_threshold[-2.0][0] == 1.0
    # An over-tight threshold starts missing headbutts (the smoothed
    # dip depth varies between roughly -4.5 and -5.5 m/s^2).
    assert by_threshold[-5.0][0] < 1.0
    # And the conservative margin costs only a little energy.
    assert by_threshold[-2.0][1] < by_threshold[-3.5][1] * 1.5


def test_pa_sound_sweep(benchmark, audio_traces):
    from repro.apps import MusicJournalApp, PhraseDetectionApp, SirenDetectorApp
    pairs = [
        (cls(), trace)
        for cls in (SirenDetectorApp, MusicJournalApp, PhraseDetectionApp)
        for trace in audio_traces
    ]
    grid = [0.01, 0.02, 0.03, 0.06]

    def compute():
        return sweep_recall_power("sound", grid, pairs)

    curve = run_once(benchmark, compute)
    rows = [
        (f"{t:.3f}", f"{curve[t].min_recall:.2f}", f"{curve[t].mean_power_mw:.1f}")
        for t in grid
    ]
    save_artifact(
        "ablation_pa_sound_sweep",
        render_table(
            ["threshold", "min recall", "mean power (mW)"],
            rows,
            title="Ablation: significant-sound threshold sweep",
        ),
    )
    assert curve[0.01].mean_power_mw > curve[0.03].mean_power_mw
    assert curve[0.03].min_recall == 1.0
