"""The simulation engine's fast paths, timed.

Runs the paper's full configuration set over a robot-trace subset and
times every execution strategy the engine offers:

* **cold** — fresh shared context, compiled hub path (the engine
  default);
* **warm** — the same context again, everything served from cache;
* **no-compile** — fresh context falling back to the fused tier (the
  ``--no-compile`` escape hatch), asserted result-identical;
* **no-fuse** — fresh context with both fast tiers disabled
  (round-by-round hub interpretation), asserted result-identical;
* **hub axis** — the hub-execution tiers alone, per (condition, trace)
  pair: rounds vs fused vs compiled, asserting bit-identical wake
  events and ``fused_speedup`` / ``compiled_speedup`` floors;
* **pool** — ``jobs=2`` twice: the first dispatch pays worker startup
  and trace shipping, the second hits the *persistent* pool's warm
  per-worker caches.  ``parallel_speedup`` compares that steady-state
  re-dispatch against the cold serial sweep — the number that was 0.75
  (a regression) when every call built a throwaway pool.

All strategies must agree exactly; timings land in
``results/BENCH_matrix.json`` so the perf trajectory is tracked across
PRs.  Set ``REPRO_QUICK=1`` for the reduced two-trace smoke version
(used by CI).
"""

import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, run_once, save_artifact
from repro.apps import HeadbuttApp, StepsApp, TransitionsApp
from repro.eval.experiments import paper_configurations, run_matrix
from repro.eval.report import render_table
from repro.hub.compile import compile_graph
from repro.hub.runtime import HubRuntime, split_into_rounds
from repro.sim.engine import RunContext, shutdown_pool

QUICK = os.environ.get("REPRO_QUICK") == "1"

#: Warm-cache floor: rerunning an identical sweep through the same
#: context must cost at most half the cold sweep.
MIN_WARM_SPEEDUP = 2.0

#: Fused-interpretation floor vs the round-by-round hub path.
MIN_FUSED_SPEEDUP = 1.5

#: Compiled-plan floor vs the fused path (the tier it replaced as the
#: engine default).
MIN_COMPILED_SPEEDUP = 2.0

#: The persistent pool's steady-state re-dispatch must beat the cold
#: serial sweep (the throwaway-pool design measured 0.75 here).
MIN_PARALLEL_SPEEDUP = 1.0


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _rows(matrix):
    return [
        (r.config_name, r.app_name, r.trace_name,
         r.average_power_mw, r.recall, r.precision)
        for r in matrix.results
    ]


def _time_hub_axis(apps, traces):
    """Time the three hub execution tiers per (app, trace).

    Returns ``(round_total_s, fused_total_s, compiled_total_s)``;
    asserts the wake events are identical tier by tier, pair by pair.
    """
    ctx = RunContext()
    round_total = 0.0
    fused_total = 0.0
    compiled_total = 0.0
    for app in apps:
        graph = ctx.compile(app.build_wakeup_pipeline())
        plan = compile_graph(graph)
        for trace in traces:
            arrays = ctx.channel_arrays(trace)
            channels = {
                name: triple
                for name, triple in arrays.items()
                if name in graph.channels
            }
            graph.reset()
            by_rounds, dt = _timed(
                lambda: HubRuntime(graph).run(split_into_rounds(channels, 4.0))
            )
            round_total += dt
            graph.reset()
            fused, dt = _timed(
                lambda: HubRuntime(graph).run_fused(channels, 4.0)
            )
            fused_total += dt
            plan.execute(channels)  # touch the buffers once (page faults)
            compiled, dt = _timed(lambda: plan.execute(channels))
            compiled_total += dt
            assert fused == by_rounds  # bit-identical WakeEvents
            assert compiled == by_rounds
    return round_total, fused_total, compiled_total


def test_matrix_engine_fast_paths(benchmark, robot_traces):
    traces = robot_traces[:2] if QUICK else robot_traces[:6]
    apps = [StepsApp(), TransitionsApp(), HeadbuttApp()]
    configs = paper_configurations()
    context = RunContext()
    shutdown_pool()  # no warm pool from earlier modules

    cold, cold_s = _timed(
        lambda: run_once(
            benchmark,
            lambda: run_matrix(configs, apps, traces, context=context),
        )
    )
    warm, warm_s = _timed(
        lambda: run_matrix(configs, apps, traces, context=context)
    )
    nocompile, nocompile_s = _timed(
        lambda: run_matrix(configs, apps, traces, compiled=False)
    )
    nofuse, nofuse_s = _timed(
        lambda: run_matrix(configs, apps, traces, fuse=False, compiled=False)
    )
    # The persistent pool: the first dispatch forks workers and ships
    # the traces; the second is the steady state every later sweep sees.
    parallel_first, parallel_cold_s = _timed(
        lambda: run_matrix(configs, apps, traces, jobs=2)
    )
    # Steady-state dispatch is short enough that scheduler noise
    # dominates a single sample; keep the best of three.
    parallel, parallel_s = _timed(
        lambda: run_matrix(configs, apps, traces, jobs=2)
    )
    for _ in range(2):
        again, again_s = _timed(
            lambda: run_matrix(configs, apps, traces, jobs=2)
        )
        if again_s < parallel_s:
            parallel, parallel_s = again, again_s

    # Every strategy ran the same experiment and got the same answer.
    assert (
        _rows(cold) == _rows(warm) == _rows(nocompile) == _rows(nofuse)
        == _rows(parallel_first) == _rows(parallel)
    )
    assert cold.skipped == [] and nocompile.skipped == []
    assert nofuse.skipped == []
    assert parallel_first.execution.mode == "pool"
    assert not parallel_first.execution.pool_reused
    assert parallel.execution.pool_reused

    round_total, fused_total, compiled_total = _time_hub_axis(apps, traces)

    warm_speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    fused_speedup = round_total / fused_total if fused_total > 0 else float("inf")
    compiled_speedup = (
        fused_total / compiled_total if compiled_total > 0 else float("inf")
    )
    parallel_speedup = cold_s / parallel_s if parallel_s > 0 else float("inf")
    payload = {
        "cells": len(cold.results),
        "configs": len(configs),
        "apps": len(apps),
        "traces": len(traces),
        "quick": QUICK,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "nocompile_s": round(nocompile_s, 4),
        "nofuse_s": round(nofuse_s, 4),
        "parallel_cold_s": round(parallel_cold_s, 4),
        "parallel_s": round(parallel_s, 4),
        "hub_round_s": round(round_total, 4),
        "hub_fused_s": round(fused_total, 4),
        "compiled_s": round(compiled_total, 4),
        "warm_speedup": round(warm_speedup, 2),
        "fused_speedup": round(fused_speedup, 2),
        "compiled_speedup": round(compiled_speedup, 2),
        "parallel_speedup": round(parallel_speedup, 2),
        "execution": {
            "mode": parallel.execution.mode,
            "workers": parallel.execution.workers,
            "batches": parallel.execution.batches,
            "pool_reused": parallel.execution.pool_reused,
            "reason": parallel.execution.reason,
        },
        "cache_stats": context.stats.as_dict(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_matrix.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    save_artifact(
        "matrix_engine",
        render_table(
            ["sweep", "seconds", "speedup vs cold"],
            [
                ("cold (compiled)", f"{cold_s:.2f}", "1.0x"),
                ("cold (--no-compile)", f"{nocompile_s:.2f}",
                 f"{cold_s / nocompile_s:.1f}x" if nocompile_s > 0 else "inf"),
                ("cold (--no-compile --no-fuse)", f"{nofuse_s:.2f}",
                 f"{cold_s / nofuse_s:.1f}x" if nofuse_s > 0 else "inf"),
                ("warm", f"{warm_s:.2f}", f"{warm_speedup:.1f}x"),
                ("pool first dispatch", f"{parallel_cold_s:.2f}",
                 f"{cold_s / parallel_cold_s:.1f}x" if parallel_cold_s > 0 else "inf"),
                ("pool re-dispatch (jobs=2)", f"{parallel_s:.2f}",
                 f"{parallel_speedup:.1f}x"),
            ],
            title=(
                f"Matrix engine: {len(cold.results)} cells (hub fused "
                f"{fused_speedup:.1f}x vs rounds, compiled "
                f"{compiled_speedup:.1f}x vs fused)"
            ),
        ),
    )

    # The headline claims.
    assert warm_speedup >= MIN_WARM_SPEEDUP, payload
    assert context.stats.hub_hits > 0
    if not QUICK:
        assert fused_speedup > MIN_FUSED_SPEEDUP, payload
        assert compiled_speedup >= MIN_COMPILED_SPEEDUP, payload
        assert parallel_speedup > MIN_PARALLEL_SPEEDUP, payload
    shutdown_pool()
