"""The simulation engine's caching and parallel fan-out, timed.

Runs the paper's full configuration set over a robot-trace subset three
ways — cold (fresh context), warm (same context again, everything
served from cache) and parallel (``jobs=2``, private per-worker
contexts) — asserts all three agree, and writes the timings to
``results/BENCH_matrix.json``.

Set ``REPRO_QUICK=1`` for the reduced two-trace smoke version (used by
CI).
"""

import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, run_once, save_artifact
from repro.apps import HeadbuttApp, StepsApp, TransitionsApp
from repro.eval.experiments import paper_configurations, run_matrix
from repro.eval.report import render_table
from repro.sim.engine import RunContext

QUICK = os.environ.get("REPRO_QUICK") == "1"

#: Warm-cache floor: rerunning an identical sweep through the same
#: context must cost at most half the cold sweep.
MIN_WARM_SPEEDUP = 2.0


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def test_matrix_engine_cold_warm_parallel(benchmark, robot_traces):
    traces = robot_traces[:2] if QUICK else robot_traces[:6]
    apps = [StepsApp(), TransitionsApp(), HeadbuttApp()]
    configs = paper_configurations()
    context = RunContext()

    cold, cold_s = _timed(
        lambda: run_once(
            benchmark,
            lambda: run_matrix(configs, apps, traces, context=context),
        )
    )
    warm, warm_s = _timed(
        lambda: run_matrix(configs, apps, traces, context=context)
    )
    parallel, parallel_s = _timed(
        lambda: run_matrix(configs, apps, traces, jobs=2)
    )

    # All three sweeps are the same experiment.
    assert len(warm.results) == len(cold.results) == len(parallel.results)
    for a, b in zip(cold.results, warm.results):
        assert (a.recall, a.precision) == (b.recall, b.precision)
        assert a.average_power_mw == pytest.approx(b.average_power_mw)
    for a, b in zip(cold.results, parallel.results):
        assert (a.recall, a.precision) == (b.recall, b.precision)
        assert a.average_power_mw == pytest.approx(b.average_power_mw)
    assert cold.skipped == [] and warm.skipped == []

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    payload = {
        "cells": len(cold.results),
        "configs": len(configs),
        "apps": len(apps),
        "traces": len(traces),
        "quick": QUICK,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "parallel_s": round(parallel_s, 4),
        "warm_speedup": round(speedup, 2),
        "parallel_speedup": round(
            cold_s / parallel_s if parallel_s > 0 else float("inf"), 2
        ),
        "cache_stats": context.stats.as_dict(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_matrix.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    save_artifact(
        "matrix_engine",
        render_table(
            ["sweep", "seconds", "speedup vs cold"],
            [
                ("cold", f"{cold_s:.2f}", "1.0x"),
                ("warm", f"{warm_s:.2f}", f"{speedup:.1f}x"),
                ("parallel (jobs=2)", f"{parallel_s:.2f}",
                 f"{payload['parallel_speedup']:.1f}x"),
            ],
            title=f"Matrix engine: {len(cold.results)} cells",
        ),
    )

    # The headline claim: a warm context makes rerunning (nearly) free.
    assert speedup >= MIN_WARM_SPEEDUP, payload
    # The cold sweep itself already dedups hub work across configs.
    assert context.stats.hub_hits > 0
