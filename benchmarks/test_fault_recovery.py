"""Fault injection and reliable wake-up delivery (robustness headline).

The paper's prototype treats the hub-to-phone wire as perfect: every
wake-up interrupt arrives, and the hub never reboots.  A deployable
system cannot assume either.  This module quantifies what the
assumption costs — under a lossy link and a mid-trace hub reset, naive
delivery silently flatlines while the reliable protocol (CRC + ACK
retries + heartbeat watchdog + degraded duty-cycling) holds recall, at
a measured milliwatt premium.

Set ``REPRO_QUICK=1`` to run a reduced single-trace smoke version (used
by CI).
"""

import os

from benchmarks.conftest import run_once, save_artifact
from repro.apps import HeadbuttApp
from repro.eval.report import render_table
from repro.hub.faults import FaultPlan
from repro.hub.reliability import ReliabilityPolicy
from repro.sim import Sidewinder

QUICK = os.environ.get("REPRO_QUICK") == "1"

#: Headline adversity: 10 % wake-message loss, 10 % payload loss, and
#: one mid-trace hub reset with a long brown-out (the hub takes 25 s to
#: come back), which forces the watchdog's degraded duty-cycle to carry
#: detection through the outage.
WAKE_LOSS = 0.10
PAYLOAD_LOSS = 0.10
RESET_FRACTION = 0.5
REBOOT_S = 25.0

#: The hub fires many wake events per ground-truth activity, so naive
#: delivery shrugs off mild loss — the sweep has to push well past it
#: to expose the cliff (retries push the reliable curve's cliff out to
#: ~p^(max_retries+1)).
LOSS_SWEEP = (0.0, 0.7) if QUICK else (0.0, 0.3, 0.5, 0.7)


def _group2(robot_traces):
    # Degraded duty-cycling recovers *most* events during an outage, not
    # all — recall is a mean over traces, so even the smoke run keeps
    # two of them.
    traces = [t for t in robot_traces if t.metadata.get("group") == 2]
    return traces[:2] if QUICK else traces[:3]


def _plan(trace, seed):
    return FaultPlan(
        seed=seed,
        hub_reset_times=(trace.duration * RESET_FRACTION,),
        hub_reboot_s=REBOOT_S,
        wake_drop_probability=WAKE_LOSS,
        payload_drop_probability=PAYLOAD_LOSS,
    )


def test_reliable_delivery_holds_recall(benchmark, robot_traces):
    """Naive vs reliable delivery under the headline fault plan."""
    traces = _group2(robot_traces)
    app = HeadbuttApp()

    def compute():
        rows = []
        per_mode = {}
        for mode, kwargs in (
            ("clean", {}),
            ("naive", {"fault_plan": True}),
            ("reliable", {"fault_plan": True, "reliability": ReliabilityPolicy()}),
        ):
            results = []
            for k, trace in enumerate(traces):
                config_kwargs = dict(kwargs)
                if config_kwargs.pop("fault_plan", False):
                    config_kwargs["fault_plan"] = _plan(trace, seed=200 + k)
                results.append(Sidewinder(**config_kwargs).run(app, trace))
            per_mode[mode] = results
            n = len(results)
            rows.append(
                (
                    mode,
                    f"{sum(r.recall for r in results) / n:.2f}",
                    f"{sum(r.average_power_mw for r in results) / n:.1f}",
                    f"{sum(r.power.reliability_mw for r in results) / n:.2f}",
                    str(sum(r.retransmissions for r in results)),
                    str(sum(r.lost_wakeups for r in results)),
                    f"{sum(r.degraded_seconds for r in results) / n:.0f}",
                )
            )
        return rows, per_mode

    (rows, per_mode) = run_once(benchmark, compute)
    save_artifact(
        "fault_recovery",
        render_table(
            [
                "delivery",
                "mean recall",
                "power (mW)",
                "retry (mW)",
                "retransmits",
                "lost wakes",
                "degraded (s)",
            ],
            rows,
            title=(
                "Fault recovery: 10% wake loss + mid-trace hub reset "
                f"({'1 trace' if QUICK else '3 traces'}, headbutt app)"
            ),
        ),
    )

    recall = {row[0]: float(row[1]) for row in rows}
    power = {row[0]: float(row[2]) for row in rows}
    assert recall["clean"] == 1.0
    # The acceptance contrast: naive delivery loses the back half of the
    # trace plus 10% of its wake-ups; the reliable protocol holds.
    assert recall["naive"] < 0.8
    assert recall["reliable"] >= 0.9

    for result in per_mode["naive"]:
        assert result.hub_resets == 1
        assert result.power.reliability_mw == 0.0
    assert sum(r.lost_wakeups for r in per_mode["naive"]) > 0

    for result in per_mode["reliable"]:
        assert result.hub_resets == 1
        assert result.fault_report.watchdog_trips >= 1
        assert result.fault_report.repushes >= 1
        assert result.degraded_seconds > 0.0
        assert result.power.reliability_mw > 0.0
    assert sum(r.retransmissions for r in per_mode["reliable"]) > 0
    assert sum(r.lost_wakeups for r in per_mode["reliable"]) == 0

    # Reliability is not free — but the premium is milliwatts, not the
    # tens of milliwatts that duty-cycling the phone would cost.
    premium = power["reliable"] - power["naive"]
    assert 0.0 < premium < 25.0

    # Deterministic: replaying the reliable run reproduces it exactly.
    trace = traces[0]
    config = Sidewinder(
        fault_plan=_plan(trace, seed=200), reliability=ReliabilityPolicy()
    )
    a, b = config.run(app, trace), config.run(app, trace)
    assert a.recall == b.recall
    assert a.fault_report == b.fault_report


def test_wake_loss_sweep(benchmark, robot_traces):
    """Recall vs wake-message loss rate, naive against reliable."""
    trace = _group2(robot_traces)[0]
    app = HeadbuttApp()

    def compute():
        rows = []
        for loss in LOSS_SWEEP:
            plan = FaultPlan(seed=77, wake_drop_probability=loss,
                             payload_drop_probability=loss)
            naive = Sidewinder(fault_plan=plan).run(app, trace)
            reliable = Sidewinder(
                fault_plan=plan, reliability=ReliabilityPolicy()
            ).run(app, trace)
            rows.append(
                (
                    f"{loss:.0%}",
                    f"{naive.recall:.2f}",
                    f"{reliable.recall:.2f}",
                    str(reliable.retransmissions),
                    f"{reliable.power.reliability_mw:.2f}",
                )
            )
        return rows

    rows = run_once(benchmark, compute)
    save_artifact(
        "fault_loss_sweep",
        render_table(
            [
                "wake loss",
                "naive recall",
                "reliable recall",
                "retransmits",
                "retry (mW)",
            ],
            rows,
            title="Wake-up loss sweep: naive vs reliable delivery",
        ),
    )
    naive_recalls = [float(r[1]) for r in rows]
    reliable_recalls = [float(r[2]) for r in rows]
    # Lossless: both perfect.  Lossy: reliable never does worse than
    # naive and stays above the deployment bar throughout the sweep.
    assert naive_recalls[0] == 1.0
    assert all(rel >= nai for rel, nai in zip(reliable_recalls, naive_recalls))
    assert all(rel >= 0.9 for rel in reliable_recalls)
    assert naive_recalls[-1] < reliable_recalls[-1]
    # Retransmissions scale with loss.
    retransmits = [int(r[3]) for r in rows]
    assert retransmits[0] == 0
    assert retransmits[-1] > 0
