"""Step-count accuracy across sensing configurations.

The steps application does not just detect walking — it counts steps
(the paper bases it on Libby's footstep-detection method).  Recall on
walking bouts hides how many individual steps a configuration loses, so
this bench reports the counting error directly: Always Awake and
Batching see every sample (exact counts), Sidewinder's wake-ups cover
the bouts almost entirely, and duty cycling misses every step that
falls into a sleep interval — the quantity behind Figure 6's steps
curve.
"""

from benchmarks.conftest import run_once, save_artifact
from repro.apps import StepsApp
from repro.eval.report import render_table
from repro.sim import AlwaysAwake, Batching, DutyCycling, Sidewinder


def _true_steps(trace):
    return sum(
        len(event.meta("step_times"))
        for event in trace.events_with_label("walking")
    )


def test_step_count_accuracy(benchmark, robot_traces):
    group2 = [t for t in robot_traces if t.metadata.get("group") == 2]

    def compute():
        configs = [
            AlwaysAwake(),
            Batching(10.0),
            Sidewinder(),
            DutyCycling(5.0),
            DutyCycling(10.0),
            DutyCycling(30.0),
        ]
        rows = []
        for config in configs:
            counted, actual = 0, 0
            for trace in group2:
                result = config.run(StepsApp(), trace)
                counted += StepsApp.count_steps(result.detections)
                actual += _true_steps(trace)
            rows.append(
                (config.name, actual, counted, f"{counted / actual - 1:+.1%}")
            )
        return rows

    rows = run_once(benchmark, compute)
    save_artifact(
        "step_count_accuracy",
        render_table(
            ["configuration", "true steps", "counted", "error"],
            rows,
            title="Step-count accuracy (group-2 robot runs)",
        ),
    )
    by_config = {row[0]: row[2] / row[1] for row in rows}

    # Full-visibility configurations count within a few percent.
    assert abs(by_config["always_awake"] - 1.0) < 0.05
    assert abs(by_config["batching_10s"] - 1.0) < 0.10
    # Sidewinder's wake-ups cover the walking bouts nearly completely.
    assert abs(by_config["sidewinder"] - 1.0) < 0.10
    # Duty cycling undercounts in proportion to its sleep share, and
    # monotonically more with longer intervals.
    assert by_config["duty_cycling_30s"] < by_config["duty_cycling_10s"]
    assert by_config["duty_cycling_30s"] < 0.75
