"""Ablation: what the individual wake-up pipeline stages buy.

The paper's design rests on multi-stage pipelines where each stage cuts
wake-ups the next stage would have to absorb (Section 2).  This bench
removes stages from two conditions and measures the wake-up/energy
impact:

* the siren condition without its persistence stage (sustained
  threshold) fires on momentary pitched sounds;
* the music condition without its ZCR-variance branch fires on any
  sufficiently loud sound, speech included.
"""

from benchmarks.conftest import run_once, save_artifact
from repro.api.branch import ProcessingBranch
from repro.api.pipeline import ProcessingPipeline
from repro.api.stubs import (
    FFT,
    BandIndicator,
    DominantFrequency,
    HighPass,
    MinThreshold,
    Statistic,
    SustainedThreshold,
    Window,
)
from repro.apps import MusicJournalApp, SirenDetectorApp
from repro.apps.audio_features import (
    SIREN_BAND,
    SIREN_FRAME,
    SIREN_HIGHPASS_HZ,
    SIREN_HOP,
    WINDOW,
)
from repro.apps.siren import PITCH_RATIO_WAKEUP
from repro.eval.report import render_table
from repro.sensors.channels import MIC
from repro.sim import Sidewinder


class SirenNoPersistence(SirenDetectorApp):
    """Siren condition with the sustained-threshold stage removed."""

    def build_wakeup_pipeline(self):
        pipeline = ProcessingPipeline()
        pipeline.add(
            ProcessingBranch(MIC)
            .add(Window(SIREN_FRAME, hop=SIREN_HOP, shape="hamming"))
            .add(HighPass(SIREN_HIGHPASS_HZ))
            .add(FFT())
            .add(DominantFrequency("ratio", min_hz=SIREN_BAND[0], max_hz=SIREN_BAND[1]))
            .add(MinThreshold(PITCH_RATIO_WAKEUP))
        )
        return pipeline


class MusicAmplitudeOnly(MusicJournalApp):
    """Music condition with the ZCR-variance branch removed."""

    def build_wakeup_pipeline(self):
        pipeline = ProcessingPipeline()
        pipeline.add(
            ProcessingBranch(MIC)
            .add(Window(WINDOW))
            .add(Statistic("variance"))
            .add(BandIndicator(2.0e-3, 8.0e-2))
            .add(MinThreshold(1.0))
        )
        return pipeline


def _mean(results, attribute):
    values = [getattr(r, attribute) for r in results]
    return sum(values) / len(values)


def test_siren_persistence_stage(benchmark, audio_traces):
    def compute():
        config = Sidewinder()
        full = [config.run(SirenDetectorApp(), t) for t in audio_traces]
        ablated = [config.run(SirenNoPersistence(), t) for t in audio_traces]
        return full, ablated

    full, ablated = run_once(benchmark, compute)
    save_artifact(
        "ablation_siren_persistence",
        render_table(
            ["variant", "mean power (mW)", "hub wake events", "min recall"],
            [
                ("full condition", f"{_mean(full, 'average_power_mw'):.1f}",
                 f"{_mean(full, 'hub_wake_count'):.0f}",
                 f"{min(r.recall for r in full):.2f}"),
                ("no persistence stage", f"{_mean(ablated, 'average_power_mw'):.1f}",
                 f"{_mean(ablated, 'hub_wake_count'):.0f}",
                 f"{min(r.recall for r in ablated):.2f}"),
            ],
            title="Ablation: siren condition without the 650 ms persistence stage",
        ),
    )
    # Dropping persistence never hurts recall (it is strictly looser)...
    assert min(r.recall for r in ablated) == 1.0
    # ...but fires more and costs at least as much energy.
    assert _mean(ablated, "hub_wake_count") >= _mean(full, "hub_wake_count")
    assert (
        _mean(ablated, "average_power_mw")
        >= _mean(full, "average_power_mw") - 0.5
    )


def test_music_zcr_branch(benchmark, audio_traces):
    def compute():
        config = Sidewinder()
        full = [config.run(MusicJournalApp(), t) for t in audio_traces]
        ablated = [config.run(MusicAmplitudeOnly(), t) for t in audio_traces]
        return full, ablated

    full, ablated = run_once(benchmark, compute)
    save_artifact(
        "ablation_music_zcr_branch",
        render_table(
            ["variant", "mean power (mW)", "hub wake events", "min recall"],
            [
                ("two-branch condition", f"{_mean(full, 'average_power_mw'):.1f}",
                 f"{_mean(full, 'hub_wake_count'):.0f}",
                 f"{min(r.recall for r in full):.2f}"),
                ("amplitude branch only", f"{_mean(ablated, 'average_power_mw'):.1f}",
                 f"{_mean(ablated, 'hub_wake_count'):.0f}",
                 f"{min(r.recall for r in ablated):.2f}"),
            ],
            title="Ablation: music condition without the ZCR-variance branch",
        ),
    )
    assert min(r.recall for r in ablated) == 1.0
    # Without the tonality check the condition wakes on speech too.
    assert _mean(ablated, "hub_wake_count") > _mean(full, "hub_wake_count")
    assert _mean(ablated, "average_power_mw") > _mean(full, "average_power_mw")
