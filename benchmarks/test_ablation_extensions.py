"""Benches for the paper's named extensions (Sections 3.4, 3.8, 7).

* **pipeline merging** — concurrent conditions sharing common
  algorithms ("the sensor manager can attempt to improve performance by
  combining the pipelines that use common algorithms");
* **self-tuning conditions** — threshold adaptation from application
  false-positive feedback;
* **FPGA hub** — the future-work prototype: the siren condition on a
  few-mW fabric instead of the LM4F120;
* **link bandwidth** — what the debug UART does to audio batching.
"""

import pytest

from benchmarks.conftest import run_once, save_artifact
from repro.api.compile import compile_pipeline
from repro.apps import (
    HeadbuttApp,
    MusicJournalApp,
    PhraseDetectionApp,
    SirenDetectorApp,
    StepsApp,
    TransitionsApp,
)
from repro.eval.report import render_table
from repro.hub.fpga import ICE40_CLASS, select_processor
from repro.hub.link import I2C_FAST_MODE, UART_DEBUG
from repro.hub.mcu import LM4F120, MSP430
from repro.hub.merge import merge_programs, merged_cycles_per_second
from repro.il.validate import validate_program
from repro.sim import Batching, Sidewinder


def test_pipeline_merging_savings(benchmark):
    """Hub load with and without merging, for realistic app mixes."""
    def compute():
        mixes = {
            "music + phrase": (MusicJournalApp, PhraseDetectionApp),
            "steps + transitions + headbutts": (
                StepsApp, TransitionsApp, HeadbuttApp,
            ),
            "all six": (
                StepsApp, TransitionsApp, HeadbuttApp,
                SirenDetectorApp, MusicJournalApp, PhraseDetectionApp,
            ),
        }
        rows = []
        for name, apps in mixes.items():
            programs = [
                compile_pipeline(cls().build_wakeup_pipeline()) for cls in apps
            ]
            separate_nodes = sum(len(p) for p in programs)
            separate_cycles = sum(
                validate_program(p).total_cycles_per_second for p in programs
            )
            merged = merge_programs(programs)
            merged_cycles = merged_cycles_per_second(merged)
            rows.append(
                (
                    name,
                    f"{separate_nodes} -> {merged.node_count}",
                    f"{separate_cycles / 1e6:.2f}M",
                    f"{merged_cycles / 1e6:.2f}M",
                    f"{1 - merged_cycles / separate_cycles:.0%}",
                )
            )
        return rows

    rows = run_once(benchmark, compute)
    save_artifact(
        "ablation_merge",
        render_table(
            ["condition mix", "nodes", "cycles/s apart", "merged", "saved"],
            rows,
            title="Extension: pipeline merging across concurrent conditions",
        ),
    )
    saved = {row[0]: float(row[4].rstrip("%")) for row in rows}
    # Music and phrase share their whole feature front end.
    assert saved["music + phrase"] >= 40.0
    # Disjoint accel apps share nothing: no harm, no gain.
    assert saved["steps + transitions + headbutts"] == 0.0


def test_adaptive_tuning(benchmark):
    """Self-tuning a deliberately loose condition recovers most of the
    energy a hand-tuned condition would have saved."""
    from tests.unit.test_adaptive import SpikeApp, spike_trace
    from repro.sim import AdaptiveSidewinder

    def compute():
        trace = spike_trace(duration=600.0, seed=5)
        static = Sidewinder().run(SpikeApp(), trace)
        config = AdaptiveSidewinder(epochs=5)
        adaptive = config.run(SpikeApp(), trace)
        return static, adaptive, config.last_reports

    static, adaptive, reports = run_once(benchmark, compute)
    lines = ["Extension: self-tuning wake-up condition (spike scenario)"]
    lines.append(
        f"  static condition:   {static.average_power_mw:6.1f} mW, "
        f"recall {static.recall:.0%}"
    )
    lines.append(
        f"  adaptive condition: {adaptive.average_power_mw:6.1f} mW, "
        f"recall {adaptive.recall:.0%}"
    )
    for report in reports:
        lines.append(
            f"  epoch {report.epoch}: threshold {report.threshold:5.2f} -> "
            f"{report.new_threshold:5.2f}, wakes {report.wake_events:3d}, "
            f"FP rate {report.false_positive_rate:.0%}"
        )
    save_artifact("ablation_adaptive", "\n".join(lines))
    assert adaptive.recall == 1.0
    assert adaptive.average_power_mw < static.average_power_mw
    assert reports[-1].false_positive_rate < reports[0].false_positive_rate


def test_fpga_hub(benchmark, audio_traces):
    """The future-work FPGA prototype: siren detection without the
    LM4F120 tax."""
    def compute():
        app = SirenDetectorApp()
        graph = validate_program(compile_pipeline(app.build_wakeup_pipeline()))
        placed = select_processor(graph, (MSP430, ICE40_CLASS, LM4F120))
        stock = [Sidewinder().run(SirenDetectorApp(), t) for t in audio_traces]
        fpga = [
            Sidewinder(catalog=(MSP430, ICE40_CLASS, LM4F120)).run(
                SirenDetectorApp(), t
            )
            for t in audio_traces
        ]
        return placed, stock, fpga

    placed, stock, fpga = run_once(benchmark, compute)
    mean = lambda rs: sum(r.average_power_mw for r in rs) / len(rs)
    save_artifact(
        "ablation_fpga",
        "Extension: FPGA sensor hub (siren detector, 3 audio traces)\n"
        f"  placement with FPGA in catalog: {placed.name}\n"
        f"  MCU-only Sidewinder:  {mean(stock):6.1f} mW (LM4F120)\n"
        f"  FPGA Sidewinder:      {mean(fpga):6.1f} mW ({placed.name})\n"
        f"  saving:               {mean(stock) - mean(fpga):6.1f} mW",
    )
    assert placed is ICE40_CLASS
    assert mean(fpga) < mean(stock) - 35.0  # most of the 41.9 mW tax
    assert all(r.recall == 1.0 for r in fpga)


def test_concurrent_applications(benchmark, robot_traces, audio_traces):
    """Multiple concurrent applications on one shared device versus one
    device each (Section 7 future work)."""
    from repro.sim import ConcurrentSidewinder

    def compute():
        rows = []
        for label, apps, trace in [
            (
                "3 accel apps, group-1 robot run",
                [StepsApp(), TransitionsApp(), HeadbuttApp()],
                robot_traces[0],
            ),
            (
                "3 audio apps, office trace",
                [SirenDetectorApp(), MusicJournalApp(), PhraseDetectionApp()],
                audio_traces[0],
            ),
        ]:
            outcome = ConcurrentSidewinder(merge=True).run(apps, trace)
            separate = sum(
                Sidewinder().run(type(app)(), trace).average_power_mw
                for app in apps
            )
            min_recall = min(r.recall for r in outcome.per_app)
            rows.append(
                (
                    label,
                    f"{outcome.device_power_mw:.1f}",
                    f"{separate:.1f}",
                    f"{outcome.shared_nodes}",
                    f"{min_recall:.0%}",
                )
            )
        return rows

    rows = run_once(benchmark, compute)
    save_artifact(
        "ablation_concurrent",
        render_table(
            ["scenario", "shared device (mW)", "separate devices (mW)",
             "merged nodes", "min recall"],
            rows,
            title="Extension: concurrent applications on one device",
        ),
    )
    for row in rows:
        assert float(row[1]) < float(row[2])  # sharing always wins
        assert row[4] == "100%"


def test_delivery_options(benchmark, audio_traces):
    """Section 3.8's data-access question: what each wake-up payload
    costs on the hub-to-phone link."""
    from repro.api.compile import compile_pipeline
    from repro.hub.delivery import (
        RAW_DELIVERY,
        TRIGGER_DELIVERY,
        DeliveryMode,
        DeliverySpec,
        delivery_latency_s,
        payload_bytes,
    )
    from repro.il.validate import validate_program

    def compute():
        graph = validate_program(
            compile_pipeline(MusicJournalApp().build_wakeup_pipeline())
        )
        # Node 2 is the amplitude-variance feature stream.
        feature_spec = DeliverySpec(DeliveryMode.NODE, node_id=2, buffer_s=4.0)
        rows = []
        for label, spec in [
            ("raw buffer (paper default)", RAW_DELIVERY),
            ("trigger item only", TRIGGER_DELIVERY),
            ("feature stream (amp variance)", feature_spec),
        ]:
            rows.append(
                (
                    label,
                    f"{payload_bytes(spec, graph):.0f}",
                    f"{delivery_latency_s(spec, graph, UART_DEBUG) * 1000:.1f}",
                )
            )
        return rows

    rows = run_once(benchmark, compute)
    save_artifact(
        "ablation_delivery",
        render_table(
            ["delivery option", "payload (bytes)", "UART latency (ms)"],
            rows,
            title="Extension: wake-up payload options (music condition)",
        ),
    )
    payloads = {row[0]: float(row[1]) for row in rows}
    assert payloads["trigger item only"] < 10
    assert payloads["raw buffer (paper default)"] > 1000 * payloads["trigger item only"]
    assert (
        payloads["feature stream (amp variance)"]
        < 0.01 * payloads["raw buffer (paper default)"]
    )


def test_link_bandwidth(benchmark, audio_traces, robot_traces):
    """Section 3.4's bus constraint, quantified for batching."""
    def compute():
        audio = audio_traces[0]
        robot = robot_traces[0]
        rows = []
        for label, app, trace, link in [
            ("accel batch, ideal link", HeadbuttApp(), robot, None),
            ("accel batch, debug UART", HeadbuttApp(), robot, UART_DEBUG),
            ("audio batch, ideal link", SirenDetectorApp(), audio, None),
            ("audio batch, debug UART", SirenDetectorApp(), audio, UART_DEBUG),
            ("audio batch, I2C fast", SirenDetectorApp(), audio, I2C_FAST_MODE),
        ]:
            result = Batching(10.0, link=link).run(app, trace)
            rows.append((label, f"{result.average_power_mw:.1f}"))
        return rows

    rows = run_once(benchmark, compute)
    save_artifact(
        "ablation_link",
        render_table(
            ["scenario", "power (mW)"],
            rows,
            title="Extension: hub-to-phone link bandwidth and batching",
        ),
    )
    values = dict(rows)
    assert float(values["accel batch, debug UART"]) == pytest.approx(
        float(values["accel batch, ideal link"]), rel=0.05
    )
    assert (
        float(values["audio batch, debug UART"])
        > 1.3 * float(values["audio batch, ideal link"])
    )
    assert (
        float(values["audio batch, I2C fast"])
        < float(values["audio batch, debug UART"])
    )
