"""Figure 6: duty-cycling recall versus sleep interval at 90 % idle.

Regenerates the recall curves for steps / transitions / headbutts on
the group-1 (90 % idle) robot runs and checks the paper's reading:
recall decays with the sleep interval, and at a 10 s interval the brief
events (transitions, headbutts) drop below ~30 % while step detection,
whose walking bouts are long, holds out much longer.
"""

from benchmarks.conftest import run_once, save_artifact
from repro.eval.figures import FIGURE6_INTERVALS, figure6_series
from repro.eval.report import render_figure6


def test_figure6(benchmark, robot_traces):
    group1 = [t for t in robot_traces if t.metadata.get("group") == 1]
    series, _ = run_once(benchmark, lambda: figure6_series(traces=group1))
    save_artifact("figure6", render_figure6(series))

    for app, curve in series.items():
        # Overall decay: the longest interval recalls (weakly) less
        # than the shortest; individual steps may wobble (few events
        # per run make the estimate noisy, as in any sampled recall).
        assert curve[30.0] <= curve[2.0] + 1e-9, app
        # Recall is a probability.
        for value in curve.values():
            assert 0.0 <= value <= 1.0

    # Brief events collapse quickly (paper: below 30% at 10 s).
    assert series["transitions"][10.0] < 0.45
    assert series["headbutts"][10.0] < 0.45
    assert series["transitions"][30.0] < 0.35
    assert series["headbutts"][30.0] < 0.35

    # Long walking bouts keep step recall high at short intervals.
    assert series["steps"][2.0] >= 0.95
    assert series["steps"][5.0] >= 0.9
    # And steps always dominates the brief-event curves.
    for interval in FIGURE6_INTERVALS:
        assert series["steps"][interval] >= series["transitions"][interval]
        assert series["steps"][interval] >= series["headbutts"][interval]
