"""Timeliness: the latency cost behind Section 5.4's batching argument.

"Batching achieves perfect recall, but requires long batching intervals
to achieve large energy savings.  Therefore, this approach is not
appropriate for applications with timeliness constraints. ... the user
of a gesture recognition application would not be satisfied if the
application detects the performed gesture after a delay of more than a
couple of seconds."

This bench turns that prose into numbers: mean detection-report latency
versus average power for Sidewinder and for Batching across sleep
intervals, on the transition application (brief, frequent events —
the gesture-like case).  The paper's point falls out directly: by the
time batching's power approaches Sidewinder's, its latency has blown
far past "a couple of seconds", while Sidewinder reports immediately.
"""

from benchmarks.conftest import run_once, save_artifact
from repro.apps import TransitionsApp
from repro.eval.report import render_table
from repro.sim import Batching, Sidewinder

INTERVALS = (5.0, 10.0, 20.0, 30.0)


def test_latency_power_tradeoff(benchmark, robot_traces):
    group2 = [t for t in robot_traces if t.metadata.get("group") == 2]

    def compute():
        app = TransitionsApp()
        rows = []
        sw_power, sw_latency = [], []
        for trace in group2:
            events = app.events_of_interest(trace)
            result = Sidewinder().run(app, trace)
            sw_power.append(result.average_power_mw)
            sw_latency.append(result.mean_latency_s(events, app.match_tolerance_s))
        rows.append(
            ("Sidewinder",
             f"{sum(sw_power) / len(sw_power):.1f}",
             f"{sum(sw_latency) / len(sw_latency):.2f}",
             "1.00")
        )
        for interval in INTERVALS:
            powers, latencies, recalls = [], [], []
            for trace in group2:
                events = app.events_of_interest(trace)
                result = Batching(interval).run(app, trace)
                powers.append(result.average_power_mw)
                latencies.append(
                    result.mean_latency_s(events, app.match_tolerance_s)
                )
                recalls.append(result.recall)
            rows.append(
                (f"Batching {interval:g}s",
                 f"{sum(powers) / len(powers):.1f}",
                 f"{sum(latencies) / len(latencies):.2f}",
                 f"{min(recalls):.2f}")
            )
        return rows

    rows = run_once(benchmark, compute)
    save_artifact(
        "timeliness",
        render_table(
            ["configuration", "power (mW)", "mean latency (s)", "min recall"],
            rows,
            title="Timeliness vs power (transitions app, group-2 robot runs)",
        ),
    )
    values = {row[0]: (float(row[1]), float(row[2])) for row in rows}

    # Sidewinder: immediate reports.
    assert values["Sidewinder"][1] < 1.0

    # Batching latency grows with the interval...
    latencies = [values[f"Batching {i:g}s"][1] for i in INTERVALS]
    assert all(a < b for a, b in zip(latencies, latencies[1:]))
    # ...and already exceeds "a couple of seconds" well before its
    # power reaches Sidewinder's.
    for interval in INTERVALS:
        power, latency = values[f"Batching {interval:g}s"]
        if power <= 1.5 * values["Sidewinder"][0]:
            assert latency > 2.0, interval
