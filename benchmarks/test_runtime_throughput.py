"""Interpreter throughput: how fast the simulated hub chews sensor data.

Not a paper experiment, but a practical property of the reproduction:
trace-driven studies are only usable if the interpreter runs far faster
than real time.  This bench measures samples/second through two
representative conditions and asserts a comfortable real-time margin.
"""

from benchmarks.conftest import run_once, save_artifact
from repro.api.compile import compile_pipeline
from repro.apps import SirenDetectorApp, StepsApp
from repro.il.validate import validate_program
from repro.sim.simulator import run_wakeup_condition
from repro.traces.audio import AudioEnvironment, AudioTraceConfig, generate_audio_trace
from repro.traces.robot import RobotRunConfig, generate_robot_run


def test_accel_condition_throughput(benchmark):
    trace = generate_robot_run(RobotRunConfig(group=2, duration_s=600.0, seed=1))
    graph = validate_program(
        compile_pipeline(StepsApp().build_wakeup_pipeline())
    )

    def run():
        return run_wakeup_condition(graph, trace)

    benchmark(run)
    seconds = benchmark.stats["mean"]
    realtime_factor = trace.duration / seconds
    save_artifact(
        "throughput_accel",
        f"Interpreter throughput, steps condition (50 Hz accel):\n"
        f"  {trace.duration:g}s of data in {seconds * 1000:.1f} ms "
        f"({realtime_factor:,.0f}x real time)",
    )
    assert realtime_factor > 100


def test_audio_condition_throughput(benchmark):
    trace = generate_audio_trace(
        AudioTraceConfig(AudioEnvironment.OFFICE, duration_s=120.0, seed=1)
    )
    graph = validate_program(
        compile_pipeline(SirenDetectorApp().build_wakeup_pipeline())
    )

    def run():
        return run_wakeup_condition(graph, trace)

    benchmark(run)
    seconds = benchmark.stats["mean"]
    realtime_factor = trace.duration / seconds
    save_artifact(
        "throughput_audio",
        f"Interpreter throughput, siren condition (8 kHz audio, "
        f"windowed FFTs):\n"
        f"  {trace.duration:g}s of data in {seconds * 1000:.1f} ms "
        f"({realtime_factor:,.0f}x real time)",
    )
    assert realtime_factor > 20
