"""Figure 7: the step detector on human traces.

Regenerates the power-relative-to-Oracle bars (AA, DC-10, Ba-10, PA,
Sw) for the three human subjects and checks Section 5.5's findings:
Sidewinder achieves at least ~91 % of the available savings on every
trace, while the generic Predefined Activity trigger wastes energy on
the humans' non-event motion (vehicle vibration, fidgeting, reaching).
"""

from benchmarks.conftest import run_once, save_artifact
from repro.eval.figures import figure7_series
from repro.eval.report import render_figure7


def test_figure7(benchmark, human_traces):
    series, matrix = run_once(benchmark, lambda: figure7_series(traces=human_traces))
    save_artifact("figure7", render_figure7(series))

    for trace in human_traces:
        scenario = trace.metadata["scenario"]
        bars = series[scenario]
        # Sidewinder closest to Oracle; Always Awake the ceiling.
        assert bars["Sw"] == min(bars.values()), scenario
        assert bars["AA"] == max(bars.values()), scenario

        # Section 5.5: Sw achieves at least 91% of available savings.
        aa = matrix.mean_power("always_awake", "steps", [trace.name])
        oracle = matrix.mean_power("oracle", "steps", [trace.name])
        sw = matrix.mean_power("sidewinder", "steps", [trace.name])
        fraction = (aa - sw) / (aa - oracle)
        assert fraction >= 0.85, (scenario, fraction)

        # The generic wake-up condition performs poorly on humans.
        assert bars["PA"] > 1.2 * bars["Sw"], scenario

    # All approaches except duty cycling keep 100% recall (the paper
    # measures DC-10 at 82% on human traces).
    for result in matrix.results:
        if result.config_name == "duty_cycling_10s":
            assert result.recall >= 0.5
        else:
            assert result.recall == 1.0, result.config_name


def test_figure7_confounder_sensitivity(benchmark, human_traces):
    """PA's penalty tracks the amount of confounder motion: the commute
    (constant vehicle vibration) wastes more than the office."""
    def build():
        from repro.eval.figures import figure7_series
        return figure7_series(traces=human_traces)[0]

    series = run_once(benchmark, build)
    assert series["commute"]["PA"] > series["office"]["Sw"]
