"""Table 2: average power for the audio applications.

Regenerates the Oracle / Predefined Activity / Sidewinder rows over the
three audio traces and checks the paper's qualitative structure:

* Oracle is cheapest everywhere;
* Sidewinder's siren detector costs *more* than PA (the LM4F120 tax —
  the paper measured PA 18 % below Sw for sirens);
* PA costs clearly more than Sidewinder for music and phrase detection
  (paper: +45 % and +60 %);
* every mechanism keeps 100 % recall (the paper calibrates for this).
"""

import pytest

from benchmarks.conftest import run_once, save_artifact
from repro.eval.report import render_table2
from repro.eval.tables import PAPER_TABLE2, build_table2


@pytest.fixture(scope="module")
def table2(audio_traces):
    return build_table2(traces=audio_traces)


def test_table2(benchmark, audio_traces):
    table, matrix = run_once(benchmark, lambda: build_table2(traces=audio_traces))
    save_artifact("table2", render_table2(table, paper=PAPER_TABLE2))
    from benchmarks.conftest import RESULTS_DIR
    from repro.eval.export import write_results_csv, write_series_json
    write_results_csv(matrix.results, RESULTS_DIR / "table2_raw.csv")
    write_series_json(table, RESULTS_DIR / "table2.json",
                      meta={"paper": PAPER_TABLE2, "unit": "mW"})

    apps = ("sirens", "music_journal", "phrase_detection")

    # Oracle floors every column.
    for app in apps:
        assert table["oracle"][app] < table["predefined_activity"][app]
        assert table["oracle"][app] < table["sidewinder"][app]

    # Siren detection: the LM4F120 makes Sidewinder the pricier option.
    assert table["sidewinder"]["sirens"] > table["predefined_activity"]["sirens"]

    # Music and phrase: the generic sound trigger over-wakes.
    assert (
        table["predefined_activity"]["music_journal"]
        > 1.2 * table["sidewinder"]["music_journal"]
    )
    assert (
        table["predefined_activity"]["phrase_detection"]
        > 1.2 * table["sidewinder"]["phrase_detection"]
    )

    # All three mechanisms retain perfect recall on every trace.
    for result in matrix.results:
        assert result.recall == 1.0, (result.config_name, result.app_name)

    # Shape versus the paper's absolute numbers: same order of
    # magnitude (the traces are synthetic, not the authors').
    for config, row in PAPER_TABLE2.items():
        for app, paper_mw in row.items():
            assert table[config][app] < 4 * paper_mw, (config, app)
            assert table[config][app] > paper_mw / 4, (config, app)


def test_table2_pa_power_is_app_independent(benchmark, table2):
    table, _ = table2
    row = run_once(benchmark, lambda: table["predefined_activity"])
    values = list(row.values())
    # One generic trigger: identical wake pattern for all three apps
    # (the paper's 51.9 mW appears three times).
    assert max(values) - min(values) < 1e-6
