"""Ablation: MCU sizing (paper Section 3.8, "Sizing").

The paper raises MCU sizing as an open vendor question: the MSP430 is
an order of magnitude cheaper but cannot run audio-rate FFTs.  This
bench quantifies both sides:

* feasibility/placement of every application's condition per MCU;
* the energy cost of shipping only the big MCU (everything pays the
  LM4F120 tax) versus only the small one (the siren detector simply
  cannot be offloaded and must fall back to batching on the phone).
"""

import pytest

from benchmarks.conftest import run_once, save_artifact
from repro.api.compile import compile_pipeline
from repro.apps import all_applications
from repro.errors import FeasibilityError
from repro.eval.report import render_table
from repro.hub.feasibility import analyze, select_mcu
from repro.hub.mcu import LM4F120, MSP430
from repro.il.validate import validate_program
from repro.sim import Batching, Sidewinder
from repro.traces.library import robot_corpus


def test_mcu_placement_table(benchmark):
    def compute():
        rows = []
        for app in all_applications():
            graph = validate_program(compile_pipeline(app.build_wakeup_pipeline()))
            small = analyze(graph, MSP430)
            big = analyze(graph, LM4F120)
            chosen = select_mcu(graph)
            rows.append(
                (
                    app.name,
                    f"{small.utilization:.1%}",
                    "yes" if small.feasible else "NO",
                    f"{big.utilization:.1%}",
                    chosen.name,
                )
            )
        return rows

    rows = run_once(benchmark, compute)
    save_artifact(
        "ablation_mcu_placement",
        render_table(
            ["app", "MSP430 load", "MSP430 ok", "LM4F120 load", "placed on"],
            rows,
            title="Ablation: wake-up condition load and MCU placement",
        ),
    )
    placement = {row[0]: row[4] for row in rows}
    assert placement["sirens"] == "TI LM4F120"
    assert all(
        mcu == "TI MSP430" for app, mcu in placement.items() if app != "sirens"
    )


def test_big_mcu_only_tax(benchmark, robot_traces):
    """Shipping only the LM4F120: every app pays ~46 mW extra hub power."""
    trace = robot_traces[0]
    from repro.apps import HeadbuttApp

    def compute():
        both = Sidewinder().run(HeadbuttApp(), trace).average_power_mw
        big_only = Sidewinder(catalog=(LM4F120,)).run(
            HeadbuttApp(), trace
        ).average_power_mw
        return both, big_only

    both, big_only = run_once(benchmark, compute)
    tax = LM4F120.awake_power_mw - MSP430.awake_power_mw
    save_artifact(
        "ablation_mcu_big_only",
        "Ablation: LM4F120-only hub (headbutts, one group-1 run)\n"
        f"  MSP430+LM4F120 catalog: {both:6.1f} mW\n"
        f"  LM4F120 only:           {big_only:6.1f} mW\n"
        f"  expected MCU tax:       {tax:6.1f} mW",
    )
    assert big_only == pytest.approx(both + tax, abs=0.5)


def test_small_mcu_only_strands_sirens(benchmark, audio_traces):
    """Shipping only the MSP430: the siren condition cannot be placed,
    and the best fallback (batching) costs far more than Sidewinder."""
    from repro.apps import SirenDetectorApp
    trace = audio_traces[0]

    def compute():
        app = SirenDetectorApp()
        with pytest.raises(FeasibilityError):
            Sidewinder(catalog=(MSP430,)).run(app, trace)
        fallback = Batching(10.0).run(app, trace).average_power_mw
        proper = Sidewinder().run(app, trace).average_power_mw
        return fallback, proper

    fallback, proper = run_once(benchmark, compute)
    save_artifact(
        "ablation_mcu_small_only",
        "Ablation: MSP430-only hub (sirens, office trace)\n"
        "  Sidewinder: infeasible (FFT load exceeds the MSP430 budget)\n"
        f"  batching fallback: {fallback:6.1f} mW\n"
        f"  two-MCU Sidewinder: {proper:6.1f} mW",
    )
    assert fallback > proper
