"""Section 5 headline numbers.

Recomputes the scalar claims the paper states in prose and prints a
paper-vs-measured comparison:

* §5.1 — the savings potential (Always Awake vs Oracle) spans a wide
  range across scenarios: "potential to reduce power consumption by
  17.7% to 94.9%".
* §5.2 — Sidewinder achieves 92.7-95.7% of the possible savings on the
  accelerometer apps and 85-98% on the audio apps.
* §5.3 — PA pays multiples for rare events (4.7x headbutts, 6.1x
  transitions), stays close for common ones.
* §5.4 — duty cycling / batching consume "2.4 to 7.5 times more power
  than Sidewinder" in most cases, and 2 s duty cycling costs more than
  Always Awake (339 vs 323 mW).
"""

from benchmarks.conftest import run_once, save_artifact
from repro.eval.experiments import group_trace_names
from repro.eval.tables import build_table2

APPS = ("steps", "transitions", "headbutts")


def test_section_5_1_savings_potential(benchmark, figure5, robot_traces):
    _, matrix = figure5
    groups = group_trace_names(robot_traces)

    def compute():
        potentials = {}
        for app in APPS:
            for group, names in groups.items():
                aa = matrix.mean_power("always_awake", app, names)
                oracle = matrix.mean_power("oracle", app, names)
                potentials[(app, group)] = (aa - oracle) / aa
        return potentials

    potentials = run_once(benchmark, compute)
    lines = ["Section 5.1: savings potential (AA - Oracle)/AA  [paper: 17.7%-94.9%]"]
    for (app, group), value in sorted(potentials.items()):
        lines.append(f"  {app:<12s} group {group}: {value:6.1%}")
    lines.append(
        f"  measured range: {min(potentials.values()):.1%} - "
        f"{max(potentials.values()):.1%}"
    )
    save_artifact("headline_5_1", "\n".join(lines))

    # Wide spread: busy scenarios save little, idle ones save a lot.
    assert min(potentials.values()) < 0.45
    assert max(potentials.values()) > 0.85


def test_section_5_2_sidewinder_savings_fraction(benchmark, figure5, audio_traces):
    _, matrix = figure5

    def compute():
        fractions = {app: matrix.savings_fraction("sidewinder", app) for app in APPS}
        table, audio_matrix = build_table2(traces=audio_traces)
        for app in ("sirens", "music_journal", "phrase_detection"):
            aa = 323.0
            oracle = table["oracle"][app]
            sw = table["sidewinder"][app]
            fractions[app] = (aa - sw) / (aa - oracle)
        return fractions

    fractions = run_once(benchmark, compute)
    lines = [
        "Section 5.2: fraction of possible savings achieved by Sidewinder",
        "  [paper: 92.7%-95.7% accel, 85%-98% audio]",
    ]
    for app, value in fractions.items():
        lines.append(f"  {app:<18s} {value:6.1%}")
    save_artifact("headline_5_2", "\n".join(lines))

    for app in APPS:
        assert fractions[app] >= 0.90, app
    for app in ("sirens", "music_journal", "phrase_detection"):
        assert fractions[app] >= 0.80, app


def test_section_5_3_pa_penalty(benchmark, figure5, robot_traces):
    _, matrix = figure5

    def compute():
        return {
            app: matrix.mean_power("predefined_activity", app)
            / matrix.mean_power("sidewinder", app)
            for app in APPS
        }

    ratios = run_once(benchmark, compute)
    lines = [
        "Section 5.3: Predefined Activity power over Sidewinder",
        "  [paper: ~1x steps, 6.1x transitions, 4.7x headbutts]",
    ]
    for app, ratio in ratios.items():
        lines.append(f"  {app:<12s} {ratio:4.1f}x")
    save_artifact("headline_5_3", "\n".join(lines))

    assert ratios["headbutts"] > 3.0
    assert ratios["transitions"] > 1.3
    assert ratios["headbutts"] > ratios["steps"]
    assert ratios["transitions"] > ratios["steps"] * 0.9


def test_section_5_4_duty_cycling_batching(benchmark, figure5):
    _, matrix = figure5

    def compute():
        rows = {}
        for app in APPS:
            sw = matrix.mean_power("sidewinder", app)
            rows[app] = {
                "dc2_mw": matrix.mean_power("duty_cycling_2s", app),
                "dc10_over_sw": matrix.mean_power("duty_cycling_10s", app) / sw,
                "ba10_over_sw": matrix.mean_power("batching_10s", app) / sw,
            }
        return rows

    rows = run_once(benchmark, compute)
    lines = [
        "Section 5.4: duty cycling / batching versus Sidewinder",
        "  [paper: DC-2 at 339 mW > AA 323 mW; DC/Ba 2.4-7.5x Sidewinder]",
    ]
    for app, row in rows.items():
        lines.append(
            f"  {app:<12s} DC-2 {row['dc2_mw']:6.1f} mW | "
            f"DC-10/Sw {row['dc10_over_sw']:4.1f}x | "
            f"Ba-10/Sw {row['ba10_over_sw']:4.1f}x"
        )
    save_artifact("headline_5_4", "\n".join(lines))

    for app, row in rows.items():
        # Short duty cycling costs more than Always Awake.
        assert row["dc2_mw"] > 323.0, app
        # The 10 s variants cost a multiple of Sidewinder; the factor
        # is largest for rare events (headbutts) and smallest for the
        # walk-heavy steps app, where even Sidewinder must stay awake
        # through the bouts.
        assert row["dc10_over_sw"] > 1.5, app
        assert row["ba10_over_sw"] > 1.5, app
    assert rows["headbutts"]["dc10_over_sw"] > 2.5
    mean_ratio = sum(r["dc10_over_sw"] for r in rows.values()) / len(rows)
    assert mean_ratio > 2.0
