"""Figure 5: power relative to Oracle on the synthetic robot traces.

Regenerates the full bar chart — Always Awake, Duty Cycling at
2/5/10/20/30 s, Batching at 10 s, Predefined Activity and Sidewinder,
each relative to Oracle, for the three applications across the three
activity groups — and checks the orderings the paper reads off it.
"""

import pytest

from benchmarks.conftest import run_once, save_artifact
from repro.eval.figures import figure5_series
from repro.eval.report import render_figure5

APPS = ("steps", "transitions", "headbutts")


def test_figure5(benchmark, robot_traces):
    series, matrix = run_once(benchmark, lambda: figure5_series(traces=robot_traces))
    save_artifact("figure5", render_figure5(series))
    from benchmarks.conftest import RESULTS_DIR
    from repro.eval.export import write_results_csv, write_series_json
    write_results_csv(matrix.results, RESULTS_DIR / "figure5_raw.csv")
    write_series_json(series, RESULTS_DIR / "figure5.json",
                      meta={"unit": "power relative to Oracle"})

    for group, per_app in series.items():
        for app, bars in per_app.items():
            # Sidewinder is the closest to Oracle of every mechanism
            # that actually keeps 100% recall (long duty-cycling
            # intervals can undercut it, but only by missing most
            # events — the calibration caveat of Figure 5's caption).
            full_recall = {
                k: v for k, v in bars.items() if not k.startswith("DC-")
            }
            assert bars["Sw"] == min(full_recall.values()), (group, app)
            # Always Awake is (near) the ceiling; only the degenerate
            # 2 s duty cycle can exceed it.
            ceiling = {k: v for k, v in bars.items() if k not in ("DC-2",)}
            assert bars["AA"] == max(ceiling.values()), (group, app)
            # The paper's Section 5.4 anomaly: 2 s duty cycling costs
            # more than staying awake.
            assert bars["DC-2"] > bars["AA"], (group, app)
            # Longer sleep intervals save more power.
            assert bars["DC-2"] > bars["DC-10"] > bars["DC-30"], (group, app)

    # PA is competitive for the common event (steps) but pays multiples
    # for the rare ones (paper: 4.7x for headbutts, 6.1x transitions).
    for group in series:
        pa_over_sw_steps = series[group]["steps"]["PA"] / series[group]["steps"]["Sw"]
        pa_over_sw_hb = (
            series[group]["headbutts"]["PA"] / series[group]["headbutts"]["Sw"]
        )
        assert pa_over_sw_hb > 1.5 * pa_over_sw_steps, group
        assert pa_over_sw_hb > 3.0, group

    # Higher activity compresses every ratio toward 1 (less to save).
    for app in APPS:
        assert series[1][app]["AA"] > series[3][app]["AA"], app


def test_figure5_recall_calibration(benchmark, figure5):
    """All approaches except duty cycling are calibrated to 100% recall
    (Figure 5's caption premise)."""
    _, matrix = run_once(benchmark, lambda: figure5)
    for result in matrix.results:
        if result.config_name.startswith("duty_cycling"):
            continue
        assert result.recall == 1.0, (
            result.config_name, result.app_name, result.trace_name,
        )
