"""The hub execution tiers, timed per wake-up condition.

For every application's wake-up condition over its native corpus
(accelerometer apps on the robot traces, audio apps on the audio
traces), this runs the same trace through all three hub execution
tiers —

* **rounds** — the interpreter fed 4-second rounds, the way a real hub
  sees data arrive;
* **fused** — the interpreter fed 64-round coalesced blocks;
* **compiled** — the whole-trace array program
  (:func:`repro.hub.compile.compile_graph`), no rounds at all —

asserting the wake events are bit-identical tier by tier and recording
per-app timings in ``results/BENCH_compile.json``.

The timings also feed a :class:`repro.hub.costmodel.CostModel`, the
same way the engine feeds it from real runs, and the model's resulting
``selected_tier`` is recorded per app.  The selection contract: no
app's auto-selected tier may be slower than the round-by-round
interpreter — the measured model must never regress an app the way the
old hardwired ``compiled > fused > rounds`` ranking regressed the
bandwidth-bound audio suite (fused audio at 0.27x rounds).

The headline floor applies to the accelerometer suite: at 50 Hz the
per-round interpreter overhead dominates, which is exactly what the
compiled tier removes, so it must beat the fused tier it replaced as
the engine default by ``MIN_COMPILED_SPEEDUP``.  The 8 kHz audio
pipelines are the other regime — frame batches are large enough that
numpy FFT work and memory bandwidth dominate and the three tiers
converge — so their timings are recorded for the trajectory but carry
no floor.

Set ``REPRO_QUICK=1`` for a reduced smoke version (used by CI).
"""

import json
import os
import time

from benchmarks.conftest import RESULTS_DIR, run_once, save_artifact
from repro.apps import (
    HeadbuttApp,
    MusicJournalApp,
    PhraseDetectionApp,
    SirenDetectorApp,
    StepsApp,
    TransitionsApp,
)
from repro.eval.report import render_table
from repro.hub.compile import compile_eligibility, compile_graph
from repro.hub.costmodel import CostModel
from repro.hub.runtime import HubRuntime, split_into_rounds
from repro.sim.engine import RunContext

QUICK = os.environ.get("REPRO_QUICK") == "1"

#: On the overhead-bound accelerometer suite, the compiled tier must at
#: least double the fused tier's throughput.
MIN_COMPILED_SPEEDUP = 2.0


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


#: JSON row key per cost-model tier name.
TIER_KEYS = {"rounds": "round_s", "fused": "fused_s", "compiled": "compiled_s"}


def _time_app(ctx, app, traces, model):
    """Run one app's condition through all three tiers over ``traces``.

    Feeds every measurement into ``model`` exactly as the engine does
    from real runs, and records which tier the model settles on.
    """
    graph = ctx.compile(app.build_wakeup_pipeline())
    assert compile_eligibility(graph) is None, app.name
    plan = compile_graph(graph)
    fingerprint = ctx.fingerprint(graph.program)
    row = {
        "app": app.name, "traces": len(traces), "wake_events": 0,
        "round_s": 0.0, "fused_s": 0.0, "compiled_s": 0.0,
    }
    items = 0
    for trace in traces:
        arrays = ctx.channel_arrays(trace)
        channels = {
            name: triple
            for name, triple in arrays.items()
            if name in graph.channels
        }
        items += sum(len(triple[0]) for triple in channels.values())
        graph.reset()
        by_rounds, dt = _timed(
            lambda: HubRuntime(graph).run(split_into_rounds(channels, 4.0))
        )
        row["round_s"] += dt
        graph.reset()
        fused, dt = _timed(lambda: HubRuntime(graph).run_fused(channels, 4.0))
        row["fused_s"] += dt
        plan.execute(channels)  # touch the big buffers once (page faults)
        compiled, dt = _timed(lambda: plan.execute(channels))
        row["compiled_s"] += dt
        # The whole point: three tiers, one answer, bit for bit.
        assert compiled == fused == by_rounds
        row["wake_events"] += len(compiled)
    for tier, key in TIER_KEYS.items():
        model.observe(fingerprint, tier, row[key], items)
    selected = model.choose(fingerprint, list(TIER_KEYS))
    row["selected_tier"] = selected
    row["selected_s"] = round(row[TIER_KEYS[selected]], 4)
    for key in ("round_s", "fused_s", "compiled_s"):
        row[key] = round(row[key], 4)
    return row


def _suite_speedups(rows):
    round_s = sum(r["round_s"] for r in rows)
    fused_s = sum(r["fused_s"] for r in rows)
    compiled_s = sum(r["compiled_s"] for r in rows)
    return {
        "hub_round_s": round(round_s, 4),
        "hub_fused_s": round(fused_s, 4),
        "hub_compiled_s": round(compiled_s, 4),
        "fused_speedup": round(round_s / fused_s, 2) if fused_s else None,
        "compiled_speedup": (
            round(fused_s / compiled_s, 2) if compiled_s else None
        ),
    }


def test_compiled_hub_tiers(benchmark, robot_traces, audio_traces):
    ctx = RunContext()
    accel_traces = robot_traces[:2] if QUICK else robot_traces[:6]
    audio_subset = audio_traces[:1] if QUICK else audio_traces
    accel_apps = [StepsApp(), TransitionsApp(), HeadbuttApp()]
    audio_apps = [MusicJournalApp(), PhraseDetectionApp(), SirenDetectorApp()]

    def run_suites():
        model = CostModel()
        accel = [_time_app(ctx, app, accel_traces, model) for app in accel_apps]
        audio = [_time_app(ctx, app, audio_subset, model) for app in audio_apps]
        return accel, audio

    accel_rows, audio_rows = run_once(benchmark, run_suites)

    accel = _suite_speedups(accel_rows)
    audio = _suite_speedups(audio_rows)
    payload = {
        "quick": QUICK,
        "apps": accel_rows + audio_rows,
        "accel": accel,
        "audio": audio,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_compile.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    save_artifact(
        "compiled_hub",
        render_table(
            ["app", "rounds (s)", "fused (s)", "compiled (s)", "vs fused",
             "selected"],
            [
                (
                    r["app"],
                    f"{r['round_s']:.3f}",
                    f"{r['fused_s']:.3f}",
                    f"{r['compiled_s']:.3f}",
                    (
                        f"{r['fused_s'] / r['compiled_s']:.1f}x"
                        if r["compiled_s"] > 0 else "inf"
                    ),
                    r["selected_tier"],
                )
                for r in accel_rows + audio_rows
            ],
            title=(
                f"Hub tiers: compiled {accel['compiled_speedup']}x vs fused "
                f"on the accel suite ({audio['compiled_speedup']}x on the "
                f"bandwidth-bound audio suite)"
            ),
        ),
    )

    # The cost model may never pick a tier slower than the paper's
    # round-by-round baseline (small epsilon absorbs timing jitter on
    # sub-threshold plans, where the model keeps the static preference
    # because the choice cannot matter at that scale).
    for row in accel_rows + audio_rows:
        assert row["selected_s"] <= row["round_s"] * 1.05 + 0.005, row

    if not QUICK:
        assert accel["compiled_speedup"] >= MIN_COMPILED_SPEEDUP, payload
