"""Robustness under sensor faults, and battery-life projection.

Neither appears as a numbered figure in the paper, but both answer
questions its discussion raises: Section 3.8 asks what a hub vendor
must guarantee (fault behaviour is part of that), and the whole point
of the 96 % energy saving is what it does to battery life.
"""

from benchmarks.conftest import run_once, save_artifact
from repro.apps import HeadbuttApp, StepsApp
from repro.eval.report import render_table
from repro.power.battery import NEXUS4_BATTERY, lifetime_gain
from repro.sim import AlwaysAwake, DutyCycling, Oracle, PredefinedActivity, Sidewinder
from repro.traces.perturb import random_fault_spans, stuck_sensor

FAULT_FRACTIONS = (0.0, 0.05, 0.15, 0.30)


def test_fault_injection_sweep(benchmark, robot_traces):
    """Recall under an increasingly faulty y-axis sensor (stuck-at
    faults placed blindly, so they hit events in proportion)."""
    group2 = [t for t in robot_traces if t.metadata.get("group") == 2][:3]

    def compute():
        app = HeadbuttApp()
        rows = []
        for fraction in FAULT_FRACTIONS:
            recalls, powers = [], []
            for k, trace in enumerate(group2):
                if fraction == 0.0:
                    faulty = trace
                else:
                    spans = random_fault_spans(
                        trace, trace.duration * fraction, 5.0, seed=100 + k
                    )
                    faulty = stuck_sensor(trace, "ACC_Y", spans)
                result = Sidewinder().run(app, faulty)
                recalls.append(result.recall)
                powers.append(result.average_power_mw)
            rows.append(
                (
                    f"{fraction:.0%}",
                    f"{sum(recalls) / len(recalls):.2f}",
                    f"{sum(powers) / len(powers):.1f}",
                )
            )
        return rows

    rows = run_once(benchmark, compute)
    save_artifact(
        "robustness_faults",
        render_table(
            ["sensor fault time", "mean recall", "mean power (mW)"],
            rows,
            title="Robustness: stuck y-axis sensor vs headbutt recall",
        ),
    )
    recalls = [float(row[1]) for row in rows]
    # Clean sensor: perfect recall; recall never *increases* with more
    # fault time, and heavy faulting visibly hurts.
    assert recalls[0] == 1.0
    assert all(a >= b - 1e-9 for a, b in zip(recalls, recalls[1:]))
    assert recalls[-1] < 1.0


def test_battery_life_projection(benchmark, robot_traces):
    """Continuous-sensing battery life per configuration (steps app,
    group-1 robot runs, Nexus 4 battery)."""
    group1 = [t for t in robot_traces if t.metadata.get("group") == 1][:4]

    def compute():
        app_rows = []
        for config in (AlwaysAwake(), DutyCycling(10.0), PredefinedActivity(),
                       Sidewinder(), Oracle()):
            powers = [
                config.run(StepsApp(), trace).average_power_mw
                for trace in group1
            ]
            mean_power = sum(powers) / len(powers)
            app_rows.append(
                (
                    config.name,
                    f"{mean_power:.1f}",
                    f"{NEXUS4_BATTERY.days_at(mean_power):.1f}",
                )
            )
        return app_rows

    rows = run_once(benchmark, compute)
    save_artifact(
        "battery_life",
        render_table(
            ["configuration", "power (mW)", "battery life (days)"],
            rows,
            title="Battery life: continuous step counting on a Nexus 4",
        ),
    )
    days = {row[0]: float(row[2]) for row in rows}
    # Always Awake: about a day.  Sidewinder: more than a week.
    assert days["always_awake"] < 1.5
    assert days["sidewinder"] > 7.0
    assert days["oracle"] >= days["sidewinder"]
    gain = lifetime_gain(
        float(rows[0][1]), float([r for r in rows if r[0] == "sidewinder"][0][1])
    )
    assert gain > 5.0
