"""Table 1: the Google Nexus 4 power profile.

The profile is measured data embedded as the simulator's power model;
this bench regenerates the table and pins the constants every other
experiment depends on.
"""

from benchmarks.conftest import run_once, save_artifact
from repro.eval.tables import build_table1
from repro.eval.report import render_table1
from repro.power.phone import NEXUS4


def test_table1(benchmark):
    rows = run_once(benchmark, build_table1)
    save_artifact("table1", render_table1(rows))

    values = {state: mw for state, mw, _ in rows}
    assert values["Awake, running sensor-driven application"] == 323.0
    assert values["Asleep"] == 9.7
    assert values["Asleep-to-Awake Transition"] == 384.0
    assert values["Awake-to-Asleep Transition"] == 341.0
    # The structural facts the paper's Section 5 arguments rest on:
    assert values["Asleep"] < values["Awake, running sensor-driven application"] / 30
    assert values["Asleep-to-Awake Transition"] > values[
        "Awake, running sensor-driven application"
    ]
    assert NEXUS4.transition_s == 1.0
