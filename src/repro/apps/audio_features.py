"""Shared audio feature extraction for the precise detectors.

The music-journal and phrase-detection applications both window the
audio and extract two features per window (Section 3.7.2):

* the variance of the amplitude over the entire window, and
* the variance of the zero-crossing rate across fixed sub-windows.

The siren detector extracts the dominant-frequency prominence ratio of
high-passed windows.  Constants here mirror the hub-side wake-up
conditions so the two stages agree on window geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.detectors import frame_signal, zero_crossing_rate

#: Main analysis window: 2048 samples = 256 ms at 8 kHz.
WINDOW = 2048
#: ZCR sub-window: 256 samples = 32 ms; 8 sub-windows per window.
SUBWINDOW = 256
#: Siren analysis frame and hop: 512 / 256 samples (64 / 32 ms).
SIREN_FRAME = 512
SIREN_HOP = 256
#: Siren detector's high-pass cutoff (paper: 750 Hz).
SIREN_HIGHPASS_HZ = 750.0
#: Siren pitch band (paper: 850-1800 Hz).
SIREN_BAND = (850.0, 1800.0)


@dataclass(frozen=True)
class AudioFeatures:
    """Per-window features of one audio stretch.

    Attributes:
        times: Window end times (seconds, absolute).
        amplitude_variance: Variance of the raw amplitude per window.
        zcr_variance: Variance of the sub-window ZCRs per window.
    """

    times: np.ndarray
    amplitude_variance: np.ndarray
    zcr_variance: np.ndarray

    def __len__(self) -> int:
        return len(self.times)


def window_features(
    samples: np.ndarray, start_time: float, rate: float
) -> AudioFeatures:
    """Extract the two-branch feature set from one contiguous stretch."""
    frames = frame_signal(samples, WINDOW, WINDOW)
    if frames.shape[0] == 0:
        empty = np.empty(0)
        return AudioFeatures(empty, empty, empty)
    amplitude_variance = np.var(frames, axis=1)
    n_sub = WINDOW // SUBWINDOW
    sub = frames.reshape(frames.shape[0] * n_sub, SUBWINDOW)
    zcr = zero_crossing_rate(sub).reshape(frames.shape[0], n_sub)
    zcr_variance = np.var(zcr, axis=1)
    times = start_time + (np.arange(frames.shape[0]) + 1) * WINDOW / rate
    return AudioFeatures(times, amplitude_variance, zcr_variance)


def siren_frame_features(
    samples: np.ndarray, start_time: float, rate: float
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Per-frame (times, prominence ratio, dominant frequency in band).

    Frames are Hamming-tapered, high-passed at
    :data:`SIREN_HIGHPASS_HZ`, and the dominant bin is searched within
    :data:`SIREN_BAND`; the ratio divides its magnitude by the mean
    magnitude of all non-DC bins.
    """
    frames = frame_signal(samples, SIREN_FRAME, SIREN_HOP)
    if frames.shape[0] == 0:
        empty = np.empty(0)
        return empty, empty, empty
    frames = frames * np.hamming(SIREN_FRAME)
    spectra = np.fft.rfft(frames, axis=1)
    freqs = np.fft.rfftfreq(SIREN_FRAME, d=1.0 / rate)
    spectra[:, freqs < SIREN_HIGHPASS_HZ] = 0.0
    magnitudes = np.abs(spectra)
    band = (freqs >= SIREN_BAND[0]) & (freqs <= SIREN_BAND[1])
    in_band = magnitudes[:, band]
    band_freqs = freqs[band]
    peak_idx = np.argmax(in_band, axis=1)
    peak_mag = in_band[np.arange(len(frames)), peak_idx]
    mean_mag = np.mean(magnitudes[:, 1:], axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(mean_mag > 0, peak_mag / mean_mag, 0.0)
    times = start_time + (np.arange(frames.shape[0]) * SIREN_HOP + SIREN_FRAME) / rate
    return times, ratio, band_freqs[peak_idx]
