"""Sit/stand transition detection (paper Section 3.7.1).

"The application monitors changes in acceleration due to gravity on the
y and z axes to determine the orientation of the device.  If the z-axis
acceleration is between 9 and 11 m/s^2, and the acceleration on the
y-axis is between -1 and 1 m/s^2, the device is ... standing ...  if the
z-axis acceleration is between 7.5 and 9.5 m/s^2, and ... y-axis ...
between 3.5 and 5.5 m/s^2, ... sitting.  The application detects
transitions by looking for posture changes."
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.api.branch import ProcessingBranch
from repro.api.pipeline import ProcessingPipeline
from repro.api.stubs import MovingAverage, RangeThreshold
from repro.apps.base import Detection, SensingApplication
from repro.apps.detectors import iter_window_arrays, moving_average
from repro.sensors.channels import ACC_Y
from repro.traces.base import Trace

#: Posture bands, m/s^2 (paper values): (z_low, z_high, y_low, y_high).
STANDING_BANDS = (9.0, 11.0, -1.0, 1.0)
SITTING_BANDS = (7.5, 9.5, 3.5, 5.5)

#: Gravity smoothing: 0.5 s at 50 Hz.
_SMOOTH_SAMPLES = 25

#: Mid-transition y band for the wake-up condition: between the standing
#: band's top (1.0) and the sitting band's bottom (3.5), the smoothed y
#: gravity component is only ever seen *during* a posture change.
_WAKEUP_Y_BAND = (1.4, 3.3)


class TransitionsApp(SensingApplication):
    """Detects posture transitions between sitting and standing."""

    name = "transitions"
    event_label = "transition"
    channels = ("ACC_Y", "ACC_Z")
    match_tolerance_s = 1.2
    min_event_context_s = 0.8

    def build_wakeup_pipeline(self) -> ProcessingPipeline:
        """Wake-up condition: smoothed y gravity passing the mid band.

        During a sit<->stand ramp the y component sweeps 0 <-> 4.5 m/s^2
        and necessarily crosses the [1.4, 3.3] band; neither steady
        posture, nor walking (y stays near its posture value), produces
        smoothed y values there.  A single-branch range threshold is
        thus a cheap, high-recall transition trigger.
        """
        pipeline = ProcessingPipeline()
        pipeline.add(
            ProcessingBranch(ACC_Y)
            .add(MovingAverage(10))
            .add(RangeThreshold(*_WAKEUP_Y_BAND))
        )
        return pipeline

    def detect(
        self, trace: Trace, windows: Sequence[Tuple[float, float]]
    ) -> List[Detection]:
        """Precise detector: posture state machine over smoothed gravity."""
        rate = trace.rate_hz["ACC_Y"]
        y_all = {t0: v for t0, v in iter_window_arrays(trace, "ACC_Y", windows)}
        z_all = {t0: v for t0, v in iter_window_arrays(trace, "ACC_Z", windows)}
        detections: List[Detection] = []
        for t0, y in y_all.items():
            z = z_all.get(t0)
            if z is None or len(z) != len(y):  # pragma: no cover - same windows
                continue
            sy = moving_average(y, _SMOOTH_SAMPLES)
            sz = moving_average(z, _SMOOTH_SAMPLES)
            posture = _classify_posture(sy, sz)
            detections.extend(
                self._changes_to_detections(posture, t0, rate)
            )
        return detections

    @staticmethod
    def _changes_to_detections(
        posture: np.ndarray, start_time: float, rate: float
    ) -> List[Detection]:
        """Turn the posture sequence into transition detections.

        A transition is a change from a *known* posture to the other
        known posture, possibly passing through unknown samples.
        """
        if len(posture) == 0:
            return []
        detections: List[Detection] = []
        last_known = int(posture[0])  # 0 unknown, 1 standing, 2 sitting
        for idx in np.flatnonzero(np.diff(posture, prepend=posture[:1])):
            current = posture[idx]
            if current == 0:
                continue
            if last_known and current != last_known:
                t = start_time + (idx + _SMOOTH_SAMPLES - 1) / rate
                direction = "sit" if current == 2 else "stand"
                detections.append(Detection(time=t, label=f"transition:{direction}"))
            last_known = current
        return detections


def _classify_posture(smoothed_y: np.ndarray, smoothed_z: np.ndarray) -> np.ndarray:
    """Per-sample posture: 0 unknown, 1 standing, 2 sitting."""
    z_lo, z_hi, y_lo, y_hi = STANDING_BANDS
    standing = (
        (smoothed_z >= z_lo) & (smoothed_z <= z_hi)
        & (smoothed_y >= y_lo) & (smoothed_y <= y_hi)
    )
    z_lo, z_hi, y_lo, y_hi = SITTING_BANDS
    sitting = (
        (smoothed_z >= z_lo) & (smoothed_z <= z_hi)
        & (smoothed_y >= y_lo) & (smoothed_y <= y_hi)
    )
    posture = np.zeros(len(smoothed_y), dtype=int)
    posture[standing] = 1
    posture[sitting & ~standing] = 2
    return posture
