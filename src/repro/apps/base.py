"""Application interface: wake-up condition + precise detector."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.api.pipeline import ProcessingPipeline
from repro.traces.base import GroundTruthEvent, Trace


@dataclass(frozen=True)
class Detection:
    """One event reported by an application's precise detector.

    Attributes:
        time: Detection time (seconds into the trace).  For interval
            detections this is the interval start.
        end: Interval end, or None for instantaneous detections.
        label: The detected event class.
        confidence: Detector confidence in ``(0, 1]``.
    """

    time: float
    end: Optional[float] = None
    label: str = ""
    confidence: float = 1.0

    @property
    def span(self) -> Tuple[float, float]:
        """Detection as a (start, end) interval."""
        return (self.time, self.end if self.end is not None else self.time)


class SensingApplication:
    """One continuous-sensing application.

    Subclasses define the class attributes and implement
    :meth:`build_wakeup_pipeline` and :meth:`detect`.

    Class attributes:
        name: Application name.
        event_label: Ground-truth label of the events of interest.
        channels: Sensor channels the application consumes.
        match_tolerance_s: Temporal slack when matching detections to
            ground truth (see :mod:`repro.eval.metrics`).
        min_event_context_s: Seconds of signal context the precise
            detector needs around an event to classify it; used by the
            duty-cycling recall model (a partially observed event cannot
            be classified).
    """

    name: str = ""
    event_label: str = ""
    channels: Tuple[str, ...] = ()
    match_tolerance_s: float = 1.0
    min_event_context_s: float = 0.5

    def build_wakeup_pipeline(self) -> ProcessingPipeline:
        """The application's Sidewinder wake-up condition.

        Built from platform algorithm stubs only — this is the code the
        developer writes against the Sidewinder API (Figure 2a).
        """
        raise NotImplementedError

    def detect(
        self, trace: Trace, windows: Sequence[Tuple[float, float]]
    ) -> List[Detection]:
        """Run the precise (main-processor) detector.

        Args:
            trace: The full trace (raw sensor arrays).
            windows: Spans of data the application actually has access
                to — the awake/sensing windows of the current sensing
                configuration, extended by any hub-buffered data.  The
                detector must not look outside these windows.

        Returns:
            Detections, time-ordered.
        """
        raise NotImplementedError

    def events_of_interest(self, trace: Trace) -> List[GroundTruthEvent]:
        """Ground-truth events this application should report.

        Default: every event whose label equals :attr:`event_label`.
        """
        return trace.events_with_label(self.event_label)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
