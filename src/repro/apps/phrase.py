"""Phrase detection (paper Section 3.7.2).

"Similar to Music Journal, except different parameters are used in the
wake-up condition and Google Speech API was used for speech-to-text
translation."

Speech's signature is the inverse of music's: the alternation between
voiced and unvoiced syllables swings the per-sub-window zero-crossing
rate, giving *high* ZCR variance; sound presence still shows as
amplitude variance.  The wake-up condition fires on any speech
(~5 % of the trace); the main processor then transcribes and matches the
phrase, which occurs in well under 1 % of the trace — the paper's worked
example of a deliberately conservative wake-up condition (Section 5.2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.api.branch import ProcessingBranch
from repro.api.pipeline import ProcessingPipeline
from repro.api.stubs import (
    BandIndicator,
    MinOf,
    MinThreshold,
    Statistic,
    Window,
    ZeroCrossingRate,
)
from repro.apps.audio_features import SUBWINDOW, WINDOW, window_features
from repro.apps.base import Detection, SensingApplication
from repro.apps.cloud import SimulatedSpeechAPI
from repro.apps.detectors import iter_window_arrays, merge_spans, spans_from_mask
from repro.sensors.channels import MIC
from repro.traces.base import Trace
from repro.traces.base import GroundTruthEvent

#: Speech thresholds (calibrated against the synthetic corpora, see
#: tests/unit/test_audio_thresholds.py): sound present plus strongly
#: varying sub-window ZCR.
SPEECH_AMP_VAR_MIN = 1.0e-3
SPEECH_ZCR_VAR_MIN = 2.5e-3

#: Minimum speech span worth transcribing.
_MIN_SPEECH_S = 0.6

#: Wake-up thresholds: conservative versions of the above.
_WAKEUP_AMP_VAR_MIN = 7.0e-4
_WAKEUP_ZCR_VAR_MIN = 1.5e-3


class PhraseDetectionApp(SensingApplication):
    """Detects a spoken trigger phrase ("OK Google Now" style)."""

    name = "phrase_detection"
    event_label = "speech"  # refined by events_of_interest
    channels = ("MIC",)
    match_tolerance_s = 2.0
    min_event_context_s = 1.0

    def __init__(self, service: Optional[SimulatedSpeechAPI] = None):
        self.service = service or SimulatedSpeechAPI()

    def events_of_interest(self, trace: Trace) -> List[GroundTruthEvent]:
        """Only the speech segments that actually contain the phrase."""
        return [
            e for e in trace.events_with_label("speech") if e.meta("phrase")
        ]

    def build_wakeup_pipeline(self) -> ProcessingPipeline:
        """Wake-up condition: two-branch speech trigger (Figure 3).

        Same topology as the music pipeline with the ZCR-variance
        indicator inverted: speech requires *high* ZCR variance.
        """
        pipeline = ProcessingPipeline()
        pipeline.add(
            ProcessingBranch(MIC)
            .add(Window(WINDOW))
            .add(Statistic("variance"))
            .add(BandIndicator(_WAKEUP_AMP_VAR_MIN, 1e9))
        )
        pipeline.add(
            ProcessingBranch(MIC)
            .add(Window(SUBWINDOW))
            .add(ZeroCrossingRate())
            .add(Window(WINDOW // SUBWINDOW))
            .add(Statistic("variance"))
            .add(BandIndicator(_WAKEUP_ZCR_VAR_MIN, 1e9))
        )
        pipeline.add(MinOf())
        pipeline.add(MinThreshold(1.0))
        return pipeline

    def detect(
        self, trace: Trace, windows: Sequence[Tuple[float, float]]
    ) -> List[Detection]:
        """Precise detector: speech spans, transcribed by the cloud.

        A detection is reported only when the (simulated) speech API
        confirms the phrase — the second-stage filtering that restores
        precision after the deliberately loose wake-up condition.
        """
        rate = trace.rate_hz["MIC"]
        window_s = WINDOW / rate
        spans: List[Tuple[float, float]] = []
        for start_time, samples in iter_window_arrays(trace, "MIC", windows):
            feats = window_features(samples, start_time, rate)
            qualifying = (
                (feats.amplitude_variance >= SPEECH_AMP_VAR_MIN)
                & (feats.zcr_variance >= SPEECH_ZCR_VAR_MIN)
            )
            spans.extend(spans_from_mask(qualifying, feats.times))
        merged = merge_spans(spans, min_gap=4 * window_s)
        detections: List[Detection] = []
        for start, end in merged:
            if end - start < _MIN_SPEECH_S:
                continue
            if self.service.contains_phrase(trace, start, end):
                detections.append(Detection(time=start, end=end, label="phrase"))
        return detections
