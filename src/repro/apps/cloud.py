"""Simulated cloud recognition services.

The paper's music-journal application identifies songs through the
Echoprint.me web service and the phrase detector uses the Google Speech
API (Section 3.7.2).  Neither service is available offline, and their
recognition accuracy is orthogonal to the paper's energy results — the
cloud call only matters because it happens *after* a wake-up, on the
main processor.

The simulated services therefore resolve queries against the trace's
ground truth: if the queried span overlaps a music event, Echoprint
returns that event's song id; if it overlaps a speech event flagged
``phrase=True``, the speech API reports the phrase.  A configurable
error rate models recognition failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.traces.base import Trace


def _overlapping_event(
    trace: Trace, label: str, start: float, end: float
):
    for event in trace.events_with_label(label):
        if event.end > start and event.start < end:
            return event
    return None


@dataclass
class SimulatedEchoprint:
    """Echoprint.me stand-in: audio span -> song id (or None).

    Attributes:
        failure_rate: Probability a genuinely playing song is not
            recognized (fingerprinting failures).  Defaults to 0 so the
            evaluation harness is deterministic; raise it to study
            recognition-failure sensitivity.
        seed: RNG seed for failure draws.
    """

    failure_rate: float = 0.0
    seed: int = 0
    queries: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def identify(self, trace: Trace, start: float, end: float) -> Optional[str]:
        """Identify the song playing in ``[start, end]``, if any."""
        self.queries += 1
        event = _overlapping_event(trace, "music", start, end)
        if event is None:
            return None
        if self._rng.random() < self.failure_rate:
            return None
        index = trace.events_with_label("music").index(event)
        return f"song-{index:03d}"


@dataclass
class SimulatedSpeechAPI:
    """Google-Speech stand-in: audio span -> does it contain the phrase.

    Attributes:
        failure_rate: Probability the phrase goes untranscribed.
            Defaults to 0 so the evaluation harness is deterministic.
        seed: RNG seed for failure draws.
    """

    failure_rate: float = 0.0
    seed: int = 0
    queries: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def contains_phrase(self, trace: Trace, start: float, end: float) -> bool:
        """True when the span overlaps a phrase-bearing speech event."""
        self.queries += 1
        for event in trace.events_with_label("speech"):
            if event.end > start and event.start < end and event.meta("phrase"):
                return self._rng.random() >= self.failure_rate
        return False


def music_journal(
    trace: Trace,
    detections: List[Tuple[float, float]],
    service: Optional[SimulatedEchoprint] = None,
) -> List[Tuple[float, str]]:
    """Resolve detected music spans to a (time, song id) journal."""
    service = service or SimulatedEchoprint()
    journal: List[Tuple[float, str]] = []
    for start, end in detections:
        song = service.identify(trace, start, end)
        if song is not None and (not journal or journal[-1][1] != song):
            journal.append((start, song))
    return journal
