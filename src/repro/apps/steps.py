"""Step counting (paper Section 3.7.1, after Libby's method).

"The application takes in raw accelerometer readings and applies a
low-pass filter on the x-axis acceleration.  It then searches for local
maxima in the filtered x-axis acceleration.  Local maxima between
2.5 m/s^2 and 4.5 m/s^2 are detected as steps."

The event of interest for recall/precision purposes is a *walking bout*
(the robot's action log records walking intervals); the detector
additionally reports every individual step, so step-count accuracy can
be evaluated too.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.api.branch import ProcessingBranch
from repro.api.pipeline import ProcessingPipeline
from repro.api.stubs import LocalExtrema, MovingAverage
from repro.apps.base import Detection, SensingApplication
from repro.apps.detectors import iter_window_arrays, local_maxima, moving_average
from repro.sensors.channels import ACC_X
from repro.traces.base import Trace

#: Libby-style step band on the low-passed x axis, m/s^2.
STEP_BAND = (2.5, 4.5)

#: Low-pass moving-average length at 50 Hz (100 ms).
_SMOOTH_SAMPLES = 5

#: Two peaks closer than 300 ms cannot both be steps.
_MIN_STEP_SEPARATION_S = 0.3

#: Full-context requirements: a step peak must be seen with ~160 ms of
#: signal on each side and rise at least 1.0 m/s^2 out of the trough —
#: a half-glimpsed stride at a sensing-window edge is not a step.
_PEAK_MARGIN_SAMPLES = 8
_PEAK_PROMINENCE = 1.0


class StepsApp(SensingApplication):
    """Counts steps; events of interest are walking bouts."""

    name = "steps"
    event_label = "walking"
    channels = ("ACC_X",)
    match_tolerance_s = 1.0
    min_event_context_s = 1.0  # needs about a stride of context

    def build_wakeup_pipeline(self) -> ProcessingPipeline:
        """Wake-up condition: smoothed x-axis peaks in the step band.

        The same structure as the precise detector — a low-pass filter
        followed by a banded local-maximum search — expressed entirely
        in platform algorithms.  The band is widened slightly versus the
        precise detector (conservative, high-recall configuration as
        Section 2.1.2 prescribes).
        """
        pipeline = ProcessingPipeline()
        pipeline.add(
            ProcessingBranch(ACC_X)
            .add(MovingAverage(_SMOOTH_SAMPLES))
            .add(LocalExtrema("max", STEP_BAND[0] - 0.4, STEP_BAND[1] + 0.6,
                              min_separation=10))
        )
        return pipeline

    def detect(
        self, trace: Trace, windows: Sequence[Tuple[float, float]]
    ) -> List[Detection]:
        """Precise detector: one detection per step."""
        rate = trace.rate_hz["ACC_X"]
        min_sep = int(_MIN_STEP_SEPARATION_S * rate)
        detections: List[Detection] = []
        for start_time, samples in iter_window_arrays(trace, "ACC_X", windows):
            smoothed = moving_average(samples, _SMOOTH_SAMPLES)
            peaks = local_maxima(
                smoothed, STEP_BAND[0], STEP_BAND[1], min_sep,
                margin=_PEAK_MARGIN_SAMPLES, prominence=_PEAK_PROMINENCE,
            )
            for idx in peaks:
                # moving_average drops the first size-1 samples.
                t = start_time + (idx + _SMOOTH_SAMPLES - 1) / rate
                detections.append(Detection(time=t, label="step"))
        return detections

    @staticmethod
    def count_steps(detections: Sequence[Detection]) -> int:
        """Number of individual steps among the detections."""
        return sum(1 for d in detections if d.label == "step")
