"""Music journal (paper Section 3.7.2).

"Creates a list of all the songs heard during the day ...  Audio data is
partitioned into windows and passed to two branches for feature
extraction.  The first branch computes the variance of the amplitude
over the entire window.  The second branch further partitions the data
into smaller windows and computes the zero crossing rate ... for each
sub-window.  It then calculates the variance in zero crossing rate
across the set of the sub-windows.  Finally, an admission control step
uses thresholds (different for music and speech detection) on the
extracted features to determine if an event of interest has occurred.
Data is then passed to the Echoprint.me web service to identify the
song."

Music's signature: sound is *present* (amplitude variance above the
background) while the tonal content keeps the zero-crossing rate
*stable* from sub-window to sub-window (low ZCR variance) — the
opposite of speech's syllabic ZCR churn.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.api.branch import ProcessingBranch
from repro.api.pipeline import ProcessingPipeline
from repro.api.stubs import (
    BandIndicator,
    MinOf,
    MinThreshold,
    Statistic,
    Window,
    ZeroCrossingRate,
)
from repro.apps.audio_features import SUBWINDOW, WINDOW, window_features
from repro.apps.base import Detection, SensingApplication
from repro.apps.cloud import SimulatedEchoprint
from repro.apps.detectors import iter_window_arrays, merge_spans, spans_from_mask
from repro.sensors.channels import MIC
from repro.traces.base import Trace

#: Amplitude-variance band: sound must be present (floor excludes every
#: background; the loudest, outdoor wind, peaks near 1.5e-4) but not as
#: loud as a siren tone (variance ~0.125), which is pitched, not music.
#: Calibrated against the synthetic corpora (see
#: tests/unit/test_audio_thresholds.py).
MUSIC_AMP_VAR_MIN = 3.0e-3
MUSIC_AMP_VAR_MAX = 6.0e-2

#: ZCR-variance ceiling: tonal stability.  Music sits at ~1e-5..1e-4;
#: speech spreads one to two orders of magnitude higher.
MUSIC_ZCR_VAR_MAX = 2.5e-4

#: A song must qualify for ~1 s (4 windows of 256 ms) to count.
_MIN_MUSIC_S = 1.0

#: Wake-up thresholds: conservative (wider) versions of the above.
_WAKEUP_AMP_VAR_MIN = 2.0e-3
_WAKEUP_AMP_VAR_MAX = 8.0e-2
_WAKEUP_ZCR_VAR_MAX = 5.0e-4


class MusicJournalApp(SensingApplication):
    """Journals the songs heard during the day."""

    name = "music_journal"
    event_label = "music"
    channels = ("MIC",)
    match_tolerance_s = 2.0
    min_event_context_s = 1.5

    def __init__(self, service: Optional[SimulatedEchoprint] = None):
        self.service = service or SimulatedEchoprint()
        #: (time, song id) entries accumulated by :meth:`detect`.
        self.journal: List[Tuple[float, str]] = []

    def build_wakeup_pipeline(self) -> ProcessingPipeline:
        """Wake-up condition: the Figure 3 two-branch music pipeline.

        Branch 1 extracts per-window amplitude variance; branch 2
        extracts the variance of sub-window ZCRs.  Band indicators and a
        ``minOf`` conjunction implement the admission-control step.
        """
        pipeline = ProcessingPipeline()
        pipeline.add(
            ProcessingBranch(MIC)
            .add(Window(WINDOW))
            .add(Statistic("variance"))
            .add(BandIndicator(_WAKEUP_AMP_VAR_MIN, _WAKEUP_AMP_VAR_MAX))
        )
        pipeline.add(
            ProcessingBranch(MIC)
            .add(Window(SUBWINDOW))
            .add(ZeroCrossingRate())
            .add(Window(WINDOW // SUBWINDOW))
            .add(Statistic("variance"))
            .add(BandIndicator(0.0, _WAKEUP_ZCR_VAR_MAX))
        )
        pipeline.add(MinOf())
        pipeline.add(MinThreshold(1.0))
        return pipeline

    def detect(
        self, trace: Trace, windows: Sequence[Tuple[float, float]]
    ) -> List[Detection]:
        """Precise detector: qualifying windows sustained ~1 s, then the
        (simulated) Echoprint lookup."""
        rate = trace.rate_hz["MIC"]
        window_s = WINDOW / rate
        spans: List[Tuple[float, float]] = []
        for start_time, samples in iter_window_arrays(trace, "MIC", windows):
            feats = window_features(samples, start_time, rate)
            qualifying = (
                (feats.amplitude_variance >= MUSIC_AMP_VAR_MIN)
                & (feats.amplitude_variance <= MUSIC_AMP_VAR_MAX)
                & (feats.zcr_variance <= MUSIC_ZCR_VAR_MAX)
            )
            spans.extend(spans_from_mask(qualifying, feats.times))
        merged = merge_spans(spans, min_gap=2 * window_s)
        detections: List[Detection] = []
        for start, end in merged:
            if end - start < _MIN_MUSIC_S:
                continue
            song = self.service.identify(trace, start, end)
            if song is not None:
                # The cloud lookup is the final precision filter: spans
                # that do not resolve to a song are dropped.
                self.journal.append((start, song))
                detections.append(Detection(time=start, end=end, label="music"))
        return detections
