"""Headbutt detection (paper Section 3.7.1).

"Detects a sudden forward head movement.  The application monitors the
y-axis acceleration and searches for local minima between -3.75 m/s^2
and -6.75 m/s^2."  Headbutts stand in for very infrequent human actions
such as falls.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.api.branch import ProcessingBranch
from repro.api.pipeline import ProcessingPipeline
from repro.api.stubs import MaxThreshold, MovingAverage
from repro.apps.base import Detection, SensingApplication
from repro.apps.detectors import iter_window_arrays, local_minima, moving_average
from repro.sensors.channels import ACC_Y
from repro.traces.base import Trace

#: Headbutt dip band on the y axis, m/s^2 (paper: [-6.75, -3.75]).
HEADBUTT_BAND = (-6.75, -3.75)

_SMOOTH_SAMPLES = 3
_MIN_SEPARATION_S = 0.5

#: Full-context requirements: the dip apex needs ~200 ms of signal on
#: each side, rising at least 1.5 m/s^2 back out of the dip — a jerk
#: half-seen at a window edge cannot be confirmed as a headbutt.
_DIP_MARGIN_SAMPLES = 10
_DIP_PROMINENCE = 1.5


class HeadbuttApp(SensingApplication):
    """Detects sudden forward head movements (rare events)."""

    name = "headbutts"
    event_label = "headbutt"
    channels = ("ACC_Y",)
    match_tolerance_s = 0.6
    min_event_context_s = 0.4

    def build_wakeup_pipeline(self) -> ProcessingPipeline:
        """Wake-up condition: smoothed y-axis dips below the band top.

        A plain low-threshold admission control — any y value at or
        below -3.5 m/s^2 wakes the device (slightly wider than the
        detector band, for recall).  Normal posture keeps y near 0
        (standing) or +4.5 (sitting), so only violent forward jerks
        fire this.
        """
        pipeline = ProcessingPipeline()
        pipeline.add(
            ProcessingBranch(ACC_Y)
            .add(MovingAverage(_SMOOTH_SAMPLES))
            .add(MaxThreshold(HEADBUTT_BAND[1] + 0.25))
        )
        return pipeline

    def detect(
        self, trace: Trace, windows: Sequence[Tuple[float, float]]
    ) -> List[Detection]:
        """Precise detector: banded local minima of the smoothed y axis."""
        rate = trace.rate_hz["ACC_Y"]
        min_sep = int(_MIN_SEPARATION_S * rate)
        detections: List[Detection] = []
        for start_time, samples in iter_window_arrays(trace, "ACC_Y", windows):
            smoothed = moving_average(samples, _SMOOTH_SAMPLES)
            dips = local_minima(
                smoothed, HEADBUTT_BAND[0], HEADBUTT_BAND[1], min_sep,
                margin=_DIP_MARGIN_SAMPLES, prominence=_DIP_PROMINENCE,
            )
            for idx in dips:
                t = start_time + (idx + _SMOOTH_SAMPLES - 1) / rate
                detections.append(Detection(time=t, label="headbutt"))
        return detections
