"""The paper's six continuous-sensing applications (Section 3.7).

Accelerometer: :mod:`~repro.apps.steps`, :mod:`~repro.apps.transitions`,
:mod:`~repro.apps.headbutts`.  Audio: :mod:`~repro.apps.siren`,
:mod:`~repro.apps.music`, :mod:`~repro.apps.phrase`.

Each application provides two stages, mirroring the paper's structure:

* a **wake-up condition** — a :class:`~repro.api.ProcessingPipeline`
  built from platform algorithms, conservative (high recall, moderate
  precision), executed on the low-power hub;
* a **precise detector** — arbitrary code run on the main processor
  after a wake-up, providing the final high-precision classification.
"""

from repro.apps.base import Detection, SensingApplication
from repro.apps.headbutts import HeadbuttApp
from repro.apps.music import MusicJournalApp
from repro.apps.phrase import PhraseDetectionApp
from repro.apps.siren import SirenDetectorApp
from repro.apps.steps import StepsApp
from repro.apps.transitions import TransitionsApp

#: The three accelerometer applications, in the paper's order.
ACCEL_APPS = (StepsApp, TransitionsApp, HeadbuttApp)

#: The three audio applications, in the paper's order.
AUDIO_APPS = (SirenDetectorApp, MusicJournalApp, PhraseDetectionApp)


def all_applications():
    """Fresh instances of all six applications."""
    return tuple(cls() for cls in ACCEL_APPS + AUDIO_APPS)


__all__ = [
    "ACCEL_APPS",
    "AUDIO_APPS",
    "Detection",
    "HeadbuttApp",
    "MusicJournalApp",
    "PhraseDetectionApp",
    "SensingApplication",
    "SirenDetectorApp",
    "StepsApp",
    "TransitionsApp",
    "all_applications",
]
