"""Shared signal-processing helpers for the precise detectors.

The precise detectors run on the main processor after a wake-up, so
unlike wake-up conditions they are not restricted to platform
algorithms; these helpers are ordinary numpy code.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.algorithms.kernels import debounce_indices
from repro.traces.base import Trace


def merge_spans(
    spans: Sequence[Tuple[float, float]], min_gap: float = 0.0
) -> List[Tuple[float, float]]:
    """Sort spans and merge overlaps (and gaps below ``min_gap``)."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(spans):
        if end <= start:
            continue
        if merged and start - merged[-1][1] <= min_gap:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def iter_window_arrays(
    trace: Trace,
    channel: str,
    windows: Sequence[Tuple[float, float]],
) -> Iterator[Tuple[float, np.ndarray]]:
    """Yield ``(window_start_time, samples)`` per accessible window.

    Windows are merged first, so overlapping wake-ups yield one
    contiguous array (the detector sees each sample once).
    """
    rate = trace.rate_hz[channel]
    samples = trace.data[channel]
    for start, end in merge_spans(windows):
        i0 = max(0, int(round(start * rate)))
        i1 = min(len(samples), int(round(end * rate)))
        if i1 > i0:
            yield (i0 / rate, samples[i0:i1])


def moving_average(values: np.ndarray, size: int) -> np.ndarray:
    """Centred-on-trailing moving average, same semantics as the hub's
    ``movingAvg``: output[i] is the mean of ``values[i-size+1 .. i]``;
    the first ``size - 1`` positions are dropped."""
    if len(values) < size:
        return np.empty(0)
    csum = np.concatenate([[0.0], np.cumsum(values)])
    return (csum[size:] - csum[:-size]) / size


def local_maxima(
    values: np.ndarray,
    low: float,
    high: float,
    min_separation: int,
    margin: int = 0,
    prominence: float = 0.0,
) -> np.ndarray:
    """Indices of local maxima within ``[low, high]``, debounced.

    Args:
        margin: Samples of context required on *both* sides of a peak.
            A peak too close to the data edge is rejected — a classifier
            cannot confirm a half-seen event (this is what makes short
            duty-cycling windows miss brief events).
        prominence: Minimum rise from the lowest value within ``margin``
            samples on each side up to the peak.  Filters noise wiggles
            that happen to sit inside the amplitude band.
    """
    if len(values) < 3:
        return np.empty(0, dtype=int)
    mid = values[1:-1]
    is_peak = (values[:-2] < mid) & (mid >= values[2:])
    in_band = (mid >= low) & (mid <= high)
    candidates = np.flatnonzero(is_peak & in_band) + 1
    if margin > 0:
        qualified = []
        for idx in candidates:
            if idx < margin or idx + margin >= len(values):
                continue
            left = values[idx - margin : idx]
            right = values[idx + 1 : idx + 1 + margin]
            peak = values[idx]
            if (
                peak - left.min() >= prominence
                and peak - right.min() >= prominence
            ):
                qualified.append(idx)
        candidates = np.asarray(qualified, dtype=int)
    return debounce_indices(candidates, min_separation)


def local_minima(
    values: np.ndarray,
    low: float,
    high: float,
    min_separation: int,
    margin: int = 0,
    prominence: float = 0.0,
) -> np.ndarray:
    """Indices of local minima within ``[low, high]``, debounced.

    See :func:`local_maxima` for the ``margin`` / ``prominence``
    semantics (mirrored for valleys).
    """
    return local_maxima(-values, -high, -low, min_separation, margin, prominence)


def frame_signal(values: np.ndarray, size: int, hop: int) -> np.ndarray:
    """Non-padded sliding frames: shape (n_frames, size)."""
    if len(values) < size:
        return np.empty((0, size))
    n_frames = (len(values) - size) // hop + 1
    idx = np.arange(n_frames)[:, None] * hop + np.arange(size)[None, :]
    return values[idx]


def zero_crossing_rate(frames: np.ndarray) -> np.ndarray:
    """Per-frame fraction of sign changes (matches the hub algorithm)."""
    signs = np.signbit(frames)
    return np.sum(signs[:, 1:] != signs[:, :-1], axis=1) / max(
        frames.shape[1] - 1, 1
    )


def spans_from_mask(
    mask: np.ndarray, times: np.ndarray
) -> List[Tuple[float, float]]:
    """Contiguous True runs of ``mask`` as (start, end) time spans."""
    if len(mask) == 0:
        return []
    padded = np.concatenate([[False], mask, [False]])
    edges = np.flatnonzero(padded[1:] != padded[:-1])
    starts, ends = edges[0::2], edges[1::2]
    return [
        (float(times[s]), float(times[min(e, len(times) - 1)]))
        for s, e in zip(starts, ends)
    ]
