"""Siren detection (paper Section 3.7.2).

"Detects sirens originating from emergency vehicles.  The application
applies a 750 Hz high-pass filter ...  The data in each window is
transformed to the frequency domain using a FFT in order to extract the
magnitude of the dominant frequency and the mean magnitude of all
frequency bins.  The ratio ... is used to determine if the window
contains pitched sounds.  Pitched sounds between 850 Hz and 1800 Hz that
last longer than 650 ms are classified as sirens."

This is the one application whose wake-up condition needs audio-rate
FFTs, which the MSP430 cannot sustain — the hub places it on the
LM4F120 (Section 4.3), adding ~46 mW to the Sidewinder configuration's
power model.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.api.branch import ProcessingBranch
from repro.api.pipeline import ProcessingPipeline
from repro.api.stubs import (
    FFT,
    DominantFrequency,
    HighPass,
    SustainedThreshold,
    Window,
)
from repro.apps.audio_features import (
    SIREN_BAND,
    SIREN_FRAME,
    SIREN_HIGHPASS_HZ,
    SIREN_HOP,
    siren_frame_features,
)
from repro.apps.base import Detection, SensingApplication
from repro.apps.detectors import iter_window_arrays, merge_spans, spans_from_mask
from repro.sensors.channels import MIC
from repro.traces.base import Trace

#: Pitch-prominence ratio above which a frame counts as pitched.  The
#: precise detector uses the tighter value; the wake-up condition uses
#: the conservative one (high recall, Section 2.1.2).
PITCH_RATIO_DETECT = 25.0
PITCH_RATIO_WAKEUP = 15.0

#: Minimum siren duration (paper: 650 ms).
MIN_SIREN_S = 0.65

#: Hop period at 8 kHz is 32 ms; the wake-up condition requires the
#: ratio to hold for 10 consecutive frames (~320 ms) — half the target
#: duration, again conservative.
_WAKEUP_SUSTAIN_FRAMES = 10


class SirenDetectorApp(SensingApplication):
    """Detects emergency-vehicle sirens in microphone data."""

    name = "sirens"
    event_label = "siren"
    channels = ("MIC",)
    match_tolerance_s = 1.0
    min_event_context_s = MIN_SIREN_S

    def build_wakeup_pipeline(self) -> ProcessingPipeline:
        """Wake-up condition: sustained pitch prominence in the band.

        window -> highPass(750) -> fft -> dominantFrequency(ratio,
        850-1800) -> sustainedThreshold — the Figure 3 siren pipeline.
        """
        pipeline = ProcessingPipeline()
        pipeline.add(
            ProcessingBranch(MIC)
            .add(Window(SIREN_FRAME, hop=SIREN_HOP, shape="hamming"))
            .add(HighPass(SIREN_HIGHPASS_HZ))
            .add(FFT())
            .add(DominantFrequency("ratio", min_hz=SIREN_BAND[0], max_hz=SIREN_BAND[1]))
            .add(SustainedThreshold(PITCH_RATIO_WAKEUP, _WAKEUP_SUSTAIN_FRAMES))
        )
        return pipeline

    def detect(
        self, trace: Trace, windows: Sequence[Tuple[float, float]]
    ) -> List[Detection]:
        """Precise detector: pitched frames sustained past 650 ms."""
        rate = trace.rate_hz["MIC"]
        spans: List[Tuple[float, float]] = []
        for start_time, samples in iter_window_arrays(trace, "MIC", windows):
            times, ratio, dom_freq = siren_frame_features(samples, start_time, rate)
            pitched = (
                (ratio >= PITCH_RATIO_DETECT)
                & (dom_freq >= SIREN_BAND[0])
                & (dom_freq <= SIREN_BAND[1])
            )
            spans.extend(spans_from_mask(pitched, times))
        hop_s = SIREN_HOP / rate
        merged = merge_spans(spans, min_gap=2 * hop_s)
        return [
            Detection(time=start, end=end, label="siren")
            for start, end in merged
            if end - start >= MIN_SIREN_S
        ]
