"""The Google Nexus 4 power profile (paper Table 1).

The paper measured the phone with screen, WiFi and GPS off:

====================================  ======================  =========
State                                 Average power (mW)      Duration
====================================  ======================  =========
Awake, running sensing application    323                     N/A
Asleep                                9.7                     N/A
Asleep-to-awake transition            384                     1 second
Awake-to-asleep transition            341                     1 second
====================================  ======================  =========

These constants are embedded directly; the reproduction's simulator uses
them exactly as the paper's simulator did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.power.timeline import PhoneState


@dataclass(frozen=True)
class PhonePowerProfile:
    """Average power per device state plus transition durations.

    Attributes:
        awake_mw: Awake, running the sensor-driven application.
        asleep_mw: Deep sleep.
        wake_transition_mw: Asleep-to-awake transition draw.
        sleep_transition_mw: Awake-to-asleep transition draw.
        transition_s: Duration of each transition.
    """

    name: str
    awake_mw: float
    asleep_mw: float
    wake_transition_mw: float
    sleep_transition_mw: float
    transition_s: float

    def power_mw(self, state: PhoneState) -> float:
        """Average draw of one state."""
        return {
            PhoneState.AWAKE: self.awake_mw,
            PhoneState.ASLEEP: self.asleep_mw,
            PhoneState.WAKING: self.wake_transition_mw,
            PhoneState.SLEEPING: self.sleep_transition_mw,
        }[state]

    def table1_rows(self) -> List[Tuple[str, float, str]]:
        """Rows of the paper's Table 1: (state, power mW, duration)."""
        return [
            ("Awake, running sensor-driven application", self.awake_mw, "N/A"),
            ("Asleep", self.asleep_mw, "N/A"),
            ("Asleep-to-Awake Transition", self.wake_transition_mw,
             f"{self.transition_s:g} second"),
            ("Awake-to-Asleep Transition", self.sleep_transition_mw,
             f"{self.transition_s:g} second"),
        ]


#: The paper's measured Nexus 4 profile (Table 1).
NEXUS4 = PhonePowerProfile(
    name="Google Nexus 4",
    awake_mw=323.0,
    asleep_mw=9.7,
    wake_transition_mw=384.0,
    sleep_transition_mw=341.0,
    transition_s=1.0,
)
