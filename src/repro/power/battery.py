"""Battery-life projection.

The paper argues in milliwatts; users think in hours.  This module
converts a configuration's average power into continuous-sensing
battery life on a phone battery, making results like "96 % energy
saving" tangible: an always-awake Nexus 4 empties its battery in about
a day, a Sidewinder deployment of the same application lasts weeks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class BatteryModel:
    """A phone battery.

    Attributes:
        name: Battery/device name.
        capacity_mah: Rated charge capacity.
        nominal_voltage_v: Nominal cell voltage.
        usable_fraction: Fraction of rated energy actually extractable
            before shutdown (aging, cutoff voltage).
    """

    name: str
    capacity_mah: float
    nominal_voltage_v: float
    usable_fraction: float = 0.9

    @property
    def usable_energy_mwh(self) -> float:
        """Extractable energy in milliwatt-hours."""
        return self.capacity_mah * self.nominal_voltage_v * self.usable_fraction

    def hours_at(self, average_power_mw: float) -> float:
        """Continuous runtime at a constant average draw.

        Raises:
            SimulationError: for a non-positive power draw.
        """
        if average_power_mw <= 0:
            raise SimulationError(
                f"average power must be positive, got {average_power_mw}"
            )
        return self.usable_energy_mwh / average_power_mw

    def days_at(self, average_power_mw: float) -> float:
        """Continuous runtime in days at a constant average draw."""
        return self.hours_at(average_power_mw) / 24.0


#: The Nexus 4's 2100 mAh / 3.8 V battery (the paper's prototype phone).
NEXUS4_BATTERY = BatteryModel(
    name="Nexus 4 (2100 mAh)",
    capacity_mah=2100.0,
    nominal_voltage_v=3.8,
)


def lifetime_gain(
    baseline_power_mw: float,
    improved_power_mw: float,
) -> float:
    """How many times longer the battery lasts after an improvement.

    With a fixed battery, lifetime is inversely proportional to average
    power, so the gain is simply the power ratio.
    """
    if baseline_power_mw <= 0 or improved_power_mw <= 0:
        raise SimulationError("power values must be positive")
    return baseline_power_mw / improved_power_mw
