"""Power models and energy accounting (paper Section 4, Table 1).

The evaluation's energy numbers come from a measured Nexus 4 power
profile (:mod:`repro.power.phone`) applied to a timeline of device
states (:mod:`repro.power.timeline`), plus the constant draw of any
sensor-hub MCU in use.  :mod:`repro.power.accounting` breaks the total
down by component.
"""

from repro.power.accounting import PowerBreakdown, account
from repro.power.battery import NEXUS4_BATTERY, BatteryModel, lifetime_gain
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.power.timeline import Interval, PhoneState, Timeline, build_timeline

__all__ = [
    "NEXUS4",
    "NEXUS4_BATTERY",
    "BatteryModel",
    "lifetime_gain",
    "Interval",
    "PhonePowerProfile",
    "PhoneState",
    "PowerBreakdown",
    "Timeline",
    "account",
    "build_timeline",
]
