"""Device state timelines.

A :class:`Timeline` is a gap-free, non-overlapping sequence of
:class:`Interval` records covering a trace from 0 to its duration.  The
simulator decides *when the application needs the phone awake* (sensing
or processing windows); :func:`build_timeline` turns those windows into
a physically consistent timeline by inserting the 1-second wake/sleep
transitions the paper measured, collapsing gaps too short to complete a
sleep/wake round trip.

Transition placement: a wake-up requested at time ``t`` starts its
asleep-to-awake transition at ``t - transition_s`` (the hub's wake
signal precedes usable CPU time), and the awake-to-asleep transition
starts when the awake window ends.  Transitions therefore eat into
*sleep* time, matching the paper's observation that short duty-cycling
intervals can cost more than staying awake.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Sequence, Tuple

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.power.phone import PhonePowerProfile


class PhoneState(enum.Enum):
    """Power states of the main processor (paper Table 1)."""

    ASLEEP = "asleep"
    WAKING = "waking"  # asleep-to-awake transition
    AWAKE = "awake"
    SLEEPING = "sleeping"  # awake-to-asleep transition


@dataclass(frozen=True)
class Interval:
    """One contiguous stretch of a single phone state."""

    state: PhoneState
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start


@dataclass
class Timeline:
    """A validated sequence of state intervals covering ``[0, duration]``."""

    intervals: List[Interval]

    def __post_init__(self) -> None:
        previous_end = None
        for interval in self.intervals:
            if interval.end < interval.start:
                raise SimulationError(
                    f"interval ends before it starts: {interval}"
                )
            if previous_end is not None and abs(interval.start - previous_end) > 1e-9:
                raise SimulationError(
                    f"timeline has a gap/overlap at t={previous_end} -> "
                    f"{interval.start}"
                )
            previous_end = interval.end

    @property
    def duration(self) -> float:
        """Total covered time in seconds."""
        if not self.intervals:
            return 0.0
        return self.intervals[-1].end - self.intervals[0].start

    def seconds_in(self, state: PhoneState) -> float:
        """Total seconds spent in one state."""
        return sum(i.duration for i in self.intervals if i.state is state)

    @property
    def awake_seconds(self) -> float:
        """Seconds fully awake (excluding transitions)."""
        return self.seconds_in(PhoneState.AWAKE)

    @property
    def asleep_seconds(self) -> float:
        """Seconds fully asleep (excluding transitions)."""
        return self.seconds_in(PhoneState.ASLEEP)

    @property
    def wakeup_count(self) -> int:
        """Number of asleep-to-awake transitions."""
        return sum(1 for i in self.intervals if i.state is PhoneState.WAKING)

    def awake_windows(self) -> List[Tuple[float, float]]:
        """The (start, end) spans of every fully-awake interval."""
        return [
            (i.start, i.end) for i in self.intervals if i.state is PhoneState.AWAKE
        ]

    def energy_mj(self, profile: "PhonePowerProfile") -> float:
        """Total phone energy over the timeline, in millijoules."""
        return sum(
            profile.power_mw(i.state) * i.duration for i in self.intervals
        )

    def average_power_mw(self, profile: "PhonePowerProfile") -> float:
        """Average phone power over the timeline, in milliwatts."""
        if self.duration <= 0:
            return 0.0
        return self.energy_mj(profile) / self.duration


def merge_windows(
    windows: Iterable[Tuple[float, float]], min_gap: float
) -> List[Tuple[float, float]]:
    """Sort windows and merge overlaps and gaps smaller than ``min_gap``.

    Overlapping or touching windows always merge; a positive gap
    survives only when it is at least ``min_gap`` (a gap of exactly
    ``min_gap`` is kept — for the timeline builder that is the shortest
    sleep round trip that still fits its two transitions).  Windows with
    non-positive length are dropped.
    """
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(windows):
        if end <= start:
            continue
        if merged:
            gap = start - merged[-1][1]
            if gap <= 0 or gap < min_gap:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
                continue
        merged.append((start, end))
    return merged


def build_timeline(
    duration: float,
    awake_windows: Sequence[Tuple[float, float]],
    profile: "PhonePowerProfile",
) -> Timeline:
    """Turn requested awake windows into a physical state timeline.

    Args:
        duration: Trace length in seconds; the timeline covers
            ``[0, duration]``.
        awake_windows: Spans during which the application needs the main
            processor fully awake.  Windows are clipped to the trace,
            merged when overlapping, and merged when the gap between
            them is too short to complete a sleep + wake transition
            round trip (the device simply stays awake).
        profile: Phone power profile supplying the transition duration.

    Returns:
        A validated :class:`Timeline`.
    """
    if duration <= 0:
        raise SimulationError(f"duration must be positive, got {duration}")
    t_tr = profile.transition_s
    clipped = [
        (max(0.0, start), min(duration, end))
        for start, end in awake_windows
        if min(duration, end) > max(0.0, start)
    ]
    # A sleep round trip needs one sleep transition + one wake transition;
    # gaps shorter than that leave no time asleep at all, so stay awake.
    merged = merge_windows(clipped, min_gap=2.0 * t_tr)

    intervals: List[Interval] = []
    cursor = 0.0
    for start, end in merged:
        gap = start - cursor
        if intervals:
            # Coming out of a previous awake window: sleep transition,
            # possible sleep, then wake transition.
            sleep_time = gap - 2.0 * t_tr
            intervals.append(
                Interval(PhoneState.SLEEPING, cursor, cursor + t_tr)
            )
            if sleep_time > 1e-12:
                intervals.append(
                    Interval(PhoneState.ASLEEP, cursor + t_tr, start - t_tr)
                )
            intervals.append(Interval(PhoneState.WAKING, start - t_tr, start))
        else:
            # Trace starts asleep; wake transition precedes first window.
            if gap >= t_tr:
                if gap > t_tr:
                    intervals.append(Interval(PhoneState.ASLEEP, 0.0, start - t_tr))
                intervals.append(Interval(PhoneState.WAKING, start - t_tr, start))
            elif gap > 0:
                # Not enough lead time for a full transition: compress it.
                intervals.append(Interval(PhoneState.WAKING, 0.0, start))
        intervals.append(Interval(PhoneState.AWAKE, start, end))
        cursor = end
    # Tail: back to sleep if there is room.
    if cursor < duration:
        if intervals:
            tail = duration - cursor
            if tail >= t_tr:
                intervals.append(Interval(PhoneState.SLEEPING, cursor, cursor + t_tr))
                if tail > t_tr:
                    intervals.append(
                        Interval(PhoneState.ASLEEP, cursor + t_tr, duration)
                    )
            else:
                intervals.append(Interval(PhoneState.SLEEPING, cursor, duration))
        else:
            intervals.append(Interval(PhoneState.ASLEEP, 0.0, duration))
    return Timeline(intervals)


def always_awake_timeline(duration: float) -> Timeline:
    """Timeline for the Always Awake configuration: awake throughout."""
    if duration <= 0:
        raise SimulationError(f"duration must be positive, got {duration}")
    return Timeline([Interval(PhoneState.AWAKE, 0.0, duration)])
