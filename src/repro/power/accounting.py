"""Energy accounting: per-component breakdown of a simulated run.

Combines the phone timeline with the constant draw of any sensor-hub
MCU (Section 4.3: "for Batching and Predefined Activity, the model also
includes the cost of a low-power TI MSP430 ... experiments configured to
use Sidewinder include the cost of the TI MSP430, with the exception
being the siren detector which required the more powerful TI LM4F120").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.hub.mcu import MCUModel
from repro.power.phone import PhonePowerProfile
from repro.power.timeline import PhoneState, Timeline


@dataclass(frozen=True)
class PowerBreakdown:
    """Average power of one simulated run, broken down by component.

    All values are in milliwatts averaged over the full trace duration.

    Attributes:
        phone_awake_mw: Contribution of fully-awake time.
        phone_asleep_mw: Contribution of fully-asleep time.
        phone_transition_mw: Contribution of wake/sleep transitions.
        hub_mw: Constant draw of the sensor-hub MCU(s), 0 when the
            configuration uses no hub.
        duration_s: Trace duration the averages are taken over.
        wakeup_count: Number of asleep-to-awake transitions.
        awake_fraction: Fraction of the trace spent fully awake.
        reliability_mw: Average draw of the reliable-transport overhead
            (CRC framing, retransmissions, ACKs, heartbeats, condition
            re-pushes); 0 for naive delivery.
    """

    phone_awake_mw: float
    phone_asleep_mw: float
    phone_transition_mw: float
    hub_mw: float
    duration_s: float
    wakeup_count: int
    awake_fraction: float
    reliability_mw: float = 0.0

    @property
    def phone_mw(self) -> float:
        """Average phone draw (hub excluded)."""
        return self.phone_awake_mw + self.phone_asleep_mw + self.phone_transition_mw

    @property
    def total_mw(self) -> float:
        """Average total draw including the hub and link reliability."""
        return self.phone_mw + self.hub_mw + self.reliability_mw

    @property
    def total_energy_mj(self) -> float:
        """Total energy over the run in millijoules."""
        return self.total_mw * self.duration_s


def account(
    timeline: Timeline,
    profile: PhonePowerProfile,
    mcus: Tuple[MCUModel, ...] = (),
    hub_mw: Optional[float] = None,
    reliability_mj: float = 0.0,
) -> PowerBreakdown:
    """Compute the :class:`PowerBreakdown` of a run.

    Args:
        timeline: The phone's state timeline.
        profile: Phone power profile (normally :data:`repro.power.NEXUS4`).
        mcus: Hub MCUs running throughout the trace; their awake power
            is charged for the full duration (the hub never sleeps while
            a condition is resident).
        hub_mw: Explicit override for the hub draw; wins over ``mcus``.
        reliability_mj: Energy the reliable transport spent on retries,
            ACKs, heartbeats and re-pushes, averaged over the duration.
    """
    duration = timeline.duration
    if duration <= 0:
        return PowerBreakdown(0.0, 0.0, 0.0, 0.0, 0.0, 0, 0.0)
    awake = timeline.seconds_in(PhoneState.AWAKE)
    asleep = timeline.seconds_in(PhoneState.ASLEEP)
    waking = timeline.seconds_in(PhoneState.WAKING)
    sleeping = timeline.seconds_in(PhoneState.SLEEPING)
    hub = hub_mw if hub_mw is not None else sum(m.awake_power_mw for m in mcus)
    return PowerBreakdown(
        phone_awake_mw=profile.awake_mw * awake / duration,
        phone_asleep_mw=profile.asleep_mw * asleep / duration,
        phone_transition_mw=(
            profile.wake_transition_mw * waking
            + profile.sleep_transition_mw * sleeping
        ) / duration,
        hub_mw=hub,
        duration_s=duration,
        wakeup_count=timeline.wakeup_count,
        awake_fraction=awake / duration,
        reliability_mw=max(0.0, reliability_mj) / duration,
    )
