"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``inventory`` — list sensors and platform algorithms;
* ``compile`` — print an application's wake-up condition as IL and its
  hub placement;
* ``simulate`` — run one (application, configuration, trace) simulation
  and print the result summary;
* ``trace`` — generate a synthetic trace and save it to disk;
* ``table1`` / ``table2`` / ``figure5`` / ``figure6`` / ``figure7`` —
  regenerate a table or figure of the paper;
* ``merge`` — show pipeline-merging savings for a set of applications.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.algorithms.base import available_opcodes
from repro.api.compile import compile_pipeline
from repro.apps import all_applications
from repro.apps.base import SensingApplication
from repro.errors import SidewinderError
from repro.hub.feasibility import analyze, select_mcu
from repro.hub.mcu import DEFAULT_CATALOG
from repro.il.text import format_program
from repro.il.validate import validate_program
from repro.sensors.channels import all_channels
from repro.sim import (
    AlwaysAwake,
    Batching,
    DutyCycling,
    Oracle,
    PredefinedActivity,
    Sidewinder,
)
from repro.traces.base import Trace


def _apps_by_name() -> Dict[str, SensingApplication]:
    return {app.name: app for app in all_applications()}


def _make_config(name: str, sleep_interval: float):
    factories = {
        "always_awake": lambda: AlwaysAwake(),
        "duty_cycling": lambda: DutyCycling(sleep_interval),
        "batching": lambda: Batching(sleep_interval),
        "predefined_activity": lambda: PredefinedActivity(),
        "sidewinder": lambda: Sidewinder(),
        "oracle": lambda: Oracle(),
    }
    if name not in factories:
        raise SidewinderError(
            f"unknown configuration {name!r}; choose from {sorted(factories)}"
        )
    return factories[name]()


def _make_trace(spec: str, duration: float, seed: int) -> Trace:
    """Build a trace from a spec like ``robot:2``, ``human:commute`` or
    ``audio:office``."""
    kind, _, variant = spec.partition(":")
    if kind == "robot":
        from repro.traces.robot import RobotRunConfig, generate_robot_run
        group = int(variant or 1)
        return generate_robot_run(
            RobotRunConfig(group=group, duration_s=duration, seed=seed)
        )
    if kind == "human":
        from repro.traces.human import (
            HumanScenario,
            HumanTraceConfig,
            generate_human_trace,
        )
        scenario = HumanScenario(variant or "commute")
        return generate_human_trace(
            HumanTraceConfig(scenario=scenario, duration_s=duration, seed=seed)
        )
    if kind == "audio":
        from repro.traces.audio import (
            AudioEnvironment,
            AudioTraceConfig,
            generate_audio_trace,
        )
        environment = AudioEnvironment(variant or "office")
        return generate_audio_trace(
            AudioTraceConfig(environment=environment, duration_s=duration, seed=seed)
        )
    raise SidewinderError(
        f"unknown trace kind {kind!r}; use robot[:group], human[:scenario] "
        "or audio[:environment]"
    )


def cmd_inventory(_: argparse.Namespace) -> int:
    """List sensors, platform algorithms and applications."""
    print("sensor channels:")
    for channel in all_channels():
        print(f"  {channel.name:<8s} {channel.kind.value:<14s} "
              f"{channel.rate_hz:g} Hz ({channel.unit})")
    print()
    print("platform algorithms:")
    for opcode in available_opcodes():
        print(f"  {opcode}")
    print()
    print("applications:")
    for name in sorted(_apps_by_name()):
        print(f"  {name}")
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    """Print an application's wake-up condition IL and placement."""
    apps = _apps_by_name()
    if args.app not in apps:
        print(f"unknown application {args.app!r}; choose from {sorted(apps)}",
              file=sys.stderr)
        return 2
    app = apps[args.app]
    program = compile_pipeline(app.build_wakeup_pipeline())
    graph = validate_program(program)
    if args.diagram:
        from repro.il.draw import render_condition_tree
        print(render_condition_tree(program))
        print()
    print(format_program(program))
    mcu = select_mcu(graph, DEFAULT_CATALOG)
    print(f"# placed on {mcu.name} "
          f"({analyze(graph, mcu).utilization:.1%} of its cycle budget)")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run one (app, configuration, trace) simulation."""
    apps = _apps_by_name()
    if args.app not in apps:
        print(f"unknown application {args.app!r}; choose from {sorted(apps)}",
              file=sys.stderr)
        return 2
    trace = _make_trace(args.trace, args.duration, args.seed)
    config = _make_config(args.config, args.sleep_interval)
    result = config.run(apps[args.app], trace)
    print(result.summary())
    breakdown = result.power
    print(
        f"  awake {breakdown.awake_fraction:6.1%} of trace | phone "
        f"{breakdown.phone_mw:6.1f} mW + hub {breakdown.hub_mw:4.1f} mW | "
        f"energy {breakdown.total_energy_mj / 1000:7.1f} J"
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Generate a synthetic trace and save it to disk."""
    from repro.traces.io import save_trace
    trace = _make_trace(args.kind, args.duration, args.seed)
    path = save_trace(trace, args.out)
    labels: Dict[str, int] = {}
    for event in trace.events:
        labels[event.label] = labels.get(event.label, 0) + 1
    print(f"wrote {path} ({trace.duration:g}s, events: {labels})")
    return 0


def cmd_table1(_: argparse.Namespace) -> int:
    """Print the paper's Table 1 (Nexus 4 power profile)."""
    from repro.eval.report import render_table1
    from repro.eval.tables import build_table1
    print(render_table1(build_table1()))
    return 0


def _print_skipped(matrix) -> None:
    from repro.eval.report import render_skipped
    text = render_skipped(matrix.skipped)
    if text:
        print(text, file=sys.stderr)


def _print_execution(matrix, verbose: bool) -> None:
    """With ``--verbose``, show how the engine ran the sweep.

    Prints the serial/pool decision and — for serial runs, where one
    context served every cell — the RunContext cache counters, making
    dedup behaviour observable outside the serve path.
    """
    if not verbose:
        return
    info = matrix.execution
    if info is None:
        return
    print(f"# engine: {info.mode} ({info.reason})", file=sys.stderr)
    stats = info.cache_stats
    if stats is None:
        print(
            "# engine cache: per-worker counters live in the pool "
            "workers (rerun with --jobs 1 to see them)",
            file=sys.stderr,
        )
        return
    print(
        "# engine cache hits/misses: "
        f"compile {stats['compile_hits']}/{stats['compile_misses']} | "
        f"plan {stats['plan_hits']}/{stats['plan_misses']} | "
        f"hub {stats['hub_hits']}/{stats['hub_misses']} | "
        f"trace {stats['trace_hits']}/{stats['trace_misses']} | "
        f"detect {stats['detect_hits']}/{stats['detect_misses']} | "
        f"batch {stats['batch_rounds']} rounds/"
        f"{stats['batched_cells']} cells | "
        f"shape {stats['shape_rounds']} rounds/"
        f"{stats['shape_cells']} cells",
        file=sys.stderr,
    )
    valid = stats["batch_valid_cells"]
    if valid:
        print(
            "# engine batch padding: "
            f"{stats['batch_padded_cells']}/{valid} cells "
            f"(ratio {stats['batch_padded_cells'] / valid:.2f})",
            file=sys.stderr,
        )


def cmd_table2(args: argparse.Namespace) -> int:
    """Regenerate the paper's Table 2 over the audio corpus."""
    from repro.eval.report import render_table2
    from repro.eval.tables import PAPER_TABLE2, build_table2
    from repro.traces.library import audio_corpus
    table, matrix = build_table2(
        traces=audio_corpus(duration_s=args.duration),
        jobs=args.jobs,
        cache=not args.no_cache,
        fuse=not args.no_fuse,
        compiled=not args.no_compile,
        batch=not args.no_batch,
        shape_batch=not args.no_shape_batch,
    )
    print(render_table2(table, paper=PAPER_TABLE2))
    _print_skipped(matrix)
    _print_execution(matrix, args.verbose)
    return 0


def cmd_figure5(args: argparse.Namespace) -> int:
    """Regenerate Figure 5 over the robot corpus."""
    from repro.eval.figures import figure5_series
    from repro.eval.report import render_figure5
    from repro.traces.library import robot_corpus
    series, matrix = figure5_series(
        traces=robot_corpus(duration_s=args.duration),
        jobs=args.jobs,
        cache=not args.no_cache,
        fuse=not args.no_fuse,
        compiled=not args.no_compile,
        batch=not args.no_batch,
        shape_batch=not args.no_shape_batch,
    )
    print(render_figure5(series))
    _print_skipped(matrix)
    _print_execution(matrix, args.verbose)
    return 0


def cmd_figure6(args: argparse.Namespace) -> int:
    """Regenerate Figure 6 (duty-cycling recall curves)."""
    from repro.eval.figures import figure6_series
    from repro.eval.report import render_figure6
    from repro.traces.library import robot_corpus
    group1 = [
        t for t in robot_corpus(duration_s=args.duration)
        if t.metadata.get("group") == 1
    ]
    series, matrix = figure6_series(
        traces=group1, jobs=args.jobs, cache=not args.no_cache,
        fuse=not args.no_fuse, compiled=not args.no_compile,
        batch=not args.no_batch, shape_batch=not args.no_shape_batch,
    )
    print(render_figure6(series))
    _print_execution(matrix, args.verbose)
    return 0


def cmd_figure7(args: argparse.Namespace) -> int:
    """Regenerate Figure 7 over the human corpus."""
    from repro.eval.figures import figure7_series
    from repro.eval.report import render_figure7
    from repro.traces.library import human_corpus
    series, matrix = figure7_series(
        traces=human_corpus(duration_s=args.duration),
        jobs=args.jobs,
        cache=not args.no_cache,
        fuse=not args.no_fuse,
        compiled=not args.no_compile,
        batch=not args.no_batch,
        shape_batch=not args.no_shape_batch,
    )
    print(render_figure7(series))
    _print_skipped(matrix)
    _print_execution(matrix, args.verbose)
    return 0


def _serve_traces(duration_s: float) -> Dict[str, Trace]:
    """The serve-bench trace registry over the standard corpora."""
    from repro.traces.library import audio_corpus, human_corpus, robot_corpus
    traces = (
        robot_corpus(duration_s=duration_s)[:3]
        + audio_corpus(duration_s=duration_s)
        + human_corpus(duration_s=duration_s)
    )
    return {trace.name: trace for trace in traces}


def cmd_serve_bench(args: argparse.Namespace) -> int:
    """Run the deterministic fleet load generator against the service."""
    from repro.apps import all_applications
    from repro.errors import ServiceKilled
    from repro.serve import (
        ConditionService,
        LoadSpec,
        ServiceFaultPlan,
        TenantQuota,
        fleet_workload,
        response_digest,
        run_fleet,
        run_fleet_with_recovery,
    )
    if args.stream:
        return _serve_bench_stream(args)
    if args.shards is not None or args.open_loop is not None:
        return _serve_bench_cluster(args)
    if args.kill_shard is not None:
        print("--kill-shard requires --shards", file=sys.stderr)
        return 2
    if (args.kill_after or args.recover) and not args.journal:
        print("--kill-after / --recover require --journal", file=sys.stderr)
        return 2
    duration = 120.0 if args.quick else args.duration
    traces = _serve_traces(duration)
    spec = LoadSpec(
        fleet=args.fleet,
        seed=args.seed,
        min_submissions=1,
        max_submissions=2 if args.quick else 3,
    )
    apps = all_applications()
    submissions = fleet_workload(spec, apps, list(traces.values()))
    service_kwargs = dict(
        quota=TenantQuota(max_pending=args.max_pending),
        capacity=args.capacity,
        jobs=args.jobs,
    )
    cost_model = _load_cost_table(args)
    context = None
    if args.no_batch or args.no_shape_batch or cost_model is not None:
        from repro.sim.engine import RunContext

        context = RunContext(
            batch=not args.no_batch,
            shape_batch=not args.no_shape_batch,
            cost_model=cost_model,
        )
        service_kwargs["context"] = context
    faults = (
        ServiceFaultPlan(kill_after_accepts=args.kill_after)
        if args.kill_after
        else None
    )
    service = ConditionService(
        traces, journal=args.journal, faults=faults, **service_kwargs
    )
    stats = None
    if args.recover:
        report, stats, service = run_fleet_with_recovery(
            service,
            submissions,
            traces,
            args.journal,
            pump_every=args.pump_every,
            recover_kwargs=service_kwargs,
        )
        service.shutdown()
    else:
        try:
            report = run_fleet(
                service, submissions, pump_every=args.pump_every
            )
        except ServiceKilled as error:
            print(
                f"{error}; journal preserved at {args.journal} "
                "(rerun with --recover to resume)"
            )
            return 1
        finally:
            service.shutdown()
    print(
        f"fleet {args.fleet} devices | workload {len(submissions)} "
        f"submissions (seed {args.seed})"
    )
    print(report.metrics.describe())
    if stats is not None:
        print(f"recovery: {stats.describe()}")
    print(
        f"wall {report.wall_s:.2f} s | sustained "
        f"{report.submissions_per_second:,.0f} submissions/s"
    )
    if args.digest:
        print(f"digest {response_digest(report.responses)}")
    if args.cost_table and context is not None:
        context.cost_model.save(Path(args.cost_table))
        print(f"wrote cost table to {args.cost_table}")
    return 0


def _load_cost_table(args: argparse.Namespace):
    """The calibrated cost model from ``--cost-table``, if the file exists.

    A missing file is not an error: the flag then means "save the model
    learned during this run here", so the *next* run starts calibrated
    (tier choices and shape-batching decisions settle without probing).
    """
    if not getattr(args, "cost_table", None):
        return None
    from repro.hub.costmodel import CostModel

    path = Path(args.cost_table)
    if path.exists():
        return CostModel.load(path)
    return CostModel()


def _serve_bench_cluster(args: argparse.Namespace) -> int:
    """serve-bench over a shard cluster (``--shards`` / ``--open-loop``).

    Closed-loop by default (the cluster analogue of the single-service
    drive); ``--open-loop RATE`` switches to the Poisson-arrival
    overload sweep on simulated time.  ``--digest`` prints the
    **completion digest** — the topology-independent content hash that
    is equal across shard counts — not the single-service response
    digest (which bakes in per-shard ticket ids and can only ever
    match itself).
    """
    from repro.apps import all_applications
    from repro.serve import (
        LoadSpec,
        ServiceFaultPlan,
        ShardCluster,
        TenantQuota,
        completion_digest,
        fleet_workload,
        run_cluster_fleet,
        run_cluster_fleet_with_recovery,
    )
    shards = args.shards if args.shards is not None else 1
    if args.kill_shard is not None and not (0 <= args.kill_shard < shards):
        print(f"--kill-shard must be in [0, {shards})", file=sys.stderr)
        return 2
    if args.kill_shard is not None and not args.journal:
        print("--kill-shard requires --journal (a directory of "
              "per-shard journals)", file=sys.stderr)
        return 2
    duration = 120.0 if args.quick else args.duration
    traces = _serve_traces(duration)
    spec = LoadSpec(
        fleet=args.fleet,
        seed=args.seed,
        min_submissions=1,
        max_submissions=2 if args.quick else 3,
    )
    if args.open_loop is not None:
        return _serve_bench_open_loop(args, shards, traces, spec)
    submissions = fleet_workload(spec, all_applications(), list(traces.values()))
    cluster_kwargs: Dict[str, object] = dict(
        quota=TenantQuota(max_pending=args.max_pending),
        capacity=args.capacity,
        jobs=args.jobs,
        shards=shards,
    )
    cost_model = _load_cost_table(args)
    if args.no_batch or args.no_shape_batch or cost_model is not None:
        from repro.sim.engine import RunContext

        # Shards share one cost model (they pump sequentially in one
        # process), so batch-size samples pool across the cluster.
        cluster_kwargs["context_factory"] = lambda: RunContext(
            batch=not args.no_batch,
            shape_batch=not args.no_shape_batch,
            cost_model=cost_model,
        )
    faults = None
    if args.kill_shard is not None:
        faults = {
            args.kill_shard: ServiceFaultPlan(
                kill_at_pump=args.kill_after or 1,
                kill_pump_phase="store",
            )
        }
    cluster = ShardCluster(
        traces, journal_dir=args.journal, faults=faults, **cluster_kwargs
    )
    stats = {}
    try:
        if args.kill_shard is not None:
            report, stats = run_cluster_fleet_with_recovery(
                cluster, submissions, pump_every=args.pump_every
            )
        else:
            report = run_cluster_fleet(
                cluster, submissions, pump_every=args.pump_every
            )
    finally:
        cluster.shutdown()
    print(
        f"fleet {args.fleet} devices | {shards} shard(s) | workload "
        f"{len(submissions)} submissions (seed {args.seed})"
    )
    print(report.metrics.describe())
    for shard in sorted(stats):
        print(f"shard {shard} recovery: {stats[shard].describe()}")
    print(
        f"wall {report.wall_s:.2f} s | sustained "
        f"{report.submissions_per_second:,.0f} submissions/s"
    )
    if args.digest:
        print(f"digest {completion_digest(report.pairs)}")
    if args.cost_table and cost_model is not None:
        cost_model.save(Path(args.cost_table))
        print(f"wrote cost table to {args.cost_table}")
    return 0


def _serve_bench_stream(args: argparse.Namespace) -> int:
    """The ``--stream`` benchmark: streamed ingestion vs whole-trace replay.

    Drives one seeded streamed fleet (devices pushing chunks round by
    round through intermittent connectivity, subscriptions evaluating
    incrementally) and then the replay reference (the same fleet's
    chunks assembled into whole traces, the same conditions submitted
    as ordinary raw-IL work) through fresh clusters of the same shard
    count.  The two drives must produce **digest-identical** wake
    events — the exit code reflects it — and the report compares
    goodput and batched-tier occupancy between the paths.  With
    ``--kill-shard`` the named shard is fault-killed mid-stream and
    rebuilt from its journal; the digest must still match.  ``--out``
    merges the comparison into a JSON artifact (``stream`` key).
    """
    from repro.serve import (
        ServiceFaultPlan,
        ShardCluster,
        StreamLoadSpec,
        completion_digest,
        run_cluster_fleet,
        run_stream_fleet,
        stream_fleet_plan,
        stream_replay_workload,
    )
    shards = args.shards if args.shards is not None else 1
    if args.kill_shard is not None and not (0 <= args.kill_shard < shards):
        print(f"--kill-shard must be in [0, {shards})", file=sys.stderr)
        return 2
    if args.kill_shard is not None and not args.journal:
        print("--kill-shard requires --journal (a directory of "
              "per-shard journals)", file=sys.stderr)
        return 2
    spec = StreamLoadSpec(
        fleet=args.fleet,
        seed=args.seed,
        duration_s=16.0 if args.quick else args.stream_duration,
    )
    plans = stream_fleet_plan(spec)

    faults = None
    if args.kill_shard is not None:
        # Stream-only pump rounds run no submissions, so only the
        # "begin" fault hook (right after the round's journal flush)
        # is reached — the "store" phase used by the submission-path
        # kill benchmark would never fire here.
        faults = {
            args.kill_shard: ServiceFaultPlan(
                kill_at_pump=args.kill_after or 1,
                kill_pump_phase="begin",
            )
        }
    cluster = ShardCluster(
        traces={},
        shards=shards,
        jobs=args.jobs,
        journal_dir=args.journal,
        faults=faults,
    )
    try:
        streamed = run_stream_fleet(
            cluster, plans, spec, recover=args.kill_shard is not None
        )
    finally:
        cluster.shutdown()
    stream_digest = streamed.digest()
    stream_metrics = streamed.metrics.merged

    traces, submissions = stream_replay_workload(plans)
    replay_cluster = ShardCluster(traces, shards=shards, jobs=args.jobs)
    try:
        replay = run_cluster_fleet(
            replay_cluster, submissions, pump_every=args.pump_every
        )
    finally:
        replay_cluster.shutdown()
    replay_digest = completion_digest(replay.pairs)
    replay_metrics = replay.metrics.merged

    identical = stream_digest == replay_digest
    stream_goodput = (
        streamed.wake_events / streamed.wall_s if streamed.wall_s else 0.0
    )
    replay_events = sum(
        len(response.result) for response in replay.completed
    )
    replay_goodput = replay_events / replay.wall_s if replay.wall_s else 0.0
    print(
        f"stream fleet {spec.fleet} devices | {shards} shard(s) | "
        f"{spec.rounds} rounds of {spec.chunk_interval_s:g} s chunks "
        f"(seed {args.seed})"
    )
    print(
        f"streamed: {streamed.subscriptions} subs | "
        f"{streamed.chunks_pushed} chunks ({streamed.deferred_chunks} "
        f"deferred) | {streamed.wake_events} events | "
        f"wall {streamed.wall_s:.2f} s | {stream_goodput:,.0f} events/s | "
        f"occupancy {stream_metrics.stream_occupancy:.1f}"
    )
    print(
        f"replay:   {len(replay.completed)} completions | "
        f"{replay_events} events | wall {replay.wall_s:.2f} s | "
        f"{replay_goodput:,.0f} events/s | "
        f"occupancy {replay_metrics.batch_occupancy:.1f}"
    )
    for shard, times in sorted(streamed.recoveries.items()):
        print(f"shard {shard}: killed and recovered x{times} mid-stream")
    print(f"streamed vs replay: {'IDENTICAL' if identical else 'MISMATCH'}")
    if args.digest:
        print(f"digest {stream_digest}")
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        payload: Dict[str, object] = {}
        if out.exists():
            payload = json.loads(out.read_text())
        payload["stream"] = {
            "fleet": spec.fleet,
            "shards": shards,
            "seed": args.seed,
            "duration_s": spec.duration_s,
            "chunk_interval_s": spec.chunk_interval_s,
            "rounds": spec.rounds,
            "identical": identical,
            "stream_digest": stream_digest,
            "replay_digest": replay_digest,
            "streamed": {
                **streamed.as_dict(),
                "goodput_events_per_s": stream_goodput,
                "occupancy": stream_metrics.stream_occupancy,
            },
            "replay": {
                **replay.as_dict(),
                "wake_events": replay_events,
                "goodput_events_per_s": replay_goodput,
                "occupancy": replay_metrics.batch_occupancy,
            },
            "occupancy_streamed_ge_replay": (
                stream_metrics.stream_occupancy
                >= replay_metrics.batch_occupancy
            ),
        }
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote stream benchmark to {out}")
    return 0 if identical else 1


def _serve_bench_open_loop(
    args: argparse.Namespace,
    shards: int,
    traces: Dict[str, Trace],
    spec,
) -> int:
    """The ``--open-loop RATE`` overload sweep (simulated time).

    Sweeps offered load across fixed multipliers of RATE, one fresh
    cluster per point, and prints goodput plus p50/p90/p99/p99.9
    latency (simulated seconds) per point.  ``--out`` merges the sweep
    into a JSON artifact (``open_loop`` key).
    """
    from repro.serve import (
        OpenLoopSpec,
        ShardCluster,
        TenantQuota,
        overload_sweep,
    )
    rate = args.open_loop
    if rate <= 0:
        print("--open-loop RATE must be positive", file=sys.stderr)
        return 2
    multipliers = (0.25, 0.5, 0.75, 1.0, 1.25, 1.5)
    rates = [rate * m for m in multipliers]
    # Quotas out of the way: the bounded queue is the overload
    # mechanism under study, not per-tenant budgets.
    quota = TenantQuota(max_pending=1_000_000, max_submissions=10_000_000)

    def make_cluster(clock):
        return ShardCluster(
            traces,
            quota=quota,
            capacity=args.capacity,
            jobs=args.jobs,
            shards=shards,
            clock_factory=lambda: clock,
        )

    ospec = OpenLoopSpec(
        rate=rate,
        duration_s=args.open_loop_duration,
        seed=args.seed,
        pump_interval_s=1.0,
        load=spec,
    )
    reports = overload_sweep(make_cluster, ospec, rates)
    print(
        f"open-loop sweep | {shards} shard(s) | fleet {spec.fleet} | "
        f"{args.open_loop_duration:g} simulated s per point"
    )
    header = (
        f"{'rate':>8} {'arrived':>8} {'accepted':>8} {'shed':>6} "
        f"{'goodput':>8} {'p50':>7} {'p90':>7} {'p99':>7} {'p99.9':>7}"
    )
    print(header)
    for report in reports:
        print(
            f"{report.offered_rate:8.1f} {report.arrivals:8d} "
            f"{report.accepted:8d} {report.shed_total:6d} "
            f"{report.goodput:8.1f} {report.latency_p50:7.2f} "
            f"{report.latency_p90:7.2f} {report.latency_p99:7.2f} "
            f"{report.latency_p999:7.2f}"
        )
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        payload: Dict[str, object] = {}
        if out.exists():
            payload = json.loads(out.read_text())
        payload["open_loop"] = {
            "shards": shards,
            "fleet": spec.fleet,
            "seed": args.seed,
            "duration_s": args.open_loop_duration,
            "pump_interval_s": 1.0,
            "sweep": [report.as_dict() for report in reports],
        }
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote open-loop sweep to {out}")
    return 0


def cmd_merge(args: argparse.Namespace) -> int:
    """Merge several apps' conditions and report the sharing."""
    from repro.hub.merge import merge_programs, merged_cycles_per_second
    apps = _apps_by_name()
    names = [name.strip() for name in args.apps.split(",")]
    unknown = [n for n in names if n not in apps]
    if unknown:
        print(f"unknown applications {unknown}; choose from {sorted(apps)}",
              file=sys.stderr)
        return 2
    programs = [
        compile_pipeline(apps[name].build_wakeup_pipeline()) for name in names
    ]
    separate = sum(validate_program(p).total_cycles_per_second for p in programs)
    merged = merge_programs(programs)
    merged_load = merged_cycles_per_second(merged)
    print(format_program(merged.program))
    print(f"# taps: {dict(zip(names, merged.taps))}")
    print(f"# nodes {merged.original_node_count} -> {merged.node_count} "
          f"(shared {merged.shared_nodes})")
    if separate > 0:
        print(f"# hub load {separate / 1e6:.2f}M -> {merged_load / 1e6:.2f}M "
              f"cycles/s ({1 - merged_load / separate:.0%} saved)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sidewinder (ASPLOS 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("inventory", help="list sensors, algorithms and apps")

    p = sub.add_parser("compile", help="show an app's wake-up condition IL")
    p.add_argument("--app", required=True)
    p.add_argument("--diagram", action="store_true",
                   help="also draw the Figure 2b-style conceptual tree")

    p = sub.add_parser("simulate", help="run one simulation")
    p.add_argument("--app", required=True)
    p.add_argument("--config", default="sidewinder")
    p.add_argument("--trace", default="robot:1",
                   help="robot[:group] | human[:scenario] | audio[:environment]")
    p.add_argument("--duration", type=float, default=600.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sleep-interval", type=float, default=10.0)

    p = sub.add_parser("trace", help="generate and save a synthetic trace")
    p.add_argument("--kind", required=True,
                   help="robot[:group] | human[:scenario] | audio[:environment]")
    p.add_argument("--duration", type=float, default=600.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)

    sub.add_parser("table1", help="print Table 1")
    for name, default in (("table2", 600.0), ("figure5", 600.0),
                          ("figure6", 600.0), ("figure7", 1200.0)):
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--duration", type=float, default=default)
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sweep (default 1)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the engine's run caching")
        p.add_argument("--no-fuse", action="store_true",
                       help="disable the fused hub fast path (results "
                            "are identical; this is an escape hatch)")
        p.add_argument("--no-compile", action="store_true",
                       help="disable the compiled whole-trace hub path "
                            "(results are identical; this is an escape "
                            "hatch)")
        p.add_argument("--no-batch", action="store_true",
                       help="disable tensor-major batching of "
                            "same-condition cells (results are "
                            "identical; this is an escape hatch)")
        p.add_argument("--no-shape-batch", action="store_true",
                       help="disable shape-keyed batching across "
                            "conditions that share a graph shape "
                            "(results are identical; this is an "
                            "escape hatch)")
        p.add_argument("--verbose", action="store_true",
                       help="also report the engine's serial/pool "
                            "decision and RunContext cache counters")

    p = sub.add_parser(
        "serve-bench",
        help="drive the fleet condition service with a seeded workload",
    )
    p.add_argument("--fleet", type=int, default=100,
                   help="number of simulated devices (default 100)")
    p.add_argument("--seed", type=int, default=0,
                   help="workload seed (default 0)")
    p.add_argument("--duration", type=float, default=600.0,
                   help="registry trace length in seconds (default 600)")
    p.add_argument("--quick", action="store_true",
                   help="short traces and fewer submissions per device")
    p.add_argument("--jobs", type=int, default=1,
                   help="engine worker processes (default 1)")
    p.add_argument("--capacity", type=int, default=512,
                   help="service queue capacity (default 512)")
    p.add_argument("--max-pending", type=int, default=8,
                   help="per-tenant pending quota (default 8)")
    p.add_argument("--pump-every", type=int, default=32,
                   help="run a scheduling round every N submissions")
    p.add_argument("--no-batch", action="store_true",
                   help="disable tensor-major batching across "
                        "tenants/traces (results are identical; this "
                        "is an escape hatch)")
    p.add_argument("--no-shape-batch", action="store_true",
                   help="disable shape-keyed batching across "
                        "differently parameterized conditions that "
                        "share a graph shape (results are identical; "
                        "this is an escape hatch)")
    p.add_argument("--cost-table", metavar="PATH",
                   help="load a persisted cost model from PATH if it "
                        "exists and save the (updated) model there "
                        "after the run, so tier and shape-batching "
                        "choices start calibrated next time")
    p.add_argument("--journal", metavar="PATH",
                   help="write-ahead journal path (enables durability); "
                        "with --shards, a directory of per-shard "
                        "journals (shard-00.wal, ...)")
    p.add_argument("--kill-after", type=int, metavar="N",
                   help="fault-inject: kill the service after N accepted "
                        "submissions (requires --journal); with "
                        "--kill-shard, the pump round the shard dies in")
    p.add_argument("--recover", action="store_true",
                   help="recover killed services from the journal and "
                        "finish the workload (requires --journal)")
    p.add_argument("--digest", action="store_true",
                   help="print an order-insensitive SHA-256 digest of "
                        "all terminal responses; with --shards, the "
                        "topology-independent completion digest "
                        "(equal across shard counts)")
    p.add_argument("--shards", type=int, metavar="N",
                   help="serve through a cluster of N rendezvous-routed "
                        "shards, each with its own scheduler, engine "
                        "context, pool and journal")
    p.add_argument("--kill-shard", type=int, metavar="I",
                   help="fault-inject: kill shard I at pump round "
                        "--kill-after (default 1) and recover it from "
                        "its own journal while the rest keep serving "
                        "(requires --shards and --journal)")
    p.add_argument("--open-loop", type=float, metavar="RATE",
                   help="open-loop mode: sweep Poisson arrivals on "
                        "simulated time at multiples of RATE "
                        "(arrivals/simulated second), reporting "
                        "goodput and p50/p90/p99/p99.9 tail latency "
                        "per offered load")
    p.add_argument("--open-loop-duration", type=float, default=64.0,
                   metavar="S",
                   help="simulated seconds of arrivals per sweep point "
                        "(default 64)")
    p.add_argument("--stream", action="store_true",
                   help="streaming mode: devices push sensor chunks "
                        "round by round and subscriptions evaluate "
                        "incrementally; compares goodput, batched-tier "
                        "occupancy and wake-event digests against the "
                        "whole-trace replay of the same fleet (exit 1 "
                        "on digest mismatch)")
    p.add_argument("--stream-duration", type=float, default=64.0,
                   metavar="S",
                   help="with --stream, seconds of sensor data each "
                        "device produces (default 64; --quick uses 16)")
    p.add_argument("--out", metavar="PATH",
                   help="with --open-loop or --stream, merge the report "
                        "into this JSON artifact (open_loop / stream "
                        "key)")

    p = sub.add_parser("merge", help="merge several apps' conditions")
    p.add_argument("--apps", required=True,
                   help="comma-separated application names")

    return parser


_COMMANDS = {
    "inventory": cmd_inventory,
    "compile": cmd_compile,
    "simulate": cmd_simulate,
    "trace": cmd_trace,
    "table1": cmd_table1,
    "table2": cmd_table2,
    "figure5": cmd_figure5,
    "figure6": cmd_figure6,
    "figure7": cmd_figure7,
    "merge": cmd_merge,
    "serve-bench": cmd_serve_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except SidewinderError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
