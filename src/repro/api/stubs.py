"""Algorithm stubs: the API-level placeholders for hub algorithms.

"At the API level, these algorithms are simply stubs that represent the
algorithm implementations at the low-power processor level"
(Section 3.2).  A stub records the opcode and parameters; parameters are
validated eagerly (by constructing the hub implementation once and
discarding it) so that developers get errors at condition-construction
time, not when the condition is pushed.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.algorithms.base import create


class AlgorithmStub:
    """Base class for all API-level algorithm stubs.

    Attributes:
        opcode: The intermediate-language opcode the stub compiles to.
        params: Keyword parameters forwarded to the hub implementation.
    """

    opcode: str = ""

    def __init__(self, **params: Any):
        # Drop parameters left at None so the hub implementation's own
        # defaults apply and the IL stays minimal.
        self.params: Dict[str, Any] = {k: v for k, v in params.items() if v is not None}
        create(self.opcode, **self.params)  # eager validation

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.params.items())
        return f"{type(self).__name__}({args})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AlgorithmStub)
            and self.opcode == other.opcode
            and self.params == other.params
        )

    def __hash__(self) -> int:
        return hash((self.opcode, tuple(sorted(self.params.items()))))


class MovingAverage(AlgorithmStub):
    """Sliding-window mean; no output until ``size`` samples arrived."""

    opcode = "movingAvg"

    def __init__(self, size: int):
        super().__init__(size=size)


class ExponentialMovingAverage(AlgorithmStub):
    """First-order IIR smoother with factor ``alpha`` in ``(0, 1]``."""

    opcode = "expMovingAvg"

    def __init__(self, alpha: float):
        super().__init__(alpha=alpha)


class Window(AlgorithmStub):
    """Partition a scalar stream into frames of ``size`` samples."""

    opcode = "window"

    def __init__(self, size: int, hop: int | None = None, shape: str = "rectangular"):
        super().__init__(size=size, hop=hop, shape=shape)


class FFT(AlgorithmStub):
    """Transform frames to one-sided complex spectra."""

    opcode = "fft"


class IFFT(AlgorithmStub):
    """Transform spectra back to time-domain frames."""

    opcode = "ifft"


class LowPass(AlgorithmStub):
    """FFT-based low-pass filter over frames."""

    opcode = "lowPass"

    def __init__(self, cutoff_hz: float):
        super().__init__(cutoff_hz=cutoff_hz)


class HighPass(AlgorithmStub):
    """FFT-based high-pass filter over frames."""

    opcode = "highPass"

    def __init__(self, cutoff_hz: float):
        super().__init__(cutoff_hz=cutoff_hz)


class VectorMagnitude(AlgorithmStub):
    """Euclidean magnitude across all open branches."""

    opcode = "vectorMagnitude"


class ZeroCrossingRate(AlgorithmStub):
    """Per-frame zero-crossing rate in ``[0, 1]``."""

    opcode = "zeroCrossingRate"


class Statistic(AlgorithmStub):
    """Per-frame statistic (``mean``, ``variance``, ``rms``, ...)."""

    opcode = "stat"

    def __init__(self, name: str):
        super().__init__(name=name)


class DominantFrequency(AlgorithmStub):
    """Dominant-bin magnitude, frequency, or prominence ratio."""

    opcode = "dominantFrequency"

    def __init__(self, mode: str = "magnitude", min_hz: float = 0.0, max_hz: float | None = None):
        super().__init__(mode=mode, min_hz=min_hz, max_hz=max_hz)


class MinThreshold(AlgorithmStub):
    """Admission control: pass values >= ``threshold``."""

    opcode = "minThreshold"

    def __init__(self, threshold: float):
        super().__init__(threshold=threshold)


class MaxThreshold(AlgorithmStub):
    """Admission control: pass values <= ``threshold``."""

    opcode = "maxThreshold"

    def __init__(self, threshold: float):
        super().__init__(threshold=threshold)


class RangeThreshold(AlgorithmStub):
    """Admission control: pass values in ``[low, high]``."""

    opcode = "rangeThreshold"

    def __init__(self, low: float, high: float):
        super().__init__(low=low, high=high)


class SustainedThreshold(AlgorithmStub):
    """Admission control with a persistence requirement."""

    opcode = "sustainedThreshold"

    def __init__(self, threshold: float, count: int):
        super().__init__(threshold=threshold, count=count)


class LocalExtrema(AlgorithmStub):
    """Streaming local maxima/minima within an amplitude band."""

    opcode = "localExtrema"

    def __init__(self, mode: str, low: float, high: float, min_separation: int = 1):
        super().__init__(mode=mode, low=low, high=high, min_separation=min_separation)


class BandIndicator(AlgorithmStub):
    """Alignment-preserving band check: emits 1.0 in band, else 0.0."""

    opcode = "bandIndicator"

    def __init__(self, low: float, high: float):
        super().__init__(low=low, high=high)


class MinOf(AlgorithmStub):
    """Element-wise minimum across all open branches (AND over indicators)."""

    opcode = "minOf"


class MaxOf(AlgorithmStub):
    """Element-wise maximum across all open branches (OR over indicators)."""

    opcode = "maxOf"


class SumOf(AlgorithmStub):
    """Element-wise sum across all open branches."""

    opcode = "sumOf"


class MeanOf(AlgorithmStub):
    """Element-wise mean across all open branches."""

    opcode = "meanOf"
