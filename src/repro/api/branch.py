"""Processing branches: one sensor channel through a chain of algorithms.

"Branches represent the flow of data from either a sensor to an
algorithm or between two algorithms" (Section 3.2).  In this API a
branch is anchored to one sensor channel and carries an ordered chain of
algorithm stubs; branches are later joined by pipeline-level aggregation
algorithms.
"""

from __future__ import annotations

from typing import List, Union

from repro.api.stubs import AlgorithmStub
from repro.errors import PipelineError
from repro.sensors.channels import SensorChannel, channel_by_name


class ProcessingBranch:
    """A chain of algorithms fed by one sensor channel.

    Args:
        source: The sensor channel feeding the branch, given either as a
            :class:`~repro.sensors.channels.SensorChannel` or its IL name
            (e.g. ``"ACC_X"``).

    ``add`` returns the branch so chains read fluently::

        branch = ProcessingBranch(ACC_X).add(MovingAverage(10))
    """

    def __init__(self, source: Union[SensorChannel, str]):
        if isinstance(source, str):
            source = channel_by_name(source)
        if not isinstance(source, SensorChannel):
            raise PipelineError(
                f"branch source must be a SensorChannel or channel name, "
                f"got {type(source).__name__}"
            )
        self.source = source
        self.algorithms: List[AlgorithmStub] = []

    def add(self, algorithm: AlgorithmStub) -> "ProcessingBranch":
        """Append an algorithm to the end of this branch."""
        if not isinstance(algorithm, AlgorithmStub):
            raise PipelineError(
                f"expected an algorithm stub, got {type(algorithm).__name__}"
            )
        self.algorithms.append(algorithm)
        return self

    def __repr__(self) -> str:
        chain = " -> ".join([self.source.name] + [repr(a) for a in self.algorithms])
        return f"ProcessingBranch({chain})"
