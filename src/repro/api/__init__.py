"""Developer-facing Sidewinder API (paper Section 3.2, Figure 2a).

Application developers build custom wake-up conditions out of four
pieces, mirroring the paper's Java API:

* :class:`~repro.api.pipeline.ProcessingPipeline` — the whole wake-up
  condition, from input sensors to the final output;
* :class:`~repro.api.branch.ProcessingBranch` — a flow of data from one
  sensor channel through a chain of algorithms;
* algorithm stubs (:mod:`repro.api.stubs`) — parameterized placeholders
  for the processing algorithms implemented on the hub;
* :class:`~repro.api.listener.SensorEventListener` — the callback
  invoked on the main processor when the condition fires.

The condition is registered through
:class:`~repro.api.manager.SidewinderSensorManager`, which compiles it to
the intermediate language and pushes it to the low-power sensor hub.

Example (the paper's significant-motion condition)::

    pipeline = ProcessingPipeline()
    for channel in (manager.ACCELEROMETER_X,
                    manager.ACCELEROMETER_Y,
                    manager.ACCELEROMETER_Z):
        pipeline.add(ProcessingBranch(channel).add(MovingAverage(10)))
    pipeline.add(VectorMagnitude())
    pipeline.add(MinThreshold(15))
    handle = manager.push(pipeline, listener)
"""

from repro.api.branch import ProcessingBranch
from repro.api.compile import compile_pipeline
from repro.api.listener import SensorEvent, SensorEventListener
from repro.api.manager import (
    SidewinderSensorManager,
    WakeUpHandle,
    validate_condition,
)
from repro.api.pipeline import ProcessingPipeline
from repro.api.stubs import (
    FFT,
    IFFT,
    AlgorithmStub,
    BandIndicator,
    DominantFrequency,
    ExponentialMovingAverage,
    HighPass,
    LocalExtrema,
    LowPass,
    MaxOf,
    MaxThreshold,
    MeanOf,
    MinOf,
    MinThreshold,
    MovingAverage,
    RangeThreshold,
    Statistic,
    SumOf,
    SustainedThreshold,
    VectorMagnitude,
    Window,
    ZeroCrossingRate,
)

__all__ = [
    "FFT",
    "IFFT",
    "AlgorithmStub",
    "BandIndicator",
    "MaxOf",
    "MeanOf",
    "MinOf",
    "SumOf",
    "DominantFrequency",
    "ExponentialMovingAverage",
    "HighPass",
    "LocalExtrema",
    "LowPass",
    "MaxThreshold",
    "MinThreshold",
    "MovingAverage",
    "ProcessingBranch",
    "ProcessingPipeline",
    "RangeThreshold",
    "SensorEvent",
    "SensorEventListener",
    "SidewinderSensorManager",
    "Statistic",
    "SustainedThreshold",
    "VectorMagnitude",
    "WakeUpHandle",
    "Window",
    "ZeroCrossingRate",
    "compile_pipeline",
    "validate_condition",
]
