"""Processing pipelines: the whole wake-up condition.

"This represents the entire wake-up condition from the input sensors to
the final output.  The pipeline consists of one or more processing
branches" (Section 3.2).  The order in which branches and algorithms are
added specifies how they chain together (Figure 2a): branches open
parallel data flows; each pipeline-level algorithm consumes the currently
open flow(s) and leaves exactly one open flow behind it.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

from repro.api.branch import ProcessingBranch
from repro.api.stubs import AlgorithmStub
from repro.errors import PipelineError

_Addable = Union[ProcessingBranch, AlgorithmStub, Sequence[ProcessingBranch]]


class ProcessingPipeline:
    """Ordered composition of branches and joining algorithms.

    Items are added in dataflow order.  Branches must come first (they
    anchor the pipeline to sensor channels); pipeline-level algorithms
    then consume *all* branches open at that point:

    * a variadic algorithm (e.g. ``VectorMagnitude``) merges every open
      branch into one;
    * a single-input algorithm is only legal while exactly one branch is
      open.

    The pipeline is complete when exactly one branch remains open; the
    last algorithm's emissions reach ``OUT``.
    """

    def __init__(self):
        self.branches: List[ProcessingBranch] = []
        self.stages: List[AlgorithmStub] = []

    def add(self, item: _Addable) -> "ProcessingPipeline":
        """Add a branch, a list of branches, or a pipeline-level algorithm."""
        if isinstance(item, ProcessingBranch):
            self._add_branch(item)
        elif isinstance(item, AlgorithmStub):
            self.stages.append(item)
        elif isinstance(item, Iterable):
            for branch in item:
                self._add_branch(branch)
        else:
            raise PipelineError(
                f"cannot add {type(item).__name__} to a pipeline; expected a "
                "ProcessingBranch, an algorithm stub, or a list of branches"
            )
        return self

    def _add_branch(self, branch: ProcessingBranch) -> None:
        if not isinstance(branch, ProcessingBranch):
            raise PipelineError(
                f"expected a ProcessingBranch, got {type(branch).__name__}"
            )
        if self.stages:
            raise PipelineError(
                "branches must be added before pipeline-level algorithms"
            )
        self.branches.append(branch)

    def __repr__(self) -> str:
        return (
            f"ProcessingPipeline(branches={len(self.branches)}, "
            f"stages={len(self.stages)})"
        )
