"""Compilation of pipelines to the intermediate language.

"Upon receiving a wake-up condition configuration, the sensor manager
generates its associated intermediate code" (Section 3.3).  Node ids are
assigned in dataflow order starting at 1, matching Figure 2c's numbering
(branch algorithms first, in branch order, then the joining stages).
"""

from __future__ import annotations

from typing import List

from repro.algorithms.base import PORT_VARIADIC, get_algorithm_class
from repro.api.pipeline import ProcessingPipeline
from repro.errors import CompileError
from repro.il.ast import ChannelRef, ILProgram, ILStatement, NodeRef, SourceRef


def compile_pipeline(pipeline: ProcessingPipeline) -> ILProgram:
    """Translate a :class:`ProcessingPipeline` to an :class:`ILProgram`.

    Raises:
        CompileError: if the pipeline has no branches, a single-input
            stage is applied while several branches are open, or the
            pipeline does not end with exactly one open branch.
    """
    if not pipeline.branches:
        raise CompileError("pipeline has no branches; add at least one sensor branch")

    statements: List[ILStatement] = []
    next_id = 1

    def emit(inputs: List[SourceRef], opcode: str, params: dict) -> NodeRef:
        nonlocal next_id
        statements.append(ILStatement.make(tuple(inputs), opcode, next_id, params))
        ref = NodeRef(next_id)
        next_id += 1
        return ref

    # Branch-local chains.
    open_flows: List[SourceRef] = []
    for branch in pipeline.branches:
        head: SourceRef = ChannelRef(branch.source.name)
        for stub in branch.algorithms:
            cls = get_algorithm_class(stub.opcode)
            if cls.n_inputs not in (1, PORT_VARIADIC):
                raise CompileError(
                    f"{stub.opcode} cannot appear inside a branch: it takes "
                    f"{cls.n_inputs} inputs"
                )
            head = emit([head], stub.opcode, stub.params)
        open_flows.append(head)

    # Pipeline-level joining stages.
    for stub in pipeline.stages:
        cls = get_algorithm_class(stub.opcode)
        if cls.n_inputs == PORT_VARIADIC:
            consumed = list(open_flows)
        else:
            if len(open_flows) != cls.n_inputs:
                raise CompileError(
                    f"{stub.opcode} expects {cls.n_inputs} input branch(es) but "
                    f"{len(open_flows)} are open; insert an aggregation "
                    "algorithm (e.g. VectorMagnitude) first"
                )
            consumed = list(open_flows)
        open_flows = [emit(consumed, stub.opcode, stub.params)]

    if len(open_flows) != 1:
        raise CompileError(
            f"pipeline ends with {len(open_flows)} open branches; it must "
            "converge to exactly one (aggregate the branches before OUT)"
        )
    (out,) = open_flows
    if not isinstance(out, NodeRef):
        raise CompileError(
            "pipeline routes a raw sensor channel straight to OUT; add at "
            "least one algorithm"
        )
    return ILProgram(tuple(statements), out)
