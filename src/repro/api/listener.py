"""Sensor event listeners: the wake-up callback.

"This is a callback method that is registered with the sensor manager
that will be called when the custom wake-up condition is satisfied"
(Section 3.2).  When the condition fires, the hub wakes the main
processor and delivers a :class:`SensorEvent` carrying the value that
reached ``OUT`` plus a buffer of raw sensor data (Section 3.8: "Our
current implementation passes a buffer of raw sensor data to the
application").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class SensorEvent:
    """Delivered to the application when its wake-up condition fires.

    Attributes:
        timestamp: Trace time (seconds) of the item that reached ``OUT``.
        value: The item's value (e.g. the smoothed magnitude that
            crossed the admission threshold).
        raw_data: Per-channel buffer of recent raw sensor samples,
            keyed by channel name.  Empty unless the condition was
            pushed with RAW delivery (the default).
        features: Recent output items of the chosen intermediate node,
            when the condition was pushed with NODE delivery
            (Section 3.8: "others may want to use the filtered data or
            extracted features").
    """

    timestamp: float
    value: float
    raw_data: Dict[str, np.ndarray] = field(default_factory=dict)
    features: Optional[np.ndarray] = None


class SensorEventListener:
    """Interface applications implement to receive wake-up events."""

    def on_sensor_event(self, event: SensorEvent) -> None:
        """Called once per wake-up event, on the main processor."""
        raise NotImplementedError


class RecordingListener(SensorEventListener):
    """Listener that simply records every event it receives.

    Convenient for tests and for the simulator, which replays the
    recorded wake-up times into the device power model.
    """

    def __init__(self):
        self.events: List[SensorEvent] = []

    def on_sensor_event(self, event: SensorEvent) -> None:
        self.events.append(event)

    @property
    def times(self) -> List[float]:
        """Timestamps of all recorded events, in arrival order."""
        return [e.timestamp for e in self.events]
