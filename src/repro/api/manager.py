"""The Sidewinder sensor manager (paper Section 3.1).

Modelled on the Android SensorManager, extended with the wake-up
condition API: it knows the available sensors and processing algorithms,
compiles pipelines to the intermediate language, and pushes them to the
low-power sensor hub.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.algorithms.base import available_opcodes
from repro.api.compile import compile_pipeline
from repro.api.listener import SensorEventListener
from repro.api.pipeline import ProcessingPipeline
from repro.hub.delivery import DeliverySpec
from repro.hub.fpga import HubProcessor, select_processor
from repro.hub.hub import PushedCondition, SensorHub
from repro.hub.mcu import DEFAULT_CATALOG
from repro.il.ast import ILProgram
from repro.il.graph import DataflowGraph
from repro.il.parser import parse_program
from repro.il.text import format_program
from repro.il.validate import validate_program
from repro.sensors.channels import ACC_X, ACC_Y, ACC_Z, MIC, SensorChannel, all_channels

#: What a wake-up condition can arrive as: a developer-built pipeline,
#: an already-compiled program, or the textual IL wire form a remote
#: tenant submits to a fleet service.
ConditionSource = Union[ProcessingPipeline, ILProgram, str]


def validate_condition(
    source: ConditionSource,
    catalog: Sequence[HubProcessor] = DEFAULT_CATALOG,
) -> Tuple[ILProgram, DataflowGraph, HubProcessor]:
    """Everything that can reject a condition, none of the hub residency.

    The shared server-side half of the push path: compile or parse the
    source into an IL program, validate it, and place it on the
    cheapest feasible hub processor.  :meth:`SidewinderSensorManager.push`
    runs submissions through here before handing them to the hub, and
    the fleet serving layer (:mod:`repro.serve`) reuses it verbatim so
    a condition a phone-side manager would reject is rejected by the
    backend for exactly the same reason.

    Returns:
        ``(program, graph, processor)``.

    Raises:
        CompileError / PipelineError: the pipeline cannot be compiled.
        ILSyntaxError: the IL wire form cannot be parsed.
        ILValidationError / ParameterError / UnknownAlgorithmError:
            the program is structurally or semantically invalid.
        FeasibilityError: no catalog processor can run it in real time.
    """
    if isinstance(source, ProcessingPipeline):
        program = compile_pipeline(source)
    elif isinstance(source, str):
        program = parse_program(source)
    else:
        program = source
    graph = validate_program(program)
    processor = select_processor(graph, catalog)
    return program, graph, processor


class WakeUpHandle:
    """Returned by :meth:`SidewinderSensorManager.push`.

    Lets the application inspect the generated intermediate code and
    cancel the condition.

    Attributes:
        program: The compiled intermediate-language program.
        condition: The hub-resident condition (runtime, MCU placement).
    """

    def __init__(self, manager: "SidewinderSensorManager", program: ILProgram,
                 condition: PushedCondition):
        self._manager = manager
        self.program = program
        self.condition = condition

    @property
    def intermediate_code(self) -> str:
        """The condition's textual IL, as pushed to the hub."""
        return format_program(self.program)

    @property
    def mcu_name(self) -> str:
        """Name of the MCU the hub placed the condition on."""
        return self.condition.mcu.name

    def cancel(self) -> None:
        """Remove the condition from the hub."""
        self._manager.hub.remove(self.condition)


class SidewinderSensorManager:
    """Entry point for applications: sensors, algorithms, push/cancel.

    Args:
        hub: The sensor hub to push conditions to.  A fresh simulated
            hub with the default MCU catalog is created when omitted.

    Channel constants mirror the paper's Java API
    (``SidewinderSensorManager.ACCELEROMETER_X`` etc.).
    """

    #: Sensor channel constants, Java-API style.
    ACCELEROMETER_X: SensorChannel = ACC_X
    ACCELEROMETER_Y: SensorChannel = ACC_Y
    ACCELEROMETER_Z: SensorChannel = ACC_Z
    MICROPHONE: SensorChannel = MIC

    def __init__(self, hub: Optional[SensorHub] = None):
        self.hub = hub if hub is not None else SensorHub()
        self._handles: List[WakeUpHandle] = []

    def get_sensor_list(self) -> Tuple[SensorChannel, ...]:
        """The sensor channels this device exposes."""
        return all_channels()

    def get_algorithm_list(self) -> List[str]:
        """Opcodes of the processing algorithms the platform provides."""
        return available_opcodes()

    def push(
        self,
        pipeline: ProcessingPipeline,
        listener: Optional[SensorEventListener] = None,
        delivery: Optional[DeliverySpec] = None,
    ) -> WakeUpHandle:
        """Compile a pipeline and start it on the sensor hub.

        Args:
            pipeline: The wake-up condition.
            listener: Callback fired on wake-ups.
            delivery: What the hub sends with a wake-up (Section 3.8):
                raw buffer (default), trigger item only, or an
                intermediate node's output.

        Raises:
            CompileError / PipelineError: on a malformed pipeline.
            ILValidationError / ParameterError: if validation fails.
            FeasibilityError: if no hub MCU can run the condition.
        """
        program, _, _ = validate_condition(pipeline, self.hub.catalog)
        condition = self.hub.push(program, listener, delivery=delivery)
        handle = WakeUpHandle(self, program, condition)
        self._handles.append(handle)
        return handle

    def push_il(
        self,
        il_text: str,
        listener: Optional[SensorEventListener] = None,
        delivery: Optional[DeliverySpec] = None,
    ) -> WakeUpHandle:
        """Push a condition already in textual IL form (the wire format).

        What a fleet backend replays when a remote tenant submits raw
        IL instead of a pipeline; validation and placement are shared
        with :meth:`push` via :func:`validate_condition`.

        Raises:
            ILSyntaxError: the text cannot be parsed.
            ILValidationError / ParameterError / UnknownAlgorithmError:
                the program is invalid.
            FeasibilityError: if no hub MCU can run the condition.
        """
        program, _, _ = validate_condition(il_text, self.hub.catalog)
        condition = self.hub.push(program, listener, delivery=delivery)
        handle = WakeUpHandle(self, program, condition)
        self._handles.append(handle)
        return handle

    @property
    def handles(self) -> Tuple[WakeUpHandle, ...]:
        """Handles of every condition pushed through this manager."""
        return tuple(self._handles)
