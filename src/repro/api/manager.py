"""The Sidewinder sensor manager (paper Section 3.1).

Modelled on the Android SensorManager, extended with the wake-up
condition API: it knows the available sensors and processing algorithms,
compiles pipelines to the intermediate language, and pushes them to the
low-power sensor hub.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.algorithms.base import available_opcodes
from repro.api.compile import compile_pipeline
from repro.api.listener import SensorEventListener
from repro.api.pipeline import ProcessingPipeline
from repro.hub.delivery import DeliverySpec
from repro.hub.hub import PushedCondition, SensorHub
from repro.il.ast import ILProgram
from repro.il.text import format_program
from repro.sensors.channels import ACC_X, ACC_Y, ACC_Z, MIC, SensorChannel, all_channels


class WakeUpHandle:
    """Returned by :meth:`SidewinderSensorManager.push`.

    Lets the application inspect the generated intermediate code and
    cancel the condition.

    Attributes:
        program: The compiled intermediate-language program.
        condition: The hub-resident condition (runtime, MCU placement).
    """

    def __init__(self, manager: "SidewinderSensorManager", program: ILProgram,
                 condition: PushedCondition):
        self._manager = manager
        self.program = program
        self.condition = condition

    @property
    def intermediate_code(self) -> str:
        """The condition's textual IL, as pushed to the hub."""
        return format_program(self.program)

    @property
    def mcu_name(self) -> str:
        """Name of the MCU the hub placed the condition on."""
        return self.condition.mcu.name

    def cancel(self) -> None:
        """Remove the condition from the hub."""
        self._manager.hub.remove(self.condition)


class SidewinderSensorManager:
    """Entry point for applications: sensors, algorithms, push/cancel.

    Args:
        hub: The sensor hub to push conditions to.  A fresh simulated
            hub with the default MCU catalog is created when omitted.

    Channel constants mirror the paper's Java API
    (``SidewinderSensorManager.ACCELEROMETER_X`` etc.).
    """

    #: Sensor channel constants, Java-API style.
    ACCELEROMETER_X: SensorChannel = ACC_X
    ACCELEROMETER_Y: SensorChannel = ACC_Y
    ACCELEROMETER_Z: SensorChannel = ACC_Z
    MICROPHONE: SensorChannel = MIC

    def __init__(self, hub: Optional[SensorHub] = None):
        self.hub = hub if hub is not None else SensorHub()
        self._handles: List[WakeUpHandle] = []

    def get_sensor_list(self) -> Tuple[SensorChannel, ...]:
        """The sensor channels this device exposes."""
        return all_channels()

    def get_algorithm_list(self) -> List[str]:
        """Opcodes of the processing algorithms the platform provides."""
        return available_opcodes()

    def push(
        self,
        pipeline: ProcessingPipeline,
        listener: Optional[SensorEventListener] = None,
        delivery: Optional[DeliverySpec] = None,
    ) -> WakeUpHandle:
        """Compile a pipeline and start it on the sensor hub.

        Args:
            pipeline: The wake-up condition.
            listener: Callback fired on wake-ups.
            delivery: What the hub sends with a wake-up (Section 3.8):
                raw buffer (default), trigger item only, or an
                intermediate node's output.

        Raises:
            CompileError / PipelineError: on a malformed pipeline.
            ILValidationError / ParameterError: if validation fails.
            FeasibilityError: if no hub MCU can run the condition.
        """
        program = compile_pipeline(pipeline)
        condition = self.hub.push(program, listener, delivery=delivery)
        handle = WakeUpHandle(self, program, condition)
        self._handles.append(handle)
        return handle

    @property
    def handles(self) -> Tuple[WakeUpHandle, ...]:
        """Handles of every condition pushed through this manager."""
        return tuple(self._handles)
