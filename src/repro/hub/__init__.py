"""The low-power sensor hub (paper Sections 3.4-3.5).

The hub is the manufacturer-provided side of Sidewinder: one or more
low-power microcontrollers plus a runtime that interprets intermediate
language pushed by the sensor manager.  This package provides:

* :mod:`repro.hub.mcu` — microcontroller descriptors (TI MSP430 and
  TI LM4F120, with the paper's measured power draws);
* :mod:`repro.hub.feasibility` — the real-time feasibility model that
  decides which MCU a wake-up condition needs (the paper's MSP430 could
  not run FFT-based filtering of audio in real time);
* :mod:`repro.hub.runtime` — the interpreter executing a validated
  dataflow graph over incoming sensor chunks;
* :mod:`repro.hub.compile` — the compiler lowering fusion-eligible
  graphs to whole-trace numpy array programs (the interpreter stays
  the semantics oracle: compiled wake events are bit-identical);
* :mod:`repro.hub.hub` — the :class:`SensorHub` facade managing several
  concurrent wake-up conditions and their listeners;
* :mod:`repro.hub.faults` — deterministic system-fault injection (hub
  resets, lossy links, flaky wake interrupts);
* :mod:`repro.hub.reliability` — the reliable transport (CRC framing,
  ACK/retry, heartbeats) a production hub vendor would ship.
"""

from repro.hub.compile import (
    CompiledPlan,
    PlanStep,
    compile_eligibility,
    compile_graph,
)
from repro.hub.delivery import (
    RAW_DELIVERY,
    TRIGGER_DELIVERY,
    DeliveryMode,
    DeliverySpec,
    payload_bytes,
)
from repro.hub.faults import NO_FAULTS, FaultInjector, FaultPlan
from repro.hub.feasibility import FeasibilityReport, analyze, is_feasible, select_mcu
from repro.hub.fpga import ARTIX_CLASS, ICE40_CLASS, FPGAModel, select_processor
from repro.hub.link import (
    I2C_FAST_MODE,
    SPI_20MHZ,
    UART_DEBUG,
    LinkModel,
    sample_bytes_for_kind,
)
from repro.hub.reliability import (
    DEFAULT_RELIABILITY,
    ReliabilityPolicy,
    ReliableLink,
    TransferOutcome,
)
from repro.hub.merge import (
    MergedProgram,
    MultiTapRuntime,
    merge_programs,
    merged_cycles_per_second,
    merged_graph,
)
from repro.hub.hub import PushedCondition, SensorHub
from repro.hub.mcu import DEFAULT_CATALOG, LM4F120, MSP430, MCUModel
from repro.hub.runtime import HubRuntime, WakeEvent
from repro.hub.state import AlgorithmState

__all__ = [
    "ARTIX_CLASS",
    "DEFAULT_CATALOG",
    "DEFAULT_RELIABILITY",
    "DeliveryMode",
    "DeliverySpec",
    "FPGAModel",
    "FaultInjector",
    "FaultPlan",
    "I2C_FAST_MODE",
    "ICE40_CLASS",
    "LM4F120",
    "LinkModel",
    "MSP430",
    "NO_FAULTS",
    "RAW_DELIVERY",
    "ReliabilityPolicy",
    "ReliableLink",
    "SPI_20MHZ",
    "TRIGGER_DELIVERY",
    "TransferOutcome",
    "UART_DEBUG",
    "AlgorithmState",
    "CompiledPlan",
    "FeasibilityReport",
    "MergedProgram",
    "MultiTapRuntime",
    "HubRuntime",
    "MCUModel",
    "PlanStep",
    "PushedCondition",
    "SensorHub",
    "WakeEvent",
    "analyze",
    "compile_eligibility",
    "compile_graph",
    "is_feasible",
    "merge_programs",
    "merged_cycles_per_second",
    "merged_graph",
    "payload_bytes",
    "sample_bytes_for_kind",
    "select_mcu",
    "select_processor",
]
