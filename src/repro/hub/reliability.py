"""Reliable hub-to-phone transport: CRC framing, ACK/retry, heartbeats.

The paper's prototype fires a bare wake interrupt and streams payloads
over the debug UART with no integrity protection — fine on a bench,
fatal in a pocket.  This module adds the transport a production hub
vendor would ship:

* **CRC framing** — every frame carries a checksum so corruption is
  *detected*; the cost is a fixed fractional overhead on every byte
  moved (:attr:`ReliabilityPolicy.crc_overhead`);
* **ACK/retry** — the sender retransmits unacknowledged frames with
  capped exponential backoff, up to
  :attr:`ReliabilityPolicy.max_retries` retransmissions;
* **heartbeats** — the hub firmware beats every
  :attr:`ReliabilityPolicy.heartbeat_period_s` seconds; the phone-side
  watchdog (see :mod:`repro.sim.recovery`) uses missed or stale beats
  to detect a dead hub, re-push the condition, and duty-cycle in the
  meantime.

Everything here costs energy, and the point of the model is to make
that cost explicit: :meth:`ReliableLink.energy_mj` converts link-busy
seconds (first transmissions, retransmissions, ACKs, heartbeats) into
millijoules at the policy's link-active power, which the power
accounting surfaces as its own line item.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultInjectionError
from repro.hub.link import LinkModel, UART_DEBUG

#: Bytes of one wake message on the wire (event time + value + framing).
WAKE_MESSAGE_BYTES = 16

#: Bytes of one acknowledgement frame.
ACK_BYTES = 4

#: Bytes of one heartbeat frame (sequence number + condition
#: generation tag + CRC).
HEARTBEAT_BYTES = 8

#: Bytes to push one compiled wake-up condition to the hub — IL text is
#: a few hundred bytes for every condition in the paper.
CONDITION_PUSH_BYTES = 512


@dataclass(frozen=True)
class ReliabilityPolicy:
    """Knobs of the reliable transport and the phone-side watchdog.

    Attributes:
        crc_overhead: Fractional framing/checksum overhead added to
            every transfer.
        max_retries: Retransmissions allowed after the first attempt.
        initial_backoff_s: Backoff before the first retransmission.
        backoff_factor: Multiplier applied per further retransmission.
        backoff_cap_s: Upper bound on any single backoff.
        heartbeat_period_s: Seconds between hub heartbeats.
        heartbeat_tolerance: Consecutive missed beats before the
            watchdog declares the hub dead.
        degraded_sense_s: Sensing-window length while degraded to
            duty-cycling (matches the paper's 4 s windows).
        degraded_sleep_s: Sleep between degraded sensing windows.
        link_active_mw: Hub-side draw while the link carries frames
            (MCU awake + transceiver), charged per busy second.
    """

    crc_overhead: float = 0.05
    max_retries: int = 4
    initial_backoff_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_s: float = 0.4
    heartbeat_period_s: float = 5.0
    heartbeat_tolerance: int = 3
    degraded_sense_s: float = 4.0
    degraded_sleep_s: float = 10.0
    link_active_mw: float = 12.0

    def __post_init__(self) -> None:
        if self.crc_overhead < 0:
            raise FaultInjectionError(
                f"crc_overhead must be non-negative, got {self.crc_overhead}"
            )
        if self.max_retries < 0:
            raise FaultInjectionError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.initial_backoff_s < 0 or self.backoff_cap_s < 0:
            raise FaultInjectionError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise FaultInjectionError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.heartbeat_period_s <= 0:
            raise FaultInjectionError(
                f"heartbeat_period_s must be positive, got {self.heartbeat_period_s}"
            )
        if self.heartbeat_tolerance < 1:
            raise FaultInjectionError(
                f"heartbeat_tolerance must be >= 1, got {self.heartbeat_tolerance}"
            )
        if self.degraded_sense_s <= 0 or self.degraded_sleep_s < 0:
            raise FaultInjectionError(
                "degraded duty cycle needs positive sense and non-negative sleep"
            )
        if self.link_active_mw < 0:
            raise FaultInjectionError(
                f"link_active_mw must be non-negative, got {self.link_active_mw}"
            )

    def backoff_s(self, retry_index: int) -> float:
        """Backoff before retransmission ``retry_index`` (0-based)."""
        return min(
            self.backoff_cap_s,
            self.initial_backoff_s * self.backoff_factor**retry_index,
        )


#: Sensible production defaults: ~5 % framing overhead, 4 retries,
#: 5 s heartbeats with a 3-beat watchdog.
DEFAULT_RELIABILITY = ReliabilityPolicy()


@dataclass(frozen=True)
class TransferOutcome:
    """What one reliable transfer attempt sequence amounted to.

    Attributes:
        delivered: True when some attempt was acknowledged.
        attempts: Transmissions performed (1 = no retransmission).
        completion_s: Seconds from initiation until the ACK arrived, or
            until the sender gave up.
        link_busy_s: Seconds the link actually carried frames (data
            frames + ACK); this is what costs energy, backoff does not.
    """

    delivered: bool
    attempts: int
    completion_s: float
    link_busy_s: float

    @property
    def retransmissions(self) -> int:
        """Transmissions beyond the first."""
        return self.attempts - 1


class ReliableLink:
    """ACK/retry framing over a raw :class:`~repro.hub.link.LinkModel`.

    Args:
        link: The underlying bus.
        policy: Retry/backoff/overhead parameters.
    """

    def __init__(
        self,
        link: LinkModel = UART_DEBUG,
        policy: ReliabilityPolicy = DEFAULT_RELIABILITY,
    ):
        self.link = link
        self.policy = policy

    def frame_seconds(self, payload_bytes: float) -> float:
        """Wire time of one framed payload (CRC overhead included)."""
        return self.link.transfer_seconds(
            payload_bytes * (1.0 + self.policy.crc_overhead)
        )

    def ack_seconds(self) -> float:
        """Wire time of one acknowledgement."""
        return self.link.transfer_seconds(float(ACK_BYTES))

    def send(self, payload_bytes: float, corrupted) -> TransferOutcome:
        """Transmit one payload with ACK/retry.

        Args:
            payload_bytes: Payload size before framing.
            corrupted: Zero-argument callable drawn once per attempt;
                True means that transmission was lost/corrupted
                (normally a bound :class:`~repro.hub.faults.FaultInjector`
                method, so outcomes are deterministic per plan).

        Returns:
            The :class:`TransferOutcome`; ``delivered`` is False only
            when every attempt (1 + ``max_retries``) was corrupted.
        """
        frame_s = self.frame_seconds(payload_bytes)
        ack_s = self.ack_seconds()
        elapsed = 0.0
        busy = 0.0
        attempts = 0
        for retry in range(self.policy.max_retries + 1):
            attempts += 1
            elapsed += frame_s
            busy += frame_s
            if not corrupted():
                elapsed += ack_s
                busy += ack_s
                return TransferOutcome(True, attempts, elapsed, busy)
            elapsed += self.policy.backoff_s(retry)
        return TransferOutcome(False, attempts, elapsed, busy)

    def energy_mj(self, link_busy_s: float) -> float:
        """Energy of keeping the link busy for the given seconds."""
        return link_busy_s * self.policy.link_active_mw
