"""System-level fault injection: hub resets, lossy links, flaky wake-ups.

The sensor-data perturbations in :mod:`repro.traces.perturb` corrupt
what the hub *sees*; the faults modeled here break the *system around
the wake-up condition* — the part of the contract the paper's
Section 3.8 leaves to the hub vendor:

* **hub resets** — the MCU browns out; every
  :class:`~repro.hub.state.AlgorithmState` is lost and the condition
  must be re-pushed by the phone before wake-ups resume;
* **link corruption/loss** — the debug-UART drops or corrupts frames:
  sensor-data chunks on the way into the hub, wake messages, and
  delivery payloads on the way out;
* **flaky wake interrupts** — the wake line fires late, or not at all.

A :class:`FaultPlan` is a pure, seedable description of the faults one
simulated run should experience; a :class:`FaultInjector` realizes the
plan deterministically.  Each fault category draws from its *own*
pseudo-random stream (seeded from ``(plan.seed, category)``), so adding
draws in one category — e.g. retransmission attempts on the wake path —
never perturbs the faults another category injects.  Two runs with the
same plan therefore see the same resets, the same dropped chunks and
the same lost heartbeats, which is what lets the fault-recovery
benchmarks compare naive and reliable delivery under *identical*
adversity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import FaultInjectionError

#: Fault categories, in stream-seed order.  Order is part of the
#: determinism contract: reordering would change every seeded run.
_CATEGORIES = (
    "wake_drop",
    "wake_delay",
    "payload_drop",
    "chunk_drop",
    "heartbeat_drop",
)


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value < 1.0:
        raise FaultInjectionError(
            f"{name} must lie in [0, 1), got {value}"
        )


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic schedule of system faults for one simulated run.

    Attributes:
        seed: Seed for every fault stream; the same plan always injects
            the same faults.
        hub_reset_times: Trace times (seconds) at which the hub MCU
            browns out.  Each reset discards all interpreter state; the
            condition stays dead until the phone re-pushes it (which
            only a reliability policy's watchdog ever does).
        hub_reboot_s: Seconds the hub firmware needs to come back up
            after a reset before it can accept a push or heartbeat.
        wake_drop_probability: Per-transmission probability that a wake
            message is lost on the link.
        wake_delay_probability: Probability that a wake interrupt is
            delayed (slow interrupt latch, kernel scheduling).
        wake_delay_s: Length of one wake delay.
        payload_drop_probability: Per-transmission probability that a
            delivery payload (raw buffer, condition push) is corrupted.
        chunk_drop_probability: Per-round probability that a sensor
            data chunk never reaches the hub intact.
        heartbeat_drop_probability: Per-beat probability that a
            heartbeat frame is lost; defaults to
            ``wake_drop_probability`` (same wire).
    """

    seed: int = 0
    hub_reset_times: Tuple[float, ...] = ()
    hub_reboot_s: float = 2.0
    wake_drop_probability: float = 0.0
    wake_delay_probability: float = 0.0
    wake_delay_s: float = 1.0
    payload_drop_probability: float = 0.0
    chunk_drop_probability: float = 0.0
    heartbeat_drop_probability: Optional[float] = None

    def __post_init__(self) -> None:
        _check_probability("wake_drop_probability", self.wake_drop_probability)
        _check_probability("wake_delay_probability", self.wake_delay_probability)
        _check_probability("payload_drop_probability", self.payload_drop_probability)
        _check_probability("chunk_drop_probability", self.chunk_drop_probability)
        if self.heartbeat_drop_probability is not None:
            _check_probability(
                "heartbeat_drop_probability", self.heartbeat_drop_probability
            )
        if self.hub_reboot_s <= 0:
            raise FaultInjectionError(
                f"hub_reboot_s must be positive, got {self.hub_reboot_s}"
            )
        if self.wake_delay_s < 0:
            raise FaultInjectionError(
                f"wake_delay_s must be non-negative, got {self.wake_delay_s}"
            )
        if any(t < 0 for t in self.hub_reset_times):
            raise FaultInjectionError(
                f"hub reset times must be non-negative: {self.hub_reset_times}"
            )
        object.__setattr__(
            self, "hub_reset_times", tuple(sorted(set(self.hub_reset_times)))
        )

    @property
    def heartbeat_drop(self) -> float:
        """Effective heartbeat loss probability."""
        if self.heartbeat_drop_probability is not None:
            return self.heartbeat_drop_probability
        return self.wake_drop_probability

    def resets_before(self, duration: float) -> List[float]:
        """Reset times that fall inside a trace of the given length."""
        return [t for t in self.hub_reset_times if t < duration]


#: The benign plan: nothing ever fails.  Running a configuration under
#: ``NO_FAULTS`` is event-identical to running it without fault
#: injection at all.
NO_FAULTS = FaultPlan()


class FaultInjector:
    """Stateful, deterministic realization of a :class:`FaultPlan`.

    One injector drives one simulated run.  Every fault category owns
    an independent stream, so the *order* in which categories are
    consulted does not affect any category's own sequence of draws.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._streams: Dict[str, np.random.Generator] = {
            name: np.random.default_rng((plan.seed, index))
            for index, name in enumerate(_CATEGORIES)
        }

    def _draw(self, category: str, probability: float) -> bool:
        if probability <= 0.0:
            return False
        return bool(self._streams[category].random() < probability)

    def wake_dropped(self) -> bool:
        """Is this wake-message transmission lost?"""
        return self._draw("wake_drop", self.plan.wake_drop_probability)

    def wake_delay(self) -> float:
        """Delay (seconds) this wake interrupt suffers; usually 0."""
        if self._draw("wake_delay", self.plan.wake_delay_probability):
            return self.plan.wake_delay_s
        return 0.0

    def payload_dropped(self) -> bool:
        """Is this payload transmission corrupted?"""
        return self._draw("payload_drop", self.plan.payload_drop_probability)

    def chunk_dropped(self) -> bool:
        """Does this sensor-data round fail to reach the hub?"""
        return self._draw("chunk_drop", self.plan.chunk_drop_probability)

    def heartbeat_dropped(self) -> bool:
        """Is this heartbeat frame lost?"""
        return self._draw("heartbeat_drop", self.plan.heartbeat_drop)
