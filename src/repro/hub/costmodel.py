"""Measured per-graph tier selection for hub execution.

The engine can run a wake-up condition three ways — ``compiled`` (one
whole-trace array program), ``fused`` (64-round coalesced
interpretation) and ``rounds`` (the paper's round-by-round interpreter)
— all bit-identical.  Until now the preference was hardwired
``compiled > fused > rounds``, which is right for accelerometer suites
but demonstrably wrong for FFT-heavy audio graphs: their working sets
are memory-bandwidth-bound, and ``results/BENCH_compile.json`` records
fused audio at **0.27×** round-by-round.  A static ranking cannot see
that; a measurement can.

:class:`CostModel` makes the choice per graph fingerprint from observed
runtimes, and it gets its measurements for free: every real run of a
fingerprint *is* a sample.  The engine asks :meth:`CostModel.choose`
which tier to run, times the run it was going to do anyway, and feeds
the timing back through :meth:`CostModel.observe`.  Because every tier
returns identical events, probing costs nothing but the probed tier's
own runtime — there are no throwaway micro-benchmark executions, and
timing noise can never change a result, only a future tier choice.

Exploration is gated: while the preferred tier's runs stay under
:data:`PROBE_THRESHOLD_S` the model does not bother probing
alternatives (the choice cannot matter at that scale, and accelerometer
plans run in tens of microseconds).  Once a fingerprint proves
expensive, the next runs probe each remaining tier once, after which
the cheapest observed seconds-per-item wins.  A pre-calibrated
``table`` mapping fingerprints to tiers short-circuits everything —
benchmarks use it to pin selections, and deployments can ship one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

#: Execution tiers in static preference order — the order probing walks,
#: and the tie-break ranking when measurements are equal.
TIER_PREFERENCE = ("compiled", "fused", "rounds")

#: Mean per-run seconds above which a fingerprint is worth probing.
#: Below this, the preferred tier runs unchallenged: exploring a slower
#: tier would cost more than the choice could ever save, and sub-10ms
#: plans (every accelerometer suite) keep their zero-overhead fast path.
PROBE_THRESHOLD_S = 0.01


@dataclass
class _TierStats:
    """Accumulated observations of one (fingerprint, tier) pair."""

    seconds: float = 0.0
    items: float = 0.0
    runs: int = 0

    def add(self, seconds: float, items: float) -> None:
        self.seconds += max(float(seconds), 0.0)
        self.items += max(float(items), 0.0)
        self.runs += 1

    @property
    def mean_run_seconds(self) -> float:
        return self.seconds / self.runs if self.runs else 0.0

    @property
    def seconds_per_item(self) -> float:
        return self.seconds / max(self.items, 1.0)


@dataclass
class CostModel:
    """Online measured tier selection, keyed by graph fingerprint.

    Args:
        table: Optional calibrated ``fingerprint -> tier`` overrides.
            A table entry always wins (when its tier is allowed) and is
            never re-probed.
        probe_threshold_s: Mean per-run seconds a fingerprint's
            preferred tier must exceed before alternatives get probed.
    """

    table: Mapping[str, str] = field(default_factory=dict)
    probe_threshold_s: float = PROBE_THRESHOLD_S
    _stats: Dict[Tuple[str, str], _TierStats] = field(default_factory=dict)

    def observe(
        self, fingerprint: str, tier: str, seconds: float, items: float
    ) -> None:
        """Record one real run's timing: ``tier`` processed ``items``
        input items in ``seconds``."""
        key = (fingerprint, tier)
        stats = self._stats.get(key)
        if stats is None:
            stats = self._stats[key] = _TierStats()
        stats.add(seconds, items)

    def choose(self, fingerprint: str, allowed: Sequence[str]) -> str:
        """The tier the next run of ``fingerprint`` should use.

        ``allowed`` lists the tiers actually available for this graph
        under the context's flags (e.g. no ``compiled`` entry when the
        graph is not compile-eligible).  Returns a calibrated override
        if one applies, the preferred tier while it is unprobed or
        proven cheap, the next unprobed tier while probing, and the
        cheapest observed seconds-per-item once every allowed tier has
        a sample.
        """
        ordered = [t for t in TIER_PREFERENCE if t in allowed]
        if not ordered:
            raise ValueError(f"no allowed tiers for {fingerprint!r}")
        override = self.table.get(fingerprint)
        if override in ordered:
            return override
        preferred = ordered[0]
        head = self._stats.get((fingerprint, preferred))
        if head is None or head.mean_run_seconds < self.probe_threshold_s:
            return preferred
        for tier in ordered[1:]:
            if (fingerprint, tier) not in self._stats:
                return tier
        return min(
            ordered, key=lambda t: self._stats[(fingerprint, t)].seconds_per_item
        )

    def selection(
        self, fingerprint: str, allowed: Sequence[str]
    ) -> Optional[str]:
        """The settled choice for ``fingerprint``, or ``None`` while the
        model still wants probe runs.

        Batching uses this: a batch is only worth assembling once the
        model has committed to a tier (otherwise the rows should run
        one at a time to finish probing).
        """
        ordered = [t for t in TIER_PREFERENCE if t in allowed]
        if not ordered:
            return None
        override = self.table.get(fingerprint)
        if override in ordered:
            return override
        preferred = ordered[0]
        head = self._stats.get((fingerprint, preferred))
        if head is None:
            return None
        if head.mean_run_seconds < self.probe_threshold_s:
            return preferred
        if any((fingerprint, tier) not in self._stats for tier in ordered[1:]):
            return None
        return min(
            ordered, key=lambda t: self._stats[(fingerprint, t)].seconds_per_item
        )

    def seconds_per_item(self, fingerprint: str, tier: str) -> Optional[float]:
        """Observed mean seconds per input item, or ``None`` if unseen."""
        stats = self._stats.get((fingerprint, tier))
        return stats.seconds_per_item if stats else None

    def as_dict(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Diagnostic dump: per fingerprint, per tier, the accumulated
        seconds/items/runs (benchmarks record this beside timings)."""
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for (fingerprint, tier), stats in sorted(self._stats.items()):
            out.setdefault(fingerprint, {})[tier] = {
                "seconds": stats.seconds,
                "items": stats.items,
                "runs": stats.runs,
            }
        return out
