"""Measured per-graph tier selection for hub execution.

The engine can run a wake-up condition three ways — ``compiled`` (one
whole-trace array program), ``fused`` (64-round coalesced
interpretation) and ``rounds`` (the paper's round-by-round interpreter)
— all bit-identical.  Until now the preference was hardwired
``compiled > fused > rounds``, which is right for accelerometer suites
but demonstrably wrong for FFT-heavy audio graphs: their working sets
are memory-bandwidth-bound, and ``results/BENCH_compile.json`` records
fused audio at **0.27×** round-by-round.  A static ranking cannot see
that; a measurement can.

:class:`CostModel` makes the choice per graph fingerprint from observed
runtimes, and it gets its measurements for free: every real run of a
fingerprint *is* a sample.  The engine asks :meth:`CostModel.choose`
which tier to run, times the run it was going to do anyway, and feeds
the timing back through :meth:`CostModel.observe`.  Because every tier
returns identical events, probing costs nothing but the probed tier's
own runtime — there are no throwaway micro-benchmark executions, and
timing noise can never change a result, only a future tier choice.

Exploration is gated: while the preferred tier's runs stay under
:data:`PROBE_THRESHOLD_S` the model does not bother probing
alternatives (the choice cannot matter at that scale, and accelerometer
plans run in tens of microseconds).  Once a fingerprint proves
expensive, the next runs probe each remaining tier once, after which
the cheapest observed seconds-per-item wins.  A pre-calibrated
``table`` mapping fingerprints to tiers short-circuits everything —
benchmarks use it to pin selections, and deployments can ship one.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

#: Execution tiers in static preference order — the order probing walks,
#: and the tie-break ranking when measurements are equal.
TIER_PREFERENCE = ("compiled", "fused", "rounds")

#: Mean per-run seconds above which a fingerprint is worth probing.
#: Below this, the preferred tier runs unchallenged: exploring a slower
#: tier would cost more than the choice could ever save, and sub-10ms
#: plans (every accelerometer suite) keep their zero-overhead fast path.
PROBE_THRESHOLD_S = 0.01


@dataclass
class _BatchPoint:
    """Accumulated observations at one dispatch batch size."""

    seconds: float = 0.0
    items: float = 0.0
    runs: int = 0

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.runs if self.runs else 0.0


@dataclass
class _TierStats:
    """Accumulated observations of one (fingerprint, tier) pair.

    The aggregate counters drive tier *selection* (seconds-per-item is
    batch-size-agnostic); the per-batch-size ``profile`` drives batch
    *composition* — interpolating it prices "one big shape batch"
    against "split into per-fingerprint batches", so raggedness and
    padding waste are measured rather than guessed.
    """

    seconds: float = 0.0
    items: float = 0.0
    runs: int = 0
    profile: Dict[int, _BatchPoint] = field(default_factory=dict)

    def add(self, seconds: float, items: float, batch_size: int = 1) -> None:
        seconds = max(float(seconds), 0.0)
        items = max(float(items), 0.0)
        self.seconds += seconds
        self.items += items
        self.runs += 1
        point = self.profile.get(batch_size)
        if point is None:
            point = self.profile[batch_size] = _BatchPoint()
        point.seconds += seconds
        point.items += items
        point.runs += 1

    @property
    def mean_run_seconds(self) -> float:
        return self.seconds / self.runs if self.runs else 0.0

    @property
    def seconds_per_item(self) -> float:
        return self.seconds / max(self.items, 1.0)

    def predict_seconds(self, batch_size: int) -> Optional[float]:
        """Expected seconds for one dispatch of ``batch_size`` rows.

        Piecewise-linear interpolation over observed batch sizes.
        Outside the observed range: below the smallest size, scale that
        point proportionally (throughput through the origin); above the
        largest, extend the last segment's slope when two points exist,
        else scale the single point proportionally.
        """
        if not self.profile:
            return None
        sizes = sorted(self.profile)
        means = [self.profile[size].mean_seconds for size in sizes]
        if batch_size <= sizes[0]:
            return means[0] * batch_size / sizes[0]
        if batch_size >= sizes[-1]:
            if len(sizes) >= 2:
                slope = (means[-1] - means[-2]) / (sizes[-1] - sizes[-2])
                return max(means[-1] + slope * (batch_size - sizes[-1]), 0.0)
            return means[-1] * batch_size / sizes[-1]
        right = bisect.bisect_left(sizes, batch_size)
        left = right - 1
        frac = (batch_size - sizes[left]) / (sizes[right] - sizes[left])
        return means[left] + frac * (means[right] - means[left])


@dataclass
class CostModel:
    """Online measured tier selection, keyed by graph fingerprint.

    Args:
        table: Optional calibrated ``fingerprint -> tier`` overrides.
            A table entry always wins (when its tier is allowed) and is
            never re-probed.
        probe_threshold_s: Mean per-run seconds a fingerprint's
            preferred tier must exceed before alternatives get probed.
    """

    table: Mapping[str, str] = field(default_factory=dict)
    probe_threshold_s: float = PROBE_THRESHOLD_S
    _stats: Dict[Tuple[str, str], _TierStats] = field(default_factory=dict)

    def observe(
        self,
        fingerprint: str,
        tier: str,
        seconds: float,
        items: float,
        batch_size: int = 1,
    ) -> None:
        """Record one real run's timing: ``tier`` processed ``items``
        input items in ``seconds``, dispatched as one batch of
        ``batch_size`` rows (1 for per-trace execution).  The
        observation feeds both the aggregate seconds-per-item used for
        tier selection and the per-batch-size throughput profile used
        for batch composition.  ``fingerprint`` may equally be a shape
        signature (see :func:`repro.hub.compile.shape_signature`) —
        the key spaces are disjoint by construction."""
        key = (fingerprint, tier)
        stats = self._stats.get(key)
        if stats is None:
            stats = self._stats[key] = _TierStats()
        stats.add(seconds, items, batch_size=max(int(batch_size), 1))

    def choose(self, fingerprint: str, allowed: Sequence[str]) -> str:
        """The tier the next run of ``fingerprint`` should use.

        ``allowed`` lists the tiers actually available for this graph
        under the context's flags (e.g. no ``compiled`` entry when the
        graph is not compile-eligible).  Returns a calibrated override
        if one applies, the preferred tier while it is unprobed or
        proven cheap, the next unprobed tier while probing, and the
        cheapest observed seconds-per-item once every allowed tier has
        a sample.
        """
        ordered = [t for t in TIER_PREFERENCE if t in allowed]
        if not ordered:
            raise ValueError(f"no allowed tiers for {fingerprint!r}")
        override = self.table.get(fingerprint)
        if override in ordered:
            return override
        preferred = ordered[0]
        head = self._stats.get((fingerprint, preferred))
        if head is None or head.mean_run_seconds < self.probe_threshold_s:
            return preferred
        for tier in ordered[1:]:
            if (fingerprint, tier) not in self._stats:
                return tier
        return min(
            ordered, key=lambda t: self._stats[(fingerprint, t)].seconds_per_item
        )

    def selection(
        self, fingerprint: str, allowed: Sequence[str]
    ) -> Optional[str]:
        """The settled choice for ``fingerprint``, or ``None`` while the
        model still wants probe runs.

        Batching uses this: a batch is only worth assembling once the
        model has committed to a tier (otherwise the rows should run
        one at a time to finish probing).
        """
        ordered = [t for t in TIER_PREFERENCE if t in allowed]
        if not ordered:
            return None
        override = self.table.get(fingerprint)
        if override in ordered:
            return override
        preferred = ordered[0]
        head = self._stats.get((fingerprint, preferred))
        if head is None:
            return None
        if head.mean_run_seconds < self.probe_threshold_s:
            return preferred
        if any((fingerprint, tier) not in self._stats for tier in ordered[1:]):
            return None
        return min(
            ordered, key=lambda t: self._stats[(fingerprint, t)].seconds_per_item
        )

    def seconds_per_item(self, fingerprint: str, tier: str) -> Optional[float]:
        """Observed mean seconds per input item, or ``None`` if unseen."""
        stats = self._stats.get((fingerprint, tier))
        return stats.seconds_per_item if stats else None

    def predict_batch_seconds(
        self, fingerprint: str, tier: str, batch_size: int
    ) -> Optional[float]:
        """Expected seconds for one ``tier`` dispatch of ``batch_size``
        rows of ``fingerprint`` (or shape-signature) work, interpolated
        from the observed per-batch-size profile.  ``None`` when the
        pair has never been observed."""
        stats = self._stats.get((fingerprint, tier))
        if stats is None:
            return None
        return stats.predict_seconds(max(int(batch_size), 1))

    def choose_shape_batching(
        self,
        shape_key: str,
        parts: Sequence[Tuple[str, int]],
        tier: str = "compiled",
    ) -> bool:
        """Should same-shape work run as one heterogeneous batch?

        Args:
            shape_key: The group's shape signature.
            parts: ``(fingerprint, row_count)`` per same-fingerprint
                sub-group the work would otherwise split into.
            tier: The settled execution tier.

        Prices "one big shape batch" (the shape profile at the summed
        row count) against "split into per-fingerprint batches" (each
        fingerprint's own profile at its row count).  Missing data on
        either side defaults to **True** — shape batching is the path
        being probed, and its observations are what make this
        comparison meaningful later.
        """
        total = sum(size for _, size in parts)
        whole = self.predict_batch_seconds(shape_key, tier, total)
        if whole is None:
            return True
        split = 0.0
        for fingerprint, size in parts:
            part = self.predict_batch_seconds(fingerprint, tier, size)
            if part is None:
                return True
            split += part
        return whole <= split

    def as_dict(self) -> Dict[str, Dict[str, Dict[str, object]]]:
        """Diagnostic/persistence dump: per fingerprint, per tier, the
        accumulated seconds/items/runs plus the per-batch-size profile
        (benchmarks record this beside timings; :meth:`from_dict`
        round-trips it)."""
        out: Dict[str, Dict[str, Dict[str, object]]] = {}
        for (fingerprint, tier), stats in sorted(self._stats.items()):
            entry: Dict[str, object] = {
                "seconds": stats.seconds,
                "items": stats.items,
                "runs": stats.runs,
            }
            if stats.profile:
                entry["profile"] = {
                    str(size): {
                        "seconds": point.seconds,
                        "items": point.items,
                        "runs": point.runs,
                    }
                    for size, point in sorted(stats.profile.items())
                }
            out.setdefault(fingerprint, {})[tier] = entry
        return out

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Mapping[str, Mapping[str, object]]],
        table: Optional[Mapping[str, str]] = None,
        probe_threshold_s: float = PROBE_THRESHOLD_S,
    ) -> "CostModel":
        """Rebuild a model from :meth:`as_dict` output.

        Dumps without a ``profile`` section (written before batch-size
        profiling existed) load as one aggregate point at batch size 1,
        so old calibration files keep selecting tiers correctly.
        """
        model = cls(
            table=dict(table or {}), probe_threshold_s=probe_threshold_s
        )
        for fingerprint, tiers in data.items():
            for tier, entry in tiers.items():
                stats = _TierStats(
                    seconds=float(entry.get("seconds", 0.0)),
                    items=float(entry.get("items", 0.0)),
                    runs=int(entry.get("runs", 0)),
                )
                profile = entry.get("profile")
                if profile:
                    for size, point in profile.items():
                        stats.profile[int(size)] = _BatchPoint(
                            seconds=float(point.get("seconds", 0.0)),
                            items=float(point.get("items", 0.0)),
                            runs=int(point.get("runs", 0)),
                        )
                elif stats.runs:
                    stats.profile[1] = _BatchPoint(
                        seconds=stats.seconds,
                        items=stats.items,
                        runs=stats.runs,
                    )
                model._stats[(fingerprint, tier)] = stats
        return model

    def save(self, path: Union[str, Path]) -> None:
        """Write the model (overrides + observations) to a JSON file."""
        payload = {
            "version": 1,
            "probe_threshold_s": self.probe_threshold_s,
            "table": dict(self.table),
            "stats": self.as_dict(),
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CostModel":
        """Rebuild a model saved with :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        return cls.from_dict(
            payload.get("stats", {}),
            table=payload.get("table"),
            probe_threshold_s=float(
                payload.get("probe_threshold_s", PROBE_THRESHOLD_S)
            ),
        )
