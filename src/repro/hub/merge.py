"""Pipeline merging across concurrent wake-up conditions.

Paper Section 7 (future work): "When receiving multiple wake-up
conditions, the sensor manager can attempt to improve performance by
combining the pipelines that use common algorithms."

This module implements that optimization as common-subexpression
elimination over IL programs: two nodes are shareable when they run the
same opcode with the same parameters over (recursively) shareable
inputs.  Several programs merge into one :class:`MergedProgram` whose
dataflow graph computes every distinct subcomputation once; each
original condition keeps its own OUT tap, so wake-ups still route to the
right application.

Typical win: two accelerometer conditions that both start with
``movingAvg(10)`` per axis share those three nodes (and the hub's most
expensive stages — windowed FFTs — are shared whenever two audio
conditions use the same window geometry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.hub.runtime import HubRuntime, WakeEvent
from repro.il.ast import ChannelRef, ILProgram, ILStatement, NodeRef, SourceRef
from repro.il.graph import DataflowGraph, build_graph
from repro.il.validate import validate_program

#: A node's structural identity: opcode, parameters, and the identities
#: of its inputs.  Two nodes with equal keys compute the same stream.
_NodeKey = Tuple


@dataclass(frozen=True)
class MergedProgram:
    """Several wake-up conditions compiled into one shared dataflow.

    Attributes:
        program: The merged IL program.  Its ``output`` is the tap of
            the *first* condition; use :attr:`taps` for all of them.
        taps: Node id whose emissions belong to each original condition,
            in input order.
        shared_nodes: Number of node instances saved by sharing.
        node_count: Nodes in the merged program.
    """

    program: ILProgram
    taps: Tuple[int, ...]
    shared_nodes: int
    node_count: int

    @property
    def original_node_count(self) -> int:
        """Total nodes the unmerged programs would instantiate."""
        return self.node_count + self.shared_nodes


def _structural_key(
    statement: ILStatement, keys: Dict[int, _NodeKey]
) -> _NodeKey:
    input_keys = []
    for ref in statement.inputs:
        if isinstance(ref, ChannelRef):
            input_keys.append(("channel", ref.channel))
        else:
            input_keys.append(keys[ref.node_id])
    return (statement.opcode, statement.params, tuple(input_keys))


def merge_programs(programs: Sequence[ILProgram]) -> MergedProgram:
    """Merge validated IL programs, sharing identical subcomputations.

    Args:
        programs: One program per wake-up condition.  Each is validated
            individually first; the merged result is validated too.

    Returns:
        A :class:`MergedProgram` with one OUT tap per input program.

    Raises:
        ILValidationError: if any input program is invalid.
    """
    for program in programs:
        validate_program(program)

    statements: List[ILStatement] = []
    by_key: Dict[_NodeKey, int] = {}
    taps: List[int] = []
    shared = 0
    next_id = 1

    for program in programs:
        keys: Dict[int, _NodeKey] = {}
        local_to_merged: Dict[int, int] = {}
        ordered = _topological(program)
        for statement in ordered:
            key = _structural_key(statement, keys)
            keys[statement.node_id] = key
            existing = by_key.get(key)
            if existing is not None:
                local_to_merged[statement.node_id] = existing
                shared += 1
                continue
            inputs: List[SourceRef] = []
            for ref in statement.inputs:
                if isinstance(ref, ChannelRef):
                    inputs.append(ref)
                else:
                    inputs.append(NodeRef(local_to_merged[ref.node_id]))
            merged_statement = ILStatement(
                tuple(inputs), statement.opcode, next_id, statement.params
            )
            statements.append(merged_statement)
            by_key[key] = next_id
            local_to_merged[statement.node_id] = next_id
            next_id += 1
        taps.append(local_to_merged[program.output.node_id])

    merged = ILProgram(tuple(statements), NodeRef(taps[0]))
    return MergedProgram(
        program=merged,
        taps=tuple(taps),
        shared_nodes=shared,
        node_count=len(statements),
    )


def _topological(program: ILProgram) -> List[ILStatement]:
    """Statements ordered so inputs precede consumers."""
    by_id = program.statement_by_id()
    ordered: List[ILStatement] = []
    done: Dict[int, bool] = {}

    def visit(statement: ILStatement) -> None:
        if done.get(statement.node_id):
            return
        done[statement.node_id] = True
        for ref in statement.inputs:
            if isinstance(ref, NodeRef):
                visit(by_id[ref.node_id])
        ordered.append(statement)

    for statement in program.statements:
        visit(statement)
    return ordered


def merged_graph(merged: MergedProgram) -> DataflowGraph:
    """Executable graph of a merged program.

    The merged program legitimately contains nodes that do not feed the
    first condition's OUT (they feed other taps), so the single-OUT
    convergence check of :func:`validate_program` does not apply; the
    structural checks it performs were already run per input program.
    """
    return build_graph(merged.program)


def merged_cycles_per_second(merged: MergedProgram) -> float:
    """Aggregate MCU load of the merged dataflow."""
    return merged_graph(merged).total_cycles_per_second


class MultiTapRuntime:
    """Interpreter for a merged program with one event stream per tap.

    Wraps a :class:`~repro.hub.runtime.HubRuntime` over the merged graph
    and, after each round, reads every tap node's result record — the
    shared upstream nodes run exactly once per round regardless of how
    many conditions consume them.
    """

    def __init__(self, merged: MergedProgram):
        self.merged = merged
        self.graph = merged_graph(merged)
        self._runtime = HubRuntime(self.graph)

    def feed(self, channel_chunks) -> Dict[int, List[WakeEvent]]:
        """Process one round; return wake events keyed by tap node id.

        When two conditions merged into the same tap (they were
        identical), the dictionary carries that tap once; callers keep
        their own tap -> condition mapping.
        """
        self._runtime.feed(channel_chunks)
        events: Dict[int, List[WakeEvent]] = {}
        for tap in self.merged.taps:
            state = self._runtime.states[tap]
            if state.has_result and state.result is not None:
                events[tap] = [
                    WakeEvent(float(t), float(v))
                    for t, v in zip(state.result.times, state.result.values)
                ]
            else:
                events[tap] = []
        return events

    def run(self, rounds) -> Dict[int, List[WakeEvent]]:
        """Feed every round; return accumulated events per tap."""
        accumulated: Dict[int, List[WakeEvent]] = {
            tap: [] for tap in self.merged.taps
        }
        for chunks in rounds:
            for tap, events in self.feed(chunks).items():
                accumulated[tap].extend(events)
        return accumulated

    def reset(self) -> None:
        """Reset all interpreter state."""
        self._runtime.reset()
