"""Real-time feasibility analysis and MCU selection.

Section 4: the MSP430 "cannot perform complex analysis of sensor data in
real-time.  In our tests, it was unable to run the FFT-based low-pass
filter in real-time", so the siren detector's power model "had to
account for the powerful TI LM4F120 ... instead of the MSP430".

The analysis is static: the validated dataflow graph carries, per node,
the item rate and width of its input edges (propagated from the sensor
channel rates), and each algorithm reports an approximate cycles-per-item
cost.  A condition is feasible on an MCU when its aggregate cycles per
second fit within the MCU's cycle budget and its windowing state fits in
RAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.errors import FeasibilityError
from repro.hub.mcu import DEFAULT_CATALOG, MCUModel
from repro.il.graph import DataflowGraph

#: Bytes of algorithm state per buffered sample (16-bit fixed point:
#: MCU sensor hubs store raw 12-14 bit ADC samples, not floats).
_BYTES_PER_SAMPLE = 2
#: Fixed per-node bookkeeping overhead (the paper's per-algorithm record).
_BYTES_PER_NODE = 32


def estimate_ram_bytes(graph: DataflowGraph) -> int:
    """Approximate hub RAM the condition's algorithm state needs."""
    total = 0
    for node in graph.nodes:
        total += _BYTES_PER_NODE
        width = max((s.width for s in node.input_shapes), default=1)
        # Windowing and moving averages buffer roughly one window of
        # samples; frame processors need the frame itself resident.
        size = node.algorithm.params.get("size")
        if isinstance(size, (int, float)):
            total += int(size) * _BYTES_PER_SAMPLE
        else:
            total += width * _BYTES_PER_SAMPLE
    return total


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of analysing one condition against one MCU.

    Attributes:
        mcu: The MCU analysed.
        cycles_per_second: Estimated aggregate algorithm load.
        cycle_budget: The MCU's available cycles per second.
        ram_bytes: Estimated state footprint.
        ram_budget: The MCU's data memory.
        per_node_cycles: Load breakdown keyed by node id.
    """

    mcu: MCUModel
    cycles_per_second: float
    cycle_budget: float
    ram_bytes: int
    ram_budget: int
    per_node_cycles: Tuple[Tuple[int, float], ...]

    @property
    def feasible(self) -> bool:
        """True when the condition runs in real time on this MCU."""
        return (
            self.cycles_per_second <= self.cycle_budget
            and self.ram_bytes <= self.ram_budget
        )

    @property
    def utilization(self) -> float:
        """Fraction of the MCU's cycle budget the condition consumes."""
        return self.cycles_per_second / self.cycle_budget


def analyze(graph: DataflowGraph, mcu: MCUModel) -> FeasibilityReport:
    """Produce a :class:`FeasibilityReport` for a condition on an MCU."""
    per_node: Dict[int, float] = {
        node.node_id: node.cycles_per_second for node in graph.nodes
    }
    return FeasibilityReport(
        mcu=mcu,
        cycles_per_second=sum(per_node.values()),
        cycle_budget=mcu.cycle_budget_per_second,
        ram_bytes=estimate_ram_bytes(graph),
        ram_budget=mcu.ram_bytes,
        per_node_cycles=tuple(sorted(per_node.items())),
    )


def is_feasible(graph: DataflowGraph, mcu: MCUModel) -> bool:
    """True when the condition runs in real time on ``mcu``."""
    return analyze(graph, mcu).feasible


def select_mcu(
    graph: DataflowGraph, catalog: Sequence[MCUModel] = DEFAULT_CATALOG
) -> MCUModel:
    """Pick the least power-hungry MCU that can run the condition.

    Raises:
        FeasibilityError: when no MCU in the catalog can run it.
    """
    for mcu in sorted(catalog, key=lambda m: m.awake_power_mw):
        if is_feasible(graph, mcu):
            return mcu
    loads = {
        mcu.name: f"{analyze(graph, mcu).utilization:.1%}" for mcu in catalog
    }
    raise FeasibilityError(
        f"wake-up condition cannot run in real time on any available MCU "
        f"(estimated utilization: {loads})"
    )
