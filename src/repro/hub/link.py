"""The hub-to-phone data link (paper Section 3.4).

"The Nexus 4 and microcontroller communicate over the UART port made
available by the Nexus 4 debugging interface via the audio interface
jack.  The serial connection provides sufficient bandwidth to support
low bit-rate sensors, such as the accelerometer, a microphone or GPS.
However, extending the prototype to work with higher bit-rate sensors
like the camera would require a higher bandwidth data bus, such as I2C."

This module models that constraint: links have an effective payload
rate, sensor channels have a streaming bit rate (16-bit samples), and
transfers of buffered data take real time — time the phone spends awake
waiting.  The model exposes the paper's qualitative point directly:
accelerometer batches cross the debug UART in milliseconds, audio
batches take seconds, and camera-class streams do not fit at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SimulationError
from repro.sensors.channels import SensorChannel, channel_by_name

#: Bytes per transported sample, per sensor kind.  Accelerometer samples
#: travel as 16-bit fixed point; microphone audio is companded to 8-bit
#: mu-law for the link (telephone quality suffices for the detectors),
#: which is what lets the paper's debug UART carry "a microphone".
SAMPLE_BYTES_BY_KIND = {
    "accelerometer": 2,
    "microphone": 1,
}

#: A camera-class sensor stream (QVGA grayscale at 15 fps) — the paper's
#: example of a sensor that outgrows the serial link.
CAMERA_CLASS_BYTES_PER_SECOND = 320 * 240 * 15.0


def sample_bytes_for_kind(kind: str) -> int:
    """Per-sample link encoding size for one sensor kind.

    Raises:
        SimulationError: when the kind has no link encoding.  Camera
            streams get the paper's verdict verbatim: they need a
            higher-bandwidth bus than the serial links modeled here.
    """
    try:
        return SAMPLE_BYTES_BY_KIND[kind]
    except KeyError:
        if kind == "camera":
            raise SimulationError(
                "camera-class streams "
                f"(~{CAMERA_CLASS_BYTES_PER_SECOND / 1e6:.1f} MB/s) do not "
                "fit the hub-to-phone serial link; extending the prototype "
                "to work with higher bit-rate sensors like the camera would "
                "require a higher bandwidth data bus, such as I2C or SPI"
            ) from None
        raise SimulationError(
            f"no link encoding for sensor kind {kind!r}; supported kinds: "
            f"{sorted(SAMPLE_BYTES_BY_KIND)}"
        ) from None


@dataclass(frozen=True)
class LinkModel:
    """A hub-to-phone data link.

    Attributes:
        name: Human-readable bus name.
        raw_bits_per_second: Signalling rate.
        efficiency: Fraction of raw bits that carry payload (framing,
            start/stop bits, addressing, ACKs).
    """

    name: str
    raw_bits_per_second: float
    efficiency: float

    @property
    def payload_bytes_per_second(self) -> float:
        """Effective payload throughput."""
        return self.raw_bits_per_second * self.efficiency / 8.0

    def transfer_seconds(self, n_bytes: float) -> float:
        """Time to move ``n_bytes`` of payload across the link."""
        if n_bytes < 0:
            raise SimulationError(f"negative transfer size: {n_bytes}")
        return n_bytes / self.payload_bytes_per_second


#: The prototype's debug UART: 115200 baud, 8N1 framing (8 payload bits
#: out of 10 on the wire).
UART_DEBUG = LinkModel("UART 115200 8N1", 115_200.0, 0.8)

#: I2C fast mode, the paper's suggested upgrade: 400 kbit/s with ~20%
#: addressing/ACK overhead.
I2C_FAST_MODE = LinkModel("I2C fast mode", 400_000.0, 0.8)

#: SPI at 20 MHz — representative of what a camera-class sensor needs.
SPI_20MHZ = LinkModel("SPI 20 MHz", 20_000_000.0, 0.95)


def channel_stream_bytes_per_second(channel: SensorChannel) -> float:
    """Streaming byte rate of one channel at its nominal sample rate."""
    return channel.rate_hz * sample_bytes_for_kind(channel.kind.value)


def stream_bytes_per_second(channels: Iterable[object]) -> float:
    """Aggregate streaming byte rate of several channels.

    Channels may be given as :class:`SensorChannel` objects or IL names.
    """
    total = 0.0
    for channel in channels:
        if isinstance(channel, str):
            channel = channel_by_name(channel)
        total += channel_stream_bytes_per_second(channel)
    return total


def can_stream(channels: Sequence[object], link: LinkModel) -> bool:
    """True when the channels' live streams fit the link's throughput."""
    return stream_bytes_per_second(channels) <= link.payload_bytes_per_second


def batch_bytes(channels: Sequence[object], batch_seconds: float) -> float:
    """Payload size of ``batch_seconds`` of buffered samples."""
    if batch_seconds < 0:
        raise SimulationError(f"negative batch length: {batch_seconds}")
    return stream_bytes_per_second(channels) * batch_seconds


def batch_transfer_seconds(
    channels: Sequence[object], batch_seconds: float, link: LinkModel
) -> float:
    """Time to upload one batch of buffered sensor data to the phone.

    The phone is awake (and burning ~323 mW) for this long before it can
    even start processing the batch — the hidden cost of batching over a
    slow link.

    Raises:
        SimulationError: when the link cannot even keep up with the live
            stream (the batch would grow faster than it drains).
    """
    if not can_stream(channels, link):
        raise SimulationError(
            f"link {link.name!r} ({link.payload_bytes_per_second:.0f} B/s) "
            f"cannot sustain channels streaming at "
            f"{stream_bytes_per_second(channels):.0f} B/s; batches would "
            "grow without bound"
        )
    return link.transfer_seconds(batch_bytes(channels, batch_seconds))
