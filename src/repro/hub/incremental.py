"""Incremental execution of wake-up conditions over growing streams.

The compiled and batched tiers (:mod:`repro.hub.compile`) assume the
whole trace is in hand; the streaming ingestion path
(:mod:`repro.serve.ingest`) has only the span that arrived since the
last pump round.  This module closes that gap with *bounded replay*:
per plan step and input port the executor keeps a retained trailing
buffer ``R`` — sized by each opcode's
:meth:`~repro.algorithms.base.StreamAlgorithm.incremental_retention`
rule — such that

* ``lower(R)`` emits nothing, and
* ``lower(R ++ S)`` emits exactly the never-before-emitted output
  items for a newly arrived span ``S``.

Because every emitted item is new by construction, no output dedup is
needed, and the union of the per-round outputs is bit-identical to
running the final assembled trace through the whole-trace plan (the
PR 4/7/9 differential contracts extend that identity to the batched
rules used by :func:`advance_rows`).

Graphs that cannot run this way still stream, at whole-graph replay
granularity instead of per-opcode bounded replay:

* :class:`ChunkedReplayState` — fusion-eligible graphs (every node
  chunk-invariant, single rate) feed arrival spans straight into a
  persistent :class:`~repro.hub.runtime.HubRuntime`; chunk-invariance
  makes the result independent of how arrivals were sliced.
* :class:`RoundReplayState` — everything else (e.g. ``expMovingAvg``
  graphs) must see *exactly* the canonical
  :func:`~repro.hub.runtime.split_into_rounds` chunking, so arrivals
  accumulate and rounds are fed only once their content is final,
  replicating the canonical edges float-for-float.

All three modes therefore produce results invariant to arrival
chunking — the property stream recovery leans on to re-derive results
from journaled chunks instead of journaling wake events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import HubExecutionError
from repro.hub.compile import (
    _lower_step_rows,
    batch_eligibility,
    compile_graph,
    shape_signature,
    structural_key,
)
from repro.hub.runtime import HubRuntime, WakeEvent, fusion_eligibility
from repro.il.ast import ChannelRef
from repro.il.graph import DataflowGraph
from repro.sensors.samples import BatchedChunk, Chunk, ChunkBuffer, StreamKind


def incremental_eligibility(graph: DataflowGraph) -> Optional[str]:
    """Why a graph cannot run with bounded replay — or ``None``.

    Bounded replay needs everything batched execution needs (the
    per-round merged inputs of many subscriptions stack into one
    tensor dispatch) *plus* an incremental retention rule on every
    node: the opcode opted in via ``incremental = True`` and this
    instance's parameters are expressible
    (:meth:`~repro.algorithms.base.StreamAlgorithm.
    incremental_ineligibility` returns ``None``).  Returns a
    human-readable reason for the first violation found, mirroring
    :func:`repro.hub.compile.batch_eligibility`.
    """
    reason = batch_eligibility(graph)
    if reason is not None:
        return reason
    for node in graph.nodes:
        name = node.opcode or type(node.algorithm).__name__
        if not node.algorithm.incremental:
            return f"node {node.node_id} ({name}) has no bounded-replay rule"
        why = node.algorithm.incremental_ineligibility()
        if why is not None:
            return f"node {node.node_id} ({name}): {why}"
    return None


@dataclass
class _PortState:
    """Retained replay tail and consumed-item count of one input port."""

    retained: Optional[Chunk] = None
    seen: int = 0


def _concat(retained: Optional[Chunk], span: Chunk) -> Chunk:
    """``retained ++ span`` without touching either side when one is empty.

    Returning the non-empty side untouched matters beyond speed: empty
    FRAME/SPECTRUM chunks are built with width 0, and concatenating a
    ``(0, 0)`` array with an ``(n, w)`` one would fail.
    """
    if retained is None or retained.is_empty:
        return span
    if span.is_empty:
        return retained
    return Chunk.view(
        retained.kind,
        np.concatenate([retained.times, span.times]),
        np.concatenate([retained.values, span.values]),
        span.rate_hz,
    )


def _empty_like_output(algorithm, rate_hz: float) -> Chunk:
    kind = algorithm.output_kind
    return Chunk.empty(kind, rate_hz, None if kind is StreamKind.SCALAR else 0)


@dataclass(frozen=True)
class StreamDispatchInfo:
    """Accounting for one batched incremental advance.

    Attributes:
        dispatches: Plan-step executions issued (stacked or single-row).
        rows: Total subscription-rows across those executions — the
            ratio ``rows / dispatches`` is the incremental-round
            occupancy the metrics layer reports.
        cells: Total merged input items fed across all executions.
    """

    dispatches: int
    rows: int
    cells: int


class IncrementalGraphState:
    """Bounded-replay executor state for one subscription's graph.

    Args:
        graph: Validated dataflow graph; must be incremental-eligible
            (callers wanting graceful fallback consult
            :func:`incremental_eligibility` first).

    Feed newly arrived per-channel spans with :meth:`advance`; each
    call returns exactly the wake events the whole-trace plan would
    emit for data ending where the arrivals end.  Same-``batch_key``
    states advance together through :func:`advance_rows`, which runs
    each plan step once over all of them as a stacked tensor dispatch.
    """

    mode = "incremental"

    def __init__(self, graph: DataflowGraph):
        reason = incremental_eligibility(graph)
        if reason is not None:
            raise HubExecutionError(
                f"graph is not incremental-eligible: {reason}"
            )
        self.graph = graph
        self.plan = compile_graph(graph)
        self._ports: Dict[int, List[_PortState]] = {
            step.node_id: [_PortState() for _ in step.inputs]
            for step in self.plan.steps
        }
        self._pending: Dict[int, List[ChunkBuffer]] = {
            step.node_id: [ChunkBuffer() for _ in step.inputs]
            for step in self.plan.steps
            if step.align
        }
        rates = {}
        for node in graph.nodes:
            for ref, shape in zip(node.inputs, node.input_shapes):
                if isinstance(ref, ChannelRef):
                    rates[ref.channel] = shape.rate_hz
        #: States sharing this key run the same opcodes over the same
        #: wiring with equal structural parameters and channel rates,
        #: so their per-step merged inputs can stack into one dispatch.
        self.batch_key: Tuple = (
            shape_signature(graph),
            structural_key(graph),
            tuple(sorted(rates.items())),
        )

    def advance(self, channel_spans: Dict[str, Chunk]) -> List[WakeEvent]:
        """Run the newly arrived spans; return the new wake events."""
        return advance_rows([self], [channel_spans])[0]

    def close(self) -> List[WakeEvent]:
        """End of stream.  Bounded replay never holds back output items
        (surplus in multi-port pending buffers is exactly what the
        whole-trace aligned-prefix truncation drops), so nothing flushes.
        """
        return []

    # -- internals ----------------------------------------------------

    def _release_aligned(self, node_id: int, spans: List[Chunk]) -> List[Chunk]:
        """Buffer multi-port spans; release the newly aligned prefix.

        The union of per-round aligned releases is the aligned prefix
        of the full port streams — the whole-trace collapse
        (:func:`repro.hub.compile._aligned_prefix`) truncated at the
        shortest port, reached one round at a time.
        """
        pending = self._pending[node_id]
        rate = spans[0].rate_hz
        for buffer, span in zip(pending, spans):
            if not span.is_empty:
                buffer.extend(span)
        available = min(len(buffer) for buffer in pending)
        released = []
        for buffer in pending:
            released.append(
                Chunk.view(
                    StreamKind.SCALAR,
                    buffer.times[:available],
                    buffer.values[:available],
                    rate,
                )
            )
            buffer.consume(available)
        return released


def advance_rows(
    states: List[IncrementalGraphState],
    spans: List[Dict[str, Chunk]],
) -> List[List[WakeEvent]]:
    """Advance many same-``batch_key`` states in stacked step dispatches."""
    return advance_rows_with_info(states, spans)[0]


def advance_rows_with_info(
    states: List[IncrementalGraphState],
    spans: List[Dict[str, Chunk]],
) -> Tuple[List[List[WakeEvent]], StreamDispatchInfo]:
    """:func:`advance_rows` plus dispatch/occupancy accounting.

    Args:
        states: Subscription states sharing one ``batch_key`` (same
            graph shape, structural parameters and channel rates — the
            grouping the ingest layer performs).
        spans: Per state, the newly arrived span per channel name.
            Every channel the state's graph reads must be present
            (possibly empty, carrying the channel's rate).

    Returns:
        Per state, the wake events these arrivals produced — each list
        bit-identical to what :meth:`IncrementalGraphState.advance`
        would return alone — plus dispatch accounting.
    """
    if not states:
        return [], StreamDispatchInfo(0, 0, 0)
    if len({state.batch_key for state in states}) > 1:
        raise HubExecutionError(
            "advance_rows requires states sharing one batch key"
        )
    n_rows = len(states)
    # Per row, new spans keyed by channel name (str) and node id (int);
    # the key types never collide (same trick as CompiledPlan.execute).
    envs: List[Dict[Union[str, int], Chunk]] = [dict(span) for span in spans]
    dispatches = total_rows = total_cells = 0
    for position in range(len(states[0].plan.steps)):
        merged_rows: List[List[Chunk]] = []
        span_lens: List[List[int]] = []
        for r, state in enumerate(states):
            step = state.plan.steps[position]
            ins = []
            for ref in step.inputs:
                key = (
                    ref.channel if isinstance(ref, ChannelRef) else ref.node_id
                )
                ins.append(envs[r][key])
            if step.align:
                ins = state._release_aligned(step.node_id, ins)
            ports = state._ports[step.node_id]
            merged_rows.append(
                [_concat(p.retained, s) for p, s in zip(ports, ins)]
            )
            span_lens.append([len(s) for s in ins])
        included = [
            r
            for r in range(n_rows)
            if any(not chunk.is_empty for chunk in merged_rows[r])
        ]
        out_rows: Dict[int, Chunk] = {}
        if included:
            if len(included) == 1:
                r = included[0]
                out_rows[r] = states[r].plan.steps[position].algorithm.lower(
                    merged_rows[r]
                )
            else:
                n_ports = len(states[0].plan.steps[position].inputs)
                stacked = [
                    BatchedChunk.from_rows(
                        [merged_rows[r][p] for r in included]
                    )
                    for p in range(n_ports)
                ]
                algorithms = [
                    states[r].plan.steps[position].algorithm for r in included
                ]
                out_batch = _lower_step_rows(algorithms, stacked)
                for b, r in enumerate(included):
                    out_rows[r] = out_batch.row(b)
            dispatches += 1
            total_rows += len(included)
            total_cells += sum(
                len(chunk) for r in included for chunk in merged_rows[r]
            )
            # Retention update: slice the new replay tail off each
            # row's merged input (only rows that actually ran; skipped
            # rows saw no new items, and recomputing retention on the
            # retained tail alone returns that tail unchanged).
            for r in included:
                step = states[r].plan.steps[position]
                ports = states[r]._ports[step.node_id]
                merged = merged_rows[r]
                new_seen = ports[0].seen + span_lens[r][0]
                keep = step.algorithm.incremental_retention(
                    merged[0], new_seen
                )
                for p, port in enumerate(ports):
                    port.seen += span_lens[r][p]
                    limit = min(keep, len(merged[p]))
                    port.retained = merged[p].slice(
                        len(merged[p]) - limit, len(merged[p])
                    )
        for r, state in enumerate(states):
            step = state.plan.steps[position]
            if r in out_rows:
                envs[r][step.node_id] = out_rows[r]
            else:
                envs[r][step.node_id] = _empty_like_output(
                    step.algorithm, merged_rows[r][0].rate_hz
                )
    results = []
    for r, state in enumerate(states):
        out = envs[r][state.plan.output_id]
        results.append(
            [
                WakeEvent(t, v)
                for t, v in zip(
                    out.times.tolist(), np.atleast_1d(out.values).tolist()
                )
            ]
        )
    return results, StreamDispatchInfo(dispatches, total_rows, total_cells)


class ChunkedReplayState:
    """Streaming fallback for fusion-eligible, non-incremental graphs.

    Chunk-invariance of every node (plus single-rate channels) makes a
    persistent interpreter's output independent of how the input was
    sliced into feed rounds, so arrival spans can be fed exactly as
    they come — no retention machinery, no canonical round edges.
    """

    mode = "chunked"

    def __init__(self, graph: DataflowGraph):
        reason = fusion_eligibility(graph)
        if reason is not None:
            raise HubExecutionError(
                f"graph is not fusion-eligible: {reason}"
            )
        self.graph = graph
        self._runtime = HubRuntime(graph)

    def advance(self, channel_spans: Dict[str, Chunk]) -> List[WakeEvent]:
        """Feed one arrival span straight through the interpreter."""
        if all(chunk.is_empty for chunk in channel_spans.values()):
            return []
        return self._runtime.feed(channel_spans)

    def close(self) -> List[WakeEvent]:
        """End the stream (chunk-invariant graphs hold nothing back)."""
        return []


class _Column:
    """Append-only float column with a lazily cached concatenation."""

    __slots__ = ("_parts", "_cache", "_n", "last")

    def __init__(self) -> None:
        self._parts: List[np.ndarray] = []
        self._cache: Optional[np.ndarray] = None
        self._n = 0
        self.last: Optional[float] = None

    def append(self, array: np.ndarray) -> None:
        if not len(array):
            return
        self._parts.append(array)
        self._cache = None
        self._n += len(array)
        self.last = float(array[-1])

    def __len__(self) -> int:
        return self._n

    @property
    def data(self) -> np.ndarray:
        if self._cache is None:
            self._cache = (
                np.concatenate(self._parts) if self._parts else np.empty(0)
            )
            self._parts = [self._cache]
        return self._cache


class RoundReplayState:
    """Streaming fallback for graphs that are not chunk-invariant.

    Graphs containing e.g. ``expMovingAvg`` produce chunking-dependent
    (at ulp level) results, so the reference semantics are pinned to
    the canonical :func:`~repro.hub.runtime.split_into_rounds` chunking
    at the subscription's ``chunk_seconds``.  This state accumulates
    arrivals and feeds a round only once its content is provably final
    — every channel's next undelivered sample lies at or past the
    round's right edge — generating edges by the same float
    accumulation the canonical splitter uses, so the fed rounds are
    slice-for-slice the splitter's own.  :meth:`close` feeds whatever
    rounds remain (including trailing empties the splitter would
    produce).
    """

    mode = "rounds"

    def __init__(self, graph: DataflowGraph, chunk_seconds: float):
        self.graph = graph
        self.chunk_seconds = float(chunk_seconds)
        self._runtime = HubRuntime(graph)
        self._times: Dict[str, _Column] = {
            name: _Column() for name in graph.channels
        }
        self._values: Dict[str, _Column] = {
            name: _Column() for name in graph.channels
        }
        self._rates: Dict[str, float] = {}
        self._start: Optional[float] = None
        self._edges: List[float] = []
        self._fed = 0
        self._closed = False

    def advance(self, channel_spans: Dict[str, Chunk]) -> List[WakeEvent]:
        """Buffer arrival spans; feed every round that became final."""
        if self._closed:
            raise HubExecutionError("cannot advance a closed stream state")
        for name, span in channel_spans.items():
            if name not in self._times:
                continue
            self._rates[name] = span.rate_hz
            if span.is_empty:
                continue
            first = float(span.times[0])
            if self._start is None or first < self._start:
                if self._fed:
                    raise HubExecutionError(
                        "stream timeline extended before already-fed rounds"
                    )
                self._start = first
            self._times[name].append(span.times)
            self._values[name].append(span.values)
        return self._pump()

    def close(self) -> List[WakeEvent]:
        """Feed every remaining canonical round and end the stream."""
        if self._closed:
            return []
        self._closed = True
        end = self._end()
        if self._start is None or end is None:
            return []
        # Count rounds exactly as the canonical splitter's edge loop:
        # one per edge value at or below the final end.
        total = 0
        t0 = self._start
        while t0 <= end:
            total += 1
            t0 += self.chunk_seconds
        events: List[WakeEvent] = []
        for k in range(self._fed, total):
            events.extend(self._feed_round(self._edge(k), self._edge(k + 1)))
        self._fed = total
        return events

    # -- internals ----------------------------------------------------

    def _end(self) -> Optional[float]:
        lasts = [
            column.last for column in self._times.values() if len(column)
        ]
        return max(lasts) if lasts else None

    def _edge(self, index: int) -> float:
        while len(self._edges) <= index:
            self._edges.append(
                self._start
                if not self._edges
                else self._edges[-1] + self.chunk_seconds
            )
        return self._edges[index]

    def _pump(self) -> List[WakeEvent]:
        events: List[WakeEvent] = []
        end = self._end()
        if self._start is None or end is None:
            return events
        while True:
            left = self._edge(self._fed)
            if left > end:
                # The canonical splitter only creates rounds whose left
                # edge is at or below the final trace end; the current
                # end is a lower bound on that, so this round may not
                # exist yet.
                break
            right = self._edge(self._fed + 1)
            ready = all(
                len(self._times[name])
                and self._times[name].last + 1.0 / self._rates[name] >= right
                for name in self._times
            )
            if not ready:
                break
            events.extend(self._feed_round(left, right))
            self._fed += 1
        return events

    def _feed_round(self, left: float, right: float) -> List[WakeEvent]:
        round_chunks: Dict[str, Chunk] = {}
        for name in self._times:
            times = self._times[name].data
            values = self._values[name].data
            i0 = int(np.searchsorted(times, left, side="left"))
            i1 = int(np.searchsorted(times, right, side="left"))
            round_chunks[name] = Chunk.view(
                StreamKind.SCALAR,
                times[i0:i1],
                values[i0:i1],
                self._rates.get(name, 0.0),
            )
        return self._runtime.feed(round_chunks)


StreamState = Union[IncrementalGraphState, ChunkedReplayState, RoundReplayState]


def make_stream_state(
    graph: DataflowGraph, chunk_seconds: float
) -> StreamState:
    """Pick the fastest arrival-chunking-invariant executor for a graph.

    Bounded replay (batched across subscriptions) when eligible;
    otherwise a persistent interpreter fed arrival spans directly
    (chunk-invariant graphs), or fed the canonical round split
    replicated incrementally (everything else).  All three produce
    results independent of how arrivals were chunked, so recovery can
    re-derive them from journaled chunks.
    """
    if incremental_eligibility(graph) is None:
        return IncrementalGraphState(graph)
    if fusion_eligibility(graph) is None:
        return ChunkedReplayState(graph)
    return RoundReplayState(graph, chunk_seconds)
