"""Microcontroller descriptors for the sensor hub.

The paper's prototype evaluated two TI microcontrollers (Section 4):

* **MSP430** — 3.6 mW awake, but "limited memory and cannot perform
  complex analysis of sensor data in real-time.  In our tests, it was
  unable to run the FFT-based low-pass filter in real-time."
* **LM4F120** (Cortex-M4) — "can run all our filters in real time", at
  "an energy footprint an order of magnitude greater", 49.4 mW awake.

Clock rates are the parts' datasheet values; together with the
per-algorithm cycle model (:mod:`repro.algorithms`), they reproduce the
paper's feasibility split: audio-rate FFT pipelines exceed the MSP430's
budget while accelerometer-rate pipelines do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class MCUModel:
    """A sensor-hub microcontroller.

    Attributes:
        name: Human-readable part name.
        awake_power_mw: Average power draw while running a condition.
        clock_hz: Core clock.
        utilization_cap: Fraction of cycles the runtime may budget for
            algorithm work (the rest covers the interpreter loop, sensor
            I/O and the UART link to the phone).
        ram_bytes: Data memory available for algorithm state.
    """

    name: str
    awake_power_mw: float
    clock_hz: float
    utilization_cap: float
    ram_bytes: int

    @property
    def cycle_budget_per_second(self) -> float:
        """Cycles per second available to wake-up-condition algorithms."""
        return self.clock_hz * self.utilization_cap


#: TI MSP430: ultra-low-power, 8 MHz class, tiny RAM.
MSP430 = MCUModel(
    name="TI MSP430",
    awake_power_mw=3.6,
    clock_hz=8_000_000.0,
    utilization_cap=0.7,
    ram_bytes=10 * 1024,
)

#: TI LM4F120 (Stellaris LaunchPad): Cortex-M4F, 80 MHz, 32 KiB SRAM.
LM4F120 = MCUModel(
    name="TI LM4F120",
    awake_power_mw=49.4,
    clock_hz=80_000_000.0,
    utilization_cap=0.7,
    ram_bytes=32 * 1024,
)

#: MCUs the default hub offers, in increasing power order.  The hub
#: places each condition on the least hungry feasible MCU.
DEFAULT_CATALOG: Tuple[MCUModel, ...] = (MSP430, LM4F120)
