"""FPGA-based sensor hub model (paper Sections 2.1.1 and 7).

The paper's design explicitly allows FPGA hubs ("the hardware could be
a network of one or more processors, DSPs, FPGAs or microcontrollers...
In the case of FPGAs the algorithms will most likely be pre-compiled
and the runtime would need to reconfigure according to the specific
configuration") and names an FPGA prototype as immediate future work.

The model here captures what makes an FPGA different from an MCU:

* feasibility is bounded by *area*, not cycles — each algorithm block
  occupies logic cells, and a condition fits when its blocks (plus
  their buffering) fit the fabric;
* throughput is essentially free once placed (each block is dedicated
  hardware), so the audio-rate FFT that sinks the MSP430 synthesizes
  comfortably;
* power sits between the two MCUs: flash-based low-power fabrics
  (iCE40/IGLOO class) run DSP pipelines at a few mW.

An :class:`FPGAModel` duck-types the attributes the simulator reads
from :class:`~repro.hub.mcu.MCUModel` (``name``, ``awake_power_mw``),
and :func:`select_processor` extends MCU selection across a mixed
catalog, so ``Sidewinder(catalog=(MSP430, ICE40_CLASS))`` works
unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple, Union

from repro.errors import FeasibilityError
from repro.hub.feasibility import is_feasible as mcu_is_feasible
from repro.hub.mcu import MCUModel
from repro.il.graph import DataflowGraph

#: Logic-cell cost per algorithm block.  Constants are coarse but
#: realistically ranked: element-wise ops are tiny, windowed statistics
#: moderate, an FFT engine large (butterfly datapath + twiddle ROM).
_BASE_CELLS: Dict[str, float] = {
    "movingAvg": 60.0,
    "expMovingAvg": 80.0,
    "window": 40.0,
    "fft": 1500.0,
    "ifft": 1500.0,
    # Band filters time-multiplex a single butterfly engine for the
    # forward and inverse passes, so they cost less than two FFTs.
    "lowPass": 2800.0,
    "highPass": 2800.0,
    "vectorMagnitude": 220.0,  # multipliers + sqrt pipeline
    "zeroCrossingRate": 70.0,
    "stat": 180.0,
    "dominantFrequency": 260.0,
    "minThreshold": 20.0,
    "maxThreshold": 20.0,
    "rangeThreshold": 30.0,
    "bandIndicator": 30.0,
    "sustainedThreshold": 40.0,
    "localExtrema": 90.0,
    "minOf": 25.0,
    "maxOf": 25.0,
    "sumOf": 25.0,
    "meanOf": 40.0,
}

#: Buffer memory is implemented in block RAM, not logic cells; cells
#: only pay for address/control logic, scaling gently with window size.
_CELLS_PER_LOG2_SAMPLE = 12.0


def node_cells(opcode: str, buffered_samples: int) -> float:
    """Logic-cell estimate for one algorithm block."""
    base = _BASE_CELLS.get(opcode, 150.0)
    if buffered_samples > 1:
        base += _CELLS_PER_LOG2_SAMPLE * math.log2(buffered_samples)
    return base


@dataclass(frozen=True)
class FPGAModel:
    """A low-power FPGA fabric serving as the sensor hub.

    Attributes:
        name: Fabric name.
        awake_power_mw: Static + active draw while running a condition.
        logic_cells: Available logic cells.
        bram_bytes: Block RAM available for sample buffers.
        reconfiguration_s: Time to load a new condition's bitstream
            (during which events can be missed; informational).
    """

    name: str
    awake_power_mw: float
    logic_cells: int
    bram_bytes: int
    reconfiguration_s: float

    def cells_for(self, graph: DataflowGraph) -> float:
        """Total logic cells the condition's blocks occupy."""
        total = 0.0
        for node in graph.nodes:
            size = node.algorithm.params.get("size")
            buffered = int(size) if isinstance(size, (int, float)) else max(
                (s.width for s in node.input_shapes), default=1
            )
            total += node_cells(node.opcode, buffered)
        return total

    def bram_for(self, graph: DataflowGraph) -> int:
        """Block RAM bytes for the condition's sample buffers."""
        total = 0
        for node in graph.nodes:
            size = node.algorithm.params.get("size")
            if isinstance(size, (int, float)):
                total += int(size) * 2  # 16-bit samples
            else:
                total += max((s.width for s in node.input_shapes), default=1) * 2
        return total

    def supports(self, graph: DataflowGraph) -> bool:
        """True when the condition synthesizes onto this fabric."""
        return (
            self.cells_for(graph) <= self.logic_cells
            and self.bram_for(graph) <= self.bram_bytes
        )


#: An iCE40/IGLOO-class flash FPGA: ~5000 logic cells, 16 KiB BRAM,
#: a few milliwatts running a DSP pipeline.
ICE40_CLASS = FPGAModel(
    name="iCE40-class FPGA",
    awake_power_mw=7.5,
    logic_cells=5280,
    bram_bytes=16 * 1024,
    reconfiguration_s=0.07,
)

#: A larger (Artix-class) fabric: effectively unconstrained for these
#: pipelines but an order of magnitude hungrier.
ARTIX_CLASS = FPGAModel(
    name="Artix-class FPGA",
    awake_power_mw=120.0,
    logic_cells=100_000,
    bram_bytes=512 * 1024,
    reconfiguration_s=0.25,
)

HubProcessor = Union[MCUModel, FPGAModel]


def processor_supports(processor: HubProcessor, graph: DataflowGraph) -> bool:
    """Feasibility across both processor kinds."""
    if isinstance(processor, FPGAModel):
        return processor.supports(graph)
    return mcu_is_feasible(graph, processor)


def select_processor(
    graph: DataflowGraph, catalog: Sequence[HubProcessor]
) -> HubProcessor:
    """Cheapest processor (MCU or FPGA) that can run the condition.

    Raises:
        FeasibilityError: when nothing in the catalog can.
    """
    feasible = [p for p in catalog if processor_supports(p, graph)]
    if not feasible:
        names = [p.name for p in catalog]
        raise FeasibilityError(
            f"wake-up condition fits none of the hub processors {names}"
        )
    return min(feasible, key=lambda p: p.awake_power_mw)


def placement_table(
    graphs: Dict[str, DataflowGraph], catalog: Sequence[HubProcessor]
) -> Dict[str, Tuple[str, float]]:
    """Per-condition (processor name, power) placement summary."""
    table = {}
    for name, graph in graphs.items():
        processor = select_processor(graph, catalog)
        table[name] = (processor.name, processor.awake_power_mw)
    return table
