"""The hub interpreter: executes a wake-up condition over sensor data.

"Our implementation of the runtime resembles a simple interpreter ...
The interpreter then waits for sensor data to be available and feeds the
data into the appropriate algorithm.  If the algorithm produces a
result, it sets a flag.  The interpreter checks the flag and if
necessary sends the result to the next algorithm. ... The final
algorithm feeds into OUT, indicating that the main processor should be
woken up." (Section 3.5)

This implementation preserves those semantics while processing data in
chunks: per round, each node consumes the chunks its inputs produced
this round, and its output (if the ``has_result`` flag is set) flows to
its consumers within the same round.  Items emitted by the output node
become :class:`WakeEvent` records.

Multi-input nodes are item-synchronized: the runtime buffers each input
port and invokes the algorithm on the longest aligned prefix, so a
``vectorMagnitude`` always sees matching x/y/z items even if upstream
moving averages warm up across chunk boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import HubExecutionError
from repro.il.ast import ChannelRef, NodeRef
from repro.il.graph import DataflowGraph
from repro.hub.state import AlgorithmState, allocate_states
from repro.sensors.samples import Chunk, StreamKind

#: How many normal feed rounds one fused round spans.  Fusion could use
#: a single trace-length round, but coalescing in blocks keeps peak
#: memory bounded on long traces while still amortizing the per-round
#: dict/Chunk/dispatch overhead over ~minutes of signal.
FUSED_ROUNDS_COALESCED = 64


@dataclass(frozen=True)
class WakeEvent:
    """One item reaching OUT: wake the main processor.

    Attributes:
        time: Trace time in seconds of the triggering item.
        value: The item's value.
    """

    time: float
    value: float


class HubRuntime:
    """Interprets one validated wake-up condition.

    Args:
        graph: Validated dataflow graph
            (from :func:`repro.il.validate.validate_program`).

    Use :meth:`feed` to push aligned per-channel sample chunks; it
    returns the wake events the chunk produced.  :meth:`run` drives a
    whole iterable of chunk rounds and accumulates events.
    """

    def __init__(self, graph: DataflowGraph):
        self.graph = graph
        self.states: Dict[int, AlgorithmState] = allocate_states(graph.nodes)

    def reset(self) -> None:
        """Drop all interpreter state (buffers, flags, results)."""
        for state in self.states.values():
            state.reset()

    def feed(self, channel_chunks: Dict[str, Chunk]) -> List[WakeEvent]:
        """Process one round of sensor data.

        Args:
            channel_chunks: Chunk of new raw samples per channel name.
                Every channel the graph reads must be present (possibly
                empty).

        Returns:
            Wake events produced this round, in time order.

        Raises:
            HubExecutionError: when a channel the condition reads has
                no chunk this round.
        """
        missing = [c for c in self.graph.channels if c not in channel_chunks]
        if missing:
            raise HubExecutionError(
                f"feed() missing chunks for channels {missing}"
            )

        round_outputs: Dict[int, Chunk] = {}
        events: List[WakeEvent] = []
        for node in self.graph.nodes:
            state = self.states[node.node_id]
            inputs = self._gather_inputs(node.inputs, channel_chunks, round_outputs)
            if len(node.inputs) > 1:
                inputs = self._synchronize(state, inputs)
            if all(chunk.is_empty for chunk in inputs):
                # Nothing arrived on any port this round: the paper's
                # interpreter simply would not invoke the algorithm.
                empty = Chunk.empty(
                    node.algorithm.output_kind,
                    inputs[0].rate_hz,
                    None if node.algorithm.output_kind is StreamKind.SCALAR else 0,
                )
                state.record_result(empty)
                round_outputs[node.node_id] = empty
                continue
            output = node.algorithm.process(inputs)
            state.record_result(output)
            round_outputs[node.node_id] = output
            if node.node_id == self.graph.output_id and state.has_result:
                events.extend(
                    WakeEvent(float(t), float(v))
                    for t, v in zip(output.times, np.atleast_1d(output.values))
                )
        return events

    def run(self, rounds: Iterable[Dict[str, Chunk]]) -> List[WakeEvent]:
        """Feed every round and return all wake events."""
        events: List[WakeEvent] = []
        for chunks in rounds:
            events.extend(self.feed(chunks))
        return events

    def run_fused(
        self,
        channel_data: Dict[str, Tuple[np.ndarray, np.ndarray, float]],
        chunk_seconds: float = 4.0,
    ) -> List[WakeEvent]:
        """Interpret a whole trace in a few large coalesced rounds.

        Instead of feeding hundreds of ``chunk_seconds``-sized rounds,
        the trace is split into rounds ``FUSED_ROUNDS_COALESCED`` times
        longer, eliminating almost all per-round dict building, chunk
        allocation and node dispatch.  Because every node is required
        to be chunk-invariant (and all channels single-rate), the wake
        events are *bit-identical* to the round-by-round result for any
        ``chunk_seconds``.

        Args:
            channel_data: Per channel name, a ``(times, values,
                rate_hz)`` triple, as for :func:`split_into_rounds`.
            chunk_seconds: The round length the caller would have used
                on the slow path; fused rounds coalesce this.

        Raises:
            HubExecutionError: when the graph is not fusion-eligible —
                callers that want silent fallback should consult
                :func:`fusion_eligibility` first.
        """
        reason = fusion_eligibility(self.graph)
        if reason is not None:
            raise HubExecutionError(f"graph is not fusion-eligible: {reason}")
        fused = split_into_rounds(
            channel_data, chunk_seconds * FUSED_ROUNDS_COALESCED
        )
        return self.run(fused)

    # -- helpers ------------------------------------------------------

    def _gather_inputs(
        self,
        refs: Sequence,
        channel_chunks: Dict[str, Chunk],
        round_outputs: Dict[int, Chunk],
    ) -> List[Chunk]:
        inputs: List[Chunk] = []
        for ref in refs:
            if isinstance(ref, ChannelRef):
                inputs.append(channel_chunks[ref.channel])
            elif isinstance(ref, NodeRef):
                inputs.append(round_outputs[ref.node_id])
            else:  # pragma: no cover - validated earlier
                raise TypeError(f"bad input ref {ref!r}")
        return inputs

    def _synchronize(
        self, state: AlgorithmState, inputs: List[Chunk]
    ) -> List[Chunk]:
        """Buffer multi-input ports and release the aligned prefix."""
        rate = inputs[0].rate_hz
        for port, chunk in enumerate(inputs):
            if not chunk.is_empty:
                state.pending[port].extend(chunk)
        available = min(len(state.pending[p]) for p in range(len(inputs)))
        aligned: List[Chunk] = []
        for port in range(len(inputs)):
            buffer = state.pending[port]
            # Views, not copies: ChunkBuffer never mutates its arrays in
            # place (extend/consume reassign), so a released prefix stays
            # valid after the buffer advances past it.
            aligned.append(
                Chunk.view(
                    StreamKind.SCALAR,
                    buffer.times[:available],
                    buffer.values[:available],
                    rate,
                )
            )
            buffer.consume(available)
        return aligned


def fusion_eligibility(graph: DataflowGraph) -> Optional[str]:
    """Why a graph cannot run fused — or ``None`` when it can.

    A graph is fusion-eligible when re-chunking its input provably
    cannot change its output:

    * every node's algorithm declares ``chunk_invariant = True``;
    * all raw channels it reads share one sampling rate (multi-rate
      graphs make round boundaries part of the port-synchronization
      schedule, so they stay on the round-by-round path).

    Returns a human-readable reason for the first violation found, so
    callers can log *why* they fell back.
    """
    rates = set()
    for node in graph.nodes:
        if not node.algorithm.chunk_invariant:
            return (
                f"node {node.node_id} ({node.algorithm.opcode or type(node.algorithm).__name__})"
                " is not chunk-invariant"
            )
        for ref, shape in zip(node.inputs, node.input_shapes):
            if isinstance(ref, ChannelRef):
                rates.add(shape.rate_hz)
    if len(rates) > 1:
        return f"graph reads channels at multiple rates {sorted(rates)}"
    return None


def split_into_rounds(
    channel_data: Dict[str, Tuple[np.ndarray, np.ndarray, float]],
    chunk_seconds: float = 4.0,
) -> Iterable[Dict[str, Chunk]]:
    """Slice aligned channel arrays into feed-sized rounds.

    Args:
        channel_data: Per channel name, a ``(times, values, rate_hz)``
            triple.  All channels must cover the same time span.
        chunk_seconds: Wall-clock length of each round.

    Yields:
        One ``{channel: Chunk}`` mapping per round.  Mimics the hub
        receiving batches of samples over the sensor bus.  No channel
        data (or only empty channels) yields no rounds.
    """
    if not channel_data:
        return
    # Coerce once up front so per-round slices can be handed out as
    # zero-copy views without re-validation.
    coerced = {
        name: (
            np.asarray(times, dtype=np.float64),
            np.asarray(values, dtype=np.float64),
            rate,
        )
        for name, (times, values, rate) in channel_data.items()
    }
    nonempty = [times for times, _values, _rate in coerced.values() if len(times)]
    if not nonempty:
        return
    start = min(times[0] for times in nonempty)
    end = max(times[-1] for times in nonempty)
    channel_data = coerced
    # Round boundaries, accumulated the same way the rounds advance so
    # float rounding matches a per-round scan exactly.
    edges: List[float] = []
    t0 = start
    while t0 <= end:
        edges.append(t0)
        t0 += chunk_seconds
    edges.append(t0)
    # One binary search per channel for all boundaries replaces a full
    # boolean mask per (channel, round): O(samples log rounds) instead
    # of O(samples x rounds).  Sample times are sorted by construction.
    bounds = {
        name: np.searchsorted(times, edges, side="left")
        for name, (times, values, rate) in channel_data.items()
    }
    for k in range(len(edges) - 1):
        round_chunks: Dict[str, Chunk] = {}
        for name, (times, values, rate) in channel_data.items():
            i0, i1 = bounds[name][k], bounds[name][k + 1]
            round_chunks[name] = Chunk.view(
                StreamKind.SCALAR, times[i0:i1], values[i0:i1], rate
            )
        yield round_chunks
