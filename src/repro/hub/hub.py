"""The sensor hub facade: concurrent conditions, listeners, raw buffers.

A :class:`SensorHub` owns the MCU catalog and the set of currently
pushed wake-up conditions.  It accepts IL programs from the sensor
manager, places each on the cheapest feasible MCU, interprets incoming
sensor data, and invokes each application's listener when its condition
fires — delivering a buffer of recent raw sensor data along with the
event (Section 3.8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hub.delivery import (
    RAW_DELIVERY,
    DeliveryMode,
    DeliverySpec,
    validate_delivery,
)
from repro.hub.feasibility import select_mcu

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api -> hub)
    from repro.api.listener import SensorEventListener
from repro.hub.mcu import DEFAULT_CATALOG, MCUModel
from repro.hub.runtime import HubRuntime, WakeEvent
from repro.il.ast import ILProgram
from repro.il.graph import DataflowGraph
from repro.il.validate import validate_program
from repro.sensors.samples import Chunk


@dataclass
class PushedCondition:
    """One wake-up condition resident on the hub.

    Attributes:
        condition_id: Hub-assigned identifier.
        graph: The validated dataflow graph.
        runtime: The interpreter instance executing the graph.
        mcu: The microcontroller the condition was placed on.
        listener: The application callback, if any.
    """

    condition_id: int
    graph: DataflowGraph
    runtime: HubRuntime
    mcu: MCUModel
    listener: Optional["SensorEventListener"] = None
    #: Wake-up payload choice (Section 3.8); defaults to a raw buffer.
    delivery: DeliverySpec = RAW_DELIVERY
    #: All wake events produced since the condition was pushed.
    events: List[WakeEvent] = field(default_factory=list)
    #: Rolling tail of the delivery node's output (NODE delivery only).
    feature_tail: Tuple[np.ndarray, np.ndarray] = (
        np.empty(0), np.empty(0),
    )


class SensorHub:
    """Simulated low-power sensor hub.

    Args:
        catalog: MCUs the manufacturer installed; defaults to the
            paper's MSP430 + LM4F120 pair.
        raw_buffer_seconds: Length of the raw-sample ring buffer
            delivered to applications on wake-up.
    """

    def __init__(
        self,
        catalog: Sequence[MCUModel] = DEFAULT_CATALOG,
        raw_buffer_seconds: float = 4.0,
    ):
        self.catalog = tuple(catalog)
        self.raw_buffer_seconds = raw_buffer_seconds
        self.conditions: List[PushedCondition] = []
        self._next_id = 1
        self._raw_tail: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}

    # -- configuration -------------------------------------------------

    def push(
        self,
        program: ILProgram,
        listener: Optional["SensorEventListener"] = None,
        delivery: Optional[DeliverySpec] = None,
    ) -> PushedCondition:
        """Validate, place and start a wake-up condition.

        Args:
            program: The condition's intermediate-language form.
            listener: Callback fired on wake-ups.
            delivery: Wake-up payload choice (Section 3.8): raw buffer
                (default), trigger item only, or an intermediate node's
                output items.

        Raises:
            ILValidationError / ParameterError: if the program is invalid.
            FeasibilityError: if no installed MCU can run it.
            SimulationError: if the delivery spec names an unknown node.
        """
        graph = validate_program(program)
        delivery = delivery if delivery is not None else RAW_DELIVERY
        validate_delivery(delivery, graph)
        mcu = select_mcu(graph, self.catalog)
        condition = PushedCondition(
            condition_id=self._next_id,
            graph=graph,
            runtime=HubRuntime(graph),
            mcu=mcu,
            listener=listener,
            delivery=delivery,
        )
        self._next_id += 1
        self.conditions.append(condition)
        return condition

    def remove(self, condition: PushedCondition) -> None:
        """Stop and discard a pushed condition."""
        self.conditions.remove(condition)

    @property
    def active_mcus(self) -> Tuple[MCUModel, ...]:
        """Distinct MCUs currently running at least one condition."""
        seen: Dict[str, MCUModel] = {}
        for condition in self.conditions:
            seen[condition.mcu.name] = condition.mcu
        return tuple(seen.values())

    @property
    def power_mw(self) -> float:
        """Aggregate hub power draw (each active MCU drawn awake)."""
        return sum(mcu.awake_power_mw for mcu in self.active_mcus)

    # -- data path -------------------------------------------------------

    def feed(self, channel_chunks: Dict[str, Chunk]) -> List[Tuple[PushedCondition, WakeEvent]]:
        """Push one round of sensor data through every condition.

        Listener callbacks run immediately (the simulation treats the
        main processor's wake-up latency separately, in the device power
        model).  Returns ``(condition, event)`` pairs in firing order.
        """
        self._retain_raw(channel_chunks)
        fired: List[Tuple[PushedCondition, WakeEvent]] = []
        for condition in self.conditions:
            relevant = {
                name: channel_chunks[name]
                for name in condition.graph.channels
                if name in channel_chunks
            }
            if len(relevant) != len(condition.graph.channels):
                continue  # this round carries no data for this condition
            round_events = condition.runtime.feed(relevant)
            self._retain_features(condition)
            for event in round_events:
                condition.events.append(event)
                fired.append((condition, event))
                if condition.listener is not None:
                    from repro.api.listener import SensorEvent

                    condition.listener.on_sensor_event(
                        SensorEvent(
                            timestamp=event.time,
                            value=event.value,
                            raw_data=self._delivery_raw(condition),
                            features=self._delivery_features(condition),
                        )
                    )
        return fired

    def _delivery_raw(self, condition: PushedCondition) -> Dict[str, np.ndarray]:
        if condition.delivery.mode is DeliveryMode.RAW:
            return self.raw_buffer(condition.graph.channels)
        return {}

    def _delivery_features(
        self, condition: PushedCondition
    ) -> Optional[np.ndarray]:
        if condition.delivery.mode is not DeliveryMode.NODE:
            return None
        return condition.feature_tail[1].copy()

    def _retain_features(self, condition: PushedCondition) -> None:
        """Update the rolling output tail of the delivery node."""
        if condition.delivery.mode is not DeliveryMode.NODE:
            return
        state = condition.runtime.states[condition.delivery.node_id]
        if state.result is None or state.result.is_empty:
            return
        times, values = condition.feature_tail
        new_values = state.result.values
        if new_values.ndim > 1:  # frames/spectra: keep item magnitudes
            new_values = np.abs(new_values).mean(axis=1)
        times = np.concatenate([times, state.result.times])
        values = np.concatenate([values, new_values])
        cutoff = times[-1] - condition.delivery.buffer_s
        keep = times >= cutoff
        condition.feature_tail = (times[keep], values[keep])

    def raw_buffer(self, channels: Sequence[str]) -> Dict[str, np.ndarray]:
        """Recent raw samples per channel (the wake-up payload)."""
        return {
            name: self._raw_tail[name][1].copy()
            for name in channels
            if name in self._raw_tail
        }

    def _retain_raw(self, channel_chunks: Dict[str, Chunk]) -> None:
        for name, chunk in channel_chunks.items():
            if chunk.is_empty:
                continue
            old_times, old_values = self._raw_tail.get(
                name, (np.empty(0), np.empty(0))
            )
            times = np.concatenate([old_times, chunk.times])
            values = np.concatenate([old_values, chunk.values])
            cutoff = times[-1] - self.raw_buffer_seconds
            keep = times >= cutoff
            self._raw_tail[name] = (times[keep], values[keep])
