"""The hub compiler: wake-up conditions lowered to whole-trace array programs.

The interpreter (:class:`repro.hub.runtime.HubRuntime`) executes a
wake-up condition the way the paper's hub does — round by round, node by
node, with per-round chunk allocation, state bookkeeping and Python
dispatch.  The fused path amortizes that overhead over 64-round blocks
but still pays it per block.  This module removes it entirely: a
validated, fusion-eligible :class:`~repro.il.graph.DataflowGraph` is
lowered once into a :class:`CompiledPlan` — one whole-trace numpy
transform per node (each algorithm's :meth:`~repro.algorithms.base.
StreamAlgorithm.lower` rule), topologically scheduled — and executing
the plan is a single pass over the trace with no rounds at all.

The interpreter remains the semantics oracle.  A lowering rule must be
bit-identical to feeding a fresh algorithm instance the whole trace as
one chunk, and chunk-invariance (the same precondition the fused path
checks) extends that identity to *any* chunking — so a compiled plan's
wake events are exactly the interpreter's, at every chunk size.

Eligibility is explainable: :func:`compile_eligibility` returns a
human-readable reason string (or ``None``) just like
:func:`repro.hub.runtime.fusion_eligibility`, so callers can log *why*
a condition fell back to a slower tier instead of silently degrading.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.algorithms.base import StreamAlgorithm, has_lowering, has_row_lowering
from repro.errors import HubExecutionError
from repro.hub.runtime import WakeEvent, fusion_eligibility
from repro.il.ast import ChannelRef, SourceRef
from repro.il.graph import DataflowGraph
from repro.sensors.samples import BatchedChunk, Chunk, StreamKind

#: Padding-waste guard: a stacked dispatch whose widest row exceeds the
#: mean row length by more than this factor splits into length-sorted
#: sub-batches instead of padding everything to the longest row.
PADDING_WASTE_THRESHOLD = 1.5


def shape_signature(graph: DataflowGraph) -> str:
    """Canonical opcode + topology hash with node parameters struck out.

    Two graphs share a shape signature exactly when they run the same
    opcodes over the same wiring — node ids normalized to topological
    positions, parameter *names* kept (they select kernel variants) but
    parameter *values* dropped.  This is the batching key one level
    above :func:`repro.sim.engine.program_fingerprint`: a fleet running
    the same detector with per-tenant thresholds has as many
    fingerprints as tenants but one shape, and shape-equal graphs can
    execute as a single parameterized tensor dispatch
    (:meth:`BatchedPlan.execute_shape_batch`).

    ``graph.nodes`` is deterministically topologically ordered (see
    :func:`repro.il.graph.build_graph`), so shape-equal graphs list
    their nodes in positional lockstep — the property the shape-batched
    executor relies on to zip per-row plans step by step.

    Returns a ``"shape:"``-prefixed SHA-256 hex digest, disjoint by
    construction from program fingerprints so both can share cost-model
    key space.
    """
    positions = {node.node_id: idx for idx, node in enumerate(graph.nodes)}
    lines = []
    for idx, node in enumerate(graph.nodes):
        refs = ",".join(
            f"ch:{ref.channel}"
            if isinstance(ref, ChannelRef)
            else f"n:{positions[ref.node_id]}"
            for ref in node.inputs
        )
        names = ",".join(sorted(node.algorithm.params))
        lines.append(f"{idx}:{node.opcode}({names})<-[{refs}]")
    lines.append(f"out:{positions[graph.output_id]}")
    digest = hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()
    return f"shape:{digest}"


def structural_key(graph: DataflowGraph) -> Tuple:
    """Parameter values the shape-batched path cannot vary per row.

    Per node in topological order, the ``(name, value)`` pairs of every
    parameter that is *not* liftable into a per-row tensor — i.e. all
    parameters of nodes without a row-lowering rule, and the
    non-``row_params`` remainder of nodes with one.  Shape-equal graphs
    with equal structural keys differ only in liftable values and can
    share one :meth:`BatchedPlan.execute_shape_batch` dispatch; the
    engine sub-groups heterogeneous work on this key.
    """
    key = []
    for node in graph.nodes:
        algorithm = node.algorithm
        liftable = (
            set(algorithm.row_params) if has_row_lowering(algorithm) else set()
        )
        key.append(
            tuple(
                (name, algorithm.params[name])
                for name in sorted(algorithm.params)
                if name not in liftable
            )
        )
    return tuple(key)


def split_for_padding(
    lengths: Sequence[int], threshold: float = PADDING_WASTE_THRESHOLD
) -> List[List[int]]:
    """Group row indices into sub-batches bounded in padding waste.

    Rows sort ascending by length and close greedily: a sub-batch stops
    growing when admitting the next (longest-so-far) row would push its
    ``n_max / mean(row_len)`` above ``threshold``.  Sorting first means
    each group's rows are as alike in length as possible, so the bound
    splits a genuinely bimodal batch in two instead of shedding one row
    at a time.

    Returns groups of *original* row indices; concatenated, they cover
    every row exactly once.
    """
    order = sorted(range(len(lengths)), key=lambda i: (lengths[i], i))
    groups: List[List[int]] = []
    current: List[int] = []
    total = 0
    for idx in order:
        row_len = lengths[idx]
        if current:
            mean = (total + row_len) / (len(current) + 1)
            if mean > 0 and row_len / mean > threshold:
                groups.append(current)
                current, total = [], 0
        current.append(idx)
        total += row_len
    if current:
        groups.append(current)
    return groups


def compile_eligibility(graph: DataflowGraph) -> Optional[str]:
    """Why a graph cannot be compiled to an array program — or ``None``.

    A graph is compile-eligible when it is fusion-eligible (every node
    chunk-invariant, all channels single-rate — the properties that make
    whole-trace execution provably equivalent to any chunking) *and*
    every node's algorithm provides a :meth:`~repro.algorithms.base.
    StreamAlgorithm.lower` rule.  Returns a human-readable reason for
    the first violation found, mirroring
    :func:`repro.hub.runtime.fusion_eligibility`.
    """
    reason = fusion_eligibility(graph)
    if reason is not None:
        return reason
    for node in graph.nodes:
        if not has_lowering(node.algorithm):
            name = node.opcode or type(node.algorithm).__name__
            return f"node {node.node_id} ({name}) has no lowering rule"
    return None


@dataclass(frozen=True)
class PlanStep:
    """One scheduled node of a compiled plan.

    Attributes:
        node_id: The graph node this step computes.
        opcode: The node's IL opcode (for diagnostics).
        algorithm: The algorithm instance whose ``lower`` rule runs.
            Lowering rules are pure, so the instance may be shared with
            a cached interpreter graph without resets.
        inputs: Source references in port order — channel names resolve
            against the trace, node ids against earlier steps.
        align: True when the step has multiple input ports and must be
            fed the aligned common prefix (the whole-trace collapse of
            the interpreter's port synchronizer).
    """

    node_id: int
    opcode: str
    algorithm: StreamAlgorithm
    inputs: Tuple[SourceRef, ...]
    align: bool


@dataclass(frozen=True)
class CompiledPlan:
    """A wake-up condition as a whole-trace array program.

    Build with :func:`compile_graph`; run with :meth:`execute`.  A plan
    holds no mutable state, so one instance can be cached (the engine
    keys plans by IL content fingerprint) and executed over any number
    of traces.

    Attributes:
        steps: Node transforms in topological order.
        output_id: The node whose items become wake events.
        channels: Sensor channels the program reads.
    """

    steps: Tuple[PlanStep, ...]
    output_id: int
    channels: Tuple[str, ...]

    def execute(
        self,
        channel_data: Dict[str, Tuple[np.ndarray, np.ndarray, float]],
    ) -> List[WakeEvent]:
        """Run the array program over one trace's channel arrays.

        Args:
            channel_data: Per channel name, a ``(times, values,
                rate_hz)`` triple — the same form
                :meth:`repro.hub.runtime.HubRuntime.run_fused` takes.

        Returns:
            The wake events, bit-identical to interpreting the source
            graph over the same data at any chunking.

        Raises:
            HubExecutionError: when a channel the program reads is
                missing from ``channel_data``.
        """
        missing = [c for c in self.channels if c not in channel_data]
        if missing:
            raise HubExecutionError(
                f"compiled plan missing data for channels {missing}"
            )
        # One environment maps both channel names (str) and node ids
        # (int) to their whole-trace chunks; the key types never collide.
        env: Dict[Union[str, int], Chunk] = {}
        for name in self.channels:
            times, values, rate = channel_data[name]
            env[name] = Chunk.view(
                StreamKind.SCALAR,
                np.asarray(times, dtype=np.float64),
                np.asarray(values, dtype=np.float64),
                rate,
            )
        for step in self.steps:
            inputs = [
                env[ref.channel] if isinstance(ref, ChannelRef) else env[ref.node_id]
                for ref in step.inputs
            ]
            if step.align:
                inputs = _aligned_prefix(inputs)
            env[step.node_id] = step.algorithm.lower(inputs)
        out = env[self.output_id]
        return [
            WakeEvent(t, v)
            for t, v in zip(
                out.times.tolist(), np.atleast_1d(out.values).tolist()
            )
        ]


def _aligned_prefix(inputs: List[Chunk]) -> List[Chunk]:
    """Truncate multi-port inputs to their common item-aligned prefix.

    The interpreter buffers each port and releases the longest aligned
    prefix every round; over a whole trace that collapses to one
    truncation at the shortest port (any surplus would have stayed
    buffered past end-of-trace and never been processed).
    """
    available = min(len(chunk) for chunk in inputs)
    return [
        Chunk.view(
            StreamKind.SCALAR,
            chunk.times[:available],
            chunk.values[:available],
            chunk.rate_hz,
        )
        for chunk in inputs
    ]


def batch_eligibility(graph: DataflowGraph) -> Optional[str]:
    """Why a graph cannot run tensor-major over many traces — or ``None``.

    Batched execution stacks *B* traces into one array program, so it
    needs everything compilation needs (every ``lower`` rule has a
    row-identical ``lower_batched`` counterpart — the base class
    guarantees one by looping rows).  On top of that, the output stream
    must be scalar: per-trace wake events are unstacked item by item,
    and only scalar items map one-to-one onto ``WakeEvent`` values.
    Returns a human-readable reason string beside
    :func:`compile_eligibility`'s, or ``None`` when batchable.
    """
    reason = compile_eligibility(graph)
    if reason is not None:
        return reason
    for node in graph.nodes:
        if node.node_id == graph.output_id:
            if node.algorithm.output_kind is not StreamKind.SCALAR:
                return (
                    f"output node {node.node_id} ({node.opcode}) emits "
                    f"{node.algorithm.output_kind.value} items; batched "
                    "unstacking requires a scalar output stream"
                )
    return None


@dataclass(frozen=True)
class BatchDispatchInfo:
    """Accounting for one batched/shape-batched execution.

    Attributes:
        sub_batches: Stacked dispatches actually issued (more than one
            when the padding-waste guard split the batch; zero when a
            single row short-circuited to the scalar plan).
        valid_cells: Total valid (non-padding) channel-tensor cells
            across all dispatches.
        padded_cells: Total allocated channel-tensor cells, padding
            included.
    """

    sub_batches: int
    valid_cells: int
    padded_cells: int

    @property
    def padding_ratio(self) -> float:
        """Allocated cells over valid cells (1.0 means zero waste)."""
        if self.valid_cells <= 0:
            return 1.0
        return self.padded_cells / self.valid_cells


@dataclass(frozen=True)
class BatchedPlan:
    """A compiled plan lifted over a leading batch (trace) axis.

    Build with :func:`compile_batched`; run with :meth:`execute_batch`.
    One batched execution replaces *B* per-trace :meth:`CompiledPlan.
    execute` calls for same-fingerprint work: channel arrays stack into
    ``(B, n_max)`` tensors (ragged rows pad on the right), every node
    runs its ``lower_batched`` rule once, and the output unstacks into
    per-trace wake events that are bit-identical to the per-trace plan
    — and therefore to the interpreter oracle at any chunking.

    :meth:`execute_shape_batch` extends that to *heterogeneous* rows:
    work that shares this plan's graph shape (see
    :func:`shape_signature`) but not its parameter values executes in
    the same stacked pass, per-node parameters lifted into ``(B,)``
    tensors wherever the opcode provides a row-lowering rule.

    Batches whose row lengths are too ragged split into length-sorted
    sub-batches first (:func:`split_for_padding`), so one outlier row
    cannot make every other row pay its padding.

    Like :class:`CompiledPlan`, a batched plan holds no mutable state;
    the engine caches one per IL fingerprint (and one per shape) and
    reuses it across pump rounds and batch compositions.
    """

    plan: CompiledPlan

    @property
    def channels(self) -> Tuple[str, ...]:
        """Sensor channels the program reads (same as the scalar plan)."""
        return self.plan.channels

    def execute_batch(
        self,
        rows: List[Dict[str, Tuple[np.ndarray, np.ndarray, float]]],
    ) -> List[List[WakeEvent]]:
        """Run the array program once over ``B`` traces' channel arrays.

        Args:
            rows: One channel-data mapping per trace, each in the form
                :meth:`CompiledPlan.execute` takes.  Rows may have
                ragged lengths; every row must carry the same sampling
                rate per channel (the engine groups work that way
                before stacking).

        Returns:
            One wake-event list per row, in input order — each
            bit-identical to ``plan.execute`` on that row alone.

        Raises:
            HubExecutionError: when a row lacks a channel the program
                reads, or rows disagree on a channel's sampling rate.
        """
        return self.execute_batch_with_info(rows)[0]

    def execute_batch_with_info(
        self,
        rows: List[Dict[str, Tuple[np.ndarray, np.ndarray, float]]],
    ) -> Tuple[List[List[WakeEvent]], BatchDispatchInfo]:
        """:meth:`execute_batch` plus padding/sub-batch accounting."""
        if len(rows) == 1:
            return (
                [self.plan.execute(rows[0])],
                BatchDispatchInfo(sub_batches=0, valid_cells=0, padded_cells=0),
            )
        results: List[Optional[List[WakeEvent]]] = [None] * len(rows)
        sub_batches = valid_cells = padded_cells = 0
        for group in split_for_padding(self._row_lengths(rows)):
            if len(group) == 1:
                results[group[0]] = self.plan.execute(rows[group[0]])
                continue
            env = self._stack([rows[idx] for idx in group])
            valid, padded = _cell_counts(env)
            out = self._run_steps(env)
            for idx, events in zip(group, self._unstack(out)):
                results[idx] = events
            sub_batches += 1
            valid_cells += valid
            padded_cells += padded
        return (
            results,
            BatchDispatchInfo(
                sub_batches=sub_batches,
                valid_cells=valid_cells,
                padded_cells=padded_cells,
            ),
        )

    def execute_shape_batch(
        self,
        rows: List[
            Tuple[CompiledPlan, Dict[str, Tuple[np.ndarray, np.ndarray, float]]]
        ],
    ) -> List[List[WakeEvent]]:
        """Run a heterogeneous same-shape batch in one stacked pass.

        Args:
            rows: ``(plan, channel_data)`` pairs.  Every plan must come
                from a graph with this plan's :func:`shape_signature`
                (same opcodes, same wiring, possibly different
                parameter values), so plans align step by step.

        Returns:
            One wake-event list per row, in input order — each
            bit-identical to ``plan.execute(channel_data)`` for that
            row alone.
        """
        return self.execute_shape_batch_with_info(rows)[0]

    def execute_shape_batch_with_info(
        self,
        rows: List[
            Tuple[CompiledPlan, Dict[str, Tuple[np.ndarray, np.ndarray, float]]]
        ],
    ) -> Tuple[List[List[WakeEvent]], BatchDispatchInfo]:
        """:meth:`execute_shape_batch` plus padding/sub-batch accounting."""
        if len(rows) == 1:
            plan, channel_data = rows[0]
            return (
                [plan.execute(channel_data)],
                BatchDispatchInfo(sub_batches=0, valid_cells=0, padded_cells=0),
            )
        results: List[Optional[List[WakeEvent]]] = [None] * len(rows)
        sub_batches = valid_cells = padded_cells = 0
        lengths = self._row_lengths([channel_data for _, channel_data in rows])
        for group in split_for_padding(lengths):
            if len(group) == 1:
                plan, channel_data = rows[group[0]]
                results[group[0]] = plan.execute(channel_data)
                continue
            env = self._stack([rows[idx][1] for idx in group])
            valid, padded = _cell_counts(env)
            out = self._run_steps(env, row_plans=[rows[idx][0] for idx in group])
            for idx, events in zip(group, self._unstack(out)):
                results[idx] = events
            sub_batches += 1
            valid_cells += valid
            padded_cells += padded
        return (
            results,
            BatchDispatchInfo(
                sub_batches=sub_batches,
                valid_cells=valid_cells,
                padded_cells=padded_cells,
            ),
        )

    # -- internals ----------------------------------------------------

    def _row_lengths(
        self, rows: List[Dict[str, Tuple[np.ndarray, np.ndarray, float]]]
    ) -> List[int]:
        """Per-row total channel samples — the padding guard's metric.

        Summing across channels is rate-proportional per row (a longer
        recording lengthens every channel alike), so the waste ratio on
        summed lengths tracks each channel tensor's own ratio.
        """
        return [
            sum(len(row[name][0]) for name in self.plan.channels if name in row)
            for row in rows
        ]

    def _stack(
        self, rows: List[Dict[str, Tuple[np.ndarray, np.ndarray, float]]]
    ) -> Dict[Union[str, int], BatchedChunk]:
        """Stack rows' channel arrays into the batched environment."""
        env: Dict[Union[str, int], BatchedChunk] = {}
        for name in self.plan.channels:
            times_rows = []
            values_rows = []
            rates = set()
            for row in rows:
                if name not in row:
                    raise HubExecutionError(
                        f"batched plan missing data for channel {name!r}"
                    )
                times, values, rate = row[name]
                times_rows.append(times)
                values_rows.append(values)
                rates.add(rate)
            if len(rates) > 1:
                raise HubExecutionError(
                    f"batched plan: channel {name!r} rate differs across "
                    f"rows ({sorted(rates)}); group rows by rate first"
                )
            env[name] = BatchedChunk.from_scalar_rows(
                times_rows, values_rows, rates.pop()
            )
        return env

    def _run_steps(
        self,
        env: Dict[Union[str, int], BatchedChunk],
        row_plans: Optional[List[CompiledPlan]] = None,
    ) -> BatchedChunk:
        """Run every node once over the stacked environment.

        With ``row_plans`` (the shape-batched case), each step resolves
        per row: parameters equal across the batch run the plain
        ``lower_batched`` rule; parameters that differ but are liftable
        run ``lower_batched_rows`` with ``(B,)`` tensors; anything else
        falls back to a per-row ``lower`` loop (always correct —
        lowering rules are pure).
        """
        for position, step in enumerate(self.plan.steps):
            inputs = [
                env[ref.channel] if isinstance(ref, ChannelRef) else env[ref.node_id]
                for ref in step.inputs
            ]
            if step.align:
                inputs = _aligned_prefix_batched(inputs)
            if row_plans is None:
                env[step.node_id] = step.algorithm.lower_batched(inputs)
            else:
                algorithms = [
                    plan.steps[position].algorithm for plan in row_plans
                ]
                env[step.node_id] = _lower_step_rows(algorithms, inputs)
        return env[self.plan.output_id]

    def _unstack(self, out: BatchedChunk) -> List[List[WakeEvent]]:
        """Per-row wake events from the batched output chunk."""
        # The output is scalar (batch eligibility guarantees it), so the
        # whole (B, k) tensors convert to nested Python lists in one
        # C-level pass each instead of B small per-row conversions; the
        # per-row slice then trims each row's padding.
        all_times = out.times.tolist()
        all_values = out.values.tolist()
        return [
            [WakeEvent(t, v) for t, v in zip(trow[:n], vrow[:n])]
            for trow, vrow, n in zip(
                all_times, all_values, out.lengths.tolist()
            )
        ]


def _cell_counts(env: Dict[Union[str, int], BatchedChunk]) -> Tuple[int, int]:
    """(valid, allocated) channel-tensor cells of a stacked environment."""
    valid = padded = 0
    for batch in env.values():
        valid += int(batch.lengths.sum())
        padded += int(batch.times.shape[0] * batch.times.shape[1])
    return valid, padded


def _lower_step_rows(
    algorithms: List[StreamAlgorithm], inputs: List[BatchedChunk]
) -> BatchedChunk:
    """One shape-batched step: pick the cheapest correct lowering.

    Shape equality guarantees every row runs the same opcode here with
    the same parameter *names*; only values may differ.
    """
    first = algorithms[0]
    if all(alg.params == first.params for alg in algorithms[1:]):
        # Parameter values agree across the batch: the homogeneous
        # batched rule applies unchanged (rules are pure, so any row's
        # instance serves).
        return first.lower_batched(inputs)
    if has_row_lowering(first):
        liftable = set(first.row_params)
        structural = [name for name in first.params if name not in liftable]
        if all(
            all(alg.params[name] == first.params[name] for name in structural)
            for alg in algorithms[1:]
        ):
            row_values = {
                name: np.asarray([getattr(alg, name) for alg in algorithms])
                for name in first.row_params
            }
            return first.lower_batched_rows(inputs, row_values)
    # Per-row fallback: always correct, never fast.
    return BatchedChunk.from_rows(
        [
            algorithms[b].lower([batch.row(b) for batch in inputs])
            for b in range(inputs[0].batch_size)
        ]
    )


def _aligned_prefix_batched(inputs: List[BatchedChunk]) -> List[BatchedChunk]:
    """Per-row aligned-prefix collapse of multi-port batched inputs.

    Row ``b``'s aligned prefix is the shortest port length at that row
    (exactly :func:`_aligned_prefix` per row); columns are cropped to
    the longest aligned row so every port presents the same tensor
    width downstream.
    """
    lengths = np.minimum.reduce([batch.lengths for batch in inputs])
    limit = int(lengths.max()) if lengths.size else 0
    return [
        BatchedChunk.view(
            batch.kind,
            batch.times[:, :limit],
            batch.values[:, :limit],
            lengths,
            batch.rate_hz,
        )
        for batch in inputs
    ]


def compile_batched(graph: DataflowGraph) -> BatchedPlan:
    """Lower a validated graph to a :class:`BatchedPlan`.

    Raises:
        HubExecutionError: when the graph is not batch-eligible —
            callers that want graceful fallback should consult
            :func:`batch_eligibility` first.
    """
    reason = batch_eligibility(graph)
    if reason is not None:
        raise HubExecutionError(f"graph is not batch-eligible: {reason}")
    return BatchedPlan(plan=compile_graph(graph))


def compile_graph(graph: DataflowGraph) -> CompiledPlan:
    """Lower a validated graph to a :class:`CompiledPlan`.

    Raises:
        HubExecutionError: when the graph is not compile-eligible —
            callers that want graceful fallback should consult
            :func:`compile_eligibility` first.
    """
    reason = compile_eligibility(graph)
    if reason is not None:
        raise HubExecutionError(f"graph is not compile-eligible: {reason}")
    steps = tuple(
        PlanStep(
            node_id=node.node_id,
            opcode=node.opcode,
            algorithm=node.algorithm,
            inputs=tuple(node.inputs),
            align=len(node.inputs) > 1,
        )
        for node in graph.nodes
    )
    return CompiledPlan(
        steps=steps, output_id=graph.output_id, channels=graph.channels
    )
