"""The hub compiler: wake-up conditions lowered to whole-trace array programs.

The interpreter (:class:`repro.hub.runtime.HubRuntime`) executes a
wake-up condition the way the paper's hub does — round by round, node by
node, with per-round chunk allocation, state bookkeeping and Python
dispatch.  The fused path amortizes that overhead over 64-round blocks
but still pays it per block.  This module removes it entirely: a
validated, fusion-eligible :class:`~repro.il.graph.DataflowGraph` is
lowered once into a :class:`CompiledPlan` — one whole-trace numpy
transform per node (each algorithm's :meth:`~repro.algorithms.base.
StreamAlgorithm.lower` rule), topologically scheduled — and executing
the plan is a single pass over the trace with no rounds at all.

The interpreter remains the semantics oracle.  A lowering rule must be
bit-identical to feeding a fresh algorithm instance the whole trace as
one chunk, and chunk-invariance (the same precondition the fused path
checks) extends that identity to *any* chunking — so a compiled plan's
wake events are exactly the interpreter's, at every chunk size.

Eligibility is explainable: :func:`compile_eligibility` returns a
human-readable reason string (or ``None``) just like
:func:`repro.hub.runtime.fusion_eligibility`, so callers can log *why*
a condition fell back to a slower tier instead of silently degrading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.algorithms.base import StreamAlgorithm, has_lowering
from repro.errors import HubExecutionError
from repro.hub.runtime import WakeEvent, fusion_eligibility
from repro.il.ast import ChannelRef, SourceRef
from repro.il.graph import DataflowGraph
from repro.sensors.samples import BatchedChunk, Chunk, StreamKind


def compile_eligibility(graph: DataflowGraph) -> Optional[str]:
    """Why a graph cannot be compiled to an array program — or ``None``.

    A graph is compile-eligible when it is fusion-eligible (every node
    chunk-invariant, all channels single-rate — the properties that make
    whole-trace execution provably equivalent to any chunking) *and*
    every node's algorithm provides a :meth:`~repro.algorithms.base.
    StreamAlgorithm.lower` rule.  Returns a human-readable reason for
    the first violation found, mirroring
    :func:`repro.hub.runtime.fusion_eligibility`.
    """
    reason = fusion_eligibility(graph)
    if reason is not None:
        return reason
    for node in graph.nodes:
        if not has_lowering(node.algorithm):
            name = node.opcode or type(node.algorithm).__name__
            return f"node {node.node_id} ({name}) has no lowering rule"
    return None


@dataclass(frozen=True)
class PlanStep:
    """One scheduled node of a compiled plan.

    Attributes:
        node_id: The graph node this step computes.
        opcode: The node's IL opcode (for diagnostics).
        algorithm: The algorithm instance whose ``lower`` rule runs.
            Lowering rules are pure, so the instance may be shared with
            a cached interpreter graph without resets.
        inputs: Source references in port order — channel names resolve
            against the trace, node ids against earlier steps.
        align: True when the step has multiple input ports and must be
            fed the aligned common prefix (the whole-trace collapse of
            the interpreter's port synchronizer).
    """

    node_id: int
    opcode: str
    algorithm: StreamAlgorithm
    inputs: Tuple[SourceRef, ...]
    align: bool


@dataclass(frozen=True)
class CompiledPlan:
    """A wake-up condition as a whole-trace array program.

    Build with :func:`compile_graph`; run with :meth:`execute`.  A plan
    holds no mutable state, so one instance can be cached (the engine
    keys plans by IL content fingerprint) and executed over any number
    of traces.

    Attributes:
        steps: Node transforms in topological order.
        output_id: The node whose items become wake events.
        channels: Sensor channels the program reads.
    """

    steps: Tuple[PlanStep, ...]
    output_id: int
    channels: Tuple[str, ...]

    def execute(
        self,
        channel_data: Dict[str, Tuple[np.ndarray, np.ndarray, float]],
    ) -> List[WakeEvent]:
        """Run the array program over one trace's channel arrays.

        Args:
            channel_data: Per channel name, a ``(times, values,
                rate_hz)`` triple — the same form
                :meth:`repro.hub.runtime.HubRuntime.run_fused` takes.

        Returns:
            The wake events, bit-identical to interpreting the source
            graph over the same data at any chunking.

        Raises:
            HubExecutionError: when a channel the program reads is
                missing from ``channel_data``.
        """
        missing = [c for c in self.channels if c not in channel_data]
        if missing:
            raise HubExecutionError(
                f"compiled plan missing data for channels {missing}"
            )
        # One environment maps both channel names (str) and node ids
        # (int) to their whole-trace chunks; the key types never collide.
        env: Dict[Union[str, int], Chunk] = {}
        for name in self.channels:
            times, values, rate = channel_data[name]
            env[name] = Chunk.view(
                StreamKind.SCALAR,
                np.asarray(times, dtype=np.float64),
                np.asarray(values, dtype=np.float64),
                rate,
            )
        for step in self.steps:
            inputs = [
                env[ref.channel] if isinstance(ref, ChannelRef) else env[ref.node_id]
                for ref in step.inputs
            ]
            if step.align:
                inputs = _aligned_prefix(inputs)
            env[step.node_id] = step.algorithm.lower(inputs)
        out = env[self.output_id]
        return [
            WakeEvent(t, v)
            for t, v in zip(
                out.times.tolist(), np.atleast_1d(out.values).tolist()
            )
        ]


def _aligned_prefix(inputs: List[Chunk]) -> List[Chunk]:
    """Truncate multi-port inputs to their common item-aligned prefix.

    The interpreter buffers each port and releases the longest aligned
    prefix every round; over a whole trace that collapses to one
    truncation at the shortest port (any surplus would have stayed
    buffered past end-of-trace and never been processed).
    """
    available = min(len(chunk) for chunk in inputs)
    return [
        Chunk.view(
            StreamKind.SCALAR,
            chunk.times[:available],
            chunk.values[:available],
            chunk.rate_hz,
        )
        for chunk in inputs
    ]


def batch_eligibility(graph: DataflowGraph) -> Optional[str]:
    """Why a graph cannot run tensor-major over many traces — or ``None``.

    Batched execution stacks *B* traces into one array program, so it
    needs everything compilation needs (every ``lower`` rule has a
    row-identical ``lower_batched`` counterpart — the base class
    guarantees one by looping rows).  On top of that, the output stream
    must be scalar: per-trace wake events are unstacked item by item,
    and only scalar items map one-to-one onto ``WakeEvent`` values.
    Returns a human-readable reason string beside
    :func:`compile_eligibility`'s, or ``None`` when batchable.
    """
    reason = compile_eligibility(graph)
    if reason is not None:
        return reason
    for node in graph.nodes:
        if node.node_id == graph.output_id:
            if node.algorithm.output_kind is not StreamKind.SCALAR:
                return (
                    f"output node {node.node_id} ({node.opcode}) emits "
                    f"{node.algorithm.output_kind.value} items; batched "
                    "unstacking requires a scalar output stream"
                )
    return None


@dataclass(frozen=True)
class BatchedPlan:
    """A compiled plan lifted over a leading batch (trace) axis.

    Build with :func:`compile_batched`; run with :meth:`execute_batch`.
    One batched execution replaces *B* per-trace :meth:`CompiledPlan.
    execute` calls for same-fingerprint work: channel arrays stack into
    ``(B, n_max)`` tensors (ragged rows pad on the right), every node
    runs its ``lower_batched`` rule once, and the output unstacks into
    per-trace wake events that are bit-identical to the per-trace plan
    — and therefore to the interpreter oracle at any chunking.

    Like :class:`CompiledPlan`, a batched plan holds no mutable state;
    the engine caches one per IL fingerprint and reuses it across pump
    rounds and batch compositions.
    """

    plan: CompiledPlan

    @property
    def channels(self) -> Tuple[str, ...]:
        """Sensor channels the program reads (same as the scalar plan)."""
        return self.plan.channels

    def execute_batch(
        self,
        rows: List[Dict[str, Tuple[np.ndarray, np.ndarray, float]]],
    ) -> List[List[WakeEvent]]:
        """Run the array program once over ``B`` traces' channel arrays.

        Args:
            rows: One channel-data mapping per trace, each in the form
                :meth:`CompiledPlan.execute` takes.  Rows may have
                ragged lengths; every row must carry the same sampling
                rate per channel (the engine groups work that way
                before stacking).

        Returns:
            One wake-event list per row, in input order — each
            bit-identical to ``plan.execute`` on that row alone.

        Raises:
            HubExecutionError: when a row lacks a channel the program
                reads, or rows disagree on a channel's sampling rate.
        """
        if len(rows) == 1:
            return [self.plan.execute(rows[0])]
        env: Dict[Union[str, int], BatchedChunk] = {}
        for name in self.plan.channels:
            times_rows = []
            values_rows = []
            rates = set()
            for row in rows:
                if name not in row:
                    raise HubExecutionError(
                        f"batched plan missing data for channel {name!r}"
                    )
                times, values, rate = row[name]
                times_rows.append(times)
                values_rows.append(values)
                rates.add(rate)
            if len(rates) > 1:
                raise HubExecutionError(
                    f"batched plan: channel {name!r} rate differs across "
                    f"rows ({sorted(rates)}); group rows by rate first"
                )
            env[name] = BatchedChunk.from_scalar_rows(
                times_rows, values_rows, rates.pop()
            )
        for step in self.plan.steps:
            inputs = [
                env[ref.channel] if isinstance(ref, ChannelRef) else env[ref.node_id]
                for ref in step.inputs
            ]
            if step.align:
                inputs = _aligned_prefix_batched(inputs)
            env[step.node_id] = step.algorithm.lower_batched(inputs)
        out = env[self.plan.output_id]
        # The output is scalar (batch eligibility guarantees it), so the
        # whole (B, k) tensors convert to nested Python lists in one
        # C-level pass each instead of B small per-row conversions; the
        # per-row slice then trims each row's padding.
        all_times = out.times.tolist()
        all_values = out.values.tolist()
        return [
            [WakeEvent(t, v) for t, v in zip(trow[:n], vrow[:n])]
            for trow, vrow, n in zip(
                all_times, all_values, out.lengths.tolist()
            )
        ]


def _aligned_prefix_batched(inputs: List[BatchedChunk]) -> List[BatchedChunk]:
    """Per-row aligned-prefix collapse of multi-port batched inputs.

    Row ``b``'s aligned prefix is the shortest port length at that row
    (exactly :func:`_aligned_prefix` per row); columns are cropped to
    the longest aligned row so every port presents the same tensor
    width downstream.
    """
    lengths = np.minimum.reduce([batch.lengths for batch in inputs])
    limit = int(lengths.max()) if lengths.size else 0
    return [
        BatchedChunk.view(
            batch.kind,
            batch.times[:, :limit],
            batch.values[:, :limit],
            lengths,
            batch.rate_hz,
        )
        for batch in inputs
    ]


def compile_batched(graph: DataflowGraph) -> BatchedPlan:
    """Lower a validated graph to a :class:`BatchedPlan`.

    Raises:
        HubExecutionError: when the graph is not batch-eligible —
            callers that want graceful fallback should consult
            :func:`batch_eligibility` first.
    """
    reason = batch_eligibility(graph)
    if reason is not None:
        raise HubExecutionError(f"graph is not batch-eligible: {reason}")
    return BatchedPlan(plan=compile_graph(graph))


def compile_graph(graph: DataflowGraph) -> CompiledPlan:
    """Lower a validated graph to a :class:`CompiledPlan`.

    Raises:
        HubExecutionError: when the graph is not compile-eligible —
            callers that want graceful fallback should consult
            :func:`compile_eligibility` first.
    """
    reason = compile_eligibility(graph)
    if reason is not None:
        raise HubExecutionError(f"graph is not compile-eligible: {reason}")
    steps = tuple(
        PlanStep(
            node_id=node.node_id,
            opcode=node.opcode,
            algorithm=node.algorithm,
            inputs=tuple(node.inputs),
            align=len(node.inputs) > 1,
        )
        for node in graph.nodes
    )
    return CompiledPlan(
        steps=steps, output_id=graph.output_id, channels=graph.channels
    )
