"""The hub compiler: wake-up conditions lowered to whole-trace array programs.

The interpreter (:class:`repro.hub.runtime.HubRuntime`) executes a
wake-up condition the way the paper's hub does — round by round, node by
node, with per-round chunk allocation, state bookkeeping and Python
dispatch.  The fused path amortizes that overhead over 64-round blocks
but still pays it per block.  This module removes it entirely: a
validated, fusion-eligible :class:`~repro.il.graph.DataflowGraph` is
lowered once into a :class:`CompiledPlan` — one whole-trace numpy
transform per node (each algorithm's :meth:`~repro.algorithms.base.
StreamAlgorithm.lower` rule), topologically scheduled — and executing
the plan is a single pass over the trace with no rounds at all.

The interpreter remains the semantics oracle.  A lowering rule must be
bit-identical to feeding a fresh algorithm instance the whole trace as
one chunk, and chunk-invariance (the same precondition the fused path
checks) extends that identity to *any* chunking — so a compiled plan's
wake events are exactly the interpreter's, at every chunk size.

Eligibility is explainable: :func:`compile_eligibility` returns a
human-readable reason string (or ``None``) just like
:func:`repro.hub.runtime.fusion_eligibility`, so callers can log *why*
a condition fell back to a slower tier instead of silently degrading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.algorithms.base import StreamAlgorithm, has_lowering
from repro.errors import HubExecutionError
from repro.hub.runtime import WakeEvent, fusion_eligibility
from repro.il.ast import ChannelRef, SourceRef
from repro.il.graph import DataflowGraph
from repro.sensors.samples import Chunk, StreamKind


def compile_eligibility(graph: DataflowGraph) -> Optional[str]:
    """Why a graph cannot be compiled to an array program — or ``None``.

    A graph is compile-eligible when it is fusion-eligible (every node
    chunk-invariant, all channels single-rate — the properties that make
    whole-trace execution provably equivalent to any chunking) *and*
    every node's algorithm provides a :meth:`~repro.algorithms.base.
    StreamAlgorithm.lower` rule.  Returns a human-readable reason for
    the first violation found, mirroring
    :func:`repro.hub.runtime.fusion_eligibility`.
    """
    reason = fusion_eligibility(graph)
    if reason is not None:
        return reason
    for node in graph.nodes:
        if not has_lowering(node.algorithm):
            name = node.opcode or type(node.algorithm).__name__
            return f"node {node.node_id} ({name}) has no lowering rule"
    return None


@dataclass(frozen=True)
class PlanStep:
    """One scheduled node of a compiled plan.

    Attributes:
        node_id: The graph node this step computes.
        opcode: The node's IL opcode (for diagnostics).
        algorithm: The algorithm instance whose ``lower`` rule runs.
            Lowering rules are pure, so the instance may be shared with
            a cached interpreter graph without resets.
        inputs: Source references in port order — channel names resolve
            against the trace, node ids against earlier steps.
        align: True when the step has multiple input ports and must be
            fed the aligned common prefix (the whole-trace collapse of
            the interpreter's port synchronizer).
    """

    node_id: int
    opcode: str
    algorithm: StreamAlgorithm
    inputs: Tuple[SourceRef, ...]
    align: bool


@dataclass(frozen=True)
class CompiledPlan:
    """A wake-up condition as a whole-trace array program.

    Build with :func:`compile_graph`; run with :meth:`execute`.  A plan
    holds no mutable state, so one instance can be cached (the engine
    keys plans by IL content fingerprint) and executed over any number
    of traces.

    Attributes:
        steps: Node transforms in topological order.
        output_id: The node whose items become wake events.
        channels: Sensor channels the program reads.
    """

    steps: Tuple[PlanStep, ...]
    output_id: int
    channels: Tuple[str, ...]

    def execute(
        self,
        channel_data: Dict[str, Tuple[np.ndarray, np.ndarray, float]],
    ) -> List[WakeEvent]:
        """Run the array program over one trace's channel arrays.

        Args:
            channel_data: Per channel name, a ``(times, values,
                rate_hz)`` triple — the same form
                :meth:`repro.hub.runtime.HubRuntime.run_fused` takes.

        Returns:
            The wake events, bit-identical to interpreting the source
            graph over the same data at any chunking.

        Raises:
            HubExecutionError: when a channel the program reads is
                missing from ``channel_data``.
        """
        missing = [c for c in self.channels if c not in channel_data]
        if missing:
            raise HubExecutionError(
                f"compiled plan missing data for channels {missing}"
            )
        # One environment maps both channel names (str) and node ids
        # (int) to their whole-trace chunks; the key types never collide.
        env: Dict[Union[str, int], Chunk] = {}
        for name in self.channels:
            times, values, rate = channel_data[name]
            env[name] = Chunk.view(
                StreamKind.SCALAR,
                np.asarray(times, dtype=np.float64),
                np.asarray(values, dtype=np.float64),
                rate,
            )
        for step in self.steps:
            inputs = [
                env[ref.channel] if isinstance(ref, ChannelRef) else env[ref.node_id]
                for ref in step.inputs
            ]
            if step.align:
                inputs = _aligned_prefix(inputs)
            env[step.node_id] = step.algorithm.lower(inputs)
        out = env[self.output_id]
        return [
            WakeEvent(t, v)
            for t, v in zip(
                out.times.tolist(), np.atleast_1d(out.values).tolist()
            )
        ]


def _aligned_prefix(inputs: List[Chunk]) -> List[Chunk]:
    """Truncate multi-port inputs to their common item-aligned prefix.

    The interpreter buffers each port and releases the longest aligned
    prefix every round; over a whole trace that collapses to one
    truncation at the shortest port (any surplus would have stayed
    buffered past end-of-trace and never been processed).
    """
    available = min(len(chunk) for chunk in inputs)
    return [
        Chunk.view(
            StreamKind.SCALAR,
            chunk.times[:available],
            chunk.values[:available],
            chunk.rate_hz,
        )
        for chunk in inputs
    ]


def compile_graph(graph: DataflowGraph) -> CompiledPlan:
    """Lower a validated graph to a :class:`CompiledPlan`.

    Raises:
        HubExecutionError: when the graph is not compile-eligible —
            callers that want graceful fallback should consult
            :func:`compile_eligibility` first.
    """
    reason = compile_eligibility(graph)
    if reason is not None:
        raise HubExecutionError(f"graph is not compile-eligible: {reason}")
    steps = tuple(
        PlanStep(
            node_id=node.node_id,
            opcode=node.opcode,
            algorithm=node.algorithm,
            inputs=tuple(node.inputs),
            align=len(node.inputs) > 1,
        )
        for node in graph.nodes
    )
    return CompiledPlan(
        steps=steps, output_id=graph.output_id, channels=graph.channels
    )
