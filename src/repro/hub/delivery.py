"""Wake-up data delivery options (paper Section 3.8).

"A related question is determining what data the sensor hub should pass
to the application following a wake-up.  Some applications may be
interested in the raw sensor data, while others may want to use the
filtered data or extracted features.  Ideally, an API would allow
developers to specify what data their application should receive when
an event of interest occurs.  Our current implementation passes a
buffer of raw sensor data to the application."

This module provides that API.  A :class:`DeliverySpec` chosen at push
time controls the wake-up payload:

* ``RAW`` — the paper's behaviour: a ring buffer of raw samples per
  channel;
* ``TRIGGER`` — just the item that reached OUT (time + value), the
  minimal payload;
* ``NODE`` — the recent output items of a chosen intermediate node
  (filtered data or extracted features), selected by its IL id.

Payloads differ by orders of magnitude on the wire —
:func:`payload_bytes` quantifies what each option costs on the
hub-to-phone link, which is where the choice matters
(raw audio: tens of kilobytes; a feature stream: a few dozen bytes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import SimulationError
from repro.hub.link import LinkModel, sample_bytes_for_kind
from repro.il.graph import DataflowGraph
from repro.sensors.channels import channel_by_name

#: Bytes to encode one delivered stream item (timestamp + value,
#: fixed-point).
ITEM_BYTES = 6


class DeliveryMode(enum.Enum):
    """What the hub sends along with a wake-up."""

    RAW = "raw"
    TRIGGER = "trigger"
    NODE = "node"


@dataclass(frozen=True)
class DeliverySpec:
    """A wake-up payload choice.

    Attributes:
        mode: Payload kind.
        node_id: For ``NODE`` delivery, the IL id of the node whose
            output items to deliver.
        buffer_s: Seconds of history to include (raw samples for
            ``RAW``, node output items for ``NODE``).
    """

    mode: DeliveryMode = DeliveryMode.RAW
    node_id: Optional[int] = None
    buffer_s: float = 4.0

    def __post_init__(self) -> None:
        if self.mode is DeliveryMode.NODE and self.node_id is None:
            raise SimulationError("NODE delivery needs a node_id")
        if self.buffer_s < 0:
            raise SimulationError("buffer_s must be non-negative")


#: The paper's default: a raw buffer.
RAW_DELIVERY = DeliverySpec(DeliveryMode.RAW)

#: Minimal delivery: the triggering item only.
TRIGGER_DELIVERY = DeliverySpec(DeliveryMode.TRIGGER)


def validate_delivery(spec: DeliverySpec, graph: DataflowGraph) -> None:
    """Check a delivery spec against the condition it is attached to.

    Raises:
        SimulationError: when ``NODE`` delivery names a node the
            condition does not contain.
    """
    if spec.mode is DeliveryMode.NODE:
        known = {node.node_id for node in graph.nodes}
        if spec.node_id not in known:
            raise SimulationError(
                f"delivery node {spec.node_id} not in condition "
                f"(nodes: {sorted(known)})"
            )


def payload_bytes(spec: DeliverySpec, graph: DataflowGraph) -> float:
    """Bytes one wake-up's payload occupies on the link.

    ``RAW``: ``buffer_s`` of raw samples for every channel the
    condition reads.  ``TRIGGER``: one item.  ``NODE``: ``buffer_s``
    worth of the node's output items at its static item rate, each item
    carrying its full width.
    """
    if spec.mode is DeliveryMode.TRIGGER:
        return float(ITEM_BYTES)
    if spec.mode is DeliveryMode.RAW:
        total = 0.0
        for name in graph.channels:
            channel = channel_by_name(name)
            total += (
                spec.buffer_s
                * channel.rate_hz
                * sample_bytes_for_kind(channel.kind.value)
            )
        return total
    node = graph.node(spec.node_id)
    shape = node.output_shape
    items = spec.buffer_s * shape.items_per_second
    return items * (ITEM_BYTES + 2 * max(shape.width - 1, 0))


def delivery_latency_s(
    spec: DeliverySpec, graph: DataflowGraph, link: LinkModel
) -> float:
    """Seconds the phone waits for the payload after waking."""
    return link.transfer_seconds(payload_bytes(spec, graph))


def cheapest_sufficient_delivery(
    graph: DataflowGraph,
    candidates: Sequence[DeliverySpec],
    link: LinkModel,
    deadline_s: float,
) -> DeliverySpec:
    """Pick the candidate with the smallest payload meeting a deadline.

    Raises:
        SimulationError: when no candidate transfers within
            ``deadline_s`` on the given link.
    """
    viable = [
        spec for spec in candidates
        if delivery_latency_s(spec, graph, link) <= deadline_s
    ]
    if not viable:
        raise SimulationError(
            f"no delivery option transfers within {deadline_s}s over "
            f"{link.name}"
        )
    return min(viable, key=lambda spec: payload_bytes(spec, graph))
