"""Per-algorithm runtime state records.

Section 3.6: "Each algorithm operates on its own instance of a data
structure.  The data structure is created by the runtime and stores the
algorithm ID, type, size, data, whether a result is available and the
result."  :class:`AlgorithmState` is that record: the interpreter keeps
one per graph node and uses the ``has_result`` flag to decide whether to
forward output downstream, exactly as the paper's C interpreter does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.algorithms.base import StreamAlgorithm
from repro.sensors.samples import Chunk, ChunkBuffer


@dataclass
class AlgorithmState:
    """Runtime record for one algorithm instance on the hub.

    Attributes:
        node_id: The algorithm's unique id ("algorithm ID").
        opcode: The algorithm's type name.
        algorithm: The stateful implementation ("data" — internal
            buffers live inside the implementation object).
        pending: Per-input-port synchronization buffers for multi-input
            algorithms; single-input algorithms bypass these.
        has_result: True when the most recent invocation produced at
            least one output item.
        result: The output chunk of the most recent invocation (empty
            when ``has_result`` is False).
    """

    node_id: int
    opcode: str
    algorithm: StreamAlgorithm
    pending: Dict[int, ChunkBuffer] = field(default_factory=dict)
    has_result: bool = False
    result: Chunk | None = None

    def record_result(self, chunk: Chunk) -> None:
        """Store an invocation's output and update ``has_result``."""
        self.result = chunk
        self.has_result = not chunk.is_empty

    def reset(self) -> None:
        """Return to the freshly-allocated state."""
        self.algorithm.reset()
        for buffer in self.pending.values():
            buffer.clear()
        self.has_result = False
        self.result = None


def allocate_states(nodes: List) -> Dict[int, AlgorithmState]:
    """Allocate one state record per graph node, keyed by node id.

    Mirrors the paper's "upon receiving a new configuration, the runtime
    allocates memory for each algorithm in the configuration".
    """
    states: Dict[int, AlgorithmState] = {}
    for node in nodes:
        pending: Dict[int, ChunkBuffer] = {}
        if len(node.inputs) > 1:
            pending = {port: ChunkBuffer() for port in range(len(node.inputs))}
        states[node.node_id] = AlgorithmState(
            node_id=node.node_id,
            opcode=node.opcode,
            algorithm=node.algorithm,
            pending=pending,
        )
    return states
