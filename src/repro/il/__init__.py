"""The Sidewinder intermediate language (IL).

A wake-up condition crosses the boundary between the sensor manager (on
the main processor) and the hub runtime as a small textual program
(paper Figure 2c)::

    ACC_X -> movingAvg(id=1, params={10});
    ACC_Y -> movingAvg(id=2, params={10});
    ACC_Z -> movingAvg(id=3, params={10});
    1,2,3 -> vectorMagnitude(id=4);
    4 -> minThreshold(id=5, params={15});
    5 -> OUT;

The IL decouples the mobile platform from the hub hardware: any hub that
can interpret the IL can run any application's wake-up condition.  This
package provides the AST (:mod:`repro.il.ast`), text round-tripping
(:mod:`repro.il.text`, :mod:`repro.il.parser`), semantic validation
(:mod:`repro.il.validate`) and the executable dataflow-graph form
(:mod:`repro.il.graph`).
"""

from repro.il.ast import ChannelRef, ILProgram, ILStatement, NodeRef, SourceRef
from repro.il.draw import render_condition_tree, render_merged_trees
from repro.il.graph import DataflowGraph, GraphNode
from repro.il.parser import parse_program
from repro.il.text import format_program
from repro.il.validate import validate_program

__all__ = [
    "ChannelRef",
    "DataflowGraph",
    "GraphNode",
    "ILProgram",
    "ILStatement",
    "NodeRef",
    "SourceRef",
    "format_program",
    "parse_program",
    "render_condition_tree",
    "render_merged_trees",
    "validate_program",
]
