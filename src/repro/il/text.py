"""Serialization of IL programs to their textual wire form.

The wire form is what the sensor manager actually pushes to the hub
(paper Figure 2c).  We emit named parameters (``params={size=10}``) for
readability; the parser also accepts the paper's positional form
(``params={10}``).
"""

from __future__ import annotations

from repro.il.ast import ILProgram, ILStatement

_BARE_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.")


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        # Render integral floats compactly but keep them floats on parse.
        text = repr(value)
        return text
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        if value and all(c in _BARE_CHARS for c in value) and not value[0].isdigit():
            return value
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    raise TypeError(f"cannot serialize IL parameter value of type {type(value).__name__}")


def format_statement(statement: ILStatement) -> str:
    """Render one statement as a line of IL text (without newline)."""
    inputs = ",".join(str(ref) for ref in statement.inputs)
    if statement.params:
        params = ", ".join(f"{k}={_format_value(v)}" for k, v in statement.params)
        return f"{inputs} -> {statement.opcode}(id={statement.node_id}, params={{{params}}});"
    return f"{inputs} -> {statement.opcode}(id={statement.node_id});"


def format_program(program: ILProgram) -> str:
    """Render a full program, one statement per line, ending with OUT."""
    lines = [format_statement(s) for s in program.statements]
    lines.append(f"{program.output} -> OUT;")
    return "\n".join(lines) + "\n"
