"""Executable dataflow-graph form of an IL program.

The hub runtime interprets a :class:`DataflowGraph`: nodes in topological
order, each holding a fresh :class:`~repro.algorithms.base.StreamAlgorithm`
instance plus the static :class:`~repro.algorithms.base.StreamShape` of its
output edge (used by the MCU feasibility analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.algorithms.base import StreamAlgorithm, StreamShape, create
from repro.errors import ILValidationError
from repro.il.ast import ChannelRef, ILProgram, ILStatement, NodeRef, SourceRef
from repro.sensors.channels import channel_by_name
from repro.sensors.samples import StreamKind


@dataclass
class GraphNode:
    """One algorithm instance in an executable wake-up condition."""

    node_id: int
    opcode: str
    inputs: Tuple[SourceRef, ...]
    algorithm: StreamAlgorithm
    #: Static shapes of this node's input edges, in port order.
    input_shapes: Tuple[StreamShape, ...] = ()
    #: Static shape of this node's output edge.
    output_shape: StreamShape | None = None

    @property
    def cycles_per_second(self) -> float:
        """Estimated MCU cycles per second this node consumes."""
        per_item = self.algorithm.cycles_per_item(self.input_shapes)
        # A node processes every item of its (first) input stream.
        rate = max(s.items_per_second for s in self.input_shapes)
        return per_item * rate


@dataclass
class DataflowGraph:
    """Topologically ordered, type-checked wake-up condition.

    Build with :func:`repro.il.validate.validate_program`; execute with
    :class:`repro.hub.runtime.HubRuntime`.
    """

    nodes: List[GraphNode]
    output_id: int
    #: Names of sensor channels the graph reads, in first-use order.
    channels: Tuple[str, ...]
    program: ILProgram

    _by_id: Dict[int, GraphNode] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._by_id = {n.node_id: n for n in self.nodes}

    def node(self, node_id: int) -> GraphNode:
        """Look up a node by id."""
        return self._by_id[node_id]

    @property
    def total_cycles_per_second(self) -> float:
        """Estimated aggregate MCU load of the whole condition."""
        return sum(n.cycles_per_second for n in self.nodes)

    def reset(self) -> None:
        """Reset every algorithm instance to its initial state."""
        for node in self.nodes:
            node.algorithm.reset()


def _source_shape(ref: ChannelRef) -> StreamShape:
    channel = channel_by_name(ref.channel)
    return StreamShape(StreamKind.SCALAR, channel.rate_hz, 1, channel.rate_hz)


def _toposort(statements: Tuple[ILStatement, ...]) -> List[ILStatement]:
    """Order statements so every node follows all of its inputs.

    Raises:
        ILValidationError: if the dependency graph contains a cycle.
    """
    by_id = {s.node_id: s for s in statements}
    ordered: List[ILStatement] = []
    state: Dict[int, int] = {}  # 0 = visiting, 1 = done

    def visit(stmt: ILStatement, stack: List[int]) -> None:
        mark = state.get(stmt.node_id)
        if mark == 1:
            return
        if mark == 0:
            cycle = " -> ".join(str(i) for i in stack + [stmt.node_id])
            raise ILValidationError(f"wake-up condition contains a cycle: {cycle}")
        state[stmt.node_id] = 0
        for ref in stmt.inputs:
            if isinstance(ref, NodeRef):
                visit(by_id[ref.node_id], stack + [stmt.node_id])
        state[stmt.node_id] = 1
        ordered.append(stmt)

    for stmt in statements:
        visit(stmt, [])
    return ordered


def build_graph(program: ILProgram) -> DataflowGraph:
    """Instantiate an executable graph from a *validated* program.

    :func:`repro.il.validate.validate_program` performs the semantic
    checks and then calls this; calling it directly on an unvalidated
    program may raise arbitrary errors.
    """
    ordered = _toposort(program.statements)
    shapes: Dict[int, StreamShape] = {}
    nodes: List[GraphNode] = []
    channels: List[str] = []
    for stmt in ordered:
        in_shapes: List[StreamShape] = []
        for ref in stmt.inputs:
            if isinstance(ref, ChannelRef):
                if ref.channel not in channels:
                    channels.append(ref.channel)
                in_shapes.append(_source_shape(ref))
            else:
                in_shapes.append(shapes[ref.node_id])
        algorithm = create(stmt.opcode, **stmt.param_dict())
        out_shape = algorithm.propagate_shape(in_shapes)
        shapes[stmt.node_id] = out_shape
        nodes.append(
            GraphNode(
                node_id=stmt.node_id,
                opcode=stmt.opcode,
                inputs=stmt.inputs,
                algorithm=algorithm,
                input_shapes=tuple(in_shapes),
                output_shape=out_shape,
            )
        )
    return DataflowGraph(
        nodes=nodes,
        output_id=program.output.node_id,
        channels=tuple(channels),
        program=program,
    )
