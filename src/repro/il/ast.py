"""Abstract syntax of the intermediate language.

An :class:`ILProgram` is a list of :class:`ILStatement` — one per
algorithm instance — plus the reference that feeds ``OUT``.  Statement
inputs are :class:`SourceRef` values: either a sensor channel
(:class:`ChannelRef`) or the output of another statement
(:class:`NodeRef`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple, Union


@dataclass(frozen=True)
class ChannelRef:
    """Reference to a sensor channel by IL name (e.g. ``"ACC_X"``)."""

    channel: str

    def __str__(self) -> str:
        return self.channel


@dataclass(frozen=True)
class NodeRef:
    """Reference to the output of the statement with id ``node_id``."""

    node_id: int

    def __str__(self) -> str:
        return str(self.node_id)


SourceRef = Union[ChannelRef, NodeRef]


@dataclass(frozen=True)
class ILStatement:
    """One algorithm instantiation: ``inputs -> opcode(id=N, params={...})``.

    Attributes:
        inputs: Where this algorithm reads from, in port order.
        opcode: Registered algorithm opcode (``movingAvg``, ``fft``, ...).
        node_id: Unique positive id assigned by the sensor manager.
        params: Keyword parameters for the algorithm constructor.  Values
            are numbers or strings.  Stored as a tuple of pairs so the
            statement stays hashable; use :meth:`param_dict` for access.
    """

    inputs: Tuple[SourceRef, ...]
    opcode: str
    node_id: int
    params: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)

    def param_dict(self) -> Dict[str, object]:
        """Parameters as a regular dict."""
        return dict(self.params)

    @staticmethod
    def make(
        inputs: Tuple[SourceRef, ...],
        opcode: str,
        node_id: int,
        params: Dict[str, object] | None = None,
    ) -> "ILStatement":
        """Build a statement from a parameter dict."""
        items = tuple(sorted((params or {}).items()))
        return ILStatement(inputs, opcode, node_id, items)


@dataclass(frozen=True)
class ILProgram:
    """A complete wake-up condition in intermediate form.

    Attributes:
        statements: Algorithm statements in definition order.
        output: The statement whose emissions reach ``OUT`` and wake the
            main processor.
    """

    statements: Tuple[ILStatement, ...]
    output: NodeRef

    def statement_by_id(self) -> Dict[int, ILStatement]:
        """Map node id to statement (ids are unique in a valid program)."""
        return {s.node_id: s for s in self.statements}

    def __len__(self) -> int:
        return len(self.statements)
