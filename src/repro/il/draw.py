"""ASCII rendering of wake-up conditions (paper Figure 2b).

The paper shows three views of a condition: the Java code (2a), a
conceptual dataflow diagram (2b) and the intermediate code (2c).  This
module provides the conceptual view as an ASCII tree rooted at ``OUT``,
with each node's parameters inline and sensor channels as leaves::

    OUT
    └─ minThreshold(id=5, threshold=15)
       └─ vectorMagnitude(id=4)
          ├─ movingAvg(id=1, size=10) ◀ ACC_X
          ├─ movingAvg(id=2, size=10) ◀ ACC_Y
          └─ movingAvg(id=3, size=10) ◀ ACC_Z

Nodes reachable along several paths (shared subcomputations in merged
programs, or diamond shapes) are expanded once and referenced after
that (``… see id=N``).
"""

from __future__ import annotations

from typing import List, Set

from repro.il.ast import ChannelRef, ILProgram, ILStatement, NodeRef


def _node_label(statement: ILStatement) -> str:
    parts = [f"id={statement.node_id}"]
    parts.extend(f"{key}={value}" for key, value in statement.params)
    channels = [
        str(ref) for ref in statement.inputs if isinstance(ref, ChannelRef)
    ]
    label = f"{statement.opcode}({', '.join(parts)})"
    if channels:
        label += " ◀ " + ", ".join(channels)
    return label


def render_condition_tree(program: ILProgram, root: int | None = None) -> str:
    """Render a condition as an ASCII tree rooted at OUT.

    Args:
        program: The intermediate-language program.
        root: Node id to root the tree at; defaults to the program's
            OUT feeder.  Useful for drawing one tap of a merged
            program.
    """
    by_id = program.statement_by_id()
    root_id = root if root is not None else program.output.node_id
    lines: List[str] = ["OUT"]
    expanded: Set[int] = set()

    def visit(node_id: int, prefix: str, is_last: bool) -> None:
        statement = by_id[node_id]
        connector = "└─ " if is_last else "├─ "
        if node_id in expanded:
            lines.append(
                f"{prefix}{connector}… see id={node_id} ({statement.opcode})"
            )
            return
        expanded.add(node_id)
        lines.append(f"{prefix}{connector}{_node_label(statement)}")
        child_prefix = prefix + ("   " if is_last else "│  ")
        children = [
            ref.node_id for ref in statement.inputs if isinstance(ref, NodeRef)
        ]
        for index, child in enumerate(children):
            visit(child, child_prefix, index == len(children) - 1)

    visit(root_id, "", True)
    return "\n".join(lines)


def render_merged_trees(program: ILProgram, taps: List[int]) -> str:
    """Render every tap of a merged program, sharing the expansion set.

    The first occurrence of a shared node is drawn in full; later taps
    reference it, making the sharing visible.
    """
    by_id = program.statement_by_id()
    lines: List[str] = []
    expanded: Set[int] = set()

    def visit(node_id: int, prefix: str, is_last: bool) -> None:
        statement = by_id[node_id]
        connector = "└─ " if is_last else "├─ "
        if node_id in expanded:
            lines.append(
                f"{prefix}{connector}… see id={node_id} ({statement.opcode})"
            )
            return
        expanded.add(node_id)
        lines.append(f"{prefix}{connector}{_node_label(statement)}")
        child_prefix = prefix + ("   " if is_last else "│  ")
        children = [
            ref.node_id for ref in statement.inputs if isinstance(ref, NodeRef)
        ]
        for index, child in enumerate(children):
            visit(child, child_prefix, index == len(children) - 1)

    for tap_index, tap in enumerate(taps):
        lines.append(f"OUT[{tap_index}]")
        visit(tap, "", True)
    return "\n".join(lines)
