"""Semantic validation of IL programs.

The hub refuses a wake-up condition unless it passes these checks, which
mirror the structural rules of Section 3.2:

* node ids are unique and positive;
* every input reference resolves (to a known channel or a defined node);
* the dependency graph is acyclic;
* each algorithm receives the number and the stream kind of inputs it
  declares, and its parameters construct cleanly;
* multi-input algorithms receive rate-aligned inputs;
* exactly one node feeds ``OUT`` and every node contributes to it
  ("at the end of the pipeline, there must be only one branch").
"""

from __future__ import annotations

from typing import Dict, Set

from repro.algorithms.base import PORT_VARIADIC, get_algorithm_class
from repro.errors import (
    ILValidationError,
    ParameterError,
    SidewinderError,
    UnknownAlgorithmError,
    UnknownChannelError,
)
from repro.il.ast import ChannelRef, ILProgram, NodeRef
from repro.il.graph import DataflowGraph, build_graph
from repro.sensors.channels import channel_by_name


def validate_program(program: ILProgram) -> DataflowGraph:
    """Check a program and return its executable graph form.

    Raises:
        ILValidationError: on any structural problem.
        ParameterError: when an algorithm's parameters are invalid.
        UnknownAlgorithmError / UnknownChannelError: on unknown names.
    """
    if not program.statements:
        raise ILValidationError("program defines no algorithms")

    seen_ids: Set[int] = set()
    for stmt in program.statements:
        if stmt.node_id <= 0:
            raise ILValidationError(f"node id must be positive, got {stmt.node_id}")
        if stmt.node_id in seen_ids:
            raise ILValidationError(f"duplicate node id {stmt.node_id}")
        seen_ids.add(stmt.node_id)

    by_id = program.statement_by_id()
    for stmt in program.statements:
        cls = get_algorithm_class(stmt.opcode)  # raises UnknownAlgorithmError
        if cls.n_inputs == PORT_VARIADIC:
            if len(stmt.inputs) < 1:
                raise ILValidationError(
                    f"node {stmt.node_id} ({stmt.opcode}): needs at least one input"
                )
        elif len(stmt.inputs) != cls.n_inputs:
            raise ILValidationError(
                f"node {stmt.node_id} ({stmt.opcode}): expects {cls.n_inputs} "
                f"input(s), got {len(stmt.inputs)}"
            )
        for ref in stmt.inputs:
            if isinstance(ref, ChannelRef):
                channel_by_name(ref.channel)  # raises UnknownChannelError
            elif ref.node_id not in by_id:
                raise ILValidationError(
                    f"node {stmt.node_id} reads undefined node {ref.node_id}"
                )
            if isinstance(ref, NodeRef) and ref.node_id == stmt.node_id:
                raise ILValidationError(f"node {stmt.node_id} reads itself")

    if program.output.node_id not in by_id:
        raise ILValidationError(
            f"OUT references undefined node {program.output.node_id}"
        )

    # Stream-kind compatibility: channels produce scalars; each node
    # consumes its declared input kind and produces its declared output
    # kind.  Building the graph performs shape propagation and parameter
    # construction (and cycle detection via the topological sort).
    try:
        graph = build_graph(program)
    except (ILValidationError, ParameterError, UnknownChannelError, UnknownAlgorithmError):
        raise
    except SidewinderError as exc:
        raise ILValidationError(str(exc)) from exc

    kinds: Dict[int, object] = {n.node_id: n.algorithm.output_kind for n in graph.nodes}
    for node in graph.nodes:
        cls = type(node.algorithm)
        for port, (ref, shape) in enumerate(zip(node.inputs, node.input_shapes)):
            actual = kinds[ref.node_id] if isinstance(ref, NodeRef) else shape.kind
            if actual is not cls.input_kind:
                source = str(ref)
                raise ILValidationError(
                    f"node {node.node_id} ({node.opcode}) port {port}: expects "
                    f"{cls.input_kind.value} items but {source} produces "
                    f"{getattr(actual, 'value', actual)} items"
                )
        if len(node.inputs) > 1:
            rates = {round(s.items_per_second, 9) for s in node.input_shapes}
            if len(rates) > 1:
                raise ILValidationError(
                    f"node {node.node_id} ({node.opcode}): input item rates differ "
                    f"({sorted(rates)}); multi-input algorithms need aligned inputs"
                )

    # Convergence: every node must (transitively) feed OUT.
    feeding: Set[int] = set()
    frontier = [program.output.node_id]
    while frontier:
        node_id = frontier.pop()
        if node_id in feeding:
            continue
        feeding.add(node_id)
        for ref in by_id[node_id].inputs:
            if isinstance(ref, NodeRef):
                frontier.append(ref.node_id)
    dangling = seen_ids - feeding
    if dangling:
        raise ILValidationError(
            f"nodes {sorted(dangling)} do not feed OUT; the pipeline must "
            "converge to a single output branch"
        )
    return graph
