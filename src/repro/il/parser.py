"""Parser for the textual intermediate language.

Accepts both this library's named-parameter form::

    ACC_X -> movingAvg(id=1, params={size=10});

and the paper's positional form (Figure 2c)::

    ACC_X -> movingAvg(id=1, params={10});

Positional values are mapped onto parameter names through the target
algorithm's declared ``param_order``.  Lines may be separated by
newlines; ``#`` starts a comment running to end of line.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.algorithms.base import get_algorithm_class
from repro.errors import ILSyntaxError, UnknownAlgorithmError
from repro.il.ast import ChannelRef, ILProgram, ILStatement, NodeRef, SourceRef

_STMT_RE = re.compile(
    r"^\s*(?P<inputs>[^-]+?)\s*->\s*(?P<target>[A-Za-z_][A-Za-z0-9_]*)\s*"
    r"(?:\(\s*(?P<args>.*)\))?\s*$"
)
_ID_RE = re.compile(r"^id\s*=\s*(\d+)$")
_PARAMS_RE = re.compile(r"^params\s*=\s*\{(?P<body>.*)\}$", re.DOTALL)
_NAMED_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*=\s*(.+)$", re.DOTALL)


def _strip_comments(text: str) -> List[Tuple[int, str]]:
    """Split input into ``;``-terminated statements with line numbers."""
    statements: List[Tuple[int, str]] = []
    current: List[str] = []
    start_line = 1
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.split("#", 1)[0]
        for piece in re.split(r"(;)", line):
            if piece == ";":
                stmt = "".join(current).strip()
                if stmt:
                    statements.append((start_line, stmt))
                current = []
                start_line = lineno
            else:
                if not "".join(current).strip():
                    start_line = lineno
                current.append(piece)
    tail = "".join(current).strip()
    if tail:
        raise ILSyntaxError(f"statement not terminated with ';': {tail!r}")
    return statements


def _parse_value(text: str, line: int) -> object:
    text = text.strip()
    if not text:
        raise ILSyntaxError("empty parameter value", line)
    if text.startswith('"'):
        if not text.endswith('"') or len(text) < 2:
            raise ILSyntaxError(f"unterminated string {text!r}", line)
        body = text[1:-1]
        return body.replace('\\"', '"').replace("\\\\", "\\")
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.]*", text):
        return text  # bare identifier string (e.g. hamming)
    raise ILSyntaxError(f"cannot parse parameter value {text!r}", line)


def _split_top_level(body: str) -> List[str]:
    """Split on commas that are not inside quotes."""
    parts: List[str] = []
    current: List[str] = []
    in_string = False
    i = 0
    while i < len(body):
        c = body[i]
        if c == '"' and (i == 0 or body[i - 1] != "\\"):
            in_string = not in_string
        if c == "," and not in_string:
            parts.append("".join(current))
            current = []
        else:
            current.append(c)
        i += 1
    if current:
        parts.append("".join(current))
    return [p for p in (part.strip() for part in parts) if p]


def _parse_params(body: str, opcode: str, line: int) -> Dict[str, object]:
    """Parse the ``{...}`` parameter body, resolving positional values."""
    entries = _split_top_level(body)
    named: Dict[str, object] = {}
    positional: List[object] = []
    for entry in entries:
        match = _NAMED_RE.match(entry)
        if match and not entry.startswith('"'):
            named[match.group(1)] = _parse_value(match.group(2), line)
        else:
            positional.append(_parse_value(entry, line))
    if positional:
        # Positional values are resolved through the target algorithm's
        # declared parameter order; an unknown opcode is therefore a
        # *parse* error here (with named parameters it would surface
        # later, as a validation error).
        try:
            algorithm_class = get_algorithm_class(opcode)
        except UnknownAlgorithmError as error:
            raise ILSyntaxError(
                f"cannot map positional parameters: {error}", line
            ) from None
        order = getattr(algorithm_class, "param_order", ())
        if len(positional) > len(order):
            raise ILSyntaxError(
                f"{opcode} takes at most {len(order)} positional parameters, "
                f"got {len(positional)}",
                line,
            )
        for name, value in zip(order, positional):
            if name in named:
                raise ILSyntaxError(
                    f"{opcode}: parameter {name!r} given both positionally and by name",
                    line,
                )
            named[name] = value
    return named


def _parse_source(token: str, line: int) -> SourceRef:
    token = token.strip()
    if not token:
        raise ILSyntaxError("empty input reference", line)
    if token.isascii() and token.isdigit():
        return NodeRef(int(token))
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
        return ChannelRef(token)
    raise ILSyntaxError(f"bad input reference {token!r}", line)


def parse_program(text: str) -> ILProgram:
    """Parse IL text into an (unvalidated) :class:`ILProgram`.

    Raises:
        ILSyntaxError: on any lexical or grammatical problem, including
            a missing or duplicated ``OUT`` statement.
    """
    statements: List[ILStatement] = []
    output: NodeRef | None = None
    for line, stmt_text in _strip_comments(text):
        match = _STMT_RE.match(stmt_text)
        if not match:
            raise ILSyntaxError(f"cannot parse statement {stmt_text!r}", line)
        inputs = tuple(
            _parse_source(tok, line) for tok in match.group("inputs").split(",")
        )
        target = match.group("target")
        if target == "OUT":
            if match.group("args"):
                raise ILSyntaxError("OUT takes no arguments", line)
            if len(inputs) != 1 or not isinstance(inputs[0], NodeRef):
                raise ILSyntaxError("OUT must be fed by exactly one node id", line)
            if output is not None:
                raise ILSyntaxError("duplicate OUT statement", line)
            output = inputs[0]
            continue
        args = match.group("args")
        if args is None:
            raise ILSyntaxError(f"{target}: missing (id=...) argument list", line)
        node_id: int | None = None
        params: Dict[str, object] = {}
        # Split args into the id=... part and the optional params={...} part.
        params_match = re.search(r"params\s*=\s*\{", args)
        if params_match:
            head = args[: params_match.start()].rstrip().rstrip(",")
            body_start = params_match.end()
            if not args.rstrip().endswith("}"):
                raise ILSyntaxError("params block not closed with '}'", line)
            body = args.rstrip()[body_start:-1]
            params = _parse_params(body, target, line)
        else:
            head = args
        for piece in _split_top_level(head):
            id_match = _ID_RE.match(piece)
            if not id_match:
                raise ILSyntaxError(f"unexpected argument {piece!r}", line)
            if node_id is not None:
                raise ILSyntaxError("duplicate id argument", line)
            node_id = int(id_match.group(1))
        if node_id is None:
            raise ILSyntaxError(f"{target}: missing id", line)
        statements.append(ILStatement.make(inputs, target, node_id, params))
    if output is None:
        raise ILSyntaxError("program has no OUT statement")
    return ILProgram(tuple(statements), output)
