"""Shard health supervision: liveness from pump cadence.

PR 1's hub reliability layer watches heartbeats from the sensor hub and
drives a degraded mode while the hub is dark.  This module lifts the
same pattern to the service tier: the "heartbeat" is the service's own
pump cadence under the logical clock, and the degraded mode changes
*admission policy* rather than delivery policy — a shard that has
stopped pumping on schedule (or whose journal is erroring) sheds new
batch work and keeps draining what it already accepted, exactly the
behaviour a fleet balancer wants from a sick shard.

The state machine is deliberately tiny and fully deterministic under
the logical clock:

``HEALTHY --(pump gap > period * tolerance, or journal error)-->
DEGRADED --(recovery_pumps timely pumps)--> HEALTHY``

Transitions are recorded with their logical timestamps and surfaced in
:class:`~repro.serve.metrics.MetricsSnapshot`, so a seeded run always
produces the same transition list.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ServiceError


class HealthState(enum.Enum):
    """Liveness verdict for one service shard."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"


@dataclass(frozen=True)
class HealthPolicy:
    """When a shard counts as sick, and how it earns its way back.

    Attributes:
        pump_period: Expected logical-clock gap between pump rounds.
            The default matches a fleet driver that pumps every
            :data:`~repro.serve.service.DEFAULT_BATCH_SIZE` submissions
            (each submit and each round ticks the clock once).
        tolerance: Missed-period multiplier before degrading: a gap
            longer than ``pump_period * tolerance`` marks the shard
            degraded, mirroring the hub watchdog's missed-beat budget.
        recovery_pumps: Consecutive timely pumps required to return to
            ``HEALTHY``.
    """

    pump_period: float = 64.0
    tolerance: int = 3
    recovery_pumps: int = 2

    def __post_init__(self) -> None:
        if self.pump_period <= 0:
            raise ServiceError(
                f"pump_period must be positive, got {self.pump_period}"
            )
        if self.tolerance < 1:
            raise ServiceError(
                f"tolerance must be >= 1, got {self.tolerance}"
            )
        if self.recovery_pumps < 1:
            raise ServiceError(
                f"recovery_pumps must be >= 1, got {self.recovery_pumps}"
            )

    @property
    def deadline(self) -> float:
        """Longest acceptable gap between pumps."""
        return self.pump_period * self.tolerance


class HealthMonitor:
    """Tracks one shard's liveness from its pump cadence.

    The service calls :meth:`on_submit` before admission (so a stalled
    shard degrades as soon as traffic exposes the stall), :meth:`on_pump`
    at every round, and :meth:`on_journal_error` when durability I/O
    fails.  :attr:`state` then gates admission: a degraded shard rejects
    new BULK work and drops its interactive reserve while it drains.
    """

    def __init__(self, policy: HealthPolicy = HealthPolicy(), start: float = 0.0):
        self.policy = policy
        self._state = HealthState.HEALTHY
        self._last_pump = start
        self._timely_pumps = 0
        self.journal_errors = 0
        self._transitions: List[Tuple[float, str, str]] = []

    @property
    def state(self) -> HealthState:
        """Current verdict."""
        return self._state

    @property
    def degraded(self) -> bool:
        """True while the shard should shed new batch work."""
        return self._state is HealthState.DEGRADED

    @property
    def transitions(self) -> Tuple[Tuple[float, str, str], ...]:
        """Every ``(now, from, to)`` transition, in order."""
        return tuple(self._transitions)

    def _move(self, now: float, to: HealthState) -> None:
        if to is self._state:
            return
        self._transitions.append((now, self._state.value, to.value))
        self._state = to

    def on_submit(self, now: float) -> None:
        """Check cadence at admission time: has the shard gone dark?"""
        if now - self._last_pump > self.policy.deadline:
            self._timely_pumps = 0
            self._move(now, HealthState.DEGRADED)

    def on_pump(self, now: float) -> None:
        """Record one pump round; timely rounds earn recovery credit."""
        timely = now - self._last_pump <= self.policy.deadline
        self._last_pump = now
        if not timely:
            self._timely_pumps = 0
            self._move(now, HealthState.DEGRADED)
            return
        if self._state is HealthState.DEGRADED:
            self._timely_pumps += 1
            if self._timely_pumps >= self.policy.recovery_pumps:
                self._timely_pumps = 0
                self._move(now, HealthState.HEALTHY)

    def on_journal_error(self, now: float) -> None:
        """A durability failure immediately degrades the shard."""
        self.journal_errors += 1
        self._timely_pumps = 0
        self._move(now, HealthState.DEGRADED)
