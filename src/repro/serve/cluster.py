"""The sharded serving tier: N condition services behind one router.

One :class:`~repro.serve.service.ConditionService` is one shard: one
pump loop, one scheduler, one engine context.  :class:`ShardCluster`
composes N of them behind a deterministic
:class:`~repro.serve.router.ShardRouter` (rendezvous hashing on
``(tenant, trace)``), so fleet work partitions across independent
schedulers while each shard keeps the single-shard guarantees —
fingerprint dedup, tensor-major batching, durable journals, health
supervision — within its partition.

Isolation is the design rule: every shard owns its own
:class:`~repro.sim.engine.RunContext` (and therefore its own
:class:`~repro.sim.engine.EnginePool` worker pool), its own clock, and
its own write-ahead journal (``shard-00.wal`` … under one directory),
so shards never contend for cached graphs, pool settings, or journal
frames, and a crashed shard recovers from *its* journal without
touching the others.  Shard pumps run concurrently over a thread
executor; no state crosses shard boundaries, so concurrency cannot
change any shard's responses.

:class:`AsyncCluster` is the event-loop front end: ``submit`` returns
an :class:`asyncio.Future` resolved with the submission's terminal
:class:`~repro.serve.submission.Response` at its shard's pump time,
and ``pump``/``drain`` dispatch shard pumps through
``loop.run_in_executor``.  Clocks stay injectable — with the default
per-shard :class:`~repro.serve.metrics.LogicalClock`, a cluster run is
bit-reproducible regardless of event-loop interleaving.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ServiceKilled, SidewinderError
from repro.power.phone import NEXUS4, PhonePowerProfile
from repro.serve.health import HealthPolicy
from repro.serve.journal import RecoveryStats
from repro.serve.metrics import (
    LogicalClock,
    MetricsSnapshot,
    percentile_sorted,
)
from repro.serve.faults import ServiceFaultPlan
from repro.serve.quotas import TenantQuota
from repro.serve.router import ShardRouter
from repro.serve.service import ConditionService
from repro.serve.submission import Rejected, Response, Submission, Ticket
from repro.sim.engine import RunContext
from repro.traces.base import Trace

__all__ = [
    "AsyncCluster",
    "ClusterMetricsSnapshot",
    "Routed",
    "ShardCluster",
    "shard_journal_path",
]


def shard_journal_path(journal_dir: Union[str, Path], shard: int) -> Path:
    """Where shard ``shard`` journals under ``journal_dir``."""
    return Path(journal_dir) / f"shard-{shard:02d}.wal"


@dataclass(frozen=True)
class Routed:
    """A routed admission outcome: which shard, and what it said.

    ``response`` is the shard's :meth:`ConditionService.submit` return —
    a :class:`Ticket` on acceptance, a :class:`Rejected` refusal
    otherwise.  Submission ids are **per-shard** counters, so a result
    lookup always needs the ``(shard, submission_id)`` pair.
    """

    shard: int
    response: Union[Ticket, Rejected]

    @property
    def accepted(self) -> bool:
        """True when the shard issued a ticket."""
        return isinstance(self.response, Ticket)


@dataclass(frozen=True)
class ClusterMetricsSnapshot:
    """Cross-shard metrics: merged totals plus the per-shard breakdown.

    ``merged`` sums counters across shards and recomputes latency
    percentiles over the **union** of every shard's raw samples —
    per-shard percentiles cannot be averaged into a fleet percentile.
    ``merged.health_state`` is ``"degraded"`` if any shard is.
    """

    shards: int
    merged: MetricsSnapshot
    per_shard: Tuple[MetricsSnapshot, ...]

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for logs and benchmark artifacts."""
        return {
            "shards": self.shards,
            "merged": self.merged.as_dict(),
            "per_shard": [snap.as_dict() for snap in self.per_shard],
        }

    def describe(self) -> str:
        """Merged report plus one summary line per shard."""
        lines = [f"cluster of {self.shards} shard(s)", self.merged.describe()]
        for shard, snap in enumerate(self.per_shard):
            lines.append(
                f"  shard {shard}: accepted {snap.accepted} | completed "
                f"{snap.completed} | engine runs {snap.engine_runs} | "
                f"dedup {snap.dedup_hit_rate:.1%} | p99 {snap.latency_p99:g}"
            )
        return "\n".join(lines)


def merge_snapshots(
    per_shard: Sequence[MetricsSnapshot],
    latency_samples: Sequence[Sequence[float]],
) -> MetricsSnapshot:
    """Fold per-shard snapshots into one fleet-wide snapshot.

    Counters add; the rejection breakdown merges by reason; dedup
    hit-rate and latency percentiles are recomputed from the summed
    counters and the pooled raw samples.  Health transitions are not
    merged (they are per-shard timelines on per-shard clocks) — read
    them from the per-shard snapshots.
    """
    rejected: Dict[str, int] = {}
    for snap in per_shard:
        for reason, count in snap.rejected.items():
            rejected[reason] = rejected.get(reason, 0) + count
    pooled = sorted(
        sample for samples in latency_samples for sample in samples
    )
    completed = sum(snap.completed for snap in per_shard)
    dedup_hits = sum(snap.dedup_hits for snap in per_shard)
    return MetricsSnapshot(
        submitted=sum(snap.submitted for snap in per_shard),
        accepted=sum(snap.accepted for snap in per_shard),
        rejected=rejected,
        completed=completed,
        failed=sum(snap.failed for snap in per_shard),
        cancelled=sum(snap.cancelled for snap in per_shard),
        engine_runs=sum(snap.engine_runs for snap in per_shard),
        dedup_hits=dedup_hits,
        dedup_hit_rate=(dedup_hits / completed if completed else 0.0),
        latency_p50=percentile_sorted(pooled, 50),
        latency_p90=percentile_sorted(pooled, 90),
        latency_p99=percentile_sorted(pooled, 99),
        latency_p999=percentile_sorted(pooled, 99.9),
        queue_depth=sum(snap.queue_depth for snap in per_shard),
        store_size=sum(snap.store_size for snap in per_shard),
        store_spilled=sum(snap.store_spilled for snap in per_shard),
        journal_errors=sum(snap.journal_errors for snap in per_shard),
        health_state=(
            "degraded"
            if any(snap.health_state != "healthy" for snap in per_shard)
            else "healthy"
        ),
        batch_rounds=sum(snap.batch_rounds for snap in per_shard),
        batched_cells=sum(snap.batched_cells for snap in per_shard),
        shape_rounds=sum(snap.shape_rounds for snap in per_shard),
        shape_cells=sum(snap.shape_cells for snap in per_shard),
        batch_padded_cells=sum(snap.batch_padded_cells for snap in per_shard),
        batch_valid_cells=sum(snap.batch_valid_cells for snap in per_shard),
        stream_chunks=sum(snap.stream_chunks for snap in per_shard),
        stream_subscriptions=sum(
            snap.stream_subscriptions for snap in per_shard
        ),
        stream_backlog=sum(snap.stream_backlog for snap in per_shard),
        # Lag is a worst-case freshness bound, not a volume — the fleet
        # lags as far as its furthest-behind shard.
        stream_lag_s=max(
            (snap.stream_lag_s for snap in per_shard), default=0.0
        ),
        stream_rounds=sum(snap.stream_rounds for snap in per_shard),
        stream_cells=sum(snap.stream_cells for snap in per_shard),
    )


class ShardCluster:
    """N independent condition-service shards behind one router.

    Args:
        traces: Trace registry shared by every shard (read-only).
        quota: Per-tenant admission limits, enforced **per shard** —
            each shard has its own admission controller, so a tenant's
            effective fleet budget is ``quota × shards it routes to``.
        shards: Shard count (router fan-out and service count).
        capacity / interactive_reserve / batch_size / jobs /
            result_ttl / profile / spill_dir / memory_budget / health:
            Per-shard :class:`ConditionService` settings, identical
            across shards.
        clock_factory: Called once per shard for its clock; defaults to
            a fresh deterministic
            :class:`~repro.serve.metrics.LogicalClock` per shard, so a
            shard's latencies depend only on *its* submission stream,
            not on cluster-wide interleaving.
        journal_dir: When set, shard ``i`` journals to
            ``journal_dir/shard-0i.wal`` and
            :meth:`recover_shard` / :meth:`recover` can rebuild shards
            after a crash, shard by shard.
        faults: Optional per-shard fault plans (``{shard: plan}``) —
            deterministic kill/torn-tail injection for exactly the
            shards named.
        salt: Router namespace (see :class:`ShardRouter`).
        parallel_pumps: Pump shards concurrently over a thread
            executor (default).  Shards share no mutable state, so this
            cannot change any shard's responses; disable it to simplify
            debugging or profiling.
    """

    def __init__(
        self,
        traces: Mapping[str, Trace],
        quota: Optional[TenantQuota] = None,
        shards: int = 1,
        capacity: int = 256,
        interactive_reserve: int = 32,
        batch_size: int = 64,
        jobs: int = 1,
        result_ttl: float = 512.0,
        clock_factory: Optional[Callable[[], Callable[[], float]]] = None,
        profile: PhonePowerProfile = NEXUS4,
        journal_dir: Optional[Union[str, Path]] = None,
        faults: Optional[Mapping[int, ServiceFaultPlan]] = None,
        health: Optional[HealthPolicy] = None,
        spill_dir: Optional[Union[str, Path]] = None,
        memory_budget: Optional[int] = None,
        salt: str = "",
        parallel_pumps: bool = True,
        context_factory: Optional[Callable[[], RunContext]] = None,
    ):
        self._router = ShardRouter(shards, salt=salt)
        self._traces = traces
        self._journal_dir = (
            Path(journal_dir) if journal_dir is not None else None
        )
        if self._journal_dir is not None:
            self._journal_dir.mkdir(parents=True, exist_ok=True)
        self._clock_factory = (
            clock_factory if clock_factory is not None else LogicalClock
        )
        # One fresh context per shard — never one shared context, which
        # would defeat shard isolation (and RunContext is not
        # thread-safe under concurrent pumps).
        self._context_factory = context_factory
        self._shard_kwargs = dict(
            quota=quota,
            capacity=capacity,
            interactive_reserve=interactive_reserve,
            batch_size=batch_size,
            jobs=jobs,
            result_ttl=result_ttl,
            profile=profile,
            health=health,
            memory_budget=memory_budget,
        )
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._services: List[ConditionService] = []
        for shard in range(shards):
            self._services.append(
                ConditionService(
                    traces,
                    clock=self._clock_factory(),
                    journal=self._shard_journal(shard),
                    faults=faults.get(shard) if faults is not None else None,
                    spill_dir=self._shard_spill(shard),
                    context=self._shard_context(),
                    **self._shard_kwargs,
                )
            )
        self._dead: Dict[int, str] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._parallel = parallel_pumps and shards > 1
        self._closed = False

    # -- construction plumbing ------------------------------------------

    def _shard_journal(self, shard: int) -> Optional[Path]:
        if self._journal_dir is None:
            return None
        return shard_journal_path(self._journal_dir, shard)

    def _shard_spill(self, shard: int) -> Optional[Path]:
        if self._spill_dir is None:
            return None
        return self._spill_dir / f"shard-{shard:02d}"

    def _shard_context(self):
        return (
            self._context_factory()
            if self._context_factory is not None
            else None
        )

    def _pump_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.shards,
                thread_name_prefix="shard-pump",
            )
        return self._executor

    # -- topology -------------------------------------------------------

    @property
    def shards(self) -> int:
        """Number of shards (live or dead)."""
        return self._router.shards

    @property
    def router(self) -> ShardRouter:
        """The routing function (stateless; safe to share)."""
        return self._router

    @property
    def traces(self) -> Mapping[str, Trace]:
        """The trace registry every shard serves."""
        return self._traces

    @property
    def dead_shards(self) -> Tuple[int, ...]:
        """Shards killed by fault injection, awaiting recovery."""
        return tuple(sorted(self._dead))

    def shard(self, shard: int) -> ConditionService:
        """Direct access to one shard's service (tests, recovery)."""
        return self._services[shard]

    # -- the tenant-facing API ------------------------------------------

    def submit(self, submission: Submission) -> Routed:
        """Route one submission to its shard and admit it there.

        A dead (killed, unrecovered) shard refuses with
        ``Rejected(reason="shard_down")`` rather than silently routing
        elsewhere — re-routing would break the determinism contract
        (the same key must always land on the same shard) and the
        recovered shard's journal replay.
        """
        shard = self._router.route_submission(submission)
        if shard in self._dead:
            return Routed(
                shard,
                Rejected(
                    submission.tenant,
                    "shard_down",
                    f"shard {shard} is down pending recovery",
                ),
            )
        return Routed(shard, self._services[shard].submit(submission))

    # -- streaming ingestion --------------------------------------------

    def push_chunk(
        self,
        tenant: str,
        stream: str,
        seq: int,
        samples: Mapping[str, object],
        rate_hz: Optional[Mapping[str, float]] = None,
    ) -> Tuple[int, Optional[bool]]:
        """Route one device chunk to its stream's shard and apply it.

        Returns ``(shard, applied)``; ``applied`` is ``None`` when the
        shard is down — the device buffers and re-pushes after
        recovery, resyncing from :meth:`stream_cursor` (per-stream
        ``seq`` makes the re-push idempotent).
        """
        shard = self._router.route_stream(tenant, stream)
        if shard in self._dead:
            return shard, None
        return shard, self._services[shard].push_chunk(
            tenant, stream, seq, samples, rate_hz=rate_hz
        )

    def subscribe_stream(
        self, submission: Submission
    ) -> Tuple[int, Union[int, Rejected]]:
        """Register a streaming subscription on the stream's shard.

        Returns ``(shard, sub_id_or_rejection)``.  Ids are per-shard —
        results are read back through ``(shard, sub_id)``.
        """
        shard = self._router.route_stream(
            submission.tenant, submission.trace
        )
        if shard in self._dead:
            return shard, Rejected(
                submission.tenant,
                "shard_down",
                f"shard {shard} is down pending recovery",
            )
        return shard, self._services[shard].subscribe_stream(submission)

    def close_stream(self, tenant: str, stream: str) -> Dict[int, tuple]:
        """End one stream on its shard; subscription id → event log."""
        shard = self._router.route_stream(tenant, stream)
        return self._services[shard].close_stream(tenant, stream)

    def stream_results(self, shard: int, sub_id: int) -> tuple:
        """Wake events a streaming subscription has emitted so far."""
        return self._services[shard].stream_results(sub_id)

    def stream_cursor(self, tenant: str, stream: str) -> int:
        """The next chunk ``seq`` a stream's shard expects (0 when the
        stream is unknown there) — the device resync point."""
        shard = self._router.route_stream(tenant, stream)
        return self._services[shard].stream_cursor(tenant, stream)

    def pump_shard(self, shard: int) -> List[Response]:
        """Run one scheduling round on one shard.

        A fault-plan kill (:class:`~repro.errors.ServiceKilled`) is
        caught and recorded: the shard joins :attr:`dead_shards` and
        keeps refusing work until :meth:`recover_shard`.
        """
        if shard in self._dead:
            return []
        try:
            return self._services[shard].pump()
        except ServiceKilled as killed:
            self._dead[shard] = str(killed)
            return []

    def pump(self) -> Dict[int, List[Response]]:
        """One scheduling round on every live shard; shard → responses.

        Shards with queued work pump concurrently over the thread
        executor when ``parallel_pumps`` is on.  Each shard is pumped
        by exactly one thread and shards share no mutable state, so
        the interleaving cannot affect any shard's responses.
        """
        live = [shard for shard in range(self.shards) if shard not in self._dead]
        if not self._parallel or len(live) <= 1:
            return {shard: self.pump_shard(shard) for shard in live}
        executor = self._pump_executor()
        futures = {
            shard: executor.submit(self.pump_shard, shard) for shard in live
        }
        return {shard: future.result() for shard, future in futures.items()}

    def drain(self) -> Dict[int, List[Response]]:
        """Pump until every live shard's queue is empty."""
        merged: Dict[int, List[Response]] = {
            shard: []
            for shard in range(self.shards)
            if shard not in self._dead
        }
        while any(
            self._services[shard].queue_depth for shard in merged
            if shard not in self._dead
        ):
            for shard, responses in self.pump().items():
                merged[shard].extend(responses)
        return merged

    def result(self, shard: int, submission_id: int) -> Optional[Response]:
        """A ticket's terminal response from its owning shard."""
        return self._services[shard].result(submission_id)

    def metrics(self) -> ClusterMetricsSnapshot:
        """Merged counters + per-shard breakdown (see
        :class:`ClusterMetricsSnapshot`)."""
        per_shard = tuple(service.metrics() for service in self._services)
        merged = merge_snapshots(
            per_shard,
            [service.latency_samples() for service in self._services],
        )
        return ClusterMetricsSnapshot(
            shards=self.shards, merged=merged, per_shard=per_shard
        )

    # -- lifecycle ------------------------------------------------------

    def shutdown(self, drain: bool = True) -> Dict[int, List[Response]]:
        """Shut every live shard down; shard → its shutdown responses.

        Dead shards are skipped (their journals stay on disk for a
        later :meth:`recover`).  The pump executor is torn down last.
        """
        responses: Dict[int, List[Response]] = {}
        if not self._closed:
            for shard, service in enumerate(self._services):
                if shard in self._dead:
                    continue
                responses[shard] = service.shutdown(drain=drain)
            self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        return responses

    # -- crash recovery -------------------------------------------------

    def recover_shard(self, shard: int) -> RecoveryStats:
        """Rebuild one crashed shard from its own journal, in place.

        The other shards keep serving throughout — per-shard journals
        are the point: recovery is a shard-local replay, not a cluster
        restart.  The rebuilt service takes over the shard's slot with
        a fresh engine context (and pool handle), and the shard leaves
        :attr:`dead_shards`.
        """
        journal = self._shard_journal(shard)
        if journal is None:
            raise SidewinderError(
                "cannot recover a shard without a journal_dir"
            )
        service, stats = ConditionService.recover(
            journal,
            self._traces,
            spill_dir=self._shard_spill(shard),
            context=self._shard_context(),
            **self._shard_kwargs,
        )
        self._services[shard] = service
        self._dead.pop(shard, None)
        return stats

    @classmethod
    def recover(
        cls,
        journal_dir: Union[str, Path],
        traces: Mapping[str, Trace],
        shards: int,
        **kwargs: object,
    ) -> Tuple["ShardCluster", Dict[int, RecoveryStats]]:
        """Rebuild a whole cluster, shard by shard, from its journals.

        ``kwargs`` are the original :class:`ShardCluster` settings.
        Every shard journal must exist (a cluster that never journaled
        cannot be recovered).  Returns the cluster plus per-shard
        :class:`RecoveryStats`.
        """
        cluster = cls(
            traces, shards=shards, journal_dir=None, **kwargs  # type: ignore[arg-type]
        )
        # Keep the cluster's config but none of its fresh services:
        # each shard is rebuilt from its journal instead.
        for service in cluster._services:
            service.shutdown(drain=False)
        cluster._journal_dir = Path(journal_dir)
        cluster._services = []
        stats: Dict[int, RecoveryStats] = {}
        for shard in range(shards):
            service, shard_stats = ConditionService.recover(
                shard_journal_path(journal_dir, shard),
                traces,
                spill_dir=cluster._shard_spill(shard),
                context=cluster._shard_context(),
                **cluster._shard_kwargs,
            )
            cluster._services.append(service)
            stats[shard] = shard_stats
        return cluster, stats


class AsyncCluster:
    """The asyncio front end over a :class:`ShardCluster`.

    ``submit`` returns an :class:`asyncio.Future` that resolves with
    the submission's terminal :class:`Response` when its shard pumps
    the round containing it (immediately, for admission refusals).
    ``pump``/``drain`` dispatch the blocking shard pumps through
    ``loop.run_in_executor`` so the event loop stays responsive while
    shards execute concurrently.

    Determinism contract: response *content* is produced entirely
    inside per-shard synchronous code under injectable clocks — the
    event loop only decides *when* futures resolve, never what they
    resolve to.  Same submissions + same topology ⇒ same responses,
    regardless of loop scheduling.
    """

    def __init__(
        self,
        cluster: ShardCluster,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ):
        self._cluster = cluster
        self._loop = loop
        # (shard, submission_id) -> the future its pump will resolve.
        self._pending: Dict[Tuple[int, int], "asyncio.Future[Response]"] = {}

    @property
    def cluster(self) -> ShardCluster:
        """The synchronous cluster underneath."""
        return self._cluster

    @property
    def pending(self) -> int:
        """Futures awaiting a pump."""
        return len(self._pending)

    def _event_loop(self) -> asyncio.AbstractEventLoop:
        return self._loop if self._loop is not None else asyncio.get_running_loop()

    def submit(self, submission: Submission) -> "asyncio.Future[Response]":
        """Admit a submission; an awaitable of its terminal response.

        Refusals (quota, capacity, dead shard, malformed) resolve the
        future immediately with the :class:`Rejected` value — awaiting
        a rejection never blocks a client on a pump that will not come.
        """
        loop = self._event_loop()
        future: "asyncio.Future[Response]" = loop.create_future()
        routed = self._cluster.submit(submission)
        if isinstance(routed.response, Ticket):
            self._pending[
                (routed.shard, routed.response.submission_id)
            ] = future
        else:
            future.set_result(routed.response)
        return future

    def _resolve(self, shard: int, responses: List[Response]) -> None:
        for response in responses:
            ticket = getattr(response, "ticket", None)
            if ticket is None:
                continue
            future = self._pending.pop((shard, ticket.submission_id), None)
            if future is not None and not future.done():
                future.set_result(response)

    async def pump(self) -> Dict[int, List[Response]]:
        """One concurrent scheduling round across all live shards.

        Each live shard's blocking pump runs in the default executor;
        resolved responses settle their submit futures before this
        returns.  A shard killed by fault injection fails its still
        pending futures with :class:`~repro.errors.ServiceKilled` —
        awaiters see the crash instead of hanging until recovery.
        """
        loop = self._event_loop()
        live = [
            shard
            for shard in range(self._cluster.shards)
            if shard not in self._cluster.dead_shards
        ]
        results = await asyncio.gather(
            *(
                loop.run_in_executor(None, self._cluster.pump_shard, shard)
                for shard in live
            )
        )
        merged: Dict[int, List[Response]] = {}
        for shard, responses in zip(live, results):
            merged[shard] = responses
            self._resolve(shard, responses)
        self._fail_dead_futures()
        return merged

    def _fail_dead_futures(self) -> None:
        for shard in self._cluster.dead_shards:
            for key in [k for k in self._pending if k[0] == shard]:
                future = self._pending.pop(key)
                if not future.done():
                    future.set_exception(
                        ServiceKilled(
                            f"shard {shard} died before pumping "
                            f"submission {key[1]}"
                        )
                    )

    async def drain(self) -> Dict[int, List[Response]]:
        """Pump until every live shard's queue is empty."""
        merged: Dict[int, List[Response]] = {}
        while True:
            depth = sum(
                self._cluster.shard(shard).queue_depth
                for shard in range(self._cluster.shards)
                if shard not in self._cluster.dead_shards
            )
            if not depth:
                break
            for shard, responses in (await self.pump()).items():
                merged.setdefault(shard, []).extend(responses)
        return merged

    async def shutdown(self, drain: bool = True) -> Dict[int, List[Response]]:
        """Drain (optionally), shut the cluster down, cancel leftovers."""
        merged = await self.drain() if drain else {}
        for shard, responses in self._cluster.shutdown(drain=drain).items():
            merged.setdefault(shard, []).extend(responses)
            self._resolve(shard, responses)
        for future in self._pending.values():
            if not future.done():
                future.cancel()
        self._pending.clear()
        return merged
