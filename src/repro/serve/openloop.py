"""Open-loop arrival load generation and the overload sweep.

:func:`~repro.serve.loadgen.run_fleet` is *closed-loop*: the driver
submits a block, waits for the pump, submits the next block — so the
offered load implicitly adapts to service speed and the queue can
never really overflow.  Real fleets are **open-loop**: devices submit
on their own schedule whether or not the backend keeps up, and the
interesting regime is exactly where it does not — tail latency and
goodput as offered load crosses capacity.

This module drives a :class:`~repro.serve.cluster.ShardCluster` with
Poisson arrivals (exponential inter-arrival times from a seeded RNG,
so every run of a spec is bit-identical) on a **simulated clock**:

* :class:`SimClock` is a settable time source shared by the driver and
  every shard.  It deliberately has no ``tick`` method, so the
  services' own event ticking is inert and time advances *only* when
  the driver says so — one timeline, owned by the arrival process.
* Shards pump on a fixed simulated cadence (``pump_interval_s``).
  Each boundary pumps every shard once, so an N-shard cluster's
  capacity is ``N × batch_size`` submissions per interval — the
  partitioned-scheduler speedup the benchmark quantifies, independent
  of how many host cores the test machine happens to have.
* Latency is simulated seconds between arrival and the pump that
  completed the submission; "goodput" is completions per simulated
  second.  Overload sheds through the bounded queue
  (``bulk_backpressure`` / ``queue_full`` rejections), exactly like
  the closed-loop path.

:func:`overload_sweep` repeats this across offered rates and reports
p50/p90/p99/p99.9 vs load — the classic hockey-stick curve.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.serve.cluster import ShardCluster
from repro.serve.loadgen import (
    DeviceStreamPlan,
    LoadSpec,
    StreamLoadSpec,
    completion_digest,
    fleet_workload,
)
from repro.serve.metrics import percentile_sorted
from repro.serve.submission import (
    Completed,
    Rejected,
    Response,
    Submission,
    Ticket,
)

__all__ = [
    "DeviceConnectivity",
    "OpenLoopReport",
    "OpenLoopSpec",
    "SimClock",
    "StreamFleetReport",
    "overload_sweep",
    "poisson_arrivals",
    "run_open_loop",
    "run_stream_fleet",
]


class SimClock:
    """A settable simulated-time clock, advanced only by the driver.

    Unlike :class:`~repro.serve.metrics.LogicalClock` it has **no**
    ``tick`` method — services probe for one and no-op without it — so
    submission and pump events do not move time.  The open-loop driver
    owns the timeline: it advances the clock to each arrival instant
    and each pump boundary.  Time never goes backwards.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    def advance_to(self, now: float) -> float:
        """Move time forward to ``now``; moving backwards is an error."""
        if now < self._now:
            raise ServiceError(
                f"simulated time cannot rewind: {now} < {self._now}"
            )
        self._now = float(now)
        return self._now


@dataclass(frozen=True)
class OpenLoopSpec:
    """Shape of one open-loop drive.

    Attributes:
        rate: Offered load — mean arrivals per simulated second.
        duration_s: Simulated seconds of arrivals to generate.
        seed: RNG seed for the arrival process (the workload content
            comes from ``load.seed``; the two seeds are independent so
            the same fleet can be replayed at different rates).
        pump_interval_s: Simulated seconds between pump boundaries;
            every shard pumps once per boundary.
        load: The fleet workload shape (who submits what); the
            submission *sequence* is cycled to cover however many
            arrivals the rate and duration imply.
    """

    rate: float = 64.0
    duration_s: float = 64.0
    seed: int = 0
    pump_interval_s: float = 1.0
    load: LoadSpec = field(default_factory=LoadSpec)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ServiceError(f"rate must be positive, got {self.rate}")
        if self.duration_s <= 0:
            raise ServiceError(
                f"duration_s must be positive, got {self.duration_s}"
            )
        if self.pump_interval_s <= 0:
            raise ServiceError(
                f"pump_interval_s must be positive, got {self.pump_interval_s}"
            )


def poisson_arrivals(
    rate: float, duration_s: float, seed: int
) -> List[float]:
    """Deterministic Poisson arrival instants in ``[0, duration_s)``.

    Exponential inter-arrival times with mean ``1/rate`` from
    ``random.Random(seed)`` — same spec, same instants, bit for bit.
    """
    rng = random.Random(seed)
    arrivals: List[float] = []
    now = rng.expovariate(rate)
    while now < duration_s:
        arrivals.append(now)
        now += rng.expovariate(rate)
    return arrivals


@dataclass
class OpenLoopReport:
    """Outcome of one open-loop drive at one offered rate.

    Attributes:
        offered_rate: The spec's arrivals per simulated second.
        arrivals: Arrival count the rate and duration produced.
        accepted: Arrivals some shard admitted.
        shed: Arrivals refused (the overload signal: queue bounds and
            per-tenant quotas), by reason.
        completed / failed: Terminal outcomes among accepted work.
        goodput: Completions per simulated second over the drive.
        latency_p50/p90/p99/p999: Nearest-rank percentiles of
            simulated-seconds latency (arrival → completing pump).
        wall_s: Real seconds the drive took (host-dependent; reported
            for honesty, never gated on).
    """

    offered_rate: float = 0.0
    arrivals: int = 0
    accepted: int = 0
    shed: Dict[str, int] = field(default_factory=dict)
    completed: int = 0
    failed: int = 0
    goodput: float = 0.0
    latency_p50: float = 0.0
    latency_p90: float = 0.0
    latency_p99: float = 0.0
    latency_p999: float = 0.0
    wall_s: float = 0.0

    @property
    def shed_total(self) -> int:
        """All refusals across reasons."""
        return sum(self.shed.values())

    def as_dict(self) -> Dict[str, object]:
        """Benchmark-artifact form."""
        return {
            "offered_rate": self.offered_rate,
            "arrivals": self.arrivals,
            "accepted": self.accepted,
            "shed": dict(self.shed),
            "shed_total": self.shed_total,
            "completed": self.completed,
            "failed": self.failed,
            "goodput": self.goodput,
            "latency_p50": self.latency_p50,
            "latency_p90": self.latency_p90,
            "latency_p99": self.latency_p99,
            "latency_p999": self.latency_p999,
            "wall_s": self.wall_s,
        }


def run_open_loop(
    cluster: ShardCluster,
    clock: SimClock,
    spec: OpenLoopSpec,
    submissions: Optional[Sequence[Submission]] = None,
) -> OpenLoopReport:
    """Drive Poisson arrivals through a cluster on simulated time.

    ``cluster`` must have been built with every shard reading
    ``clock`` (``clock_factory=lambda: clock``) — the driver advances
    it to each arrival and each pump boundary, so shard-side
    ``submitted_at`` stamps and completion latencies are simulated
    seconds on one shared timeline.

    The submission sequence (default: ``fleet_workload(spec.load)``
    over the cluster's registry apps/traces) is cycled to cover every
    arrival instant.  Returns the per-rate report; the cluster is left
    drained but running (callers own shutdown, so a sweep can reuse
    construction machinery).
    """
    from repro.apps import all_applications

    if submissions is None:
        traces = list(cluster.traces.values())
        submissions = fleet_workload(
            spec.load, all_applications(), traces
        )
    if not submissions:
        raise ServiceError("open-loop drive needs a non-empty workload")

    arrivals = poisson_arrivals(spec.rate, spec.duration_s, spec.seed)
    report = OpenLoopReport(offered_rate=spec.rate, arrivals=len(arrivals))
    started = time.perf_counter()

    latencies: List[float] = []

    def pump_once() -> None:
        for _, responses in cluster.pump().items():
            _count(responses)

    def _count(responses: List[Response]) -> None:
        for response in responses:
            if isinstance(response, Completed):
                report.completed += 1
                latencies.append(response.latency)
            else:
                report.failed += 1

    next_pump = spec.pump_interval_s
    for index, arrival in enumerate(arrivals):
        while next_pump <= arrival:
            clock.advance_to(next_pump)
            pump_once()
            next_pump += spec.pump_interval_s
        clock.advance_to(arrival)
        routed = cluster.submit(submissions[index % len(submissions)])
        if isinstance(routed.response, Rejected):
            reason = routed.response.reason
            report.shed[reason] = report.shed.get(reason, 0) + 1
        else:
            report.accepted += 1
    # Drain: keep pumping on cadence until every queue empties, so
    # accepted-at-the-bell work still completes with honest latency.
    while any(
        cluster.shard(shard).queue_depth
        for shard in range(cluster.shards)
        if shard not in cluster.dead_shards
    ):
        clock.advance_to(next_pump)
        pump_once()
        next_pump += spec.pump_interval_s

    report.wall_s = time.perf_counter() - started
    report.goodput = report.completed / spec.duration_s
    ordered = sorted(latencies)
    report.latency_p50 = percentile_sorted(ordered, 50)
    report.latency_p90 = percentile_sorted(ordered, 90)
    report.latency_p99 = percentile_sorted(ordered, 99)
    report.latency_p999 = percentile_sorted(ordered, 99.9)
    return report


class DeviceConnectivity:
    """Seeded intermittent connectivity for one streaming device.

    Mobile devices do not upload on a clean cadence: radios sleep,
    coverage drops, uploads batch.  This model makes that part of the
    arrival process — per round a connected device disconnects with
    probability ``disconnect_rate`` and a disconnected one reconnects
    with probability ``1 / mean_gap_rounds`` (geometric gap lengths).
    While disconnected its chunks buffer on-device; the driver delivers
    the whole backlog in one burst at reconnect, which is exactly the
    bursty span shape the incremental execution layer must stay
    bit-identical under.

    Round 0 is always connected: a device's first contact carries its
    stream's first chunk and registers its subscriptions.
    """

    def __init__(
        self,
        seed: int,
        device: int,
        disconnect_rate: float = 0.0,
        mean_gap_rounds: float = 2.0,
    ):
        if not 0 <= disconnect_rate < 1:
            raise ServiceError(
                f"disconnect_rate must be in [0, 1), got {disconnect_rate}"
            )
        self._rng = random.Random(seed * 2_000_003 + device)
        self._disconnect = disconnect_rate
        self._reconnect = 1.0 / max(1.0, mean_gap_rounds)

    def schedule(self, rounds: int) -> List[bool]:
        """Connected flags for ``rounds`` rounds (round 0 always True)."""
        flags: List[bool] = []
        connected = True
        for index in range(rounds):
            if index > 0:
                if connected:
                    if self._rng.random() < self._disconnect:
                        connected = False
                elif self._rng.random() < self._reconnect:
                    connected = True
            flags.append(connected or index == 0)
        return flags


@dataclass
class StreamFleetReport:
    """Outcome of driving one streamed fleet through a cluster.

    Attributes:
        devices / subscriptions / chunks_pushed: Fleet shape counters.
        deferred_chunks: Chunks delivered later than the round that
            produced them (buffered through a connectivity gap, or
            re-pushed after a shard recovery).
        rejections: ``(shard, rejection)`` subscription refusals.
        by_subscription: Registered submissions keyed by their global
            ``(shard, sub_id)``.
        events: Complete per-subscription wake-event logs, same keys.
        recoveries: Shard → times it was killed and rebuilt mid-drive.
        wall_s: Real seconds the drive took.
        metrics: The cluster's final merged + per-shard snapshot.
    """

    devices: int = 0
    subscriptions: int = 0
    chunks_pushed: int = 0
    deferred_chunks: int = 0
    rejections: List[Tuple[int, Rejected]] = field(default_factory=list)
    by_subscription: Dict[Tuple[int, int], Submission] = field(
        default_factory=dict
    )
    events: Dict[Tuple[int, int], tuple] = field(default_factory=dict)
    recoveries: Dict[int, int] = field(default_factory=dict)
    wall_s: float = 0.0
    metrics: object = None  # ClusterMetricsSnapshot

    @property
    def wake_events(self) -> int:
        """Wake events emitted across every subscription."""
        return sum(len(log) for log in self.events.values())

    @property
    def pairs(self) -> List[Tuple[Submission, Completed]]:
        """(submission, completion) pairs for
        :func:`~repro.serve.loadgen.completion_digest`.

        Each subscription's event log is wrapped as a completion whose
        result is the event tuple — the same result content an ordinary
        raw-IL submission over the assembled trace completes with, so
        streamed and replayed drives digest-compare directly.  Ticket
        ids and timestamps are synthetic; the digest ignores them.
        """
        return [
            (
                self.by_subscription[key],
                Completed(
                    Ticket(key[1], self.by_subscription[key].tenant, 0.0),
                    result=self.events.get(key, ()),
                ),
            )
            for key in sorted(self.by_subscription)
        ]

    def digest(self) -> str:
        """Topology-independent digest of every subscription's events."""
        return completion_digest(self.pairs)

    def as_dict(self) -> Dict[str, object]:
        """Benchmark-artifact form."""
        return {
            "devices": self.devices,
            "subscriptions": self.subscriptions,
            "chunks_pushed": self.chunks_pushed,
            "deferred_chunks": self.deferred_chunks,
            "rejections": len(self.rejections),
            "wake_events": self.wake_events,
            "recoveries": dict(self.recoveries),
            "wall_s": self.wall_s,
            "metrics": self.metrics.as_dict() if self.metrics else None,
        }


def run_stream_fleet(
    cluster: ShardCluster,
    plans: Sequence[DeviceStreamPlan],
    spec: StreamLoadSpec,
    recover: bool = False,
) -> StreamFleetReport:
    """Drive a streamed fleet through a cluster, round by round.

    Each round, every connected device pushes its backlog of produced
    chunks (one chunk per round while connected; a burst after a gap),
    then the cluster pumps once — chunks become durable at the round
    flush and every subscription advances incrementally over whatever
    arrived.  Round 0 additionally registers each device's
    subscriptions, right after its first chunk lands.

    With ``recover=True``, shards killed by their fault plans are
    rebuilt from their journals after the pump that killed them, and
    the affected devices resync their send pointers from
    :meth:`~repro.serve.cluster.ShardCluster.stream_cursor` — re-pushing
    whatever durability lost, exactly the reconnect protocol.  The
    drive ends by closing every stream and collecting complete event
    logs; digest-compare against the replay reference built from
    :func:`~repro.serve.loadgen.stream_replay_workload`.
    """
    report = StreamFleetReport(devices=len(plans))
    started = time.perf_counter()
    rounds = max((len(plan.chunks) for plan in plans), default=0)
    sent: Dict[str, int] = {plan.stream: 0 for plan in plans}
    schedules = {
        plan.stream: DeviceConnectivity(
            spec.seed, device, spec.disconnect_rate, spec.mean_gap_rounds
        ).schedule(rounds)
        for device, plan in enumerate(plans)
    }

    def deliver(plan: DeviceStreamPlan, upto: int, now_round: int) -> None:
        for seq in range(sent[plan.stream], upto):
            _, applied = cluster.push_chunk(
                plan.tenant,
                plan.stream,
                seq,
                plan.chunks[seq],
                rate_hz=dict(plan.rate_hz) if seq == 0 else None,
            )
            if applied is None:
                return  # Shard down: keep buffering, retry post-recovery.
            sent[plan.stream] = seq + 1
            report.chunks_pushed += 1
            if seq < now_round:
                report.deferred_chunks += 1

    def recover_dead() -> None:
        if not recover:
            return
        for shard in cluster.dead_shards:
            cluster.recover_shard(shard)
            report.recoveries[shard] = report.recoveries.get(shard, 0) + 1
            # Devices resync from the durable cursor: chunks the crash
            # lost get re-pushed, chunks it kept are skipped (seq is
            # idempotent either way).
            for plan in plans:
                sent[plan.stream] = min(
                    sent[plan.stream],
                    cluster.stream_cursor(plan.tenant, plan.stream),
                )

    for now_round in range(rounds):
        for plan in plans:
            if now_round < len(plan.chunks) and (
                schedules[plan.stream][now_round]
            ):
                deliver(plan, now_round + 1, now_round)
        if now_round == 0:
            for plan in plans:
                for submission in plan.submissions:
                    shard, outcome = cluster.subscribe_stream(submission)
                    if isinstance(outcome, Rejected):
                        report.rejections.append((shard, outcome))
                    else:
                        report.subscriptions += 1
                        report.by_subscription[(shard, outcome)] = submission
        cluster.pump()
        recover_dead()

    # Final reconnect: every device flushes its remaining backlog (and
    # anything a recovery rolled back), pumping until all delivered.
    while any(sent[plan.stream] < len(plan.chunks) for plan in plans):
        for plan in plans:
            deliver(plan, len(plan.chunks), rounds)
        cluster.pump()
        recover_dead()
        if cluster.dead_shards and not recover:
            break

    for plan in plans:
        shard = cluster.router.route_stream(plan.tenant, plan.stream)
        for sub_id, log in cluster.close_stream(
            plan.tenant, plan.stream
        ).items():
            report.events[(shard, sub_id)] = log

    report.wall_s = time.perf_counter() - started
    report.metrics = cluster.metrics()
    return report


def overload_sweep(
    make_cluster,
    spec: OpenLoopSpec,
    rates: Sequence[float],
) -> List[OpenLoopReport]:
    """One open-loop drive per offered rate; the tail-latency curve.

    Args:
        make_cluster: ``(clock) -> ShardCluster`` factory — a fresh
            cluster per rate (every point starts cold and fair), with
            every shard reading the given clock.
        spec: Drive shape; its ``rate`` is overridden per point.
        rates: Offered loads to sweep, in arrivals per simulated
            second.
    """
    reports: List[OpenLoopReport] = []
    for rate in rates:
        clock = SimClock()
        cluster = make_cluster(clock)
        point = OpenLoopSpec(
            rate=rate,
            duration_s=spec.duration_s,
            seed=spec.seed,
            pump_interval_s=spec.pump_interval_s,
            load=spec.load,
        )
        try:
            reports.append(run_open_loop(cluster, clock, point))
        finally:
            cluster.shutdown(drain=False)
    return reports
