"""Open-loop arrival load generation and the overload sweep.

:func:`~repro.serve.loadgen.run_fleet` is *closed-loop*: the driver
submits a block, waits for the pump, submits the next block — so the
offered load implicitly adapts to service speed and the queue can
never really overflow.  Real fleets are **open-loop**: devices submit
on their own schedule whether or not the backend keeps up, and the
interesting regime is exactly where it does not — tail latency and
goodput as offered load crosses capacity.

This module drives a :class:`~repro.serve.cluster.ShardCluster` with
Poisson arrivals (exponential inter-arrival times from a seeded RNG,
so every run of a spec is bit-identical) on a **simulated clock**:

* :class:`SimClock` is a settable time source shared by the driver and
  every shard.  It deliberately has no ``tick`` method, so the
  services' own event ticking is inert and time advances *only* when
  the driver says so — one timeline, owned by the arrival process.
* Shards pump on a fixed simulated cadence (``pump_interval_s``).
  Each boundary pumps every shard once, so an N-shard cluster's
  capacity is ``N × batch_size`` submissions per interval — the
  partitioned-scheduler speedup the benchmark quantifies, independent
  of how many host cores the test machine happens to have.
* Latency is simulated seconds between arrival and the pump that
  completed the submission; "goodput" is completions per simulated
  second.  Overload sheds through the bounded queue
  (``bulk_backpressure`` / ``queue_full`` rejections), exactly like
  the closed-loop path.

:func:`overload_sweep` repeats this across offered rates and reports
p50/p90/p99/p99.9 vs load — the classic hockey-stick curve.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.serve.cluster import ShardCluster
from repro.serve.loadgen import LoadSpec, fleet_workload
from repro.serve.metrics import percentile_sorted
from repro.serve.submission import (
    Completed,
    Rejected,
    Response,
    Submission,
)

__all__ = [
    "OpenLoopReport",
    "OpenLoopSpec",
    "SimClock",
    "overload_sweep",
    "poisson_arrivals",
    "run_open_loop",
]


class SimClock:
    """A settable simulated-time clock, advanced only by the driver.

    Unlike :class:`~repro.serve.metrics.LogicalClock` it has **no**
    ``tick`` method — services probe for one and no-op without it — so
    submission and pump events do not move time.  The open-loop driver
    owns the timeline: it advances the clock to each arrival instant
    and each pump boundary.  Time never goes backwards.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    def advance_to(self, now: float) -> float:
        """Move time forward to ``now``; moving backwards is an error."""
        if now < self._now:
            raise ServiceError(
                f"simulated time cannot rewind: {now} < {self._now}"
            )
        self._now = float(now)
        return self._now


@dataclass(frozen=True)
class OpenLoopSpec:
    """Shape of one open-loop drive.

    Attributes:
        rate: Offered load — mean arrivals per simulated second.
        duration_s: Simulated seconds of arrivals to generate.
        seed: RNG seed for the arrival process (the workload content
            comes from ``load.seed``; the two seeds are independent so
            the same fleet can be replayed at different rates).
        pump_interval_s: Simulated seconds between pump boundaries;
            every shard pumps once per boundary.
        load: The fleet workload shape (who submits what); the
            submission *sequence* is cycled to cover however many
            arrivals the rate and duration imply.
    """

    rate: float = 64.0
    duration_s: float = 64.0
    seed: int = 0
    pump_interval_s: float = 1.0
    load: LoadSpec = field(default_factory=LoadSpec)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ServiceError(f"rate must be positive, got {self.rate}")
        if self.duration_s <= 0:
            raise ServiceError(
                f"duration_s must be positive, got {self.duration_s}"
            )
        if self.pump_interval_s <= 0:
            raise ServiceError(
                f"pump_interval_s must be positive, got {self.pump_interval_s}"
            )


def poisson_arrivals(
    rate: float, duration_s: float, seed: int
) -> List[float]:
    """Deterministic Poisson arrival instants in ``[0, duration_s)``.

    Exponential inter-arrival times with mean ``1/rate`` from
    ``random.Random(seed)`` — same spec, same instants, bit for bit.
    """
    rng = random.Random(seed)
    arrivals: List[float] = []
    now = rng.expovariate(rate)
    while now < duration_s:
        arrivals.append(now)
        now += rng.expovariate(rate)
    return arrivals


@dataclass
class OpenLoopReport:
    """Outcome of one open-loop drive at one offered rate.

    Attributes:
        offered_rate: The spec's arrivals per simulated second.
        arrivals: Arrival count the rate and duration produced.
        accepted: Arrivals some shard admitted.
        shed: Arrivals refused (the overload signal: queue bounds and
            per-tenant quotas), by reason.
        completed / failed: Terminal outcomes among accepted work.
        goodput: Completions per simulated second over the drive.
        latency_p50/p90/p99/p999: Nearest-rank percentiles of
            simulated-seconds latency (arrival → completing pump).
        wall_s: Real seconds the drive took (host-dependent; reported
            for honesty, never gated on).
    """

    offered_rate: float = 0.0
    arrivals: int = 0
    accepted: int = 0
    shed: Dict[str, int] = field(default_factory=dict)
    completed: int = 0
    failed: int = 0
    goodput: float = 0.0
    latency_p50: float = 0.0
    latency_p90: float = 0.0
    latency_p99: float = 0.0
    latency_p999: float = 0.0
    wall_s: float = 0.0

    @property
    def shed_total(self) -> int:
        """All refusals across reasons."""
        return sum(self.shed.values())

    def as_dict(self) -> Dict[str, object]:
        """Benchmark-artifact form."""
        return {
            "offered_rate": self.offered_rate,
            "arrivals": self.arrivals,
            "accepted": self.accepted,
            "shed": dict(self.shed),
            "shed_total": self.shed_total,
            "completed": self.completed,
            "failed": self.failed,
            "goodput": self.goodput,
            "latency_p50": self.latency_p50,
            "latency_p90": self.latency_p90,
            "latency_p99": self.latency_p99,
            "latency_p999": self.latency_p999,
            "wall_s": self.wall_s,
        }


def run_open_loop(
    cluster: ShardCluster,
    clock: SimClock,
    spec: OpenLoopSpec,
    submissions: Optional[Sequence[Submission]] = None,
) -> OpenLoopReport:
    """Drive Poisson arrivals through a cluster on simulated time.

    ``cluster`` must have been built with every shard reading
    ``clock`` (``clock_factory=lambda: clock``) — the driver advances
    it to each arrival and each pump boundary, so shard-side
    ``submitted_at`` stamps and completion latencies are simulated
    seconds on one shared timeline.

    The submission sequence (default: ``fleet_workload(spec.load)``
    over the cluster's registry apps/traces) is cycled to cover every
    arrival instant.  Returns the per-rate report; the cluster is left
    drained but running (callers own shutdown, so a sweep can reuse
    construction machinery).
    """
    from repro.apps import all_applications

    if submissions is None:
        traces = list(cluster.traces.values())
        submissions = fleet_workload(
            spec.load, all_applications(), traces
        )
    if not submissions:
        raise ServiceError("open-loop drive needs a non-empty workload")

    arrivals = poisson_arrivals(spec.rate, spec.duration_s, spec.seed)
    report = OpenLoopReport(offered_rate=spec.rate, arrivals=len(arrivals))
    started = time.perf_counter()

    latencies: List[float] = []

    def pump_once() -> None:
        for _, responses in cluster.pump().items():
            _count(responses)

    def _count(responses: List[Response]) -> None:
        for response in responses:
            if isinstance(response, Completed):
                report.completed += 1
                latencies.append(response.latency)
            else:
                report.failed += 1

    next_pump = spec.pump_interval_s
    for index, arrival in enumerate(arrivals):
        while next_pump <= arrival:
            clock.advance_to(next_pump)
            pump_once()
            next_pump += spec.pump_interval_s
        clock.advance_to(arrival)
        routed = cluster.submit(submissions[index % len(submissions)])
        if isinstance(routed.response, Rejected):
            reason = routed.response.reason
            report.shed[reason] = report.shed.get(reason, 0) + 1
        else:
            report.accepted += 1
    # Drain: keep pumping on cadence until every queue empties, so
    # accepted-at-the-bell work still completes with honest latency.
    while any(
        cluster.shard(shard).queue_depth
        for shard in range(cluster.shards)
        if shard not in cluster.dead_shards
    ):
        clock.advance_to(next_pump)
        pump_once()
        next_pump += spec.pump_interval_s

    report.wall_s = time.perf_counter() - started
    report.goodput = report.completed / spec.duration_s
    ordered = sorted(latencies)
    report.latency_p50 = percentile_sorted(ordered, 50)
    report.latency_p90 = percentile_sorted(ordered, 90)
    report.latency_p99 = percentile_sorted(ordered, 99)
    report.latency_p999 = percentile_sorted(ordered, 99.9)
    return report


def overload_sweep(
    make_cluster,
    spec: OpenLoopSpec,
    rates: Sequence[float],
) -> List[OpenLoopReport]:
    """One open-loop drive per offered rate; the tail-latency curve.

    Args:
        make_cluster: ``(clock) -> ShardCluster`` factory — a fresh
            cluster per rate (every point starts cold and fair), with
            every shard reading the given clock.
        spec: Drive shape; its ``rate`` is overridden per point.
        rates: Offered loads to sweep, in arrivals per simulated
            second.
    """
    reports: List[OpenLoopReport] = []
    for rate in rates:
        clock = SimClock()
        cluster = make_cluster(clock)
        point = OpenLoopSpec(
            rate=rate,
            duration_s=spec.duration_s,
            seed=spec.seed,
            pump_interval_s=spec.pump_interval_s,
            load=spec.load,
        )
        try:
            reports.append(run_open_loop(cluster, clock, point))
        finally:
            cluster.shutdown(drain=False)
    return reports
