"""TTL'd result store: completed responses awaiting pickup.

A fleet backend cannot hold every historical result for every tenant;
responses live for a bounded time after completion and are then
evicted.  Eviction is driven by the service clock (logical by default),
so tests can observe and control expiry deterministically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.serve.submission import Response


class ResultStore:
    """Responses keyed by submission id, evicted ``ttl`` after storing.

    Args:
        ttl: Clock units a response stays fetchable after completion.

    Raises:
        ServiceError: on a non-positive TTL.
    """

    def __init__(self, ttl: float):
        if ttl <= 0:
            raise ServiceError(f"result TTL must be positive, got {ttl}")
        self.ttl = float(ttl)
        # Insertion-ordered by construction: puts happen at
        # monotonically non-decreasing times, so eviction scans stop at
        # the first unexpired entry.
        self._entries: Dict[int, Tuple[float, Response]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, submission_id: int, response: Response, now: float) -> None:
        """Store one terminal response."""
        self._entries[submission_id] = (now + self.ttl, response)

    def get(self, submission_id: int, now: float) -> Optional[Response]:
        """The response, or ``None`` once expired / never stored."""
        entry = self._entries.get(submission_id)
        if entry is None:
            return None
        expiry, response = entry
        if now >= expiry:
            del self._entries[submission_id]
            return None
        return response

    def evict_expired(self, now: float) -> int:
        """Drop every expired response; returns how many were dropped."""
        expired: List[int] = []
        for submission_id, (expiry, _) in self._entries.items():
            if now >= expiry:
                expired.append(submission_id)
            else:
                break
        for submission_id in expired:
            del self._entries[submission_id]
        return len(expired)
